// Workload analysis: characterize the synthetic CPlant/Ross trace the way
// the paper's section 2.2 characterizes the real one — category tables,
// offered load, over-estimation behaviour — and round-trip it through SWF.

#include <cmath>
#include <iostream>
#include <sstream>

#include "util/table.hpp"
#include "workload/generator.hpp"
#include "workload/swf.hpp"
#include "workload/trace_stats.hpp"

int main() {
  using namespace psched;
  using namespace psched::workload;

  const Workload trace = generate_ross_workload({});
  std::cout << "synthetic CPlant/Ross trace: " << trace.jobs.size() << " jobs over "
            << static_cast<double>(trace.latest_submit() - trace.earliest_submit()) / 86400.0
            << " days, " << trace.system_size << " nodes\n\n";

  // Table 1 analogue.
  const CategoryCounts counts = category_job_counts(trace);
  std::vector<std::string> header{"width \\ length"};
  for (const auto& label : length_labels()) header.push_back(label);
  util::TextTable table1(header);
  for (int w = 0; w < kWidthCategories; ++w) {
    table1.begin_row().add(width_category_label(w) + " nodes");
    for (int l = 0; l < kLengthCategories; ++l)
      table1.add_int(counts[static_cast<std::size_t>(w)][static_cast<std::size_t>(l)]);
  }
  std::cout << "jobs per category:\n" << table1 << '\n';

  // Figure 3 analogue: weekly offered load.
  std::cout << "weekly offered load:\n";
  const std::vector<double> offered = weekly_offered_load(trace);
  for (std::size_t w = 0; w < offered.size(); ++w) {
    const int bars = static_cast<int>(std::lround(offered[w] * 40.0));
    std::cout << "  week " << (w < 10 ? " " : "") << w << " "
              << std::string(static_cast<std::size_t>(std::max(0, bars)), '#') << ' '
              << util::format_number(offered[w] * 100.0, 1) << "%\n";
  }

  // Figures 5-7 analogue: over-estimation behaviour.
  std::cout << "\npower-of-two node counts: "
            << util::format_number(power_of_two_fraction(trace) * 100.0, 1) << "%\n";
  std::cout << "jobs exceeding their WCL: "
            << util::format_number(underestimate_fraction(trace) * 100.0, 1) << "%\n";

  std::vector<double> runtimes, factors;
  for (const Job& job : trace.jobs) {
    runtimes.push_back(static_cast<double>(job.runtime));
    factors.push_back(static_cast<double>(job.wcl) / static_cast<double>(job.runtime));
  }
  const BinnedSeries series = binned_median(runtimes, factors, 30.0, 2.0e6, 6);
  util::TextTable overest({"runtime bin", "jobs", "median factor", "p75 factor"});
  for (std::size_t b = 0; b < series.count.size(); ++b) {
    std::ostringstream label;
    label << util::format_duration_short(series.bin_lo[b]) << " - "
          << util::format_duration_short(series.bin_hi[b]);
    overest.begin_row()
        .add(label.str())
        .add_int(static_cast<long long>(series.count[b]))
        .add(series.median[b], 1)
        .add(series.p75[b], 1);
  }
  std::cout << "\nWCL over-estimation factor vs runtime (Figure 6 analogue):\n" << overest;

  // SWF round trip.
  std::ostringstream swf;
  write_swf(swf, trace);
  std::istringstream back(swf.str());
  const SwfReadResult reread = read_swf(back);
  std::cout << "\nSWF round-trip: wrote and re-read " << reread.workload.jobs.size()
            << " jobs (skipped " << reread.skipped_records << ")\n";
  return 0;
}
