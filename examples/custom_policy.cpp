// Custom policy: shows how a downstream user extends the library with their
// own Scheduler. The example implements "widest job first with EASY-style
// head reservation" and compares it against the paper's baseline.

#include <algorithm>
#include <iostream>
#include <optional>

#include "metrics/report.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace {

using namespace psched;

/// Widest-first aggressive backfilling: the queue is ordered by descending
/// node count (ties FCFS); the head holds a reservation, everyone else may
/// backfill around it. A deliberately wide-job-friendly strawman.
class WidestFirstScheduler final : public Scheduler {
 public:
  std::string name() const override { return "widest-first-easy"; }

  void on_submit(JobId id) override { waiting_.push_back(id); }
  void on_complete(JobId) override {}

  void collect_starts(std::vector<JobId>& starts) override {
    wakeup_.reset();
    if (waiting_.empty()) return;
    const Time now = ctx().now();
    NodeCount free = ctx().free_nodes();
    Profile profile(ctx().total_nodes(), now);
    add_running_to_profile(profile);

    std::sort(waiting_.begin(), waiting_.end(), [&](JobId a, JobId b) {
      const Job& ja = ctx().job(a);
      const Job& jb = ctx().job(b);
      if (ja.nodes != jb.nodes) return ja.nodes > jb.nodes;
      return ja.submit != jb.submit ? ja.submit < jb.submit : a < b;
    });

    std::vector<JobId> keep;
    bool reserved = false;
    for (const JobId id : waiting_) {
      const Job& job = ctx().job(id);
      if (job.nodes <= free && profile.fits_at(now, job.wcl, job.nodes)) {
        starts.push_back(id);
        profile.add_usage(now, now + job.wcl, job.nodes);
        free -= job.nodes;
        continue;
      }
      if (!reserved) {  // head reservation for the widest blocked job
        const Time at = profile.earliest_fit(now, job.wcl, job.nodes);
        profile.add_usage(at, at + job.wcl, job.nodes);
        wakeup_ = at;
        reserved = true;
      }
      keep.push_back(id);
    }
    waiting_ = std::move(keep);
  }

  std::optional<Time> next_wakeup() const override { return wakeup_; }

  // Optional, but makes the policy forkable: sim::policy_no_later_arrivals_fst
  // and SimulationEngine::fork_for_arrival need a deep copy of the scheduler
  // state (without it, forking throws). Value members make it one line.
  std::unique_ptr<Scheduler> clone() const override { return cloned(*this); }

 private:
  std::vector<JobId> waiting_;
  std::optional<Time> wakeup_;
};

}  // namespace

int main() {
  using namespace psched;

  workload::GeneratorConfig generator;
  generator.count_scale = 0.25;
  generator.span = weeks(8);
  const Workload trace = workload::generate_ross_workload(generator);

  // Baseline via the factory…
  sim::EngineConfig base;
  base.policy = paper_policy(PaperPolicy::Cplant24NomaxAll);
  const metrics::PolicyReport baseline = metrics::evaluate(sim::simulate(trace, base));

  // …and the custom scheduler injected into the engine via simulate_with.
  sim::EngineConfig custom_cfg;
  custom_cfg.policy.name = "widest-first-easy";
  const SimulationResult custom =
      sim::simulate_with(trace, custom_cfg, std::make_unique<WidestFirstScheduler>());
  const metrics::PolicyReport report = metrics::evaluate(custom);

  std::vector<metrics::PolicyReport> reports{baseline, report};
  std::cout << metrics::fairness_summary_table(reports) << '\n'
            << metrics::performance_summary_table(reports) << '\n'
            << "wide-job turnaround (129-256 nodes): baseline "
            << util::format_duration_short(baseline.standard.avg_turnaround_by_width[8])
            << " vs custom "
            << util::format_duration_short(report.standard.avg_turnaround_by_width[8]) << '\n';
  return 0;
}
