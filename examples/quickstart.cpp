// Quickstart: generate a small synthetic workload, run the CPlant baseline
// scheduler, and print the standard and fairness metrics.
//
//   ./quickstart [seed]
//
// This is the minimal end-to-end tour of the library: workload -> engine ->
// metrics. See policy_comparison / fairness_study for the full paper study.

#include <cstdlib>
#include <iostream>

#include "metrics/report.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace psched;

  // 1. A quarter-scale synthetic CPlant/Ross trace (fast to simulate).
  workload::GeneratorConfig generator;
  generator.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20021201ULL;
  generator.count_scale = 0.25;
  generator.span = weeks(8);
  const Workload trace = workload::generate_ross_workload(generator);
  std::cout << "generated " << trace.jobs.size() << " jobs on a " << trace.system_size
            << "-node machine (" << trace.total_proc_seconds() / 3600.0 << " proc-hours)\n\n";

  // 2. Simulate the production CPlant policy (no-guarantee backfill over the
  //    fairshare priority, 24 h starvation queue).
  sim::EngineConfig config;
  config.policy = paper_policy(PaperPolicy::Cplant24NomaxAll);
  const SimulationResult result = sim::simulate(trace, config);

  // 3. Evaluate: standard metrics plus the paper's hybrid fairness metric.
  const metrics::PolicyReport report = metrics::evaluate(result);
  std::cout << "policy: " << report.policy << '\n'
            << "  jobs scheduled        " << report.standard.job_count << '\n'
            << "  avg turnaround        " << util::format_duration_short(report.standard.avg_turnaround)
            << '\n'
            << "  avg wait              " << util::format_duration_short(report.standard.avg_wait)
            << '\n'
            << "  utilization           " << report.standard.utilization * 100.0 << "%\n"
            << "  loss of capacity      " << report.standard.loss_of_capacity * 100.0 << "%\n"
            << "  percent unfair jobs   " << report.fairness.percent_unfair * 100.0 << "%\n"
            << "  avg fair-start miss   "
            << util::format_duration_short(report.fairness.avg_miss_all) << '\n';
  return 0;
}
