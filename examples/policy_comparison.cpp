// Policy comparison: the paper's full section-6 study in one program. Runs
// all nine named policies on the synthetic CPlant/Ross trace and prints the
// fairness and performance summaries side by side.
//
//   ./policy_comparison [count_scale]   (default 0.25; 1.0 = full trace)

#include <cstdlib>
#include <iostream>

#include "metrics/report.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace psched;

  workload::GeneratorConfig generator;
  generator.count_scale = argc > 1 ? std::strtod(argv[1], nullptr) : 0.25;
  if (generator.count_scale < 1.0)
    generator.span = weeks(8);  // keep load comparable when scaling down
  const Workload trace = workload::generate_ross_workload(generator);
  std::cout << "trace: " << trace.jobs.size() << " jobs, " << trace.system_size << " nodes\n\n";

  sim::ExperimentRunner runner(trace);
  std::vector<metrics::PolicyReport> reports;
  for (const PolicyConfig& policy : all_paper_policies()) {
    std::cout << "simulating " << policy.display_name() << "...\n";
    reports.push_back(runner.run(policy).report);
  }

  std::cout << "\n== fairness (hybrid fairshare FST) ==\n"
            << metrics::fairness_summary_table(reports)
            << "\n== user & system performance ==\n"
            << metrics::performance_summary_table(reports)
            << "\n== average fair-start miss time by width ==\n"
            << metrics::miss_by_width_table(reports);
  return 0;
}
