// Fairness metric study: compares the three FST flavours the paper discusses
// (section 4) on one schedule — the hybrid fairshare FST (the paper's
// metric), the CONS_P FST of Srinivasan et al., and the per-policy
// "no later arrivals" FST of Sabin et al. — plus the resource-equality
// metric. The Sabin variant runs on the forked simulation engine (one pass
// plus a per-arrival fork) instead of the historical O(n^2) per-job
// re-simulation, so it is no longer restricted to toy traces.

#include <iostream>

#include "metrics/fst.hpp"
#include "metrics/resource_equality.hpp"
#include "sim/engine.hpp"
#include "sim/policy_fst.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace psched;

  const Workload trace =
      workload::generate_small_workload(/*seed=*/7, /*jobs=*/400, /*system_size=*/128,
                                        /*span=*/days(14), /*user_count=*/12);
  sim::EngineConfig config;
  config.policy = paper_policy(PaperPolicy::Cplant24NomaxAll);
  const SimulationResult result = sim::simulate(trace, config);

  const metrics::FstResult hybrid = metrics::hybrid_fairshare_fst(result);
  const metrics::FstResult consp = metrics::cons_p_fst(result);

  // Sabin et al.: the policy's own schedule with later arrivals removed —
  // one forked drain per job instead of a full re-simulation per job.
  const std::vector<Time> sabin_fst = sim::policy_no_later_arrivals_fst(trace, config);
  std::size_t sabin_unfair = 0;
  double sabin_miss = 0.0;
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    const Time miss = std::max<Time>(0, result.records[i].start - sabin_fst[i]);
    sabin_miss += static_cast<double>(miss);
    if (miss > 1) ++sabin_unfair;
  }
  sabin_miss /= static_cast<double>(trace.jobs.size());

  util::TextTable table({"metric", "percent_unfair", "avg_miss_s"});
  table.begin_row().add("hybrid fairshare FST (this paper)")
      .add_percent(hybrid.percent_unfair).add(hybrid.avg_miss_all, 0);
  table.begin_row().add("CONS_P FST (Srinivasan et al.)")
      .add_percent(consp.percent_unfair).add(consp.avg_miss_all, 0);
  table.begin_row().add("policy/no-later-arrivals FST (Sabin et al.)")
      .add_percent(static_cast<double>(sabin_unfair) / static_cast<double>(trace.jobs.size()))
      .add(sabin_miss, 0);
  std::cout << "policy: " << result.policy_name << ", " << trace.jobs.size() << " jobs\n\n"
            << table << '\n';

  const metrics::ResourceEquality eq = metrics::resource_equality(result);
  std::cout << "resource-equality metric (1/N share):\n"
            << "  normalized deficit " << eq.normalized_deficit << '\n'
            << "  Jain index         " << eq.jain_index << '\n';
  return 0;
}
