#include "obs/clock.hpp"

#include <chrono>

namespace psched::obs {

std::uint64_t now_us() {
  // steady_clock, not system_clock: span durations must survive NTP steps,
  // and nothing observability emits ever needs calendar time.
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(since_epoch).count());
}

}  // namespace psched::obs
