#pragma once
// The one sanctioned wall-clock reader. Every timing read in the tree —
// span tracing, per-cell wall_seconds — funnels through now_us() so the
// wall-clock lint rule can pin the contract: host time never feeds a
// simulation result, it only ever annotates diagnostics (trace files, the
// summary.json "breakdown" section, --stats tables). src/obs/clock.cpp is on
// the rule's sanctioned-path list; nothing else under src/ may touch a clock.

#include <cstdint>

namespace psched::obs {

/// Monotonic microseconds since an arbitrary process-local epoch. Only
/// meaningful as a difference between two reads in the same process.
std::uint64_t now_us();

}  // namespace psched::obs
