#include "obs/obs.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/clock.hpp"
#include "util/atomic_file.hpp"

namespace psched::obs {

namespace {

/// Catalog metadata, in Counter order. The split is the contract: a counter
/// is `deterministic` only if its total is provably independent of how cells
/// landed on lanes (see obs.hpp); everything else is honest about being a
/// scheduling artifact. docs/observability.md carries the prose catalog.
struct CounterInfo {
  const char* name;
  bool deterministic;
};

constexpr CounterInfo kCounterInfo[kCounterCount] = {
    {"engine.events_delivered", true},
    {"engine.scheduler_invocations", true},
    {"scheduler.replan_full", true},
    {"scheduler.replan_incremental", true},
    {"profile.gap_index.probes", true},
    {"profile.gap_index.skips", true},
    {"profile.gap_index.credit_earned", true},
    {"fst.forks", true},
    {"fst.forks_drained", true},
    {"fst.resolved_from_master", true},
    {"experiment.cache_misses", true},
    {"journal.appends", true},
    {"store.atomic_writes", true},
    {"experiment.cache_hits", false},
    {"experiment.single_flight_waits", false},
    {"pool.tasks_leaf", false},
    {"pool.tasks_compound", false},
    {"pool.queue_depth_high_water", false},
    {"fst.peak_batch_bytes", false},
    {"retry.reissues", false},
};

/// One recorded complete event. `name` is always a static string literal
/// (span constructors take const char*), so storing the pointer is safe.
struct SpanEvent {
  const char* name;
  std::string arg;
  std::uint64_t start_us;
  std::uint64_t dur_us;
};

/// Per-thread span sink. The mutex is per-buffer and only ever contended by
/// an export racing the owning thread, so armed pushes stay O(1) and
/// disarmed code never gets here at all.
struct ThreadBuf {
  explicit ThreadBuf(int tid_in) : tid(tid_in) {}
  std::mutex mu;
  int tid;
  std::vector<SpanEvent> events;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> buffers;
  std::string exit_path;
  bool exit_hook_registered = false;
};

Registry& registry() {
  static Registry reg;
  return reg;
}

thread_local ThreadBuf* t_buffer = nullptr;

ThreadBuf& local_buffer() {
  if (t_buffer == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.push_back(std::make_unique<ThreadBuf>(static_cast<int>(reg.buffers.size()) + 1));
    t_buffer = reg.buffers.back().get();
  }
  return *t_buffer;
}

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void write_counters_object(std::ostream& out, const char* indent) {
  const std::vector<CounterValue> snapshot = counters_snapshot();
  for (const bool deterministic : {true, false}) {
    out << indent << '"' << (deterministic ? "deterministic" : "scheduling") << "\": {";
    bool first = true;
    for (const CounterValue& counter : snapshot) {
      if (counter.deterministic != deterministic) continue;
      out << (first ? "" : ", ") << '"' << counter.name << "\": " << counter.value;
      first = false;
    }
    out << '}' << (deterministic ? ",\n" : "\n");
  }
}

void write_exit_trace() {
  std::string path;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    path = reg.exit_path;
  }
  if (!path.empty()) write_trace_file(path);
}

struct EnvInit {
  EnvInit() {
    // psched-lint note: this constructor is the one sanctioned reader of the
    // PSCHED_TRACE environment (rule raw-trace-env) — read once at static
    // init so every instrumentation point sees one consistent arming view.
    const char* value = std::getenv("PSCHED_TRACE");
    if (value == nullptr || *value == '\0') return;
    arm();
    const std::string text(value);
    // "1"/"on" arm without an exit file (counters + breakdowns only).
    if (text != "1" && text != "on") set_exit_trace_path(text);
  }
};

EnvInit g_env_init;

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};
std::array<std::atomic<std::uint64_t>, kCounterCount> g_counters{};

}  // namespace detail

void Span::begin(const char* name) {
  active_ = true;
  name_ = name;
  start_us_ = now_us();
}

void Span::end() {
  const std::uint64_t end_us = now_us();
  ThreadBuf& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back({name_, std::move(arg_), start_us_, end_us - start_us_});
}

void arm() { detail::g_armed.store(true, std::memory_order_relaxed); }

void reset() {
  detail::g_armed.store(false, std::memory_order_relaxed);
  for (std::atomic<std::uint64_t>& counter : detail::g_counters)
    counter.store(0, std::memory_order_relaxed);
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const std::unique_ptr<ThreadBuf>& buffer : reg.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

void set_exit_trace_path(const std::string& path) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  reg.exit_path = path;
  if (!path.empty() && !reg.exit_hook_registered) {
    reg.exit_hook_registered = true;
    std::atexit(write_exit_trace);
  }
}

std::vector<CounterValue> counters_snapshot() {
  std::vector<CounterValue> out;
  out.reserve(kCounterCount);
  for (std::size_t i = 0; i < kCounterCount; ++i)
    out.push_back({kCounterInfo[i].name, detail::g_counters[i].load(std::memory_order_relaxed),
                   kCounterInfo[i].deterministic});
  return out;
}

std::uint64_t counter_value(Counter counter) {
  return detail::g_counters[static_cast<std::size_t>(counter)].load(std::memory_order_relaxed);
}

void write_trace_json(std::ostream& out) {
  // Snapshot every buffer up front so the writer below (which may itself be
  // instrumented, e.g. atomic_write_file's store-write span) cannot deadlock
  // or observe its own events.
  struct Snapshot {
    int tid;
    std::vector<SpanEvent> events;
  };
  std::vector<Snapshot> snapshots;
  {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    snapshots.reserve(reg.buffers.size());
    for (const std::unique_ptr<ThreadBuf>& buffer : reg.buffers) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      snapshots.push_back({buffer->tid, buffer->events});
    }
  }

  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Snapshot& snapshot : snapshots) {
    for (const SpanEvent& event : snapshot.events) {
      out << (first ? "" : ",\n");
      first = false;
      out << "  {\"name\": \"" << event.name << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
          << snapshot.tid << ", \"ts\": " << event.start_us << ", \"dur\": " << event.dur_us;
      if (!event.arg.empty()) {
        std::string escaped;
        json_escape_into(escaped, event.arg);
        out << ", \"args\": {\"arg\": \"" << escaped << "\"}";
      }
      out << '}';
    }
  }
  out << "\n],\n\"displayTimeUnit\": \"ms\",\n\"counters\": {\n";
  write_counters_object(out, "  ");
  out << "}}\n";
}

void write_counters_json(std::ostream& out) {
  out << "{\n";
  write_counters_object(out, "  ");
  out << "}\n";
}

bool write_trace_file(const std::string& path) {
  std::ostringstream body;
  write_trace_json(body);
  try {
    util::atomic_write_file(path, body.str());
  } catch (const std::exception& error) {
    // Diagnostics are best-effort: the results store is already durable by
    // the time a trace is exported, so report and carry on.
    std::fprintf(stderr, "psched: trace export to %s failed: %s\n", path.c_str(), error.what());
    return false;
  }
  return true;
}

}  // namespace psched::obs
