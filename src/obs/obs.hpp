#pragma once
// Zero-cost-when-off observability: subsystem counters, max-gauges and RAII
// spans, armed process-wide via PSCHED_TRACE or programmatically (arm()).
// Same discipline as the fault registry (util/fault.hpp): every disarmed
// instrumentation point is one relaxed atomic load and a never-taken branch,
// so the hot paths carry their instrumentation permanently.
//
//   PSCHED_TRACE=trace.json   arm everything; write a Chrome trace-event /
//                             Perfetto JSON file (spans + counter dump) at
//                             process exit — open it in ui.perfetto.dev
//   PSCHED_TRACE=1            arm without an exit file (counters/breakdowns
//                             only; tools print them via --stats)
//
// Counters come in two classes, split in every dump:
//   * deterministic — byte-reproducible at any --jobs level (engine event
//     counts, replans, gap-index probes, fork counts, cache misses, journal
//     appends, store writes): sums of per-cell-deterministic quantities,
//     commutative across lanes.
//   * scheduling — a function of how work landed on threads (pool task
//     counts, queue high-water, cache hit/wait split, retry reissues, peak
//     fork-batch bytes): real, useful, and deliberately excluded from
//     determinism comparisons.
//
// Spans are scoped: construct with a static name, optionally set_arg() under
// an armed() guard (so the disarmed path never allocates), and the
// destructor records a complete event into a per-thread buffer. The span
// hierarchy (campaign > group > sweep > cell > fork-batch / store-write) is
// catalogued in docs/observability.md.
//
// The load-bearing contract, pinned by tests and the CI trace leg: arming
// changes NO result byte — cells.csv is identical, and summary.json is
// identical after stripping the "breakdown" block that only an armed run
// emits. Wall-clock reads live in src/obs/clock.cpp alone.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psched::obs {

/// The counter catalog. Order is the dump order; names and the
/// deterministic/scheduling class live in kCounterInfo (obs.cpp exposes them
/// via counters_snapshot()). Keep docs/observability.md in sync.
enum class Counter : std::size_t {
  // deterministic class
  kEngineEventsDelivered,       ///< sim/engine.cpp: events consumed by run_loop
  kEngineSchedulerInvocations,  ///< sim/engine.cpp: collect_starts batches
  kSchedReplanFull,             ///< core/conservative_scheduler.cpp: full rebuilds
  kSchedReplanIncremental,      ///< core/conservative_scheduler.cpp: incremental attempts
  kGapIndexProbes,              ///< core/profile.cpp: bucket-index probes taken
  kGapIndexSkips,               ///< core/profile.cpp: probe runs long enough to jump
  kGapIndexCreditEarned,        ///< core/profile.cpp: probe credit granted (pre-cap)
  kFstForks,                    ///< sim/policy_fst.cpp: forks taken by the master pass
  kFstForksDrained,             ///< sim/policy_fst.cpp: forks drained to their start
  kFstResolvedFromMaster,       ///< sim/policy_fst.cpp: forks answered without draining
  kExperimentCacheMisses,       ///< sim/experiment.cpp: configs that became the flight
  kJournalAppends,              ///< scenario/journal.cpp: fsynced journal lines
  kStoreAtomicWrites,           ///< util/atomic_file.cpp: atomic_write_file calls
  // scheduling class
  kExperimentCacheHits,         ///< sim/experiment.cpp: served from a Done entry
  kExperimentSingleFlightWaits, ///< sim/experiment.cpp: joined a Running flight
  kPoolTasksLeaf,               ///< util/thread_pool.cpp: leaf chunks enqueued
  kPoolTasksCompound,           ///< util/thread_pool.cpp: compound tasks enqueued
  kPoolQueueDepthHighWater,     ///< util/thread_pool.cpp: max queued tasks (gauge)
  kFstPeakBatchBytes,           ///< sim/policy_fst.cpp: max live fork-batch bytes (gauge)
  kRetryReissues,               ///< util/retry.cpp: I/O ops reissued after a transient
  kCounterCount,                // sentinel
};

inline constexpr std::size_t kCounterCount = static_cast<std::size_t>(Counter::kCounterCount);

namespace detail {
/// Armed flag; false means every count()/record_max()/Span is a single
/// relaxed load + never-taken branch.
extern std::atomic<bool> g_armed;
extern std::array<std::atomic<std::uint64_t>, kCounterCount> g_counters;
}  // namespace detail

inline bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

/// Bump a counter by `n`. Relaxed adds are commutative, so deterministic-class
/// totals are byte-reproducible at any parallelism level.
inline void count(Counter counter, std::uint64_t n = 1) {
  if (!armed()) return;
  detail::g_counters[static_cast<std::size_t>(counter)].fetch_add(n, std::memory_order_relaxed);
}

/// Raise a max-gauge to at least `value` (queue high-water, peak batch bytes).
inline void record_max(Counter counter, std::uint64_t value) {
  if (!armed()) return;
  std::atomic<std::uint64_t>& slot = detail::g_counters[static_cast<std::size_t>(counter)];
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value && !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

/// Scoped trace span. Disarmed: the constructor is one relaxed load and the
/// destructor a dead-branch test. Armed: records a complete event (name, arg,
/// start, duration, stable thread index) into this thread's buffer at scope
/// exit. set_arg() only stores when the span is live — guard any allocating
/// argument build with armed() at the call site.
class Span {
 public:
  explicit Span(const char* name) {
    if (armed()) begin(name);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (active_) end();
  }

  void set_arg(std::string arg) {
    if (active_) arg_ = std::move(arg);
  }

 private:
  void begin(const char* name);
  void end();

  bool active_ = false;
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::string arg_;
};

/// Arm counters + spans process-wide (idempotent). The PSCHED_TRACE
/// environment variable arms at static init; tools arm for --trace/--stats.
void arm();

/// Disarm and zero every counter and span buffer (test isolation).
void reset();

/// Register `path` to receive the trace JSON at process exit (what
/// PSCHED_TRACE=<path> does). An empty path cancels a pending export.
void set_exit_trace_path(const std::string& path);

/// One counter's snapshot row.
struct CounterValue {
  const char* name = "";
  std::uint64_t value = 0;
  bool deterministic = false;
};

/// Snapshot every counter in catalog order (readable disarmed, for deltas).
std::vector<CounterValue> counters_snapshot();

/// Current value of one counter.
std::uint64_t counter_value(Counter counter);

/// Chrome trace-event JSON: {"traceEvents": [...], "counters": {...}}.
/// Loadable in ui.perfetto.dev (unknown top-level keys are ignored there);
/// the "counters" object carries the deterministic/scheduling dump.
void write_trace_json(std::ostream& out);

/// Counter dump alone, as JSON {"deterministic": {...}, "scheduling": {...}}.
void write_counters_json(std::ostream& out);

/// Write the trace JSON to `path` via the atomic store writer. Returns false
/// (with the error on stderr) instead of throwing — traces are diagnostics,
/// losing one must not fail a campaign that already wrote its results.
bool write_trace_file(const std::string& path);

}  // namespace psched::obs
