#pragma once
// Trace characterization: the quantities behind the paper's Tables 1-2 and
// Figures 3-7 (offered load, runtime/width distribution, wall-clock-limit
// over-estimation) computed from any Workload.

#include <array>
#include <vector>

#include "core/categories.hpp"
#include "core/job.hpp"

namespace psched::workload {

using CategoryCounts = std::array<std::array<long long, kLengthCategories>, kWidthCategories>;
using CategoryHours = std::array<std::array<double, kLengthCategories>, kWidthCategories>;

/// Table 1: job count per width x length category.
CategoryCounts category_job_counts(const Workload& workload);

/// Table 2: processor-hours per width x length category.
CategoryHours category_proc_hours(const Workload& workload);

/// Figure 3 (offered half): proc-seconds submitted in each week divided by
/// the machine's weekly capacity. Weeks index from the trace epoch.
std::vector<double> weekly_offered_load(const Workload& workload);

/// Per-job over-estimation factor WCL / runtime (Figures 5-7).
std::vector<double> overestimation_factors(const Workload& workload);

/// Scatter-plot summaries for Figures 4-7: per-log-bin medians/quartiles of
/// y over x. Bins with no samples report count == 0.
struct BinnedSeries {
  std::vector<double> bin_lo;   // x lower edge
  std::vector<double> bin_hi;   // x upper edge
  std::vector<std::size_t> count;
  std::vector<double> median;
  std::vector<double> p25;
  std::vector<double> p75;
};
BinnedSeries binned_median(const std::vector<double>& x, const std::vector<double>& y,
                           double x_lo, double x_hi, std::size_t bins);

/// Fraction of jobs whose runtime exceeds the wall clock limit.
double underestimate_fraction(const Workload& workload);

/// Fraction of jobs whose node count is a power of two.
double power_of_two_fraction(const Workload& workload);

}  // namespace psched::workload
