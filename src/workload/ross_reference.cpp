#include "workload/ross_reference.hpp"

namespace psched::workload {

const CountTable& ross_table1_job_counts() {
  // Columns: 0-15m, 15-60m, 1-4h, 4-8h, 8-16h, 16-24h, 1-2d, 2+d.
  static const CountTable table = {{
      {681, 141, 44, 7, 7, 3, 6, 16},          // 1 node
      {458, 80, 8, 0, 2, 0, 1, 0},             // 2 nodes
      {672, 440, 273, 55, 26, 3, 5, 5},        // 3-4 nodes
      {832, 238, 700, 155, 142, 90, 76, 91},   // 5-8 nodes
      {1032, 131, 347, 206, 260, 141, 205, 160},  // 9-16 nodes
      {917, 608, 113, 72, 67, 53, 116, 160},   // 17-32 nodes
      {879, 130, 134, 70, 79, 48, 130, 178},   // 33-64 nodes
      {494, 72, 78, 31, 49, 24, 53, 76},       // 65-128 nodes
      {447, 127, 9, 5, 12, 1, 3, 10},          // 129-256 nodes
      {147, 24, 6, 3, 1, 0, 0, 1},             // 257-512 nodes
      {51, 18, 1, 0, 0, 0, 0, 0},              // 513+ nodes
  }};
  return table;
}

const HoursTable& ross_table2_proc_hours() {
  static const HoursTable table = {{
      {14, 61, 76, 42, 70, 62, 259, 2883},
      {32, 70, 21, 0, 53, 0, 68, 0},
      {103, 1197, 2210, 1272, 1030, 213, 614, 1310},
      {281, 1101, 10263, 6582, 12107, 14118, 18287, 92549},
      {522, 1102, 12522, 18175, 45859, 42072, 105884, 207496},
      {968, 6870, 6630, 11008, 22031, 28232, 109166, 363944},
      {1775, 2895, 15252, 20429, 48457, 48493, 251748, 986649},
      {1876, 4149, 19125, 17333, 53098, 48296, 179321, 796517},
      {3273, 12395, 4219, 4322, 27041, 5451, 19030, 183949},
      {3719, 4723, 5027, 6850, 3888, 0, 0, 30761},
      {2692, 9503, 0, 3183, 0, 0, 0, 0},
  }};
  return table;
}

long long ross_table1_total_jobs() {
  long long total = 0;
  for (const auto& row : ross_table1_job_counts())
    for (const long long cell : row) total += cell;
  return total;
}

double ross_table2_total_proc_hours() {
  double total = 0.0;
  for (const auto& row : ross_table2_proc_hours())
    for (const double cell : row) total += cell;
  return total;
}

}  // namespace psched::workload
