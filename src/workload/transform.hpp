#pragma once
// Workload transformations: slicing, filtering, rescaling and perturbing
// traces. Used to build sensitivity studies (run a policy on each month of
// the trace, on one user's jobs removed, at 1.2x load, ...) without touching
// the generator.

#include <cstdint>
#include <functional>

#include "core/job.hpp"

namespace psched::workload {

/// Jobs submitted in [from, to); submit times are shifted so the slice
/// starts at 0. Result is normalized.
Workload slice_by_time(const Workload& workload, Time from, Time to);

/// Keep jobs matching the predicate (normalized, ids renumbered).
Workload filter_jobs(const Workload& workload,
                     const std::function<bool(const Job&)>& keep);

/// Multiply every inter-arrival gap by 1/load_factor: load_factor > 1
/// compresses the trace (more offered load per unit time), < 1 stretches it.
/// Runtimes and widths are untouched. load_factor must be > 0.
Workload rescale_load(const Workload& workload, double load_factor);

/// Replace every WCL with runtime * factor (factor >= 1): synthetic accuracy
/// studies (factor == 1 gives perfect estimates).
Workload with_estimate_factor(const Workload& workload, double factor);

/// Randomly drop each job with probability `drop_probability` (seeded) —
/// quick thinning for smoke tests.
Workload thin(const Workload& workload, double drop_probability, std::uint64_t seed);

/// First `count` jobs by submit order (a "head" of the trace).
Workload head(const Workload& workload, std::size_t count);

}  // namespace psched::workload
