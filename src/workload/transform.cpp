#include "workload/transform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace psched::workload {

Workload slice_by_time(const Workload& workload, Time from, Time to) {
  if (from >= to) throw std::invalid_argument("slice_by_time: empty window");
  WorkloadBuilder out;
  out.system_size = workload.system_size;
  for (const Job& job : workload.jobs) {
    if (job.submit < from || job.submit >= to) continue;
    Job copy = job;
    copy.submit -= from;
    out.jobs.push_back(copy);
  }
  out.normalize();
  Workload built = out.build();
  built.validate();
  return built;
}

Workload filter_jobs(const Workload& workload, const std::function<bool(const Job&)>& keep) {
  WorkloadBuilder out;
  out.system_size = workload.system_size;
  for (const Job& job : workload.jobs)
    if (keep(job)) out.jobs.push_back(job);
  out.normalize();
  Workload built = out.build();
  built.validate();
  return built;
}

Workload rescale_load(const Workload& workload, double load_factor) {
  if (!(load_factor > 0.0)) throw std::invalid_argument("rescale_load: factor must be > 0");
  WorkloadBuilder out(workload);
  const Time origin = workload.earliest_submit();
  if (origin == kNoTime) return out.build();
  for (Job& job : out.jobs) {
    const double offset = static_cast<double>(job.submit - origin) / load_factor;
    job.submit = origin + static_cast<Time>(std::llround(offset));
  }
  out.normalize();
  Workload built = out.build();
  built.validate();
  return built;
}

Workload with_estimate_factor(const Workload& workload, double factor) {
  if (factor < 1.0) throw std::invalid_argument("with_estimate_factor: factor must be >= 1");
  WorkloadBuilder out(workload);
  for (Job& job : out.jobs)
    job.wcl = std::max<Time>(1, static_cast<Time>(
        std::llround(static_cast<double>(job.runtime) * factor)));
  Workload built = out.build();
  built.validate();
  return built;
}

Workload thin(const Workload& workload, double drop_probability, std::uint64_t seed) {
  if (drop_probability < 0.0 || drop_probability >= 1.0)
    throw std::invalid_argument("thin: probability must be in [0, 1)");
  util::Rng rng(seed);
  return filter_jobs(workload, [&](const Job&) { return !rng.flip(drop_probability); });
}

Workload head(const Workload& workload, std::size_t count) {
  // A normalized workload's prefix is already sorted and densely numbered, so
  // head is a truncation of the shared job table: a count, not a copy.
  return workload.truncate(std::min(count, workload.jobs.size()));
}

}  // namespace psched::workload
