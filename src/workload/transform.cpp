#include "workload/transform.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace psched::workload {

Workload slice_by_time(const Workload& workload, Time from, Time to) {
  if (from >= to) throw std::invalid_argument("slice_by_time: empty window");
  Workload out;
  out.system_size = workload.system_size;
  for (const Job& job : workload.jobs) {
    if (job.submit < from || job.submit >= to) continue;
    Job copy = job;
    copy.submit -= from;
    out.jobs.push_back(copy);
  }
  out.normalize();
  out.validate();
  return out;
}

Workload filter_jobs(const Workload& workload, const std::function<bool(const Job&)>& keep) {
  Workload out;
  out.system_size = workload.system_size;
  for (const Job& job : workload.jobs)
    if (keep(job)) out.jobs.push_back(job);
  out.normalize();
  out.validate();
  return out;
}

Workload rescale_load(const Workload& workload, double load_factor) {
  if (!(load_factor > 0.0)) throw std::invalid_argument("rescale_load: factor must be > 0");
  Workload out;
  out.system_size = workload.system_size;
  out.jobs = workload.jobs;
  const Time origin = workload.earliest_submit();
  if (origin == kNoTime) return out;
  for (Job& job : out.jobs) {
    const double offset = static_cast<double>(job.submit - origin) / load_factor;
    job.submit = origin + static_cast<Time>(std::llround(offset));
  }
  out.normalize();
  out.validate();
  return out;
}

Workload with_estimate_factor(const Workload& workload, double factor) {
  if (factor < 1.0) throw std::invalid_argument("with_estimate_factor: factor must be >= 1");
  Workload out;
  out.system_size = workload.system_size;
  out.jobs = workload.jobs;
  for (Job& job : out.jobs)
    job.wcl = std::max<Time>(1, static_cast<Time>(
        std::llround(static_cast<double>(job.runtime) * factor)));
  out.validate();
  return out;
}

Workload thin(const Workload& workload, double drop_probability, std::uint64_t seed) {
  if (drop_probability < 0.0 || drop_probability >= 1.0)
    throw std::invalid_argument("thin: probability must be in [0, 1)");
  util::Rng rng(seed);
  return filter_jobs(workload, [&](const Job&) { return !rng.flip(drop_probability); });
}

Workload head(const Workload& workload, std::size_t count) {
  Workload out;
  out.system_size = workload.system_size;
  out.jobs.assign(workload.jobs.begin(),
                  workload.jobs.begin() +
                      static_cast<std::ptrdiff_t>(std::min(count, workload.jobs.size())));
  out.normalize();
  out.validate();
  return out;
}

}  // namespace psched::workload
