#pragma once
// The published characterization of the CPlant/Ross trace (December 01 2002 -
// July 14 2003): Table 1 (job count per width x length category) and Table 2
// (processor-hours per category) of the paper, transcribed verbatim. These
// are both the calibration target of the synthetic generator and the
// reference columns printed by the Table 1/2 experiment binaries.

#include <array>

#include "core/categories.hpp"

namespace psched::workload {

using CountTable = std::array<std::array<long long, kLengthCategories>, kWidthCategories>;
using HoursTable = std::array<std::array<double, kLengthCategories>, kWidthCategories>;

/// Paper Table 1: number of jobs in each length/width category.
const CountTable& ross_table1_job_counts();

/// Paper Table 2: processor-hours in each length/width category.
const HoursTable& ross_table2_proc_hours();

/// Sum over all cells of Table 1 (13,236; the paper's headline 13,614 jobs
/// include records excluded from the categorized tables).
long long ross_table1_total_jobs();

/// Sum over all cells of Table 2 in processor-hours.
double ross_table2_total_proc_hours();

/// Trace span: 231 days (December 01 2002 through July 14 2003).
inline constexpr Time kRossTraceDays = 231;
inline constexpr Time kRossTraceSpan = days(kRossTraceDays);

/// Machine size used throughout the reproduction. The paper does not state
/// Ross's usable partition size; 1,524 nodes (the size the workload archive later published for Ross) puts the Table 2 totals at an
/// average offered load of ~47% with bursty weeks well above 100% (Figure 3),
/// keeps the 513-1024 node jobs of Table 1 below full-machine width (so they
/// are hard to place but do not force complete drains), and lands the
/// baseline loss-of-capacity in the paper's 8-13% band.
inline constexpr NodeCount kRossSystemSize = 1524;

}  // namespace psched::workload
