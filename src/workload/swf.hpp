#pragma once
// Standard Workload Format (SWF) version 2 reader/writer — the trace format
// of the Feitelson workload archive and the input format of the paper's
// simulator (section 3.1). Fields we do not model (memory, CPU time, queue,
// partition, dependencies) are written as -1 and ignored on read.
//
// Status semantics (SWF field 11): 1 = completed, 0 = failed, 5 = cancelled
// before start, 2/3/4 = partial executions of a checkpointed job, -1 =
// unknown/missing. Real archive traces mix all of these; only completed (and
// status-less) records describe work the machine actually did, so the reader
// filters on status by default — see SwfReadOptions::accepted_statuses.
// Cancelled/failed records often still carry plausible runtimes, which is why
// ingesting them silently corrupts utilization and fairness numbers.
//
// Two ingestion paths share one line-level parsing core (SwfStreamReader),
// so both carry the same error discipline — malformed numeric fields are
// rejected with "<origin>:<line>: ..." messages:
//   read_swf            eager: materializes the whole trace, then normalizes.
//   read_swf_streaming  chunked scan; with `head` > 0 it keeps only the
//                       first `head` arrivals, so peak memory is
//                       O(head + chunk) instead of O(trace).

#include <iosfwd>
#include <string>
#include <vector>

#include "core/job.hpp"

namespace psched::workload {

struct SwfReadOptions {
  /// Drop records whose runtime or node count is non-positive (failed jobs
  /// in real traces). When false such records throw.
  bool skip_invalid = true;
  /// Use requested processors when the allocated field is missing (<= 0).
  bool fallback_to_requested = true;
  /// When the requested-time (WCL) field is missing, substitute the runtime.
  bool fallback_wcl_to_runtime = true;
  /// Status codes (SWF field 11) to ingest. Default: completed jobs plus the
  /// -1 "unknown" sentinel (traces without status information). Records with
  /// any other status are dropped and counted in
  /// SwfReadResult::filtered_records. An empty list disables status
  /// filtering entirely (every status is accepted).
  std::vector<long long> accepted_statuses = {1, -1};
};

/// How workload.system_size was chosen (see read_swf's sizing rules).
enum class SwfSizing {
  Explicit,     ///< caller passed system_size > 0
  HeaderNodes,  ///< SWF header MaxNodes won
  HeaderProcs,  ///< SWF header MaxProcs won (SMP traces)
  WidestJob,    ///< header absent/understated; widest ingested job is the floor
  Fallback,     ///< empty trace, no header: sized 1
};

struct SwfReadResult {
  Workload workload;
  std::size_t total_records = 0;
  /// Records dropped as malformed/invalid (see SwfReadOptions::skip_invalid).
  std::size_t skipped_records = 0;
  /// Records dropped by the status filter (accepted_statuses).
  std::size_t filtered_records = 0;

  // Machine-sizing inputs and the decision, so CLIs can show archive-replay
  // users where the node count came from instead of a bare number.
  NodeCount header_max_nodes = 0;  ///< SWF header MaxNodes (0 = absent)
  NodeCount header_max_procs = 0;  ///< SWF header MaxProcs (0 = absent)
  NodeCount widest_job = 0;        ///< widest ingested job (post filtering)
  SwfSizing sizing = SwfSizing::Fallback;

  /// "1524 nodes (SWF header MaxProcs; MaxNodes 320, widest job 1024)" style
  /// one-liner for CLI banners.
  std::string describe_sizing() const;
};

/// Incremental SWF record puller: the line-level parsing core both readers
/// are built on. Pulls records in caller-sized chunks so peak memory is the
/// caller's choice, and carries line numbers so every rejection points at
/// the offending trace line.
///
/// Error discipline: a numeric field too wide for its type throws
/// std::runtime_error("<origin>:<line>: SWF field N out of range: ...");
/// an invalid record with skip_invalid == false throws std::invalid_argument
/// with the same "<origin>:<line>" prefix. A token that is not numeric at
/// all ends the record's field list (matching classic istream extraction),
/// and a line with fewer than 9 parsed fields counts as skipped noise.
class SwfStreamReader {
 public:
  /// The stream must outlive the reader. `origin` labels error messages
  /// (pass the file path when reading from a file).
  explicit SwfStreamReader(std::istream& in, SwfReadOptions options = {},
                           std::string origin = "swf");

  /// Appends up to `max_records` ingested jobs (ids unassigned — normalize
  /// renumbers) to `out`; returns the count appended. 0 means end of stream.
  std::size_t read_chunk(std::vector<Job>& out, std::size_t max_records);
  bool done() const { return done_; }

  /// 1-based number of the last line read.
  std::size_t line() const { return line_; }

  // Counters over everything scanned so far; final once done().
  std::size_t total_records() const { return total_records_; }
  std::size_t skipped_records() const { return skipped_records_; }
  std::size_t filtered_records() const { return filtered_records_; }
  NodeCount header_max_nodes() const { return header_max_nodes_; }
  NodeCount header_max_procs() const { return header_max_procs_; }
  NodeCount widest_job() const { return widest_job_; }

 private:
  bool next_job(Job& out);

  std::istream& in_;
  SwfReadOptions options_;
  std::string origin_;
  bool done_ = false;
  std::size_t line_ = 0;
  std::size_t total_records_ = 0;
  std::size_t skipped_records_ = 0;
  std::size_t filtered_records_ = 0;
  NodeCount header_max_nodes_ = 0;
  NodeCount header_max_procs_ = 0;
  NodeCount widest_job_ = 0;
};

/// Parse an SWF stream eagerly. `system_size` <= 0 derives the machine size
/// as max(MaxNodes, MaxProcs, widest job). Job widths are processor counts
/// (SWF AllocatedProcs), so on SMP traces MaxProcs — not MaxNodes — is the
/// matching unit, and the widest-job floor guards against understated
/// headers. An explicit `system_size` is taken as-is; jobs wider than it
/// make validate() throw.
SwfReadResult read_swf(std::istream& in, NodeCount system_size = 0,
                       const SwfReadOptions& options = {}, const std::string& origin = "swf");
SwfReadResult read_swf_file(const std::string& path, NodeCount system_size = 0,
                            const SwfReadOptions& options = {});

/// Chunked scan of an SWF stream. With `head` > 0, only the first `head`
/// arrivals — smallest (submit, ingest order), exactly the prefix the eager
/// path's normalize + head would keep — are retained, bounding peak memory
/// at O(head + chunk) while counters, sizing, and widest-job provenance are
/// still computed over the full trace. The returned SwfReadResult is
/// byte-for-byte identical to the eager path followed by head truncation.
SwfReadResult read_swf_streaming(std::istream& in, NodeCount system_size = 0,
                                 const SwfReadOptions& options = {}, std::size_t head = 0,
                                 const std::string& origin = "swf");
SwfReadResult read_swf_file_streaming(const std::string& path, NodeCount system_size = 0,
                                      const SwfReadOptions& options = {}, std::size_t head = 0);

/// Serialize a workload as SWF V2 with a descriptive header.
void write_swf(std::ostream& out, const Workload& workload,
               const std::string& comment = "synthetic CPlant/Ross workload");
void write_swf_file(const std::string& path, const Workload& workload,
                    const std::string& comment = "synthetic CPlant/Ross workload");

}  // namespace psched::workload
