#pragma once
// Standard Workload Format (SWF) version 2 reader/writer — the trace format
// of the Feitelson workload archive and the input format of the paper's
// simulator (section 3.1). Fields we do not model (memory, CPU time, queue,
// partition, dependencies) are written as -1 and ignored on read.

#include <iosfwd>
#include <string>

#include "core/job.hpp"

namespace psched::workload {

struct SwfReadOptions {
  /// Drop records whose runtime or node count is non-positive (failed jobs
  /// in real traces). When false such records throw.
  bool skip_invalid = true;
  /// Use requested processors when the allocated field is missing (<= 0).
  bool fallback_to_requested = true;
  /// When the requested-time (WCL) field is missing, substitute the runtime.
  bool fallback_wcl_to_runtime = true;
};

struct SwfReadResult {
  Workload workload;
  std::size_t total_records = 0;
  std::size_t skipped_records = 0;
};

/// Parse an SWF stream. `system_size` <= 0 takes MaxProcs/MaxNodes from the
/// header comments, or the widest job if absent.
SwfReadResult read_swf(std::istream& in, NodeCount system_size = 0,
                       const SwfReadOptions& options = {});
SwfReadResult read_swf_file(const std::string& path, NodeCount system_size = 0,
                            const SwfReadOptions& options = {});

/// Serialize a workload as SWF V2 with a descriptive header.
void write_swf(std::ostream& out, const Workload& workload,
               const std::string& comment = "synthetic CPlant/Ross workload");
void write_swf_file(const std::string& path, const Workload& workload,
                    const std::string& comment = "synthetic CPlant/Ross workload");

}  // namespace psched::workload
