#pragma once
// Standard Workload Format (SWF) version 2 reader/writer — the trace format
// of the Feitelson workload archive and the input format of the paper's
// simulator (section 3.1). Fields we do not model (memory, CPU time, queue,
// partition, dependencies) are written as -1 and ignored on read.
//
// Status semantics (SWF field 11): 1 = completed, 0 = failed, 5 = cancelled
// before start, 2/3/4 = partial executions of a checkpointed job, -1 =
// unknown/missing. Real archive traces mix all of these; only completed (and
// status-less) records describe work the machine actually did, so the reader
// filters on status by default — see SwfReadOptions::accepted_statuses.
// Cancelled/failed records often still carry plausible runtimes, which is why
// ingesting them silently corrupts utilization and fairness numbers.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/job.hpp"

namespace psched::workload {

struct SwfReadOptions {
  /// Drop records whose runtime or node count is non-positive (failed jobs
  /// in real traces). When false such records throw.
  bool skip_invalid = true;
  /// Use requested processors when the allocated field is missing (<= 0).
  bool fallback_to_requested = true;
  /// When the requested-time (WCL) field is missing, substitute the runtime.
  bool fallback_wcl_to_runtime = true;
  /// Status codes (SWF field 11) to ingest. Default: completed jobs plus the
  /// -1 "unknown" sentinel (traces without status information). Records with
  /// any other status are dropped and counted in
  /// SwfReadResult::filtered_records. An empty list disables status
  /// filtering entirely (every status is accepted).
  std::vector<long long> accepted_statuses = {1, -1};
};

/// How workload.system_size was chosen (see read_swf's sizing rules).
enum class SwfSizing {
  Explicit,     ///< caller passed system_size > 0
  HeaderNodes,  ///< SWF header MaxNodes won
  HeaderProcs,  ///< SWF header MaxProcs won (SMP traces)
  WidestJob,    ///< header absent/understated; widest ingested job is the floor
  Fallback,     ///< empty trace, no header: sized 1
};

struct SwfReadResult {
  Workload workload;
  std::size_t total_records = 0;
  /// Records dropped as malformed/invalid (see SwfReadOptions::skip_invalid).
  std::size_t skipped_records = 0;
  /// Records dropped by the status filter (accepted_statuses).
  std::size_t filtered_records = 0;

  // Machine-sizing inputs and the decision, so CLIs can show archive-replay
  // users where the node count came from instead of a bare number.
  NodeCount header_max_nodes = 0;  ///< SWF header MaxNodes (0 = absent)
  NodeCount header_max_procs = 0;  ///< SWF header MaxProcs (0 = absent)
  NodeCount widest_job = 0;        ///< widest ingested job (post filtering)
  SwfSizing sizing = SwfSizing::Fallback;

  /// "1524 nodes (SWF header MaxProcs; MaxNodes 320, widest job 1024)" style
  /// one-liner for CLI banners.
  std::string describe_sizing() const;
};

/// Parse an SWF stream. `system_size` <= 0 derives the machine size as
/// max(MaxNodes, MaxProcs, widest job). Job widths are processor counts
/// (SWF AllocatedProcs), so on SMP traces MaxProcs — not MaxNodes — is the
/// matching unit, and the widest-job floor guards against understated
/// headers. An explicit `system_size` is taken as-is; jobs wider than it
/// make validate() throw.
SwfReadResult read_swf(std::istream& in, NodeCount system_size = 0,
                       const SwfReadOptions& options = {});
SwfReadResult read_swf_file(const std::string& path, NodeCount system_size = 0,
                            const SwfReadOptions& options = {});

/// Serialize a workload as SWF V2 with a descriptive header.
void write_swf(std::ostream& out, const Workload& workload,
               const std::string& comment = "synthetic CPlant/Ross workload");
void write_swf_file(const std::string& path, const Workload& workload,
                    const std::string& comment = "synthetic CPlant/Ross workload");

}  // namespace psched::workload
