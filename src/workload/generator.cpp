#include "workload/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/categories.hpp"
#include "util/rng.hpp"

namespace psched::workload {

namespace {

using util::Rng;

/// Node-count sampler for one width category: powers of two dominate
/// (Figure 4), the rest spread across the bin.
NodeCount sample_nodes(Rng& rng, int width_cat, NodeCount system_size) {
  const WidthBounds bounds = width_category_bounds(width_cat, system_size);
  const NodeCount lo = bounds.lo;
  const NodeCount hi = std::min(bounds.hi, system_size);
  if (lo >= hi) return lo;
  const double roll = rng.uniform01();
  if (roll < 0.55) {
    // Largest power of two in the bin (bins are (2^k, 2^{k+1}] above 4).
    NodeCount p = 1;
    while (p * 2 <= hi) p *= 2;
    if (p >= lo) return p;
  } else if (roll < 0.70) {
    // Squares and halves users also favour: midpoint-ish round values.
    const NodeCount mid = lo + (hi - lo) / 2;
    return mid;
  }
  return static_cast<NodeCount>(rng.uniform_int(lo, hi));
}

/// Runtime sampler within a length category (log-uniform; the open-ended
/// 2+ days bin is capped by config.longest_runtime).
Time sample_runtime(Rng& rng, int length_cat, Time longest_runtime) {
  const LengthBounds bounds = length_category_bounds(length_cat);
  const Time lo = std::max<Time>(bounds.lo, 30);  // nothing below 30 s
  const Time hi = length_cat == kLengthCategories - 1 ? longest_runtime : bounds.hi - 1;
  if (lo >= hi) return lo;
  const double r = rng.log_uniform(static_cast<double>(lo), static_cast<double>(hi));
  return std::clamp(static_cast<Time>(std::llround(r)), lo, hi);
}

/// Clamp helper keeping a runtime inside its length category.
Time clamp_to_length_bin(Time runtime, int length_cat, Time longest_runtime) {
  const LengthBounds bounds = length_category_bounds(length_cat);
  const Time lo = std::max<Time>(bounds.lo, 30);
  const Time hi = length_cat == kLengthCategories - 1 ? longest_runtime : bounds.hi - 1;
  return std::clamp(runtime, lo, hi);
}

/// "Standard" wall-clock-limit values users type into qsub.
constexpr std::array<Time, 17> kWclGrid = {
    minutes(5),  minutes(10), minutes(15), minutes(30), hours(1),  hours(2),  hours(4),
    hours(8),    hours(12),   hours(24),   hours(36),   hours(48), hours(72), hours(96),
    days(7),     days(14),    days(35)};

Time round_up_to_grid(Time value) {
  for (const Time grid : kWclGrid)
    if (grid >= value) return grid;
  return kWclGrid.back();
}

/// Diurnal weights for the 24 hours of a day (business hours heavier).
std::array<double, 24> diurnal_weights(double business_weight) {
  std::array<double, 24> w{};
  for (int h = 0; h < 24; ++h) {
    const bool business = h >= 8 && h < 18;
    const bool evening = (h >= 18 && h < 23) || h == 7;
    w[static_cast<std::size_t>(h)] = business ? business_weight : (evening ? 1.3 : 1.0);
  }
  return w;
}

struct UserModel {
  std::vector<double> activity;           // Zipf activity per user
  std::vector<double> home_width;         // preferred width category per user
};

UserModel build_users(Rng& rng, const GeneratorConfig& cfg) {
  UserModel model;
  model.activity = util::zipf_weights(static_cast<std::size_t>(cfg.user_count), cfg.zipf_exponent);
  model.home_width.resize(static_cast<std::size_t>(cfg.user_count));
  for (double& home : model.home_width)
    home = rng.uniform_real(0.0, static_cast<double>(kWidthCategories));
  return model;
}

UserId pick_user(Rng& rng, const UserModel& model, const GeneratorConfig& cfg, int width_cat) {
  std::vector<double> weights(model.activity.size());
  for (std::size_t u = 0; u < weights.size(); ++u) {
    const double distance = std::abs(model.home_width[u] - (static_cast<double>(width_cat) + 0.5));
    const double affinity = std::exp(-cfg.width_affinity * distance);
    weights[u] = model.activity[u] * affinity;
  }
  return static_cast<UserId>(rng.categorical(weights));
}

/// Weekly intensity profile. Figure 3 shows a *bimodal* pattern: many weeks
/// with offered load well above 100% and stretches of much lighter weeks
/// ("users submit fewer jobs due to the extremely high queue lengths"), so
/// the profile is a busy/light Markov chain modulated by lognormal AR(1)
/// noise with negative autocorrelation (heavy weeks tend to be followed by
/// lighter ones).
std::vector<double> weekly_weights(Rng& rng, const GeneratorConfig& cfg, std::size_t n_weeks) {
  std::vector<double> weights(n_weeks);
  double x = 0.0;
  bool busy = rng.flip(cfg.busy_week_fraction);
  for (std::size_t w = 0; w < n_weeks; ++w) {
    x = cfg.week_autocorr * x + rng.normal(0.0, cfg.week_sigma);
    weights[w] = std::exp(x) * (busy ? cfg.busy_week_boost : 1.0);
    // Markov transition keeps busy/light phases a few weeks long on average.
    const double stay = busy ? cfg.busy_week_persistence : 1.0 - cfg.busy_week_fraction;
    if (!rng.flip(stay)) busy = !busy;
  }
  return weights;
}

Time sample_submit(Rng& rng, const GeneratorConfig& cfg, const std::vector<double>& week_w,
                   const std::array<double, 24>& hour_w) {
  const std::size_t week = rng.categorical(week_w);
  // Day of week: weekdays heavier.
  std::array<double, 7> day_w;
  for (std::size_t d = 0; d < 7; ++d) day_w[d] = d < 5 ? cfg.weekday_weight : 1.0;
  const std::size_t day = rng.categorical(day_w);
  const std::size_t hour = rng.categorical(hour_w);
  const Time within_hour = rng.uniform_int(0, util::kSecondsPerHour - 1);
  Time submit = static_cast<Time>(week) * util::kSecondsPerWeek +
                static_cast<Time>(day) * util::kSecondsPerDay +
                static_cast<Time>(hour) * util::kSecondsPerHour + within_hour;
  return std::min(submit, cfg.span - 1);
}

Time sample_wcl(Rng& rng, const GeneratorConfig& cfg, Time runtime) {
  if (rng.flip(cfg.underestimate_prob)) {
    // Job ran past its limit (allowed on CPlant when nodes are idle) or was
    // recorded with a stale limit: WCL below the actual runtime.
    const double frac = rng.uniform_real(0.30, 0.95);
    return std::max<Time>(60, static_cast<Time>(std::llround(static_cast<double>(runtime) * frac)));
  }
  const double log_runtime = std::log10(std::max<double>(1.0, static_cast<double>(runtime)));
  const double mean_log_factor =
      std::max(cfg.wcl_min_log_mean, cfg.wcl_log_mean_a - cfg.wcl_log_mean_b * log_runtime);
  const double log_factor = rng.exponential(mean_log_factor);
  const double factor = std::pow(10.0, std::min(log_factor, 6.0));
  Time wcl = static_cast<Time>(std::llround(static_cast<double>(runtime) * factor));
  wcl = std::clamp<Time>(wcl, runtime, cfg.wcl_cap);
  if (rng.flip(cfg.wcl_round_to_grid_prob)) wcl = std::max(runtime, round_up_to_grid(wcl));
  return std::min(wcl, cfg.wcl_cap);
}

}  // namespace

Workload generate_ross_workload(const GeneratorConfig& cfg) {
  if (cfg.system_size <= 0) throw std::invalid_argument("generator: system_size must be positive");
  if (cfg.span <= 0) throw std::invalid_argument("generator: span must be positive");
  if (cfg.user_count <= 0) throw std::invalid_argument("generator: user_count must be positive");

  Rng rng(cfg.seed);
  const UserModel users = build_users(rng, cfg);
  const auto n_weeks = static_cast<std::size_t>((cfg.span + util::kSecondsPerWeek - 1) /
                                                util::kSecondsPerWeek);
  const std::vector<double> week_w = weekly_weights(rng, cfg, n_weeks);
  const std::array<double, 24> hour_w = diurnal_weights(cfg.business_hours_weight);

  const CountTable& counts = ross_table1_job_counts();
  const HoursTable& hours_target = ross_table2_proc_hours();

  WorkloadBuilder workload;
  workload.system_size = cfg.system_size;

  for (int w = 0; w < kWidthCategories; ++w) {
    for (int l = 0; l < kLengthCategories; ++l) {
      const auto wi = static_cast<std::size_t>(w);
      const auto li = static_cast<std::size_t>(l);
      const auto cell_count = static_cast<long long>(
          std::llround(static_cast<double>(counts[wi][li]) * cfg.count_scale));
      if (cell_count <= 0) continue;

      // Sample widths and provisional runtimes for the whole cell.
      std::vector<NodeCount> nodes(static_cast<std::size_t>(cell_count));
      std::vector<Time> runtimes(static_cast<std::size_t>(cell_count));
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        nodes[i] = sample_nodes(rng, w, cfg.system_size);
        runtimes[i] = sample_runtime(rng, l, cfg.longest_runtime);
      }

      // Calibrate the cell's processor-hours toward Table 2 by iteratively
      // rescaling runtimes inside the bin bounds (clamping caps convergence,
      // so run a few passes).
      const double target_proc_seconds = hours_target[wi][li] * 3600.0 * cfg.count_scale;
      if (target_proc_seconds > 0.0) {
        for (int pass = 0; pass < 6; ++pass) {
          double current = 0.0;
          for (std::size_t i = 0; i < nodes.size(); ++i)
            current += static_cast<double>(nodes[i]) * static_cast<double>(runtimes[i]);
          if (current <= 0.0) break;
          const double scale = target_proc_seconds / current;
          if (std::abs(scale - 1.0) < 0.01) break;
          for (std::size_t i = 0; i < runtimes.size(); ++i) {
            const auto scaled = static_cast<Time>(
                std::llround(static_cast<double>(runtimes[i]) * scale));
            runtimes[i] = clamp_to_length_bin(scaled, l, cfg.longest_runtime);
          }
        }
      }

      for (std::size_t i = 0; i < nodes.size(); ++i) {
        Job job;
        job.nodes = nodes[i];
        job.runtime = runtimes[i];
        job.user = pick_user(rng, users, cfg, w);
        job.group = job.user % cfg.group_count;
        job.submit = sample_submit(rng, cfg, week_w, hour_w);
        job.wcl = sample_wcl(rng, cfg, job.runtime);
        workload.jobs.push_back(job);
      }
    }
  }

  workload.normalize();
  Workload built = workload.build();
  built.validate();
  return built;
}

Workload generate_small_workload(std::uint64_t seed, std::size_t jobs, NodeCount system_size,
                                 Time span, std::int32_t user_count) {
  if (system_size <= 0 || span <= 0 || user_count <= 0)
    throw std::invalid_argument("generate_small_workload: bad parameters");
  Rng rng(seed);
  WorkloadBuilder workload;
  workload.system_size = system_size;
  for (std::size_t i = 0; i < jobs; ++i) {
    Job job;
    job.submit = rng.uniform_int(0, span - 1);
    job.nodes = static_cast<NodeCount>(std::clamp<double>(
        rng.log_uniform(1.0, static_cast<double>(system_size)), 1.0,
        static_cast<double>(system_size)));
    job.runtime = static_cast<Time>(rng.log_uniform(60.0, static_cast<double>(hours(30))));
    const double factor = 1.0 + rng.exponential(1.5);
    job.wcl = static_cast<Time>(static_cast<double>(job.runtime) * factor);
    job.user = static_cast<UserId>(rng.uniform_int(0, user_count - 1));
    job.group = job.user % 4;
    workload.jobs.push_back(job);
  }
  workload.normalize();
  Workload built = workload.build();
  built.validate();
  return built;
}

}  // namespace psched::workload
