#include "workload/swf.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace psched::workload {

namespace {
// SWF field indices (0-based) within an 18-field record.
enum SwfField : std::size_t {
  kJobNumber = 0,
  kSubmit = 1,
  kWait = 2,
  kRuntime = 3,
  kAllocatedProcs = 4,
  kAvgCpu = 5,
  kUsedMemory = 6,
  kRequestedProcs = 7,
  kRequestedTime = 8,
  kRequestedMemory = 9,
  kStatus = 10,
  kUserId = 11,
  kGroupId = 12,
  kExecutable = 13,
  kQueue = 14,
  kPartition = 15,
  kPrecedingJob = 16,
  kThinkTime = 17,
  kFieldCount = 18,
};

bool parse_header_int(const std::string& line, const std::string& key, long long& out) {
  const auto pos = line.find(key);
  if (pos == std::string::npos) return false;
  const auto colon = line.find(':', pos);
  if (colon == std::string::npos) return false;
  try {
    out = std::stoll(line.substr(colon + 1));
    return true;
  } catch (...) {
    return false;
  }
}
}  // namespace

SwfReadResult read_swf(std::istream& in, NodeCount system_size, const SwfReadOptions& options) {
  SwfReadResult result;
  NodeCount header_nodes = 0;
  NodeCount header_procs = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == ';') {
      long long value = 0;
      if (parse_header_int(line, "MaxNodes", value))
        header_nodes = std::max(header_nodes, static_cast<NodeCount>(value));
      else if (parse_header_int(line, "MaxProcs", value))
        header_procs = std::max(header_procs, static_cast<NodeCount>(value));
      continue;
    }
    std::istringstream fields(line);
    std::array<long long, kFieldCount> f{};
    f.fill(-1);
    std::size_t n = 0;
    while (n < kFieldCount && (fields >> f[n])) ++n;
    if (n < kRequestedTime + 1 && n < kFieldCount) {
      // Too few fields to be a record; count as skipped noise.
      ++result.total_records;
      ++result.skipped_records;
      continue;
    }
    ++result.total_records;

    // Status filter first: a cancelled/failed record is not malformed, it
    // describes work that never (fully) ran, so it must not fall through to
    // the invalid-record accounting below.
    if (!options.accepted_statuses.empty() &&
        std::find(options.accepted_statuses.begin(), options.accepted_statuses.end(),
                  f[kStatus]) == options.accepted_statuses.end()) {
      ++result.filtered_records;
      continue;
    }

    Job job;
    job.submit = static_cast<Time>(std::max<long long>(0, f[kSubmit]));
    job.runtime = static_cast<Time>(f[kRuntime]);
    long long procs = f[kAllocatedProcs];
    if (procs <= 0 && options.fallback_to_requested) procs = f[kRequestedProcs];
    job.nodes = static_cast<NodeCount>(procs);
    job.wcl = static_cast<Time>(f[kRequestedTime]);
    if (job.wcl <= 0 && options.fallback_wcl_to_runtime) job.wcl = job.runtime;
    job.user = static_cast<UserId>(std::max<long long>(0, f[kUserId]));
    job.group = static_cast<GroupId>(std::max<long long>(0, f[kGroupId]));

    if (job.runtime <= 0 || job.nodes <= 0 || job.wcl <= 0) {
      if (options.skip_invalid) {
        ++result.skipped_records;
        continue;
      }
      throw std::invalid_argument("read_swf: invalid record: " + line);
    }
    result.workload.jobs.push_back(job);
  }

  NodeCount widest = 0;
  for (const Job& job : result.workload.jobs) widest = std::max(widest, job.nodes);
  result.header_max_nodes = header_nodes;
  result.header_max_procs = header_procs;
  result.widest_job = widest;
  // Job widths come from the AllocatedProcs/RequestedProcs fields, i.e. they
  // are PROCESSOR counts, so the machine must be sized in the same unit: on
  // SMP traces (MaxProcs >> MaxNodes) sizing by MaxNodes would reject — or
  // silently overload — jobs wider than the node count. The widest ingested
  // job is additionally a floor, so an understated or truncated header can
  // never make validate() reject work the traced machine actually ran.
  const NodeCount header_size = std::max(header_nodes, header_procs);
  if (system_size > 0) {
    result.workload.system_size = system_size;
    result.sizing = SwfSizing::Explicit;
  } else if (header_size >= widest && header_size > 0) {
    result.workload.system_size = header_size;
    result.sizing =
        header_procs > header_nodes ? SwfSizing::HeaderProcs : SwfSizing::HeaderNodes;
  } else if (widest > 0) {
    result.workload.system_size = widest;
    result.sizing = SwfSizing::WidestJob;
  } else {
    result.workload.system_size = 1;
    result.sizing = SwfSizing::Fallback;
  }
  result.workload.normalize();
  result.workload.validate();
  return result;
}

std::string SwfReadResult::describe_sizing() const {
  std::string out = std::to_string(workload.system_size) + " nodes (";
  switch (sizing) {
    case SwfSizing::Explicit:
      out += "explicit --system-size";
      break;
    case SwfSizing::HeaderNodes:
      out += "SWF header MaxNodes";
      break;
    case SwfSizing::HeaderProcs:
      out += "SWF header MaxProcs";
      break;
    case SwfSizing::WidestJob:
      out += "widest job; header absent or understated";
      break;
    case SwfSizing::Fallback:
      out += "empty trace, no header";
      break;
  }
  out += "; MaxNodes " + std::to_string(header_max_nodes) + ", MaxProcs " +
         std::to_string(header_max_procs) + ", widest job " + std::to_string(widest_job) + ")";
  return out;
}

SwfReadResult read_swf_file(const std::string& path, NodeCount system_size,
                            const SwfReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_swf_file: cannot open " + path);
  return read_swf(in, system_size, options);
}

void write_swf(std::ostream& out, const Workload& workload, const std::string& comment) {
  out << "; SWF V2 trace written by cplant-sched\n";
  out << "; Comment: " << comment << '\n';
  out << "; MaxNodes: " << workload.system_size << '\n';
  out << "; MaxProcs: " << workload.system_size << '\n';
  out << "; MaxJobs: " << workload.jobs.size() << '\n';
  out << "; Note: unused SWF fields are -1\n";
  for (const Job& job : workload.jobs) {
    out << job.id + 1       // SWF job numbers are 1-based
        << ' ' << job.submit
        << ' ' << -1        // wait time: a scheduling outcome, not trace data
        << ' ' << job.runtime
        << ' ' << job.nodes
        << ' ' << -1 << ' ' << -1  // avg cpu, used memory
        << ' ' << job.nodes
        << ' ' << job.wcl
        << ' ' << -1        // requested memory
        << ' ' << 1         // status: completed
        << ' ' << job.user
        << ' ' << job.group
        << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << '\n';
  }
}

void write_swf_file(const std::string& path, const Workload& workload, const std::string& comment) {
  // psched-lint: allow(raw-file-write): trace export utility, not a campaign
  // results store — the caller owns the path and durability expectations
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_swf_file: cannot open " + path);
  write_swf(out, workload, comment);
}

}  // namespace psched::workload
