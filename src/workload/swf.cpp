#include "workload/swf.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/fault.hpp"
#include "util/retry.hpp"

namespace psched::workload {

namespace {
// SWF field indices (0-based) within an 18-field record.
enum SwfField : std::size_t {
  kJobNumber = 0,
  kSubmit = 1,
  kWait = 2,
  kRuntime = 3,
  kAllocatedProcs = 4,
  kAvgCpu = 5,
  kUsedMemory = 6,
  kRequestedProcs = 7,
  kRequestedTime = 8,
  kRequestedMemory = 9,
  kStatus = 10,
  kUserId = 11,
  kGroupId = 12,
  kExecutable = 13,
  kQueue = 14,
  kPartition = 15,
  kPrecedingJob = 16,
  kThinkTime = 17,
  kFieldCount = 18,
};

/// Records pulled per read_chunk call by the whole-trace loops below: big
/// enough to amortize call overhead, small enough that a chunk is noise next
/// to the head-selection buffer.
constexpr std::size_t kIngestChunk = 4096;

bool parse_header_int(const std::string& line, const std::string& key, long long& out) {
  const auto pos = line.find(key);
  if (pos == std::string::npos) return false;
  const auto colon = line.find(':', pos);
  if (colon == std::string::npos) return false;
  try {
    out = std::stoll(line.substr(colon + 1));
    return true;
  } catch (...) {
    return false;
  }
}

/// Shared tail of both readers: counters, machine sizing, normalize+validate.
SwfReadResult finish_read(const SwfStreamReader& reader, WorkloadBuilder&& builder,
                          NodeCount system_size) {
  SwfReadResult result;
  result.total_records = reader.total_records();
  result.skipped_records = reader.skipped_records();
  result.filtered_records = reader.filtered_records();

  const NodeCount header_nodes = reader.header_max_nodes();
  const NodeCount header_procs = reader.header_max_procs();
  const NodeCount widest = reader.widest_job();
  result.header_max_nodes = header_nodes;
  result.header_max_procs = header_procs;
  result.widest_job = widest;
  // Job widths come from the AllocatedProcs/RequestedProcs fields, i.e. they
  // are PROCESSOR counts, so the machine must be sized in the same unit: on
  // SMP traces (MaxProcs >> MaxNodes) sizing by MaxNodes would reject — or
  // silently overload — jobs wider than the node count. The widest ingested
  // job is additionally a floor, so an understated or truncated header can
  // never make validate() reject work the traced machine actually ran.
  const NodeCount header_size = std::max(header_nodes, header_procs);
  if (system_size > 0) {
    builder.system_size = system_size;
    result.sizing = SwfSizing::Explicit;
  } else if (header_size >= widest && header_size > 0) {
    builder.system_size = header_size;
    result.sizing =
        header_procs > header_nodes ? SwfSizing::HeaderProcs : SwfSizing::HeaderNodes;
  } else if (widest > 0) {
    builder.system_size = widest;
    result.sizing = SwfSizing::WidestJob;
  } else {
    builder.system_size = 1;
    result.sizing = SwfSizing::Fallback;
  }
  builder.normalize();
  result.workload = builder.build();
  result.workload.validate();
  return result;
}
}  // namespace

SwfStreamReader::SwfStreamReader(std::istream& in, SwfReadOptions options, std::string origin)
    : in_(in), options_(std::move(options)), origin_(std::move(origin)) {}

bool SwfStreamReader::next_job(Job& out) {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    // Shared read loop of both the eager and streaming readers; a transient
    // injected failure retries, a permanent one surfaces with the trace
    // position so the operator can see how far ingestion got.
    const int read_err = util::retry_io([] { return PSCHED_FAULT("swf.read.line"); });
    if (read_err != 0)
      throw std::runtime_error(origin_ + ":" + std::to_string(line_) +
                               ": read failed: " + std::strerror(read_err));
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF traces
    if (line.empty()) continue;
    if (line[0] == ';') {
      long long value = 0;
      if (parse_header_int(line, "MaxNodes", value))
        header_max_nodes_ = std::max(header_max_nodes_, static_cast<NodeCount>(value));
      else if (parse_header_int(line, "MaxProcs", value))
        header_max_procs_ = std::max(header_max_procs_, static_cast<NodeCount>(value));
      continue;
    }

    std::array<long long, kFieldCount> f{};
    f.fill(-1);
    std::size_t n = 0;
    const char* cursor = line.c_str();
    const char* const end = cursor + line.size();
    while (n < kFieldCount) {
      while (cursor < end && (*cursor == ' ' || *cursor == '\t')) ++cursor;
      if (cursor >= end) break;
      const char* token = cursor;
      while (cursor < end && *cursor != ' ' && *cursor != '\t') ++cursor;
      long long value = 0;
      const auto parsed = std::from_chars(token, cursor, value);
      if (parsed.ec == std::errc::result_out_of_range)
        throw std::runtime_error(origin_ + ":" + std::to_string(line_) + ": SWF field " +
                                 std::to_string(n + 1) + " out of range: '" +
                                 std::string(token, cursor) + "'");
      if (parsed.ec != std::errc()) break;  // non-numeric token ends the record
      f[n++] = value;
      if (parsed.ptr != cursor) break;  // numeric prefix + garbage: keep it, then stop
    }
    if (n < kRequestedTime + 1) {
      // Too few fields to be a record; count as skipped noise.
      ++total_records_;
      ++skipped_records_;
      continue;
    }
    ++total_records_;

    // Status filter first: a cancelled/failed record is not malformed, it
    // describes work that never (fully) ran, so it must not fall through to
    // the invalid-record accounting below.
    if (!options_.accepted_statuses.empty() &&
        std::find(options_.accepted_statuses.begin(), options_.accepted_statuses.end(),
                  f[kStatus]) == options_.accepted_statuses.end()) {
      ++filtered_records_;
      continue;
    }

    Job job;
    job.submit = static_cast<Time>(std::max<long long>(0, f[kSubmit]));
    job.runtime = static_cast<Time>(f[kRuntime]);
    long long procs = f[kAllocatedProcs];
    if (procs <= 0 && options_.fallback_to_requested) procs = f[kRequestedProcs];
    job.nodes = static_cast<NodeCount>(procs);
    job.wcl = static_cast<Time>(f[kRequestedTime]);
    if (job.wcl <= 0 && options_.fallback_wcl_to_runtime) job.wcl = job.runtime;
    job.user = static_cast<UserId>(std::max<long long>(0, f[kUserId]));
    job.group = static_cast<GroupId>(std::max<long long>(0, f[kGroupId]));

    if (job.runtime <= 0 || job.nodes <= 0 || job.wcl <= 0) {
      if (options_.skip_invalid) {
        ++skipped_records_;
        continue;
      }
      throw std::invalid_argument(origin_ + ":" + std::to_string(line_) +
                                  ": invalid record: " + line);
    }
    widest_job_ = std::max(widest_job_, job.nodes);
    out = job;
    return true;
  }
  done_ = true;
  return false;
}

std::size_t SwfStreamReader::read_chunk(std::vector<Job>& out, std::size_t max_records) {
  std::size_t appended = 0;
  Job job;
  while (appended < max_records && next_job(job)) {
    out.push_back(job);
    ++appended;
  }
  return appended;
}

SwfReadResult read_swf(std::istream& in, NodeCount system_size, const SwfReadOptions& options,
                       const std::string& origin) {
  SwfStreamReader reader(in, options, origin);
  WorkloadBuilder builder;
  while (reader.read_chunk(builder.jobs, kIngestChunk) > 0) {
  }
  return finish_read(reader, std::move(builder), system_size);
}

SwfReadResult read_swf_streaming(std::istream& in, NodeCount system_size,
                                 const SwfReadOptions& options, std::size_t head,
                                 const std::string& origin) {
  SwfStreamReader reader(in, options, origin);
  WorkloadBuilder builder;
  if (head == 0) {
    while (reader.read_chunk(builder.jobs, kIngestChunk) > 0) {
    }
  } else {
    // Keep the `head` smallest records under (submit, ingest order) — the
    // exact prefix the eager path's stable normalize + head truncation keeps
    // — in a max-heap, so memory stays O(head + chunk) over any trace size.
    struct Entry {
      Time submit;
      std::size_t seq;
      Job job;
    };
    const auto earlier = [](const Entry& a, const Entry& b) {
      return a.submit != b.submit ? a.submit < b.submit : a.seq < b.seq;
    };
    std::vector<Entry> heap;
    heap.reserve(head + 1);
    std::vector<Job> chunk;
    chunk.reserve(kIngestChunk);
    std::size_t seq = 0;
    for (;;) {
      chunk.clear();
      if (reader.read_chunk(chunk, kIngestChunk) == 0) break;
      for (const Job& job : chunk) {
        heap.push_back(Entry{job.submit, seq++, job});
        std::push_heap(heap.begin(), heap.end(), earlier);
        if (heap.size() > head) {
          std::pop_heap(heap.begin(), heap.end(), earlier);
          heap.pop_back();
        }
      }
    }
    std::sort(heap.begin(), heap.end(), earlier);
    builder.jobs.reserve(heap.size());
    for (const Entry& entry : heap) builder.jobs.push_back(entry.job);
  }
  return finish_read(reader, std::move(builder), system_size);
}

std::string SwfReadResult::describe_sizing() const {
  std::string out = std::to_string(workload.system_size) + " nodes (";
  switch (sizing) {
    case SwfSizing::Explicit:
      out += "explicit --system-size";
      break;
    case SwfSizing::HeaderNodes:
      out += "SWF header MaxNodes";
      break;
    case SwfSizing::HeaderProcs:
      out += "SWF header MaxProcs";
      break;
    case SwfSizing::WidestJob:
      out += "widest job; header absent or understated";
      break;
    case SwfSizing::Fallback:
      out += "empty trace, no header";
      break;
  }
  out += "; MaxNodes " + std::to_string(header_max_nodes) + ", MaxProcs " +
         std::to_string(header_max_procs) + ", widest job " + std::to_string(widest_job) + ")";
  return out;
}

SwfReadResult read_swf_file(const std::string& path, NodeCount system_size,
                            const SwfReadOptions& options) {
  std::ifstream in(path);
  const int open_err = util::retry_io([&]() -> int {
    if (const int injected = PSCHED_FAULT("swf.open")) return injected;
    return in ? 0 : (errno != 0 ? errno : ENOENT);
  });
  if (open_err != 0)
    throw std::runtime_error("read_swf_file: cannot open " + path + ": " +
                             std::strerror(open_err));
  return read_swf(in, system_size, options, path);
}

SwfReadResult read_swf_file_streaming(const std::string& path, NodeCount system_size,
                                      const SwfReadOptions& options, std::size_t head) {
  std::ifstream in(path);
  const int open_err = util::retry_io([&]() -> int {
    if (const int injected = PSCHED_FAULT("swf.open")) return injected;
    return in ? 0 : (errno != 0 ? errno : ENOENT);
  });
  if (open_err != 0)
    throw std::runtime_error("read_swf_file_streaming: cannot open " + path + ": " +
                             std::strerror(open_err));
  return read_swf_streaming(in, system_size, options, head, path);
}

void write_swf(std::ostream& out, const Workload& workload, const std::string& comment) {
  out << "; SWF V2 trace written by cplant-sched\n";
  out << "; Comment: " << comment << '\n';
  out << "; MaxNodes: " << workload.system_size << '\n';
  out << "; MaxProcs: " << workload.system_size << '\n';
  out << "; MaxJobs: " << workload.jobs.size() << '\n';
  out << "; Note: unused SWF fields are -1\n";
  for (const Job& job : workload.jobs) {
    out << job.id + 1       // SWF job numbers are 1-based
        << ' ' << job.submit
        << ' ' << -1        // wait time: a scheduling outcome, not trace data
        << ' ' << job.runtime
        << ' ' << job.nodes
        << ' ' << -1 << ' ' << -1  // avg cpu, used memory
        << ' ' << job.nodes
        << ' ' << job.wcl
        << ' ' << -1        // requested memory
        << ' ' << 1         // status: completed
        << ' ' << job.user
        << ' ' << job.group
        << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << '\n';
  }
}

void write_swf_file(const std::string& path, const Workload& workload, const std::string& comment) {
  // psched-lint: allow(raw-file-write): trace export utility, not a campaign
  // results store — the caller owns the path and durability expectations
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_swf_file: cannot open " + path);
  write_swf(out, workload, comment);
}

}  // namespace psched::workload
