#include "workload/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/time_format.hpp"

namespace psched::workload {

CategoryCounts category_job_counts(const Workload& workload) {
  CategoryCounts counts{};
  for (const Job& job : workload.jobs) {
    const auto w = static_cast<std::size_t>(width_category(job.nodes));
    const auto l = static_cast<std::size_t>(length_category(job.runtime));
    ++counts[w][l];
  }
  return counts;
}

CategoryHours category_proc_hours(const Workload& workload) {
  CategoryHours hours{};
  for (const Job& job : workload.jobs) {
    const auto w = static_cast<std::size_t>(width_category(job.nodes));
    const auto l = static_cast<std::size_t>(length_category(job.runtime));
    hours[w][l] += job.proc_seconds() / 3600.0;
  }
  return hours;
}

std::vector<double> weekly_offered_load(const Workload& workload) {
  if (workload.jobs.empty()) return {};
  const std::int64_t last_week = util::week_index(workload.jobs.back().submit);
  std::vector<double> load(static_cast<std::size_t>(last_week) + 1, 0.0);
  const double weekly_capacity =
      static_cast<double>(workload.system_size) * static_cast<double>(util::kSecondsPerWeek);
  for (const Job& job : workload.jobs) {
    const auto week = static_cast<std::size_t>(util::week_index(job.submit));
    load[week] += job.proc_seconds() / weekly_capacity;
  }
  return load;
}

std::vector<double> overestimation_factors(const Workload& workload) {
  std::vector<double> factors;
  factors.reserve(workload.jobs.size());
  for (const Job& job : workload.jobs)
    factors.push_back(static_cast<double>(job.wcl) / static_cast<double>(job.runtime));
  return factors;
}

BinnedSeries binned_median(const std::vector<double>& x, const std::vector<double>& y,
                           double x_lo, double x_hi, std::size_t bins) {
  if (x.size() != y.size()) throw std::invalid_argument("binned_median: size mismatch");
  if (!(x_lo > 0.0) || !(x_hi > x_lo) || bins == 0)
    throw std::invalid_argument("binned_median: bad bin spec");
  BinnedSeries series;
  const double llo = std::log10(x_lo);
  const double lhi = std::log10(x_hi);
  std::vector<std::vector<double>> buckets(bins);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < x_lo || x[i] >= x_hi) continue;
    const double frac = (std::log10(x[i]) - llo) / (lhi - llo);
    auto bin = static_cast<std::size_t>(frac * static_cast<double>(bins));
    bin = std::min(bin, bins - 1);
    buckets[bin].push_back(y[i]);
  }
  for (std::size_t b = 0; b < bins; ++b) {
    const double frac_lo = static_cast<double>(b) / static_cast<double>(bins);
    const double frac_hi = static_cast<double>(b + 1) / static_cast<double>(bins);
    series.bin_lo.push_back(std::pow(10.0, llo + (lhi - llo) * frac_lo));
    series.bin_hi.push_back(std::pow(10.0, llo + (lhi - llo) * frac_hi));
    series.count.push_back(buckets[b].size());
    if (buckets[b].empty()) {
      series.median.push_back(0.0);
      series.p25.push_back(0.0);
      series.p75.push_back(0.0);
    } else {
      series.median.push_back(util::percentile(buckets[b], 0.50));
      series.p25.push_back(util::percentile(buckets[b], 0.25));
      series.p75.push_back(util::percentile(buckets[b], 0.75));
    }
  }
  return series;
}

double underestimate_fraction(const Workload& workload) {
  if (workload.jobs.empty()) return 0.0;
  std::size_t under = 0;
  for (const Job& job : workload.jobs)
    if (job.runtime > job.wcl) ++under;
  return static_cast<double>(under) / static_cast<double>(workload.jobs.size());
}

double power_of_two_fraction(const Workload& workload) {
  if (workload.jobs.empty()) return 0.0;
  std::size_t pow2 = 0;
  for (const Job& job : workload.jobs) {
    const auto n = static_cast<std::uint32_t>(job.nodes);
    if ((n & (n - 1)) == 0) ++pow2;
  }
  return static_cast<double>(pow2) / static_cast<double>(workload.jobs.size());
}

}  // namespace psched::workload
