#pragma once
// Synthetic CPlant/Ross workload generator.
//
// The paper's trace was never released, so experiments run on a seeded
// synthetic trace engineered to match the published characterization:
//   * Table 1: the generator emits *exactly* the published job count in each
//     width x length category;
//   * Table 2: per-category processor-hours are calibrated by rescaling
//     runtimes within category bounds (typically within a few percent);
//   * Figure 4: node counts prefer powers of two;
//   * Figures 5-7: wall-clock limits are over-estimated by a factor whose
//     distribution shrinks with runtime and is independent of width, with a
//     small fraction of under-estimates (jobs that ran past their limit);
//   * Figure 3: arrivals follow a bursty weekly process (negatively
//     autocorrelated week intensities) with diurnal/weekday modulation, so
//     offered load oscillates between light weeks and >100% weeks;
//   * a Zipf-activity user population with width-band affinities feeds the
//     fairshare priority with realistic heavy/light users.

#include <cstdint>

#include "core/job.hpp"
#include "workload/ross_reference.hpp"

namespace psched::workload {

struct GeneratorConfig {
  std::uint64_t seed = 20021201;  ///< default: the trace's start date
  NodeCount system_size = kRossSystemSize;
  Time span = kRossTraceSpan;  ///< submissions land in [0, span)

  /// Scale all Table 1 cell counts by this factor (rounded, min 0); 1.0
  /// reproduces the paper, smaller values make quick test traces.
  double count_scale = 1.0;

  // --- user population -----------------------------------------------------
  std::int32_t user_count = 64;
  std::int32_t group_count = 12;
  double zipf_exponent = 1.1;  ///< user activity skew
  /// Strength of each user's preference for their home width band
  /// (0 = none; larger = users stick to their band).
  double width_affinity = 0.5;

  // --- arrival process ------------------------------------------------------
  double week_sigma = 0.40;      ///< week-intensity lognormal sigma
  double week_autocorr = -0.35;  ///< AR(1) coefficient (negative = bursty)
  /// Figure 3's bimodal load: a busy/light Markov chain over weeks. Busy
  /// weeks receive busy_week_boost x the base intensity; roughly
  /// busy_week_fraction of weeks are busy, in runs whose expected length is
  /// 1 / (1 - busy_week_persistence).
  double busy_week_fraction = 0.35;
  double busy_week_boost = 2.2;
  double busy_week_persistence = 0.55;
  double weekday_weight = 1.35;  ///< relative to weekend days
  double business_hours_weight = 2.2;  ///< 8:00-18:00 relative to night

  // --- wall-clock-limit model ----------------------------------------------
  /// log10 over-estimation factor is Exponential with mean
  /// max(min_log_factor_mean, a - b*log10(runtime)).
  double wcl_log_mean_a = 1.45;
  double wcl_log_mean_b = 0.17;
  double wcl_min_log_mean = 0.12;
  double wcl_round_to_grid_prob = 0.7;  ///< users pick "standard" limits
  double underestimate_prob = 0.025;    ///< runtime ends up > WCL
  Time wcl_cap = days(35);

  // --- runtime sampling -----------------------------------------------------
  Time longest_runtime = days(14);  ///< upper bound for the open 2+d bin
};

/// Generate the synthetic trace. Deterministic in the config (same config =>
/// byte-identical workload). The result is normalized and validated.
Workload generate_ross_workload(const GeneratorConfig& config = {});

/// Convenience: small random workload for tests/fuzzing — `jobs` jobs on a
/// `system_size` machine over `span` seconds, no table calibration.
Workload generate_small_workload(std::uint64_t seed, std::size_t jobs, NodeCount system_size,
                                 Time span, std::int32_t user_count = 8);

}  // namespace psched::workload
