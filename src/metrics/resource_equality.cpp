#include "metrics/resource_equality.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "util/stats.hpp"

namespace psched::metrics {

ResourceEquality resource_equality(const SimulationResult& result) {
  ResourceEquality eq;
  const std::size_t n = result.records.size();
  eq.received.assign(n, 0.0);
  eq.deserved.assign(n, 0.0);
  eq.deficit.assign(n, 0.0);
  if (n == 0) return eq;

  // Event sweep over submit/finish (liveness) and start/finish (holding).
  enum class Edge { Submit, Start, Finish };
  std::map<Time, std::vector<std::pair<Edge, std::size_t>>> edges;
  for (std::size_t i = 0; i < n; ++i) {
    const JobRecord& r = result.records[i];
    edges[r.job.submit].push_back({Edge::Submit, i});
    edges[r.start].push_back({Edge::Start, i});
    edges[r.finish].push_back({Edge::Finish, i});
  }

  std::vector<bool> live(n, false);
  std::vector<bool> holding(n, false);
  std::vector<std::size_t> live_set;  // indices currently live (small churn)
  Time prev = kNoTime;

  for (const auto& [at, batch] : edges) {
    if (prev != kNoTime && at > prev && !live_set.empty()) {
      const double dt = static_cast<double>(at - prev);
      const double share =
          static_cast<double>(result.system_size) / static_cast<double>(live_set.size());
      for (const std::size_t i : live_set) {
        eq.deserved[i] += share * dt;
        if (holding[i]) eq.received[i] += static_cast<double>(result.records[i].job.nodes) * dt;
      }
    }
    for (const auto& [edge, i] : batch) {
      switch (edge) {
        case Edge::Submit:
          live[i] = true;
          live_set.push_back(i);
          break;
        case Edge::Start:
          holding[i] = true;
          break;
        case Edge::Finish:
          holding[i] = false;
          live[i] = false;
          live_set.erase(std::find(live_set.begin(), live_set.end(), i));
          break;
      }
    }
    prev = at;
  }

  double deficit_total = 0.0;
  double deserved_total = 0.0;
  std::vector<double> ratios;
  ratios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    eq.deficit[i] = std::max(0.0, eq.deserved[i] - eq.received[i]);
    deficit_total += eq.deficit[i];
    deserved_total += eq.deserved[i];
    ratios.push_back(eq.deserved[i] > 0.0 ? eq.received[i] / eq.deserved[i] : 1.0);
  }
  eq.normalized_deficit = deserved_total > 0.0 ? deficit_total / deserved_total : 0.0;
  eq.jain_index = util::jain_fairness_index(ratios);
  return eq;
}

}  // namespace psched::metrics
