#include "metrics/selection.hpp"

#include <algorithm>
#include <stdexcept>

namespace psched::metrics {

namespace {
struct NamedMetric {
  const char* name;
  double (*get)(const PolicyReport&);
};

// policy_* metrics read the forked-engine FST, which ExperimentRunner only
// computes when FstOptions::policy_knowledge is set (the campaign sets it
// whenever a policy_* metric is selected). A report without it means the
// caller's wiring is wrong — fail loudly rather than aggregate zeros.
const FstResult& policy_fst(const PolicyReport& report) {
  if (!report.has_policy_fairness)
    throw std::invalid_argument("metric_value: policy_* metric selected but the report has no "
                                "policy-knowledge FST (FstOptions::policy_knowledge not set)");
  return report.policy_fairness;
}

// Fairness first (the paper's headline quantities), then the standard
// user/system metrics. makespan is integer seconds widened to double so every
// selected metric aggregates the same way.
constexpr NamedMetric kCatalog[] = {
    {"percent_unfair", [](const PolicyReport& r) { return r.fairness.percent_unfair; }},
    {"percent_unfair_any", [](const PolicyReport& r) { return r.fairness.percent_unfair_any; }},
    {"percent_unfair_load", [](const PolicyReport& r) { return r.fairness.percent_unfair_load; }},
    {"avg_miss_all", [](const PolicyReport& r) { return r.fairness.avg_miss_all; }},
    {"avg_miss_unfair", [](const PolicyReport& r) { return r.fairness.avg_miss_unfair; }},
    {"max_miss", [](const PolicyReport& r) { return r.fairness.max_miss; }},
    {"policy_percent_unfair", [](const PolicyReport& r) { return policy_fst(r).percent_unfair; }},
    {"policy_percent_unfair_any",
     [](const PolicyReport& r) { return policy_fst(r).percent_unfair_any; }},
    {"policy_avg_miss_all", [](const PolicyReport& r) { return policy_fst(r).avg_miss_all; }},
    {"policy_avg_miss_unfair",
     [](const PolicyReport& r) { return policy_fst(r).avg_miss_unfair; }},
    {"policy_max_miss", [](const PolicyReport& r) { return policy_fst(r).max_miss; }},
    {"job_count", [](const PolicyReport& r) { return static_cast<double>(r.standard.job_count); }},
    {"avg_wait", [](const PolicyReport& r) { return r.standard.avg_wait; }},
    {"avg_turnaround", [](const PolicyReport& r) { return r.standard.avg_turnaround; }},
    {"avg_bounded_slowdown",
     [](const PolicyReport& r) { return r.standard.avg_bounded_slowdown; }},
    {"max_wait", [](const PolicyReport& r) { return r.standard.max_wait; }},
    {"makespan", [](const PolicyReport& r) { return static_cast<double>(r.standard.makespan); }},
    {"utilization", [](const PolicyReport& r) { return r.standard.utilization; }},
    {"loss_of_capacity", [](const PolicyReport& r) { return r.standard.loss_of_capacity; }},
};
}  // namespace

const std::vector<std::string>& all_metric_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const NamedMetric& metric : kCatalog) out.emplace_back(metric.name);
    return out;
  }();
  return names;
}

bool is_metric_name(const std::string& name) {
  return std::any_of(std::begin(kCatalog), std::end(kCatalog),
                     [&](const NamedMetric& metric) { return metric.name == name; });
}

double metric_value(const PolicyReport& report, const std::string& name) {
  for (const NamedMetric& metric : kCatalog)
    if (metric.name == name) return metric.get(report);
  throw std::invalid_argument("metric_value: unknown metric '" + name + "'");
}

}  // namespace psched::metrics
