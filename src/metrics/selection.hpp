#pragma once
// Named scalar metrics: the vocabulary scenario specs use to select which
// quantities a campaign records and aggregates. Every name maps to one scalar
// of a PolicyReport, so a campaign cell reduces to a (name -> double) row
// that the CSV/JSON results store and the bootstrap aggregator consume.

#include <string>
#include <vector>

#include "metrics/report.hpp"

namespace psched::metrics {

/// Every selectable metric name, in catalog (presentation) order.
const std::vector<std::string>& all_metric_names();

/// Is `name` a selectable metric?
bool is_metric_name(const std::string& name);

/// The value of metric `name` in `report`. Throws std::invalid_argument for
/// an unknown name (spec validation rejects those earlier, with a line
/// number).
double metric_value(const PolicyReport& report, const std::string& name);

}  // namespace psched::metrics
