#include "metrics/fst.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/list_scheduler.hpp"
#include "core/profile.hpp"
#include "util/thread_pool.hpp"

namespace psched::metrics {

namespace {

/// Reusable per-thread state for the per-job FST loop. One simulation can
/// have thousands of snapshots; reusing the list scheduler and the sort
/// buffer keeps the loop allocation-free after warm-up.
struct FstScratch {
  std::optional<ListScheduler> list;
  std::vector<const SnapshotWaiting*> order;

  ListScheduler& list_for(NodeCount system_size, Time origin) {
    if (!list || list->node_count() != system_size)
      list.emplace(system_size, origin);
    else
      list->reset(origin);
    return *list;
  }
};

/// FST of one snapshot: list-schedule the waiting set in fairshare priority
/// order on top of the running jobs; return the target job's start.
Time snapshot_fst(const ArrivalSnapshot& snapshot, NodeCount system_size, FstKnowledge knowledge,
                  FstScratch& scratch) {
  const bool perfect = knowledge == FstKnowledge::Perfect;
  ListScheduler& list = scratch.list_for(system_size, snapshot.at);
  for (const SnapshotRunning& r : snapshot.running)
    list.occupy(r.nodes, snapshot.at + std::max<Time>(perfect ? r.remaining : r.est_remaining, 0));

  // Fairshare order: lower decayed usage first; ties by submit then id —
  // identical to Scheduler::priority_less so the metric matches the policy's
  // notion of a socially just order.
  std::vector<const SnapshotWaiting*>& order = scratch.order;
  order.clear();
  order.reserve(snapshot.waiting.size());
  for (const SnapshotWaiting& w : snapshot.waiting) order.push_back(&w);
  std::sort(order.begin(), order.end(), [](const SnapshotWaiting* a, const SnapshotWaiting* b) {
    if (a->priority != b->priority) return a->priority < b->priority;
    if (a->submit != b->submit) return a->submit < b->submit;
    return a->id < b->id;
  });

  for (const SnapshotWaiting* w : order) {
    const Time start = list.schedule(w->nodes, perfect ? w->runtime : w->wcl, snapshot.at);
    if (w->id == snapshot.id) return start;
  }
  throw std::logic_error("snapshot_fst: target job missing from its own snapshot");
}

}  // namespace

void aggregate_fst(const SimulationResult& result, const FstOptions& options, FstResult& fst) {
  const std::size_t n = result.records.size();
  fst.miss.assign(n, 0);
  std::size_t unfair = 0;
  std::size_t unfair_any = 0;
  double unfair_load = 0.0;
  double total_load = 0.0;
  double miss_total = 0.0;
  double miss_unfair_total = 0.0;
  std::array<double, kWidthCategories> miss_by_width{};

  for (std::size_t i = 0; i < n; ++i) {
    const JobRecord& record = result.records[i];
    const Time miss = std::max<Time>(0, record.start - fst.fair_start[i]);
    fst.miss[i] = miss;
    miss_total += static_cast<double>(miss);
    fst.max_miss = std::max(fst.max_miss, static_cast<double>(miss));
    total_load += record.job.proc_seconds();

    const auto w = static_cast<std::size_t>(width_category(record.job.nodes));
    ++fst.jobs_by_width[w];
    miss_by_width[w] += static_cast<double>(miss);
    if (miss > 1) ++unfair_any;
    if (miss > options.tolerance) {
      ++unfair;
      ++fst.unfair_by_width[w];
      unfair_load += record.job.proc_seconds();
      miss_unfair_total += static_cast<double>(miss);
    }
  }

  if (n > 0) {
    fst.percent_unfair = static_cast<double>(unfair) / static_cast<double>(n);
    fst.percent_unfair_any = static_cast<double>(unfair_any) / static_cast<double>(n);
    fst.percent_unfair_load = total_load > 0.0 ? unfair_load / total_load : 0.0;
    fst.avg_miss_all = miss_total / static_cast<double>(n);
    fst.avg_miss_unfair = unfair > 0 ? miss_unfair_total / static_cast<double>(unfair) : 0.0;
  }
  for (std::size_t w = 0; w < kWidthCategories; ++w)
    if (fst.jobs_by_width[w] > 0)
      fst.avg_miss_by_width[w] = miss_by_width[w] / static_cast<double>(fst.jobs_by_width[w]);
}

FstResult hybrid_fairshare_fst(const SimulationResult& result, const FstOptions& options) {
  const std::size_t n = result.records.size();
  if (result.snapshots.size() != n)
    throw std::invalid_argument(
        "hybrid_fairshare_fst: result has no arrival snapshots (run the engine with "
        "record_snapshots = true)");

  FstResult fst;
  fst.fair_start.assign(n, kNoTime);

  const auto compute_one = [&](std::size_t i) {
    thread_local FstScratch scratch;
    fst.fair_start[i] =
        snapshot_fst(result.snapshots[i], result.system_size, options.knowledge, scratch);
  };
  if (options.parallel)
    util::parallel_for(n, compute_one, /*min_chunk=*/16);
  else
    for (std::size_t i = 0; i < n; ++i) compute_one(i);

  aggregate_fst(result, options, fst);
  return fst;
}

FstResult cons_p_fst(const SimulationResult& result, const FstOptions& options) {
  const std::size_t n = result.records.size();
  FstResult fst;
  fst.fair_start.assign(n, kNoTime);
  if (n == 0) {
    aggregate_fst(result, options, fst);
    return fst;
  }

  // Perfect estimates make conservative backfilling one-shot: each arriving
  // job takes the earliest hole and never moves (nobody ever finishes early,
  // so no compression is possible). Insert records in submit order (FCFS).
  std::vector<const JobRecord*> order;
  order.reserve(n);
  for (const JobRecord& r : result.records) order.push_back(&r);
  std::sort(order.begin(), order.end(), [](const JobRecord* a, const JobRecord* b) {
    if (a->job.submit != b->job.submit) return a->job.submit < b->job.submit;
    return a->job.id < b->job.id;
  });

  Profile profile(result.system_size, order.front()->job.submit);
  for (const JobRecord* r : order) {
    const Time start = profile.earliest_fit(r->job.submit, r->job.runtime, r->job.nodes);
    profile.add_usage(start, start + r->job.runtime, r->job.nodes);
    fst.fair_start[static_cast<std::size_t>(r->job.id)] = start;
  }

  aggregate_fst(result, options, fst);
  return fst;
}

}  // namespace psched::metrics
