#pragma once
// Loss of capacity (paper Eq. 4): the fraction of processor cycles left idle
// while jobs were waiting in the queue. The engine accumulates the integral
// online; this module normalizes it and provides an independent recomputation
// from the finished records (used to cross-check the engine in tests).

#include "core/record.hpp"

namespace psched::metrics {

/// Eq. 4 using the engine's online integral.
double loss_of_capacity(const SimulationResult& result);

/// Recompute the Eq. 4 numerator (proc-seconds) by sweeping the finished
/// records' submit/start/finish events — independent of the engine's online
/// accounting.
double recompute_loc_integral(const SimulationResult& result);

/// Recompute the busy integral (utilization numerator) the same way.
double recompute_busy_integral(const SimulationResult& result);

}  // namespace psched::metrics
