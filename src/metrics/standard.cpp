#include "metrics/standard.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/loc.hpp"

namespace psched::metrics {

StandardMetrics compute_standard(const SimulationResult& result) {
  StandardMetrics m;
  m.job_count = result.records.size();
  if (m.job_count == 0) return m;

  std::array<double, kWidthCategories> tat_sum{};
  std::array<double, kWidthCategories> wait_sum{};

  double wait_total = 0.0;
  double tat_total = 0.0;
  double slowdown_total = 0.0;

  for (const JobRecord& record : result.records) {
    if (!record.completed())
      throw std::invalid_argument("compute_standard: incomplete record " +
                                  std::to_string(record.job.id));
    const auto wait = static_cast<double>(record.wait());
    const auto turnaround = static_cast<double>(record.turnaround());
    wait_total += wait;
    tat_total += turnaround;
    m.max_wait = std::max(m.max_wait, wait);
    const auto denom = static_cast<double>(std::max(record.executed_runtime(), kSlowdownBound));
    slowdown_total += std::max(1.0, turnaround / denom);

    const auto w = static_cast<std::size_t>(width_category(record.job.nodes));
    tat_sum[w] += turnaround;
    wait_sum[w] += wait;
    ++m.jobs_by_width[w];
  }

  const auto n = static_cast<double>(m.job_count);
  m.avg_wait = wait_total / n;
  m.avg_turnaround = tat_total / n;
  m.avg_bounded_slowdown = slowdown_total / n;

  for (std::size_t w = 0; w < kWidthCategories; ++w) {
    if (m.jobs_by_width[w] == 0) continue;
    const auto c = static_cast<double>(m.jobs_by_width[w]);
    m.avg_turnaround_by_width[w] = tat_sum[w] / c;
    m.avg_wait_by_width[w] = wait_sum[w] / c;
  }

  m.makespan = result.makespan();
  if (m.makespan > 0) {
    const double cell = static_cast<double>(m.makespan) * static_cast<double>(result.system_size);
    m.utilization = result.busy_proc_seconds / cell;
    m.loss_of_capacity = result.loc_proc_seconds / cell;
  }
  return m;
}

}  // namespace psched::metrics
