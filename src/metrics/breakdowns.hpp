#pragma once
// Finer-grained breakdowns beyond the paper's width categories: per-length
// category, per-user, and wait-time distribution summaries. These support
// the ablation benches and give library users the obvious follow-up views
// (who exactly is treated unfairly?).

#include <array>
#include <vector>

#include "core/categories.hpp"
#include "core/record.hpp"
#include "metrics/fst.hpp"
#include "util/stats.hpp"

namespace psched::metrics {

/// Averages by runtime-length category (the other axis of Tables 1-2).
struct LengthBreakdown {
  std::array<std::size_t, kLengthCategories> jobs{};
  std::array<double, kLengthCategories> avg_wait{};
  std::array<double, kLengthCategories> avg_turnaround{};
  std::array<double, kLengthCategories> avg_miss{};  ///< zero without fst
};
LengthBreakdown length_breakdown(const SimulationResult& result,
                                 const FstResult* fst = nullptr);

/// Per-user treatment summary, sorted by total demanded proc-seconds
/// descending (heavy users first).
struct UserSummary {
  UserId user = kInvalidUser;
  std::size_t jobs = 0;
  double proc_seconds = 0.0;
  double avg_wait = 0.0;
  double avg_miss = 0.0;        ///< zero without fst
  double unfair_fraction = 0.0; ///< share of the user's jobs missing FST
};
std::vector<UserSummary> user_breakdown(const SimulationResult& result,
                                        const FstResult* fst = nullptr,
                                        Time tolerance = hours(24));

/// Wait-time distribution of a run.
util::Summary wait_distribution(const SimulationResult& result);

}  // namespace psched::metrics
