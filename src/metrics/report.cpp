#include "metrics/report.hpp"

#include <functional>

namespace psched::metrics {

PolicyReport evaluate(const SimulationResult& result, const FstOptions& options) {
  PolicyReport report;
  report.policy = result.policy_name;
  report.standard = compute_standard(result);
  report.fairness = hybrid_fairshare_fst(result, options);
  return report;
}

util::TextTable fairness_summary_table(const std::vector<PolicyReport>& reports) {
  util::TextTable table({"policy", "percent_unfair", "unfair_any", "unfair_load", "avg_miss_s",
                         "avg_miss_unfair_s", "max_miss_s"});
  for (const PolicyReport& r : reports) {
    table.begin_row()
        .add(r.policy)
        .add_percent(r.fairness.percent_unfair)
        .add_percent(r.fairness.percent_unfair_any)
        .add_percent(r.fairness.percent_unfair_load)
        .add(r.fairness.avg_miss_all, 0)
        .add(r.fairness.avg_miss_unfair, 0)
        .add(r.fairness.max_miss, 0);
  }
  return table;
}

util::TextTable performance_summary_table(const std::vector<PolicyReport>& reports) {
  util::TextTable table({"policy", "avg_turnaround_s", "avg_wait_s", "bounded_slowdown",
                         "utilization", "loss_of_capacity", "makespan_d"});
  for (const PolicyReport& r : reports) {
    table.begin_row()
        .add(r.policy)
        .add(r.standard.avg_turnaround, 0)
        .add(r.standard.avg_wait, 0)
        .add(r.standard.avg_bounded_slowdown, 2)
        .add_percent(r.standard.utilization)
        .add_percent(r.standard.loss_of_capacity)
        .add(static_cast<double>(r.standard.makespan) / 86400.0, 1);
  }
  return table;
}

namespace {
util::TextTable by_width_table(const std::vector<PolicyReport>& reports,
                               const std::function<double(const PolicyReport&, std::size_t)>& get) {
  std::vector<std::string> header{"width"};
  for (const PolicyReport& r : reports) header.push_back(r.policy);
  util::TextTable table(std::move(header));
  for (int w = 0; w < kWidthCategories; ++w) {
    table.begin_row().add(width_category_label(w));
    for (const PolicyReport& r : reports) table.add(get(r, static_cast<std::size_t>(w)), 0);
  }
  return table;
}
}  // namespace

util::TextTable miss_by_width_table(const std::vector<PolicyReport>& reports) {
  return by_width_table(reports, [](const PolicyReport& r, std::size_t w) {
    return r.fairness.avg_miss_by_width[w];
  });
}

util::TextTable turnaround_by_width_table(const std::vector<PolicyReport>& reports) {
  return by_width_table(reports, [](const PolicyReport& r, std::size_t w) {
    return r.standard.avg_turnaround_by_width[w];
  });
}

}  // namespace psched::metrics
