#include "metrics/loc.hpp"

#include <algorithm>
#include <map>

namespace psched::metrics {

double loss_of_capacity(const SimulationResult& result) {
  const Time makespan = result.makespan();
  if (makespan <= 0) return 0.0;
  return result.loc_proc_seconds /
         (static_cast<double>(makespan) * static_cast<double>(result.system_size));
}

namespace {
/// Sweep all submit/start/finish breakpoints accumulating an integrand.
template <typename Integrand>
double sweep(const SimulationResult& result, Integrand integrand) {
  // delta maps: time -> change in (queued demand, running nodes)
  std::map<Time, std::pair<NodeCount, NodeCount>> deltas;
  for (const JobRecord& r : result.records) {
    deltas[r.job.submit].first += r.job.nodes;
    deltas[r.start].first -= r.job.nodes;
    deltas[r.start].second += r.job.nodes;
    deltas[r.finish].second -= r.job.nodes;
  }
  double integral = 0.0;
  NodeCount queued = 0;
  NodeCount running = 0;
  Time prev = kNoTime;
  for (const auto& [at, delta] : deltas) {
    if (prev != kNoTime && at > prev)
      integral += integrand(queued, running) * static_cast<double>(at - prev);
    queued += delta.first;
    running += delta.second;
    prev = at;
  }
  return integral;
}
}  // namespace

double recompute_loc_integral(const SimulationResult& result) {
  const NodeCount size = result.system_size;
  return sweep(result, [size](NodeCount queued, NodeCount running) {
    return static_cast<double>(std::min(queued, static_cast<NodeCount>(size - running)));
  });
}

double recompute_busy_integral(const SimulationResult& result) {
  return sweep(result, [](NodeCount, NodeCount running) { return static_cast<double>(running); });
}

}  // namespace psched::metrics
