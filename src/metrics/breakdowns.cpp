#include "metrics/breakdowns.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace psched::metrics {

LengthBreakdown length_breakdown(const SimulationResult& result, const FstResult* fst) {
  if (fst != nullptr && fst->miss.size() != result.records.size())
    throw std::invalid_argument("length_breakdown: fst does not match result");
  LengthBreakdown breakdown;
  std::array<double, kLengthCategories> wait_sum{};
  std::array<double, kLengthCategories> tat_sum{};
  std::array<double, kLengthCategories> miss_sum{};
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const JobRecord& record = result.records[i];
    const auto l = static_cast<std::size_t>(length_category(record.job.runtime));
    ++breakdown.jobs[l];
    wait_sum[l] += static_cast<double>(record.wait());
    tat_sum[l] += static_cast<double>(record.turnaround());
    if (fst != nullptr) miss_sum[l] += static_cast<double>(fst->miss[i]);
  }
  for (std::size_t l = 0; l < kLengthCategories; ++l) {
    if (breakdown.jobs[l] == 0) continue;
    const auto n = static_cast<double>(breakdown.jobs[l]);
    breakdown.avg_wait[l] = wait_sum[l] / n;
    breakdown.avg_turnaround[l] = tat_sum[l] / n;
    breakdown.avg_miss[l] = miss_sum[l] / n;
  }
  return breakdown;
}

std::vector<UserSummary> user_breakdown(const SimulationResult& result, const FstResult* fst,
                                        Time tolerance) {
  if (fst != nullptr && fst->miss.size() != result.records.size())
    throw std::invalid_argument("user_breakdown: fst does not match result");
  struct Accumulator {
    std::size_t jobs = 0;
    double proc_seconds = 0.0;
    double wait_sum = 0.0;
    double miss_sum = 0.0;
    std::size_t unfair = 0;
  };
  std::map<UserId, Accumulator> by_user;
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const JobRecord& record = result.records[i];
    Accumulator& acc = by_user[record.job.user];
    ++acc.jobs;
    acc.proc_seconds += record.job.proc_seconds();
    acc.wait_sum += static_cast<double>(record.wait());
    if (fst != nullptr) {
      acc.miss_sum += static_cast<double>(fst->miss[i]);
      if (fst->miss[i] > tolerance) ++acc.unfair;
    }
  }
  std::vector<UserSummary> summaries;
  summaries.reserve(by_user.size());
  for (const auto& [user, acc] : by_user) {
    UserSummary s;
    s.user = user;
    s.jobs = acc.jobs;
    s.proc_seconds = acc.proc_seconds;
    const auto n = static_cast<double>(acc.jobs);
    s.avg_wait = acc.wait_sum / n;
    s.avg_miss = acc.miss_sum / n;
    s.unfair_fraction = static_cast<double>(acc.unfair) / n;
    summaries.push_back(s);
  }
  std::sort(summaries.begin(), summaries.end(), [](const UserSummary& a, const UserSummary& b) {
    if (a.proc_seconds != b.proc_seconds) return a.proc_seconds > b.proc_seconds;
    return a.user < b.user;
  });
  return summaries;
}

util::Summary wait_distribution(const SimulationResult& result) {
  std::vector<double> waits;
  waits.reserve(result.records.size());
  for (const JobRecord& record : result.records)
    waits.push_back(static_cast<double>(record.wait()));
  return util::summarize(waits);
}

}  // namespace psched::metrics
