#pragma once
// Weekly offered-load / achieved-utilization series (paper Figure 3).
// Offered load of week w: proc-seconds of work *submitted* during w divided
// by the machine's weekly capacity. Achieved utilization of week w:
// proc-seconds actually *executed* during w divided by the same capacity.

#include <vector>

#include "core/record.hpp"

namespace psched::metrics {

struct WeeklySeries {
  std::vector<double> offered_load;
  std::vector<double> utilization;
};

WeeklySeries weekly_series(const SimulationResult& result);

}  // namespace psched::metrics
