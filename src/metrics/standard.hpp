#pragma once
// Standard user/system metrics (paper section 3.2): wait time, turnaround
// time (Eq. 1), bounded slowdown, utilization (Eq. 2), makespan (Eq. 3), and
// per-width-category turnaround breakdowns (Figures 12/18).

#include <array>
#include <cstddef>

#include "core/categories.hpp"
#include "core/record.hpp"

namespace psched::metrics {

struct StandardMetrics {
  std::size_t job_count = 0;

  // User metrics (seconds, averaged over all records).
  double avg_wait = 0.0;
  double avg_turnaround = 0.0;          // Eq. 1
  double avg_bounded_slowdown = 0.0;    // bound = 10 s, conventional
  double max_wait = 0.0;

  // System metrics.
  Time makespan = 0;          // Eq. 3: MaxCompletionTime - MinStartTime
  double utilization = 0.0;   // Eq. 2
  double loss_of_capacity = 0.0;  // Eq. 4 (engine integral / makespan*size)

  // Per-width breakdowns (zero where a category has no jobs).
  std::array<double, kWidthCategories> avg_turnaround_by_width{};
  std::array<double, kWidthCategories> avg_wait_by_width{};
  std::array<std::size_t, kWidthCategories> jobs_by_width{};
};

/// Compute everything from a finished simulation. Throws std::invalid_argument
/// if any record is incomplete.
StandardMetrics compute_standard(const SimulationResult& result);

/// Slowdown bound used by avg_bounded_slowdown.
inline constexpr Time kSlowdownBound = 10;

}  // namespace psched::metrics
