#include "metrics/weekly.hpp"

#include <algorithm>

#include "util/time_format.hpp"

namespace psched::metrics {

WeeklySeries weekly_series(const SimulationResult& result) {
  WeeklySeries series;
  if (result.records.empty()) return series;

  Time last = 0;
  for (const JobRecord& r : result.records) last = std::max(last, r.finish);
  const auto weeks = static_cast<std::size_t>(util::week_index(last)) + 1;
  series.offered_load.assign(weeks, 0.0);
  series.utilization.assign(weeks, 0.0);

  const double weekly_capacity =
      static_cast<double>(result.system_size) * static_cast<double>(util::kSecondsPerWeek);

  for (const JobRecord& r : result.records) {
    // Offered: all of the job's work counts in its submission week.
    const auto submit_week = static_cast<std::size_t>(util::week_index(r.job.submit));
    series.offered_load[submit_week] +=
        static_cast<double>(r.job.nodes) * static_cast<double>(r.executed_runtime()) /
        weekly_capacity;

    // Utilization: spread the execution interval over the weeks it spans.
    Time cursor = r.start;
    while (cursor < r.finish) {
      const std::int64_t week = util::week_index(cursor);
      const Time week_end = (week + 1) * util::kSecondsPerWeek;
      const Time slice_end = std::min(r.finish, week_end);
      series.utilization[static_cast<std::size_t>(week)] +=
          static_cast<double>(r.job.nodes) * static_cast<double>(slice_end - cursor) /
          weekly_capacity;
      cursor = slice_end;
    }
  }
  return series;
}

}  // namespace psched::metrics
