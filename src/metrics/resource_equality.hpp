#pragma once
// Resource-equality fairness (paper section 4, after Sabin & Sadayappan
// following Raz/Levy/Avi-Itzhak): while a job is "live" (queued or running)
// it deserves 1/N of the machine, where N is the number of live jobs. The
// metric compares what each job actually received with that entitlement; it
// needs no reference schedule, so it can compare schedules directly.

#include <vector>

#include "core/record.hpp"

namespace psched::metrics {

struct ResourceEquality {
  /// Per record: integral of nodes actually held (proc-seconds).
  std::vector<double> received;
  /// Per record: integral of machine_size / N_live over the job's lifetime.
  std::vector<double> deserved;
  /// Per record: max(0, deserved - received).
  std::vector<double> deficit;

  /// Sum of deficits / sum of deserved (0 = everyone got their share).
  double normalized_deficit = 0.0;
  /// Jain fairness index over received/deserved ratios.
  double jain_index = 0.0;
};

ResourceEquality resource_equality(const SimulationResult& result);

}  // namespace psched::metrics
