#pragma once
// One-stop policy evaluation: bundle the standard metrics and the hybrid
// fairness metrics for a finished run, and render comparison tables in the
// layout the paper's figures use (policies as series, width categories as
// the x axis).

#include <string>
#include <vector>

#include "metrics/fst.hpp"
#include "metrics/standard.hpp"
#include "util/table.hpp"

namespace psched::metrics {

struct PolicyReport {
  std::string policy;
  StandardMetrics standard;
  FstResult fairness;
  /// The policy-knowledge FST (FstOptions::policy_knowledge), filled only by
  /// ExperimentRunner — it needs the workload and engine config to re-run the
  /// policy, which evaluate() does not have. Selecting a policy_* metric on a
  /// report without it is a hard error, never a silent zero.
  bool has_policy_fairness = false;
  FstResult policy_fairness;
};

/// Compute both metric families (hybrid FST needs snapshots).
PolicyReport evaluate(const SimulationResult& result, const FstOptions& options = {});

/// Figures 8/14: one row per policy with the scalar fairness numbers.
util::TextTable fairness_summary_table(const std::vector<PolicyReport>& reports);

/// Figures 11/17 + 13/19: one row per policy with the user/system numbers.
util::TextTable performance_summary_table(const std::vector<PolicyReport>& reports);

/// Figures 10/16: rows = width categories, one column per policy
/// (average miss time).
util::TextTable miss_by_width_table(const std::vector<PolicyReport>& reports);

/// Figures 12/18: rows = width categories, one column per policy
/// (average turnaround time).
util::TextTable turnaround_by_width_table(const std::vector<PolicyReport>& reports);

}  // namespace psched::metrics
