#pragma once
// Fair-start-time (FST) fairness metrics for parallel job scheduling
// (paper section 4).
//
// Hybrid "fairshare" FST (section 4.1, the paper's contribution): for each
// job, take the system exactly as it stood when the job arrived (running
// jobs with their actual remaining runtimes, the waiting queue with its
// fairshare priorities) and build a *no-holes list schedule* of the waiting
// jobs in fairshare order using perfect runtimes. The job's start time in
// that hypothetical schedule is its fair start time; starting later than the
// FST in the real schedule means lower-priority jobs got in its way.
//
//   AverageMissTime = sum_j max(0, start_j - FST_j) / |jobs|        (Eq. 5)
//   PercentUnfair   = |{j : start_j - FST_j > tolerance}| / |jobs|
//
// Also provided: the CONS_P FST of Srinivasan et al. (start times in a
// global conservative-backfilling schedule with FCFS priority and perfect
// estimates), computable without re-running a policy because perfect
// estimates make conservative reservations final.

#include <array>
#include <cstddef>
#include <vector>

#include "core/categories.hpp"
#include "core/record.hpp"

namespace psched::metrics {

/// Which runtimes the hypothetical FST schedule is built from.
enum class FstKnowledge {
  /// User estimates (WCL) for waiting jobs and WCL-based remaining time for
  /// running jobs — the information the real scheduler acts on. The fair
  /// reference is then "the fairshare list schedule the scheduler itself
  /// could have built", which is the interpretation that reproduces the
  /// paper's policy ordering.
  Estimates,
  /// Actual runtimes everywhere (the CONS_P "perfect estimates" convention).
  Perfect,
};

struct FstOptions {
  /// A job is counted "unfair" when start - FST exceeds this. One decay
  /// period (24 h) is the materiality threshold that reproduces the paper's
  /// policy ordering: it separates jobs genuinely pushed back by lower
  /// priority work from jobs nudged by scheduling jitter. Set to 1 for the
  /// strict "any miss" count (also always reported as percent_unfair_any).
  Time tolerance = hours(24);
  FstKnowledge knowledge = FstKnowledge::Estimates;
  /// Compute per-snapshot FSTs on the global thread pool.
  bool parallel = true;
  /// Also compute the policy-knowledge FST (Sabin/Sadayappan: re-run the
  /// actual policy with no later arrivals, sim::policy_no_later_arrivals_fst)
  /// and publish it as PolicyReport::policy_fairness. Needs the workload and
  /// engine config, so only ExperimentRunner honors it — evaluate() alone
  /// cannot and leaves the field empty. Requires max_runtime == kNoTime.
  bool policy_knowledge = false;
  /// Fork batch for the policy-knowledge FST (sim::PolicyFstOptions::
  /// fork_batch): forks accumulated before a drain. 0 = the historical
  /// automatic cap. Peak memory scales with batch x per-fork O(queue) state.
  std::size_t fork_batch = 0;
};

struct FstResult {
  std::vector<Time> fair_start;  ///< per record id
  std::vector<Time> miss;        ///< max(0, start - fair_start)

  double percent_unfair = 0.0;      ///< Figure 8/14 quantity (at tolerance)
  double percent_unfair_any = 0.0;  ///< strict count: any miss > 1 s
  double percent_unfair_load = 0.0; ///< proc-second-weighted share of unfair work
  double avg_miss_all = 0.0;     ///< Eq. 5 (averaged over all jobs)
  double avg_miss_unfair = 0.0;  ///< averaged over unfair jobs only
  double max_miss = 0.0;

  std::array<double, kWidthCategories> avg_miss_by_width{};   ///< Figures 10/16
  std::array<std::size_t, kWidthCategories> jobs_by_width{};
  std::array<std::size_t, kWidthCategories> unfair_by_width{};
};

/// The paper's hybrid fairshare FST. Requires result.snapshots (throws if
/// the engine ran with record_snapshots = false).
FstResult hybrid_fairshare_fst(const SimulationResult& result, const FstOptions& options = {});

/// CONS_P FST: one conservative FCFS perfect-estimate schedule of the whole
/// record set; each record's start therein is its FST.
FstResult cons_p_fst(const SimulationResult& result, const FstOptions& options = {});

/// Shared aggregation: fill the summary fields from fair_start + the records.
void aggregate_fst(const SimulationResult& result, const FstOptions& options, FstResult& fst);

}  // namespace psched::metrics
