#include "scenario/spec.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "metrics/selection.hpp"

namespace psched::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t lo = 0;
  std::size_t hi = s.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(s[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(s[hi - 1]))) --hi;
  return s.substr(lo, hi - lo);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) out.push_back(trim(item));
  return out;
}

/// One `key = value` line, position-tagged so every later validation error
/// can still point at its source.
struct Entry {
  std::string section;
  std::string key;
  std::string value;
  int line = 0;
};

/// The schema: which keys each section accepts. Anything else is a typo and
/// is rejected (with its line) instead of being silently ignored — a spec
/// that misspells `rescale_load` must not quietly run at load 1.0.
const std::vector<std::pair<std::string, std::vector<std::string>>> kSchema = {
    {"campaign",
     {"name", "metrics", "tolerance_hours", "bootstrap_resamples", "bootstrap_confidence",
      "bootstrap_seed"}},
    {"workload",
     {"source", "seed", "scale", "system_size", "file", "accept_all_statuses", "head",
      "rescale_load", "estimate_factor"}},
    {"engine", {"decay", "wcl_enforcement"}},
    {"policies", {"names"}},
    {"grid",
     {"starvation_delay_hours", "bar_heavy_users", "heavy_user_factor", "max_runtime_hours",
      "reservation_depth", "decay"}},
    {"seeds", {"list"}},
};

class Parser {
 public:
  Parser(std::istream& in, std::string origin, std::string base_dir)
      : origin_(std::move(origin)), base_dir_(std::move(base_dir)) {
    read(in);
  }

  ScenarioSpec build();

 private:
  [[noreturn]] void fail(int line, const std::string& message) const {
    throw SpecError(origin_ + ":" + std::to_string(line) + ": " + message);
  }

  void read(std::istream& in) {
    std::string raw;
    std::string section;
    int line = 0;
    while (std::getline(in, raw)) {
      ++line;
      const std::string text = trim(raw);
      if (text.empty() || text[0] == '#' || text[0] == ';') continue;
      if (text.front() == '[') {
        if (text.back() != ']') fail(line, "malformed section header '" + text + "'");
        section = trim(text.substr(1, text.size() - 2));
        const auto known =
            std::find_if(kSchema.begin(), kSchema.end(),
                         [&](const auto& s) { return s.first == section; });
        if (known == kSchema.end()) fail(line, "unknown section [" + section + "]");
        continue;
      }
      const std::size_t eq = text.find('=');
      if (eq == std::string::npos) fail(line, "expected 'key = value', got '" + text + "'");
      if (section.empty()) fail(line, "entry before any [section] header");
      Entry entry{section, trim(text.substr(0, eq)), trim(text.substr(eq + 1)), line};
      if (entry.key.empty()) fail(line, "empty key");
      if (entry.value.empty()) fail(line, "empty value for '" + entry.key + "'");
      const auto schema = std::find_if(kSchema.begin(), kSchema.end(),
                                       [&](const auto& s) { return s.first == section; });
      if (std::find(schema->second.begin(), schema->second.end(), entry.key) ==
          schema->second.end())
        fail(line, "unknown key '" + entry.key + "' in [" + section + "]");
      for (const Entry& seen : entries_)
        if (seen.section == entry.section && seen.key == entry.key)
          fail(line, "duplicate key '" + entry.key + "' in [" + section + "] (first at line " +
                         std::to_string(seen.line) + ")");
      entries_.push_back(std::move(entry));
    }
  }

  const Entry* find(const std::string& section, const std::string& key) const {
    for (const Entry& entry : entries_)
      if (entry.section == section && entry.key == key) return &entry;
    return nullptr;
  }

  // Typed readers: each returns the default when the key is absent and
  // fails with the entry's line number on a malformed value.
  double get_double(const std::string& section, const std::string& key, double fallback) const {
    const Entry* entry = find(section, key);
    return entry == nullptr ? fallback : to_double(*entry, entry->value);
  }

  std::uint64_t get_u64(const std::string& section, const std::string& key,
                        std::uint64_t fallback) const {
    const Entry* entry = find(section, key);
    return entry == nullptr ? fallback : to_u64(*entry, entry->value);
  }

  bool get_bool(const std::string& section, const std::string& key, bool fallback) const {
    const Entry* entry = find(section, key);
    return entry == nullptr ? fallback : to_bool(*entry, entry->value);
  }

  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback) const {
    const Entry* entry = find(section, key);
    return entry == nullptr ? fallback : entry->value;
  }

  double to_double(const Entry& entry, const std::string& text) const {
    try {
      std::size_t used = 0;
      const double value = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return value;
    } catch (...) {
      fail(entry.line, "'" + entry.key + "': not a number: '" + text + "'");
    }
  }

  std::uint64_t to_u64(const Entry& entry, const std::string& text) const {
    try {
      std::size_t used = 0;
      if (!text.empty() && text[0] == '-') throw std::invalid_argument(text);
      const unsigned long long value = std::stoull(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return value;
    } catch (...) {
      fail(entry.line, "'" + entry.key + "': not a non-negative integer: '" + text + "'");
    }
  }

  bool to_bool(const Entry& entry, const std::string& text) const {
    if (text == "true" || text == "yes" || text == "1") return true;
    if (text == "false" || text == "no" || text == "0") return false;
    fail(entry.line, "'" + entry.key + "': not a boolean (true/false): '" + text + "'");
  }

  /// "none" -> kNoTime, otherwise hours as a positive integer.
  Time to_hours(const Entry& entry, const std::string& text) const {
    if (text == "none") return kNoTime;
    const std::uint64_t value = to_u64(entry, text);
    if (value == 0) fail(entry.line, "'" + entry.key + "': hours must be >= 1 or 'none'");
    return hours(static_cast<Time>(value));
  }

  std::string origin_;
  std::string base_dir_;
  std::vector<Entry> entries_;
};

ScenarioSpec Parser::build() {
  ScenarioSpec spec;

  // --- [campaign] ----------------------------------------------------------
  const Entry* name = find("campaign", "name");
  if (name == nullptr) throw SpecError(origin_ + ": missing required [campaign] name");
  spec.name = name->value;

  const Entry* metrics = find("campaign", "metrics");
  if (metrics == nullptr) throw SpecError(origin_ + ": missing required [campaign] metrics");
  spec.metrics = split_list(metrics->value);
  if (spec.metrics.empty()) fail(metrics->line, "metrics: empty list");
  for (const std::string& metric : spec.metrics) {
    if (!psched::metrics::is_metric_name(metric))
      fail(metrics->line, "unknown metric '" + metric + "'");
    if (std::count(spec.metrics.begin(), spec.metrics.end(), metric) > 1)
      fail(metrics->line, "duplicate metric '" + metric + "'");
  }

  const double tolerance_hours = get_double("campaign", "tolerance_hours", 24.0);
  if (tolerance_hours < 0.0)
    fail(find("campaign", "tolerance_hours")->line, "tolerance_hours must be >= 0");
  spec.tolerance = static_cast<Time>(tolerance_hours * 3600.0);

  spec.bootstrap_resamples =
      static_cast<std::size_t>(get_u64("campaign", "bootstrap_resamples", 2000));
  if (spec.bootstrap_resamples == 0)
    fail(find("campaign", "bootstrap_resamples")->line, "bootstrap_resamples must be >= 1");
  spec.bootstrap_confidence = get_double("campaign", "bootstrap_confidence", 0.95);
  if (!(spec.bootstrap_confidence > 0.0 && spec.bootstrap_confidence < 1.0))
    fail(find("campaign", "bootstrap_confidence")->line,
         "bootstrap_confidence must be in (0, 1)");
  spec.bootstrap_seed = get_u64("campaign", "bootstrap_seed", 1);

  // --- [workload] ----------------------------------------------------------
  const std::string source = get_string("workload", "source", "ross");
  if (source == "ross") {
    spec.workload.source = WorkloadSpec::Source::Ross;
  } else if (source == "swf") {
    spec.workload.source = WorkloadSpec::Source::Swf;
  } else {
    fail(find("workload", "source")->line, "source must be 'ross' or 'swf', got '" + source + "'");
  }
  // Source-specific keys hard-reject on the wrong source: a 'scale' on an
  // SWF replay (or 'accept_all_statuses' on a synthetic trace) would
  // otherwise silently no-op — the exact failure mode this parser exists to
  // prevent.
  const bool is_swf = spec.workload.source == WorkloadSpec::Source::Swf;
  for (const char* ross_key : {"seed", "scale"})
    if (const Entry* entry = find("workload", ross_key); entry != nullptr && is_swf)
      fail(entry->line, std::string("'") + ross_key +
                            "' is only valid for source = ross (an SWF trace is fixed data)");
  if (const Entry* entry = find("workload", "accept_all_statuses");
      entry != nullptr && !is_swf)
    fail(entry->line, "'accept_all_statuses' is only valid for source = swf");
  spec.workload.seed = get_u64("workload", "seed", spec.workload.seed);
  spec.workload.scale = get_double("workload", "scale", 1.0);
  if (spec.workload.scale <= 0.0) fail(find("workload", "scale")->line, "scale must be > 0");
  spec.workload.system_size =
      static_cast<NodeCount>(get_u64("workload", "system_size", 0));
  spec.workload.swf_accept_all_statuses = get_bool("workload", "accept_all_statuses", false);
  spec.workload.head = static_cast<std::size_t>(get_u64("workload", "head", 0));
  spec.workload.rescale_load = get_double("workload", "rescale_load", 1.0);
  if (spec.workload.rescale_load <= 0.0)
    fail(find("workload", "rescale_load")->line, "rescale_load must be > 0");
  spec.workload.estimate_factor = get_double("workload", "estimate_factor", 0.0);
  if (spec.workload.estimate_factor != 0.0 && spec.workload.estimate_factor < 1.0)
    fail(find("workload", "estimate_factor")->line, "estimate_factor must be >= 1 (or 0 = off)");

  const Entry* file = find("workload", "file");
  if (spec.workload.source == WorkloadSpec::Source::Swf) {
    if (file == nullptr) throw SpecError(origin_ + ": swf source requires [workload] file");
    spec.workload.swf_file = file->value;
    if (!base_dir_.empty() && !file->value.empty() && file->value.front() != '/')
      spec.workload.swf_file = base_dir_ + "/" + file->value;
  } else if (file != nullptr) {
    fail(file->line, "'file' is only valid for source = swf");
  }

  // --- [engine] ------------------------------------------------------------
  spec.decay = get_double("engine", "decay", 0.9);
  if (!(spec.decay > 0.0 && spec.decay <= 1.0))
    fail(find("engine", "decay")->line, "decay must be in (0, 1]");
  const std::string wcl = get_string("engine", "wcl_enforcement", "never");
  if (wcl == "never") {
    spec.wcl_enforcement = sim::WclEnforcement::Never;
  } else if (wcl == "kill_if_needed") {
    spec.wcl_enforcement = sim::WclEnforcement::KillIfNeeded;
  } else if (wcl == "always") {
    spec.wcl_enforcement = sim::WclEnforcement::Always;
  } else {
    fail(find("engine", "wcl_enforcement")->line,
         "wcl_enforcement must be never | kill_if_needed | always, got '" + wcl + "'");
  }

  // --- [policies] ----------------------------------------------------------
  const Entry* names = find("policies", "names");
  if (names == nullptr) throw SpecError(origin_ + ": missing required [policies] names");
  spec.policy_names = split_list(names->value);
  if (spec.policy_names.empty()) fail(names->line, "names: empty list");
  for (const std::string& policy : spec.policy_names) {
    if (!policy_from_name(policy)) fail(names->line, "unknown policy '" + policy + "'");
    if (std::count(spec.policy_names.begin(), spec.policy_names.end(), policy) > 1)
      fail(names->line, "duplicate policy '" + policy + "'");
  }

  // --- [grid] --------------------------------------------------------------
  if (const Entry* axis = find("grid", "starvation_delay_hours"))
    for (const std::string& value : split_list(axis->value))
      spec.grid.starvation_delay.push_back(to_hours(*axis, value));
  if (const Entry* axis = find("grid", "bar_heavy_users"))
    for (const std::string& value : split_list(axis->value))
      spec.grid.bar_heavy_users.push_back(to_bool(*axis, value));
  if (const Entry* axis = find("grid", "heavy_user_factor"))
    for (const std::string& value : split_list(axis->value)) {
      const double factor = to_double(*axis, value);
      if (factor <= 0.0) fail(axis->line, "heavy_user_factor must be > 0");
      spec.grid.heavy_user_factor.push_back(factor);
    }
  if (const Entry* axis = find("grid", "max_runtime_hours"))
    for (const std::string& value : split_list(axis->value))
      spec.grid.max_runtime.push_back(to_hours(*axis, value));
  if (const Entry* axis = find("grid", "reservation_depth"))
    for (const std::string& value : split_list(axis->value)) {
      const auto depth = static_cast<int>(to_u64(*axis, value));
      if (depth < 1) fail(axis->line, "reservation_depth must be >= 1");
      spec.grid.reservation_depth.push_back(depth);
    }
  if (const Entry* axis = find("grid", "decay"))
    for (const std::string& value : split_list(axis->value)) {
      const double decay = to_double(*axis, value);
      if (!(decay > 0.0 && decay <= 1.0)) fail(axis->line, "grid decay must be in (0, 1]");
      spec.grid.decay.push_back(decay);
    }

  // --- [seeds] -------------------------------------------------------------
  if (const Entry* list = find("seeds", "list")) {
    for (const std::string& value : split_list(list->value))
      spec.seeds.push_back(to_u64(*list, value));
    if (spec.seeds.empty()) fail(list->line, "list: empty seed list");
    if (spec.workload.source == WorkloadSpec::Source::Swf && spec.seeds.size() > 1)
      fail(list->line,
           "an SWF trace is fixed data — multiple seeds would simulate identical replicates");
    for (const std::uint64_t seed : spec.seeds)
      if (std::count(spec.seeds.begin(), spec.seeds.end(), seed) > 1)
        fail(list->line, "duplicate seed " + std::to_string(seed));
  }

  return spec;
}

}  // namespace

std::size_t PolicyGrid::combinations() const {
  std::size_t n = 1;
  n *= std::max<std::size_t>(1, starvation_delay.size());
  n *= std::max<std::size_t>(1, bar_heavy_users.size());
  n *= std::max<std::size_t>(1, heavy_user_factor.size());
  n *= std::max<std::size_t>(1, max_runtime.size());
  n *= std::max<std::size_t>(1, reservation_depth.size());
  n *= std::max<std::size_t>(1, decay.size());
  return n;
}

std::vector<std::uint64_t> ScenarioSpec::effective_seeds() const {
  if (!seeds.empty()) return seeds;
  return {workload.seed};
}

ScenarioSpec parse_spec(std::istream& in, const std::string& origin, const std::string& base_dir) {
  return Parser(in, origin, base_dir).build();
}

ScenarioSpec parse_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpecError("parse_spec_file: cannot open " + path);
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir = slash == std::string::npos ? "" : path.substr(0, slash);
  return parse_spec(in, path, base_dir);
}

}  // namespace psched::scenario
