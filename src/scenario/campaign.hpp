#pragma once
// Campaign runner: expand a ScenarioSpec into PolicyConfig x workload x seed
// cells, dedupe them, shard the simulations through the thread-safe
// ExperimentRunner on the global pool, aggregate replicate seeds into
// mean + bootstrap confidence intervals, and write a structured results
// store (CSV rows per cell, JSON summary per aggregate) suitable for
// tools/summarize_benches.py-style diffing.
//
// Determinism contract: cell order, simulation results, aggregates and both
// writers are byte-identical for every parallelism level — each cell's
// simulation owns all its mutable state and everything after the sweep is
// serial. The same contract extends across crashes: with a journal enabled,
// a killed campaign resumed with CampaignOptions::resume restores finished
// cells bit-exactly from journal.jsonl (see scenario/journal.hpp) and the
// final cells.csv / summary.json are byte-identical to an uninterrupted run.
//
// Robustness contract: cells are fault-isolated. A cell that throws, times
// out (cell_timeout) or is cancelled (a tripped CampaignOptions::stop, e.g.
// SIGINT or a wall budget) becomes a status row in the results store instead
// of aborting the campaign; `keep_going = false` stops scheduling further
// cells after the first failure but still reports everything attempted.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "scenario/journal.hpp"
#include "scenario/spec.hpp"
#include "util/stats.hpp"
#include "util/stop_token.hpp"
#include "workload/swf.hpp"

namespace psched::scenario {

/// One simulation of the expanded grid. `index` is the position in
/// deterministic expansion order (seed-major, then policy name, then grid
/// axes); duplicates collapsed by `key` never make it into the plan.
struct CampaignCell {
  std::size_t index = 0;
  std::uint64_t seed = 0;       ///< workload seed (Ross) / the single SWF slot
  double decay = 0.9;           ///< engine fairshare decay for this cell
  PolicyConfig policy;
  std::string key;              ///< seed|decay|wcl|PolicyConfig::canonical_key()
};

struct CampaignPlan {
  std::vector<CampaignCell> cells;   ///< deduped, expansion order
  std::size_t expanded_cells = 0;    ///< before canonical-key dedup
  std::vector<std::uint64_t> seeds;  ///< effective seed list
};

/// Expand the grid: for every seed, every named policy, every combination of
/// grid-axis overrides (axes in declaration order, later axes fastest).
/// Overridden configs drop their preset display name (so names re-derive)
/// and knobs irrelevant to a cell's policy kind are normalized to defaults
/// before keying — a starvation-delay axis crossed over `cons.nomax` yields
/// ONE cell, not one per delay value.
CampaignPlan expand_campaign(const ScenarioSpec& spec);

/// The outcome of one cell: metrics when Ok, an error detail otherwise.
/// Pending cells were never attempted (the campaign stopped first).
struct CellResult {
  CampaignCell cell;
  CellStatus status = CellStatus::Pending;
  std::vector<double> metrics;  ///< spec.metrics order; Ok cells only
  std::string error;            ///< failure/timeout/cancellation detail
  bool restored = false;        ///< replayed from the journal, not simulated
  /// Per-cell observability, collected only while obs tracing is armed
  /// (CampaignResult::breakdown_enabled). Never feeds metrics or aggregates —
  /// the result rows stay byte-identical traced vs untraced.
  struct Breakdown {
    bool collected = false;      ///< this cell ran while obs was armed
    bool cache_hit = false;      ///< served by the experiment cache/single-flight
    double wall_seconds = 0.0;   ///< lane wall time (errors included)
    std::uint64_t events_delivered = 0;
    std::uint64_t scheduler_invocations = 0;
    double sim_makespan_seconds = 0.0;
    std::uint64_t fst_forks = 0;
    std::uint64_t fst_drained = 0;
    std::uint64_t fst_resolved_from_master = 0;
    std::uint64_t fst_peak_batch_bytes = 0;
  };
  Breakdown breakdown;
};

/// One policy cell aggregated across the replicate seeds.
struct AggregateResult {
  std::string policy;   ///< display name
  double decay = 0.9;
  std::size_t replicates = 0;
  std::vector<util::BootstrapCi> metrics;  ///< spec.metrics order
};

struct CampaignResult {
  ScenarioSpec spec;
  CampaignPlan plan;
  std::vector<CellResult> cells;          ///< expansion order
  /// Aggregates over the Ok cells only (a failed replicate simply drops out
  /// of its aggregate; an aggregate with no Ok cell is omitted).
  std::vector<AggregateResult> aggregates;
  /// Full per-cell reports (for figure-style tables); parallel to cells.
  /// Only meaningful when `reports_complete` — restored cells carry their
  /// journaled metrics but no report, and non-Ok cells have none.
  std::vector<metrics::PolicyReport> reports;
  bool reports_complete = false;
  /// True when the campaign-wide stop tripped (signal / wall budget) before
  /// every cell finished; pending/cancelled rows explain which cells.
  bool interrupted = false;
  std::size_t simulated_cells = 0;  ///< cells run in this process
  std::size_t restored_cells = 0;   ///< cells replayed from the journal
  std::size_t replayed_records = 0; ///< journal cell records read on resume
  /// True when the journal could not be opened or appended to: the campaign
  /// ran to completion anyway (degraded, not failed), summary.json carries
  /// `"journal": "degraded"`, and a later --resume re-simulates whatever
  /// went unjournaled. Results-store writes are never degraded — they throw.
  bool journal_degraded = false;
  std::string journal_error;  ///< first journal failure, when degraded
  /// True when obs tracing was armed while the campaign ran: cell breakdowns
  /// were collected and write_summary_json emits its "breakdown" section (a
  /// strippable block — see docs/observability.md).
  bool breakdown_enabled = false;
  /// Per-seed trace shape, for banners: jobs and machine size.
  struct TraceInfo {
    std::uint64_t seed = 0;
    std::size_t jobs = 0;
    NodeCount system_size = 0;
  };
  std::vector<TraceInfo> traces;
  /// SWF source only: what ingestion dropped and how the machine was sized.
  std::optional<workload::SwfReadResult> swf_info;

  std::size_t count(CellStatus status) const;
};

/// Which SWF ingestion path reads a spec's trace. Both produce byte-identical
/// workloads, counters and sizing (tests pin it); they differ only in peak
/// memory — Streaming with a `head` cap holds O(head + chunk) jobs while
/// Eager materializes the whole trace before truncating.
enum class SwfReaderKind {
  Eager,      ///< workload::read_swf_file + head transform
  Streaming,  ///< workload::read_swf_file_streaming with head pushed into the scan
};

struct CampaignOptions {
  /// Concurrent simulations per policy sweep: 0 = global pool size,
  /// 1 = serial. Results identical either way.
  std::size_t jobs = 0;
  /// Path of the append-only journal (journal.jsonl in the results dir).
  /// Empty disables journaling (and therefore resume). A fresh run truncates
  /// any stale journal at this path.
  std::string journal_path;
  /// Replay `journal_path` before running: cells journaled Ok are restored
  /// without simulating, failed/timed-out/cancelled cells re-run. Throws if
  /// the journal is missing or was written by a different spec.
  bool resume = false;
  /// false: stop scheduling new cells after the first failed cell (cells
  /// already in flight still finish and are reported).
  bool keep_going = true;
  /// Per-cell wall-clock budget in seconds (0 = none). A cell exceeding it
  /// is cancelled at its next event boundary and becomes a `timeout` row.
  double cell_timeout = 0.0;
  /// Campaign-wide stop (SIGINT/SIGTERM, wall budget). Once tripped, no new
  /// cells start, in-flight cells cancel at their next event boundary, and
  /// the result is marked `interrupted`.
  util::StopToken stop;
  /// SWF ingestion path (byte-identical stores either way; see SwfReaderKind).
  SwfReaderKind swf_reader = SwfReaderKind::Streaming;
};

/// Build the workload a spec describes for one replicate seed (the Ross
/// generator path mirrors psched_run's span scaling so spec runs reproduce
/// CLI/figure-binary traces exactly). Exposed for tests and tooling.
Workload build_workload(const WorkloadSpec& spec, std::uint64_t seed,
                        workload::SwfReadResult* swf_info = nullptr,
                        SwfReaderKind reader = SwfReaderKind::Eager);

/// Run the whole campaign. Throws on unresolvable specs, journal corruption
/// or resume mismatches; per-cell simulation failures do NOT throw — they
/// become status rows in the returned result (fault isolation).
CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options = {});

/// Results store: one CSV row per cell
/// ("index,seed,decay,wcl_enforcement,policy,status,<metric>.."; non-Ok rows
/// leave the metric fields empty) and a JSON summary of the aggregates plus
/// per-status cell counts and a cell_errors array. Both deterministic in the
/// result, and both independent of how cells were obtained (simulated vs
/// restored) so resumed runs diff clean against uninterrupted ones.
void write_cells_csv(const CampaignResult& result, std::ostream& out);
void write_summary_json(const CampaignResult& result, std::ostream& out);

}  // namespace psched::scenario
