#pragma once
// Campaign runner: expand a ScenarioSpec into PolicyConfig x workload x seed
// cells, dedupe them, shard the simulations through the thread-safe
// ExperimentRunner on the global pool, aggregate replicate seeds into
// mean + bootstrap confidence intervals, and write a structured results
// store (CSV rows per cell, JSON summary per aggregate) suitable for
// tools/summarize_benches.py-style diffing.
//
// Determinism contract: cell order, simulation results, aggregates and both
// writers are byte-identical for every parallelism level — the sweep reuses
// ExperimentRunner::run_all's guarantee and everything after it is serial.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "scenario/spec.hpp"
#include "util/stats.hpp"
#include "workload/swf.hpp"

namespace psched::scenario {

/// One simulation of the expanded grid. `index` is the position in
/// deterministic expansion order (seed-major, then policy name, then grid
/// axes); duplicates collapsed by `key` never make it into the plan.
struct CampaignCell {
  std::size_t index = 0;
  std::uint64_t seed = 0;       ///< workload seed (Ross) / the single SWF slot
  double decay = 0.9;           ///< engine fairshare decay for this cell
  PolicyConfig policy;
  std::string key;              ///< seed|decay|wcl|PolicyConfig::canonical_key()
};

struct CampaignPlan {
  std::vector<CampaignCell> cells;   ///< deduped, expansion order
  std::size_t expanded_cells = 0;    ///< before canonical-key dedup
  std::vector<std::uint64_t> seeds;  ///< effective seed list
};

/// Expand the grid: for every seed, every named policy, every combination of
/// grid-axis overrides (axes in declaration order, later axes fastest).
/// Overridden configs drop their preset display name (so names re-derive)
/// and knobs irrelevant to a cell's policy kind are normalized to defaults
/// before keying — a starvation-delay axis crossed over `cons.nomax` yields
/// ONE cell, not one per delay value.
CampaignPlan expand_campaign(const ScenarioSpec& spec);

/// All selected metrics of one simulated cell, in spec.metrics order.
struct CellResult {
  CampaignCell cell;
  std::vector<double> metrics;
};

/// One policy cell aggregated across the replicate seeds.
struct AggregateResult {
  std::string policy;   ///< display name
  double decay = 0.9;
  std::size_t replicates = 0;
  std::vector<util::BootstrapCi> metrics;  ///< spec.metrics order
};

struct CampaignResult {
  ScenarioSpec spec;
  CampaignPlan plan;
  std::vector<CellResult> cells;          ///< expansion order
  std::vector<AggregateResult> aggregates;
  /// Full per-cell reports (for figure-style tables); parallel to cells.
  std::vector<metrics::PolicyReport> reports;
  /// Per-seed trace shape, for banners: jobs and machine size.
  struct TraceInfo {
    std::uint64_t seed = 0;
    std::size_t jobs = 0;
    NodeCount system_size = 0;
  };
  std::vector<TraceInfo> traces;
  /// SWF source only: what ingestion dropped and how the machine was sized.
  std::optional<workload::SwfReadResult> swf_info;
};

struct CampaignOptions {
  /// Concurrent simulations per policy sweep (ExperimentRunner::run_all
  /// jobs): 0 = global pool size, 1 = serial. Results identical either way.
  std::size_t jobs = 0;
};

/// Build the workload a spec describes for one replicate seed (the Ross
/// generator path mirrors psched_run's span scaling so spec runs reproduce
/// CLI/figure-binary traces exactly). Exposed for tests and tooling.
Workload build_workload(const WorkloadSpec& spec, std::uint64_t seed,
                        workload::SwfReadResult* swf_info = nullptr);

/// Run the whole campaign. Throws on unresolvable specs or simulation
/// errors; partial results are not returned.
CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options = {});

/// Results store: one CSV row per cell
/// ("index,seed,decay,wcl_enforcement,policy,<metric>..") and a JSON summary
/// of the aggregates. Both deterministic in the result.
void write_cells_csv(const CampaignResult& result, std::ostream& out);
void write_summary_json(const CampaignResult& result, std::ostream& out);

}  // namespace psched::scenario
