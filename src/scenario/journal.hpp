#pragma once
// Crash-safe campaign result journal: an append-only journal.jsonl in the
// results directory, one fsynced record per finished cell. Because every
// record is durable the instant it is written, a killed campaign (OOM,
// SIGKILL, container eviction) loses at most the cells that were in flight —
// --resume replays the journal, restores every completed cell bit-exactly
// (metric values round-trip through shortest-repr decimal), and simulates
// only what is missing.
//
// File format, one JSON object per line:
//   {"kind":"header","version":1,"campaign":...,"spec_fingerprint":"<hex>","cells":N}
//   {"kind":"cell","key":"...","index":i,"status":"ok","metrics":[...]}
//   {"kind":"cell","key":"...","index":i,"status":"failed","error":"..."}
// Replay rules: the final line may be torn (a crash mid-append) and is
// tolerated; a malformed line anywhere earlier is corruption and is rejected
// with its line number; duplicate cell keys are legal and the last record
// wins (a resumed run re-runs failed cells and appends their new outcome).
//
// Cell identity is content-addressed, not positional: workload fingerprint +
// engine knobs + PolicyConfig::canonical_key() + the metric set (see
// persistent_cell_key in campaign.cpp), so a journal can never hand a result
// to a cell it was not computed for. The header carries a whole-spec
// fingerprint: resuming against an edited spec is rejected outright.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace psched::scenario {

/// Where a campaign cell ended up. Pending = not attempted (yet, or the run
/// stopped first); the other four are journaled terminal states.
enum class CellStatus { Ok, Failed, Timeout, Cancelled, Pending };

const char* cell_status_name(CellStatus status);

/// Stable content fingerprint of a workload (machine size + every job's
/// identity-relevant fields). Part of each cell's journal key, so results
/// can never be resumed onto a different trace.
std::uint64_t workload_fingerprint(const Workload& workload);

/// Stable fingerprint over every semantic field of a spec (workload source
/// and transforms, policy grid, seeds, metrics, engine knobs, bootstrap
/// parameters). Stored in the journal header; --resume requires an exact
/// match, so an edited spec cannot silently inherit stale results.
std::uint64_t spec_fingerprint(const ScenarioSpec& spec);

/// Round-trip double formatting: the shortest decimal representation that
/// parses back to exactly `value` — journal metrics and the results store
/// share it, which is what makes resume byte-identical.
std::string format_round_trip_double(double value);

/// Minimal JSON string escaping for the journal and summary writers.
std::string json_escape(const std::string& text);

struct JournalHeader {
  std::string campaign;
  std::uint64_t spec_fingerprint = 0;
  std::size_t cells = 0;  ///< planned unique cells
};

struct JournalCellRecord {
  std::string key;
  std::size_t index = 0;  ///< plan index, informational (identity is `key`)
  CellStatus status = CellStatus::Pending;
  std::vector<double> metrics;  ///< spec.metrics order; only for status Ok
  std::string error;            ///< failure/cancellation detail otherwise
};

/// Append-only writer. Records are durable when record() returns (single
/// write() + fsync per line); thread-safe, so sweep lanes journal cells the
/// moment they finish.
class CampaignJournal {
 public:
  /// Open (or create) `path` for appending; a new/empty journal gets the
  /// fsynced header record first. Throws std::runtime_error on I/O errors.
  CampaignJournal(std::string path, const JournalHeader& header);
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  void record(const JournalCellRecord& cell);

  const std::string& path() const { return path_; }

 private:
  void append_line(const std::string& line);

  std::string path_;
  int fd_ = -1;
  std::mutex mutex_;
};

struct JournalReplay {
  JournalHeader header;
  std::map<std::string, JournalCellRecord> cells;  ///< last record per key
  std::size_t records = 0;   ///< cell records replayed, duplicates included
  bool torn_tail = false;    ///< final line was incomplete and was dropped
};

/// Replay a journal for --resume. Throws std::runtime_error when the file is
/// missing, the header is absent, or any non-final line is malformed (the
/// message names `path:line`). A torn final line only sets `torn_tail`.
JournalReplay replay_journal(const std::string& path);

}  // namespace psched::scenario
