#pragma once
// Declarative scenario specs: one text file describes a whole campaign — the
// workload source (synthetic Ross with overrides, or an SWF archive plus
// transforms), a policy grid (named policies crossed with knob-override
// axes), a replication seed list, and the metrics to record. The campaign
// runner (scenario/campaign.hpp) expands this into simulation cells.
//
// Format: INI-style sections of `key = value` lines, full-line comments
// starting with '#' or ';', no external parser dependencies. Unknown
// sections, unknown keys, duplicate keys and malformed values are all
// rejected with the offending line number. See docs/campaign_specs.md for
// the reference and examples/campaigns/ for committed specs.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "sim/engine.hpp"

namespace psched::scenario {

/// Where the campaign's workload comes from and how it is shaped. Transforms
/// apply in a fixed order: head, then rescale_load, then estimate_factor.
struct WorkloadSpec {
  enum class Source { Ross, Swf };
  Source source = Source::Ross;

  // Ross generator knobs ([workload] seed/scale; seed is the base value the
  // [seeds] list replaces per replicate).
  std::uint64_t seed = 20021201;
  double scale = 1.0;

  /// 0 = source default (generator config / SWF header sizing).
  NodeCount system_size = 0;

  /// SWF source only; resolved relative to the spec file's directory.
  std::string swf_file;
  /// SWF source only: ingest every status (disables the completed-jobs
  /// filter, SwfReadOptions::accepted_statuses).
  bool swf_accept_all_statuses = false;

  // Transforms (identity defaults).
  std::size_t head = 0;          ///< keep first N jobs (0 = all)
  double rescale_load = 1.0;     ///< workload::rescale_load factor
  double estimate_factor = 0.0;  ///< workload::with_estimate_factor (0 = off)
};

/// Knob-override axes crossed over every named policy. An empty axis means
/// "leave the policy's own value". kNoTime in a Time axis means "none".
struct PolicyGrid {
  std::vector<Time> starvation_delay;   ///< CPlant family
  std::vector<bool> bar_heavy_users;    ///< CPlant family
  std::vector<double> heavy_user_factor;
  std::vector<Time> max_runtime;        ///< engine-level 72 h style limit
  std::vector<int> reservation_depth;   ///< Depth policy
  std::vector<double> decay;            ///< engine-level fairshare decay

  std::size_t combinations() const;
};

struct ScenarioSpec {
  std::string name;
  std::vector<std::string> metrics;  ///< validated against metrics::is_metric_name

  Time tolerance = hours(24);  ///< FST unfairness tolerance
  std::size_t bootstrap_resamples = 2000;
  double bootstrap_confidence = 0.95;
  std::uint64_t bootstrap_seed = 1;

  WorkloadSpec workload;

  double decay = 0.9;  ///< engine fairshare decay (grid decay axis overrides)
  sim::WclEnforcement wcl_enforcement = sim::WclEnforcement::Never;

  std::vector<std::string> policy_names;  ///< resolved via policy_from_name
  PolicyGrid grid;

  /// Replication seeds (Ross source only; empty = the [workload] seed).
  std::vector<std::uint64_t> seeds;

  /// The seeds actually simulated: the list, or {workload.seed} when empty.
  std::vector<std::uint64_t> effective_seeds() const;
};

/// Parse and validate a spec. `origin` labels error messages ("file.spec:12:
/// unknown key ..."); `base_dir` resolves relative [workload] file paths
/// (empty = leave as written). Throws SpecError on any problem.
ScenarioSpec parse_spec(std::istream& in, const std::string& origin,
                        const std::string& base_dir = "");
ScenarioSpec parse_spec_file(const std::string& path);

/// All spec problems — syntax, unknown keys, bad values, semantic conflicts —
/// carry the spec origin and line number in what().
struct SpecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace psched::scenario
