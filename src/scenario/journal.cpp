#include "scenario/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/retry.hpp"

namespace psched::scenario {

const char* cell_status_name(CellStatus status) {
  switch (status) {
    case CellStatus::Ok: return "ok";
    case CellStatus::Failed: return "failed";
    case CellStatus::Timeout: return "timeout";
    case CellStatus::Cancelled: return "cancelled";
    case CellStatus::Pending: return "pending";
  }
  return "?";
}

std::uint64_t workload_fingerprint(const Workload& workload) {
  util::Fnv1a hash;
  hash.mix(workload.system_size);
  hash.mix(workload.jobs.size());
  for (const Job& job : workload.jobs) {
    hash.mix(job.user);
    hash.mix(job.group);
    hash.mix(job.submit);
    hash.mix(job.runtime);
    hash.mix(job.wcl);
    hash.mix(job.nodes);
  }
  return hash.digest();
}

std::uint64_t spec_fingerprint(const ScenarioSpec& spec) {
  util::Fnv1a hash;
  hash.mix(std::string_view(spec.name));
  hash.mix(spec.metrics.size());
  for (const std::string& metric : spec.metrics) hash.mix(std::string_view(metric));
  hash.mix(spec.tolerance);
  hash.mix(spec.bootstrap_resamples);
  hash.mix(spec.bootstrap_confidence);
  hash.mix(spec.bootstrap_seed);
  const WorkloadSpec& w = spec.workload;
  hash.mix(w.source);
  hash.mix(w.seed);
  hash.mix(w.scale);
  hash.mix(w.system_size);
  hash.mix(std::string_view(w.swf_file));
  hash.mix(static_cast<int>(w.swf_accept_all_statuses));
  hash.mix(w.head);
  hash.mix(w.rescale_load);
  hash.mix(w.estimate_factor);
  hash.mix(spec.decay);
  hash.mix(spec.wcl_enforcement);
  hash.mix(spec.policy_names.size());
  for (const std::string& name : spec.policy_names) hash.mix(std::string_view(name));
  const PolicyGrid& grid = spec.grid;
  hash.mix(grid.starvation_delay.size());
  for (const Time t : grid.starvation_delay) hash.mix(t);
  hash.mix(grid.bar_heavy_users.size());
  for (const bool b : grid.bar_heavy_users) hash.mix(static_cast<int>(b));
  hash.mix(grid.heavy_user_factor.size());
  for (const double f : grid.heavy_user_factor) hash.mix(f);
  hash.mix(grid.max_runtime.size());
  for (const Time t : grid.max_runtime) hash.mix(t);
  hash.mix(grid.reservation_depth.size());
  for (const int d : grid.reservation_depth) hash.mix(d);
  hash.mix(grid.decay.size());
  for (const double d : grid.decay) hash.mix(d);
  hash.mix(spec.seeds.size());
  for (const std::uint64_t seed : spec.seeds) hash.mix(seed);
  return hash.digest();
}

std::string format_round_trip_double(double value) {
  for (int precision = 1; precision < std::numeric_limits<double>::max_digits10; ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << value;
    if (std::stod(out.str()) == value) return out.str();
  }
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

// ---------------------------------------------------------------------------
// A purpose-built parser for the journal's flat JSON lines: one object per
// line, string keys, values limited to strings, numbers and arrays of
// numbers. Strict enough to flag corruption, small enough to need no deps.

struct JsonValue {
  enum class Kind { String, Number, Numbers };
  Kind kind = Kind::String;
  std::string text;
  double number = 0.0;
  std::vector<double> numbers;
};

class LineParser {
 public:
  explicit LineParser(const std::string& line) : line_(line) {}

  std::map<std::string, JsonValue> parse_object() {
    std::map<std::string, JsonValue> object;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_ws();
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        object[key] = parse_value();
        skip_ws();
        const char c = next();
        if (c == '}') break;
        if (c != ',') throw error("expected ',' or '}'");
      }
    }
    skip_ws();
    if (pos_ != line_.size()) throw error("trailing bytes after object");
    return object;
  }

 private:
  JsonValue parse_value() {
    JsonValue value;
    const char c = peek();
    if (c == '"') {
      value.kind = JsonValue::Kind::String;
      value.text = parse_string();
    } else if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::Numbers;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        skip_ws();
        value.numbers.push_back(parse_number());
        skip_ws();
        const char d = next();
        if (d == ']') break;
        if (d != ',') throw error("expected ',' or ']'");
      }
    } else {
      value.kind = JsonValue::Kind::Number;
      value.number = parse_number();
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= line_.size()) throw error("unterminated string");
      const char c = line_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= line_.size()) throw error("unterminated escape");
      const char e = line_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > line_.size()) throw error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = line_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else throw error("bad \\u escape digit");
          }
          // The writer only \u-escapes control characters; anything wider is
          // preserved as a replacement byte rather than rejected.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: throw error("unknown escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < line_.size() && (std::isdigit(static_cast<unsigned char>(line_[pos_])) ||
                                   std::strchr("+-.eEnaif", line_[pos_]) != nullptr))
      ++pos_;  // accepts nan/inf spellings the round-trip writer can emit
    if (pos_ == start) throw error("expected a number");
    const std::string text = line_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double value = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return value;
    } catch (const std::exception&) {
      throw error("bad number '" + text + "'");
    }
  }

  char peek() const { return pos_ < line_.size() ? line_[pos_] : '\0'; }
  char next() {
    if (pos_ >= line_.size()) throw error("unexpected end of line");
    return line_[pos_++];
  }
  void expect(char c) {
    if (next() != c) throw error(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < line_.size() && (line_[pos_] == ' ' || line_[pos_] == '\t')) ++pos_;
  }
  std::runtime_error error(const std::string& message) const {
    return std::runtime_error(message);
  }

  const std::string& line_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const std::map<std::string, JsonValue>& object, const std::string& key,
                         JsonValue::Kind kind) {
  const auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("missing field \"" + key + "\"");
  if (it->second.kind != kind) throw std::runtime_error("wrong type for \"" + key + "\"");
  return it->second;
}

CellStatus status_from_name(const std::string& name) {
  for (const CellStatus status : {CellStatus::Ok, CellStatus::Failed, CellStatus::Timeout,
                                  CellStatus::Cancelled, CellStatus::Pending})
    if (name == cell_status_name(status)) return status;
  throw std::runtime_error("unknown status \"" + name + "\"");
}

}  // namespace

CampaignJournal::CampaignJournal(std::string path, const JournalHeader& header)
    : path_(std::move(path)) {
  const int open_err = util::retry_io([&]() -> int {
    if (const int injected = PSCHED_FAULT("journal.open")) return injected;
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    return fd_ < 0 ? errno : 0;
  });
  if (open_err != 0)
    throw std::runtime_error("campaign journal: cannot open " + path_ + ": " +
                             std::strerror(open_err));
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    std::ostringstream line;
    line << "{\"kind\":\"header\",\"version\":1,\"campaign\":\"" << json_escape(header.campaign)
         << "\",\"spec_fingerprint\":\"" << hex64(header.spec_fingerprint)
         << "\",\"cells\":" << header.cells << "}\n";
    append_line(line.str());
  }
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CampaignJournal::append_line(const std::string& line) {
  obs::count(obs::Counter::kJournalAppends);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t off = 0;
  while (off < line.size()) {
    ssize_t written = -1;
    const int err = util::retry_io([&]() -> int {
      if (const int injected = PSCHED_FAULT("journal.append.write")) return injected;
      written = ::write(fd_, line.data() + off, line.size() - off);
      return written < 0 ? errno : 0;
    });
    if (err != 0)
      throw std::runtime_error("campaign journal: write to " + path_ + " failed: " +
                               std::strerror(err));
    off += static_cast<std::size_t>(written);
  }
  const int fsync_err = util::retry_io([&]() -> int {
    if (const int injected = PSCHED_FAULT("journal.append.fsync")) return injected;
    return ::fsync(fd_) != 0 ? errno : 0;
  });
  if (fsync_err != 0)
    throw std::runtime_error("campaign journal: fsync of " + path_ + " failed: " +
                             std::strerror(fsync_err));
}

void CampaignJournal::record(const JournalCellRecord& cell) {
  std::ostringstream line;
  line << "{\"kind\":\"cell\",\"key\":\"" << json_escape(cell.key) << "\",\"index\":" << cell.index
       << ",\"status\":\"" << cell_status_name(cell.status) << '"';
  if (cell.status == CellStatus::Ok) {
    line << ",\"metrics\":[";
    for (std::size_t m = 0; m < cell.metrics.size(); ++m)
      line << (m != 0 ? "," : "") << format_round_trip_double(cell.metrics[m]);
    line << ']';
  } else {
    line << ",\"error\":\"" << json_escape(cell.error) << '"';
  }
  line << "}\n";
  append_line(line.str());
}

JournalReplay replay_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("campaign journal: cannot read " + path);
  const int read_err =
      util::retry_io([] { return PSCHED_FAULT("journal.replay.read"); });
  if (read_err != 0)
    throw std::runtime_error("campaign journal: read " + path + ": " + std::strerror(read_err));
  std::string contents((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad())
    throw std::runtime_error("campaign journal: read " + path + " failed");

  JournalReplay replay;
  bool saw_header = false;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos < contents.size()) {
    const std::size_t newline = contents.find('\n', pos);
    const bool terminated = newline != std::string::npos;
    const std::string line =
        contents.substr(pos, (terminated ? newline : contents.size()) - pos);
    pos = terminated ? newline + 1 : contents.size();
    ++line_number;
    const bool is_final = pos >= contents.size();
    try {
      if (line.empty()) {
        if (!is_final) throw std::runtime_error("empty line");
        continue;
      }
      std::map<std::string, JsonValue> object = LineParser(line).parse_object();
      const std::string kind = require(object, "kind", JsonValue::Kind::String).text;
      if (kind == "header") {
        if (saw_header) throw std::runtime_error("duplicate header record");
        saw_header = true;
        replay.header.campaign = require(object, "campaign", JsonValue::Kind::String).text;
        const std::string fp =
            require(object, "spec_fingerprint", JsonValue::Kind::String).text;
        replay.header.spec_fingerprint = std::stoull(fp, nullptr, 16);
        replay.header.cells =
            static_cast<std::size_t>(require(object, "cells", JsonValue::Kind::Number).number);
      } else if (kind == "cell") {
        if (!saw_header) throw std::runtime_error("cell record before the header");
        JournalCellRecord cell;
        cell.key = require(object, "key", JsonValue::Kind::String).text;
        cell.index =
            static_cast<std::size_t>(require(object, "index", JsonValue::Kind::Number).number);
        cell.status = status_from_name(require(object, "status", JsonValue::Kind::String).text);
        if (cell.status == CellStatus::Ok)
          cell.metrics = require(object, "metrics", JsonValue::Kind::Numbers).numbers;
        else if (object.count("error"))
          cell.error = require(object, "error", JsonValue::Kind::String).text;
        ++replay.records;
        replay.cells[cell.key] = std::move(cell);  // duplicates: last wins
      } else {
        throw std::runtime_error("unknown record kind \"" + kind + "\"");
      }
    } catch (const std::exception& error) {
      // A torn final line is the expected signature of a crash mid-append —
      // drop it. Anything earlier (or a cleanly terminated bad final line
      // with records after it) is corruption and must not be papered over.
      if (is_final) {
        replay.torn_tail = true;
        break;
      }
      throw std::runtime_error(path + ":" + std::to_string(line_number) +
                               ": corrupt journal record (" + error.what() + ")");
    }
  }
  if (!saw_header)
    throw std::runtime_error(path + ": no journal header record" +
                             (replay.torn_tail ? " (file ends in a torn line)" : ""));
  return replay;
}

}  // namespace psched::scenario
