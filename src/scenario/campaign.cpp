#include "scenario/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "metrics/fst.hpp"
#include "metrics/selection.hpp"
#include "obs/obs.hpp"
#include "sim/experiment.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/transform.hpp"

namespace psched::scenario {

namespace {

/// Reset knobs the cell's policy kind never reads to their defaults, so two
/// grid cells that would simulate identically share one canonical key. The
/// simulation is unchanged: make_scheduler forwards these values but the
/// schedulers only consult them behind the corresponding kind/flag.
PolicyConfig normalize_irrelevant_knobs(PolicyConfig config) {
  if (config.kind != PolicyKind::Cplant) {
    config.starvation_delay = hours(24);
    config.bar_heavy_users = false;
    config.heavy_user_factor = 4.0;
  } else {
    if (config.starvation_delay == kNoTime) config.bar_heavy_users = false;
    if (!config.bar_heavy_users) config.heavy_user_factor = 4.0;
  }
  if (config.kind != PolicyKind::Depth) config.reservation_depth = 4;
  return config;
}

std::string cell_key(const CampaignCell& cell, sim::WclEnforcement wcl) {
  std::ostringstream key;
  key << "seed=" << cell.seed << "|decay=" << std::hexfloat << cell.decay << std::defaultfloat
      << "|wcl=" << static_cast<int>(wcl) << '|' << cell.policy.canonical_key();
  return key.str();
}

/// Journal identity of a cell: the in-plan key prefixed with a fingerprint
/// of everything *outside* the key that shapes the cell's numbers — the
/// workload content, the FST tolerance and the metric set. Content-addressed,
/// so a journal can never hand a result to a cell it was not computed for.
std::string persistent_cell_key(std::uint64_t workload_fp, const ScenarioSpec& spec,
                                const CampaignCell& cell) {
  util::Fnv1a env;
  env.mix(workload_fp);
  env.mix(spec.tolerance);
  env.mix(spec.metrics.size());
  for (const std::string& metric : spec.metrics) env.mix(std::string_view(metric));
  char prefix[24];
  std::snprintf(prefix, sizeof(prefix), "env=%016llx|",
                static_cast<unsigned long long>(env.digest()));
  return prefix + cell.key;
}

const char* wcl_name(sim::WclEnforcement wcl) {
  switch (wcl) {
    case sim::WclEnforcement::Never: return "never";
    case sim::WclEnforcement::KillIfNeeded: return "kill_if_needed";
    case sim::WclEnforcement::Always: return "always";
  }
  return "?";
}

}  // namespace

std::size_t CampaignResult::count(CellStatus status) const {
  std::size_t n = 0;
  for (const CellResult& cell : cells)
    if (cell.status == status) ++n;
  return n;
}

CampaignPlan expand_campaign(const ScenarioSpec& spec) {
  CampaignPlan plan;
  plan.seeds = spec.effective_seeds();

  // Axis helpers: iterate the override list, or a single "leave it" slot.
  const auto axis_size = [](std::size_t n) { return std::max<std::size_t>(1, n); };
  const PolicyGrid& grid = spec.grid;

  std::set<std::string> seen_keys;
  for (const std::uint64_t seed : plan.seeds) {
    for (const std::string& name : spec.policy_names) {
      const PolicyConfig base = *policy_from_name(name);
      for (std::size_t a = 0; a < axis_size(grid.starvation_delay.size()); ++a)
        for (std::size_t b = 0; b < axis_size(grid.bar_heavy_users.size()); ++b)
          for (std::size_t c = 0; c < axis_size(grid.heavy_user_factor.size()); ++c)
            for (std::size_t d = 0; d < axis_size(grid.max_runtime.size()); ++d)
              for (std::size_t e = 0; e < axis_size(grid.reservation_depth.size()); ++e)
                for (std::size_t f = 0; f < axis_size(grid.decay.size()); ++f) {
                  ++plan.expanded_cells;
                  CampaignCell cell;
                  cell.seed = seed;
                  cell.decay = grid.decay.empty() ? spec.decay : grid.decay[f];
                  cell.policy = base;
                  if (!grid.starvation_delay.empty())
                    cell.policy.starvation_delay = grid.starvation_delay[a];
                  if (!grid.bar_heavy_users.empty())
                    cell.policy.bar_heavy_users = grid.bar_heavy_users[b];
                  if (!grid.heavy_user_factor.empty())
                    cell.policy.heavy_user_factor = grid.heavy_user_factor[c];
                  if (!grid.max_runtime.empty()) cell.policy.max_runtime = grid.max_runtime[d];
                  if (!grid.reservation_depth.empty())
                    cell.policy.reservation_depth = grid.reservation_depth[e];
                  // Preset names (the paper policies carry one) would go
                  // stale under overrides and would defeat canonical-key
                  // dedup; always re-derive from the knobs.
                  cell.policy.name.clear();
                  cell.policy = normalize_irrelevant_knobs(cell.policy);
                  cell.key = cell_key(cell, spec.wcl_enforcement);
                  if (!seen_keys.insert(cell.key).second) continue;
                  cell.index = plan.cells.size();
                  plan.cells.push_back(std::move(cell));
                }
    }
  }
  return plan;
}

Workload build_workload(const WorkloadSpec& spec, std::uint64_t seed,
                        workload::SwfReadResult* swf_info, SwfReaderKind reader) {
  Workload trace;
  bool head_applied = false;
  if (spec.source == WorkloadSpec::Source::Swf) {
    workload::SwfReadOptions options;
    if (spec.swf_accept_all_statuses) options.accepted_statuses.clear();
    // The streaming reader takes the head cap inside the scan, bounding peak
    // memory at O(head + chunk); the result (workload, counters, sizing) is
    // byte-identical to eager read + head truncation, so the reader choice
    // can never change a results store.
    workload::SwfReadResult read =
        reader == SwfReaderKind::Streaming
            ? workload::read_swf_file_streaming(spec.swf_file, spec.system_size, options,
                                                spec.head)
            : workload::read_swf_file(spec.swf_file, spec.system_size, options);
    head_applied = reader == SwfReaderKind::Streaming;
    trace = read.workload;  // a view bump: the job table stays shared
    if (swf_info != nullptr) *swf_info = std::move(read);
  } else {
    workload::GeneratorConfig generator;
    generator.seed = seed;
    generator.count_scale = spec.scale;
    if (spec.system_size > 0) generator.system_size = spec.system_size;
    // Same span scaling as psched_run / the figure binaries, so a spec with
    // matching (seed, scale) reproduces their trace byte-identically.
    if (spec.scale < 1.0)
      generator.span = std::max<Time>(
          weeks(4),
          static_cast<Time>(static_cast<double>(workload::kRossTraceSpan) * spec.scale));
    trace = workload::generate_ross_workload(generator);
  }
  if (spec.head > 0 && !head_applied) trace = workload::head(trace, spec.head);
  if (spec.rescale_load != 1.0) trace = workload::rescale_load(trace, spec.rescale_load);
  if (spec.estimate_factor > 0.0)
    trace = workload::with_estimate_factor(trace, spec.estimate_factor);
  return trace;
}

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
  obs::Span campaign_span("campaign");
  if (obs::armed()) campaign_span.set_arg(spec.name);
  CampaignResult result;
  result.spec = spec;
  // Sampled once: a breakdown collected under a mid-run arming change would
  // be partial, and the summary block must match what the cells recorded.
  result.breakdown_enabled = obs::armed();
  result.plan = expand_campaign(spec);
  const std::size_t n = result.plan.cells.size();

  // One workload per replicate seed, built up front (groups with different
  // engine knobs share it), fingerprinted for the journal cell keys.
  std::vector<std::pair<std::uint64_t, Workload>> workloads;
  std::vector<std::uint64_t> workload_fps;
  for (const std::uint64_t seed : result.plan.seeds) {
    obs::Span build_span("workload-build");
    if (obs::armed()) build_span.set_arg("seed=" + std::to_string(seed));
    workload::SwfReadResult swf_info;
    const bool want_swf = spec.workload.source == WorkloadSpec::Source::Swf && !result.swf_info;
    workloads.emplace_back(seed, build_workload(spec.workload, seed,
                                                want_swf ? &swf_info : nullptr,
                                                options.swf_reader));
    if (want_swf) result.swf_info = std::move(swf_info);
    workload_fps.push_back(workload_fingerprint(workloads.back().second));
    CampaignResult::TraceInfo info;
    info.seed = seed;
    info.jobs = workloads.back().second.jobs.size();
    info.system_size = workloads.back().second.system_size;
    result.traces.push_back(info);
  }
  const auto seed_slot = [&](std::uint64_t seed) -> std::size_t {
    for (std::size_t i = 0; i < workloads.size(); ++i)
      if (workloads[i].first == seed) return i;
    throw std::logic_error("run_campaign: seed without workload");
  };

  // Journal identity: whole-spec fingerprint (header) + per-cell keys.
  const std::uint64_t spec_fp = spec_fingerprint(spec);
  std::vector<std::string> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = persistent_cell_key(workload_fps[seed_slot(result.plan.cells[i].seed)], spec,
                                  result.plan.cells[i]);

  // Resume: replay the journal, then restore Ok cells by key below. Failed,
  // timed-out and cancelled records stay in the map but do not restore, so
  // those cells re-run (their new outcome is appended — last record wins).
  std::map<std::string, JournalCellRecord> journaled;
  if (options.resume) {
    if (options.journal_path.empty())
      throw std::runtime_error("campaign resume requires a journal path");
    obs::Span replay_span("journal-replay");
    JournalReplay replay = replay_journal(options.journal_path);
    if (replay.header.spec_fingerprint != spec_fp)
      throw std::runtime_error(options.journal_path +
                               ": journal was written by a different spec "
                               "(fingerprint mismatch); refusing to resume");
    result.replayed_records = replay.records;
    journaled = std::move(replay.cells);
  }
  std::unique_ptr<CampaignJournal> journal;
  if (!options.journal_path.empty()) {
    if (!options.resume) std::remove(options.journal_path.c_str());
    JournalHeader header;
    header.campaign = spec.name;
    header.spec_fingerprint = spec_fp;
    header.cells = n;
    try {
      journal = std::make_unique<CampaignJournal>(options.journal_path, header);
    } catch (const std::exception& error) {
      // The journal is an aid to resumption, not a result: losing it must
      // not abort hours of simulation. Run on without it and say so in the
      // summary; the results stores themselves stay fail-loud.
      result.journal_degraded = true;
      result.journal_error = error.what();
    }
  }

  // Shard: cells sharing (seed, engine knobs) sweep through one cached
  // ExperimentRunner; groups run in first-appearance order, so every output
  // is deterministic regardless of options.jobs.
  struct Group {
    std::uint64_t seed;
    double decay;
    std::vector<std::size_t> cell_positions;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < n; ++i) {
    const CampaignCell& cell = result.plan.cells[i];
    const auto group = std::find_if(groups.begin(), groups.end(), [&](const Group& g) {
      return g.seed == cell.seed && g.decay == cell.decay;
    });
    if (group == groups.end())
      groups.push_back({cell.seed, cell.decay, {i}});
    else
      group->cell_positions.push_back(i);
  }

  result.cells.resize(n);
  result.reports.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.cells[i].cell = result.plan.cells[i];

  bool halted = false;  // keep_going=false tripped by a failed cell
  for (const Group& group : groups) {
    if (halted || options.stop.stop_requested()) break;  // rest stays Pending
    obs::Span group_span("group");
    if (obs::armed())
      group_span.set_arg("seed=" + std::to_string(group.seed) +
                         " decay=" + format_round_trip_double(group.decay));

    // Restore journaled-Ok cells without simulating; collect the rest.
    std::vector<std::size_t> pending_positions;
    for (const std::size_t position : group.cell_positions) {
      const auto it = journaled.find(keys[position]);
      if (it != journaled.end() && it->second.status == CellStatus::Ok) {
        if (it->second.metrics.size() != spec.metrics.size())
          throw std::runtime_error(options.journal_path + ": journaled cell '" + keys[position] +
                                   "' has " + std::to_string(it->second.metrics.size()) +
                                   " metrics, spec wants " +
                                   std::to_string(spec.metrics.size()));
        CellResult& cell = result.cells[position];
        cell.status = CellStatus::Ok;
        cell.metrics = it->second.metrics;
        cell.restored = true;
        ++result.restored_cells;
      } else {
        pending_positions.push_back(position);
      }
    }
    if (pending_positions.empty()) continue;

    sim::EngineConfig base;
    base.fairshare_decay = group.decay;
    base.wcl_enforcement = spec.wcl_enforcement;
    metrics::FstOptions fst;
    fst.tolerance = spec.tolerance;
    // policy_* metrics need the forked-engine FST; anything else must not pay
    // for it (it is a second full sweep of the trace per cell).
    fst.policy_knowledge =
        std::any_of(spec.metrics.begin(), spec.metrics.end(),
                    [](const std::string& name) { return name.rfind("policy_", 0) == 0; });
    sim::ExperimentRunner runner(workloads[seed_slot(group.seed)].second, base, fst);

    std::vector<PolicyConfig> policies;
    policies.reserve(pending_positions.size());
    for (const std::size_t position : pending_positions)
      policies.push_back(result.plan.cells[position].policy);

    sim::IsolatedRunOptions run_options;
    run_options.jobs = options.jobs;
    run_options.stop = options.stop;
    run_options.keep_going = options.keep_going;
    if (options.cell_timeout > 0.0)
      // Chain to the campaign token so SIGINT still cancels the cell; the
      // deadline starts when the lane picks the cell up, not at sweep start.
      run_options.cell_stop = [&](std::size_t) {
        util::StopSource source(options.stop);
        source.set_deadline_after(options.cell_timeout);
        return source.token();
      };
    // The campaign.cell fault point (armed via PSCHED_FAULTS, e.g.
    // "campaign.cell:throw:after=2") replaces the old ad-hoc
    // PSCHED_FAULT_INJECT hook. `hang` parks cooperatively so the cell's own
    // token (timeout, signal, wall budget) can still cancel it — or forever,
    // for SIGKILL + --resume legs.
    run_options.on_start = [](std::size_t, const util::StopToken& token) {
      const util::fault::Shot shot = util::fault::check("campaign.cell");
      switch (shot.action) {
        case util::fault::Action::kNone:
          return;
        case util::fault::Action::kHang:
          while (!token.stop_requested())
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          throw sim::SimulationCancelled(token.reason());
        case util::fault::Action::kErrno:
        case util::fault::Action::kThrow:
          throw std::runtime_error("injected fault at campaign.cell");
      }
    };
    // Serialized by run_isolated: classify, record durably, count. A cell is
    // in the journal the instant it finished — a crash after this point
    // cannot lose it.
    run_options.on_finish = [&](std::size_t i, const sim::CellOutcome& outcome) {
      const std::size_t position = pending_positions[i];
      CellResult& cell = result.cells[position];
      if (outcome.result != nullptr) {
        cell.status = CellStatus::Ok;
        cell.metrics.reserve(spec.metrics.size());
        for (const std::string& metric : spec.metrics)
          cell.metrics.push_back(metrics::metric_value(outcome.result->report, metric));
      } else {
        try {
          std::rethrow_exception(outcome.error);
        } catch (const sim::SimulationCancelled& cancelled) {
          // A tripped campaign token (signal, wall budget) means the *run*
          // stopped, not that this cell was slow — label it cancelled even
          // when the proximate reason was the wall-budget deadline.
          cell.status = options.stop.stop_requested() ? CellStatus::Cancelled
                        : cancelled.reason() == util::StopReason::Timeout ? CellStatus::Timeout
                                                                         : CellStatus::Cancelled;
          cell.error = cancelled.what();
        } catch (const std::exception& error) {
          cell.status = CellStatus::Failed;
          cell.error = error.what();
        } catch (...) {
          cell.status = CellStatus::Failed;
          cell.error = "unknown error";
        }
      }
      if (result.breakdown_enabled) {
        CellResult::Breakdown& b = cell.breakdown;
        b.collected = true;
        b.cache_hit = outcome.cache_hit;
        b.wall_seconds = outcome.wall_seconds;
        if (outcome.result != nullptr) {
          b.events_delivered = outcome.result->simulation.events_delivered;
          b.scheduler_invocations = outcome.result->simulation.scheduler_invocations;
          b.sim_makespan_seconds = static_cast<double>(outcome.result->simulation.makespan());
          b.fst_forks = outcome.result->fst_stats.forks;
          b.fst_drained = outcome.result->fst_stats.drained;
          b.fst_resolved_from_master = outcome.result->fst_stats.resolved_from_master;
          b.fst_peak_batch_bytes = outcome.result->fst_stats.peak_batch_bytes;
        }
      }
      ++result.simulated_cells;
      if (journal) {
        JournalCellRecord record;
        record.key = keys[position];
        record.index = position;
        record.status = cell.status;
        record.metrics = cell.metrics;
        record.error = cell.error;
        try {
          journal->record(record);
        } catch (const std::exception& error) {
          // ENOSPC-class journal trouble mid-run: downgrade instead of
          // killing healthy simulation work. Cells from here on are simply
          // not journaled — a later --resume re-simulates them.
          result.journal_degraded = true;
          result.journal_error = error.what();
          journal.reset();
        }
      }
    };

    const std::vector<sim::CellOutcome> outcomes = runner.run_isolated(policies, run_options);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].result != nullptr)
        result.reports[pending_positions[i]] = outcomes[i].result->report;
      if (outcomes[i].error && !options.keep_going) halted = true;
    }
  }

  result.interrupted = options.stop.stop_requested();
  result.reports_complete =
      result.restored_cells == 0 &&
      std::all_of(result.cells.begin(), result.cells.end(),
                  [](const CellResult& cell) { return cell.status == CellStatus::Ok; });

  // Aggregate replicate seeds: Ok cells identical up to the seed share one
  // aggregate, values in seed-list order. Bootstrap rng streams are derived
  // per (aggregate, metric) from the spec seed, so the CI is deterministic
  // and independent of sweep parallelism — and of whether a cell was
  // simulated or restored, since journal metrics round-trip bit-exactly.
  struct AggSlot {
    std::string key;
    std::vector<std::size_t> cell_positions;
  };
  std::vector<AggSlot> slots;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    if (result.cells[i].status != CellStatus::Ok) continue;
    const CampaignCell& cell = result.cells[i].cell;
    std::ostringstream key;
    key << "decay=" << std::hexfloat << cell.decay << std::defaultfloat << '|'
        << cell.policy.canonical_key();
    const std::string agg_key = key.str();
    const auto slot = std::find_if(slots.begin(), slots.end(),
                                   [&](const AggSlot& s) { return s.key == agg_key; });
    if (slot == slots.end())
      slots.push_back({agg_key, {i}});
    else
      slot->cell_positions.push_back(i);
  }
  const util::Rng bootstrap_base(spec.bootstrap_seed);
  for (std::size_t a = 0; a < slots.size(); ++a) {
    const AggSlot& slot = slots[a];
    AggregateResult aggregate;
    const CampaignCell& first = result.cells[slot.cell_positions.front()].cell;
    aggregate.policy = first.policy.display_name();
    aggregate.decay = first.decay;
    aggregate.replicates = slot.cell_positions.size();
    const util::Rng agg_rng = bootstrap_base.fork(a);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      std::vector<double> values;
      values.reserve(slot.cell_positions.size());
      for (const std::size_t position : slot.cell_positions)
        values.push_back(result.cells[position].metrics[m]);
      util::Rng metric_rng = agg_rng.fork(m);
      aggregate.metrics.push_back(util::bootstrap_mean_ci(
          values, spec.bootstrap_resamples, spec.bootstrap_confidence, metric_rng.next_u64()));
    }
    result.aggregates.push_back(std::move(aggregate));
  }
  return result;
}

void write_cells_csv(const CampaignResult& result, std::ostream& out) {
  out << "index,seed,decay,wcl_enforcement,policy,status";
  for (const std::string& metric : result.spec.metrics) out << ',' << metric;
  out << '\n';
  for (const CellResult& cell : result.cells) {
    out << cell.cell.index << ',' << cell.cell.seed << ','
        << format_round_trip_double(cell.cell.decay) << ','
        << wcl_name(result.spec.wcl_enforcement) << ',' << cell.cell.policy.display_name() << ','
        << cell_status_name(cell.status);
    if (cell.status == CellStatus::Ok)
      for (const double value : cell.metrics) out << ',' << format_round_trip_double(value);
    else
      for (std::size_t m = 0; m < result.spec.metrics.size(); ++m) out << ',';
    out << '\n';
  }
}

void write_summary_json(const CampaignResult& result, std::ostream& out) {
  const ScenarioSpec& spec = result.spec;
  out << "{\n";
  out << "  \"campaign\": \"" << json_escape(spec.name) << "\",\n";
  out << "  \"status\": \"" << (result.interrupted ? "interrupted" : "complete") << "\",\n";
  // Only a degraded run carries a journal line: a healthy journaled run and a
  // journal-less run stay byte-identical (the resume smoke depends on that).
  if (result.journal_degraded) {
    out << "  \"journal\": \"degraded\",\n";
    out << "  \"journal_error\": \"" << json_escape(result.journal_error) << "\",\n";
  }
  if (spec.workload.source == WorkloadSpec::Source::Swf) {
    out << "  \"source\": \"swf:" << json_escape(spec.workload.swf_file) << "\",\n";
    // Machine-sizing provenance: where the node count came from (header
    // fields vs widest job vs explicit override) plus the ingest counters.
    // Identical for the eager and streaming readers — both scan the full
    // trace — so this line never breaks store byte-comparisons.
    if (result.swf_info) {
      const workload::SwfReadResult& info = *result.swf_info;
      out << "  \"swf_sizing\": {\"description\": \"" << json_escape(info.describe_sizing())
          << "\", \"total_records\": " << info.total_records
          << ", \"skipped_records\": " << info.skipped_records
          << ", \"filtered_records\": " << info.filtered_records << "},\n";
    }
  } else
    out << "  \"source\": \"ross\",\n  \"scale\": "
        << format_round_trip_double(spec.workload.scale) << ",\n";
  out << "  \"expanded_cells\": " << result.plan.expanded_cells << ",\n";
  out << "  \"unique_cells\": " << result.plan.cells.size() << ",\n";
  // Per-status counts and errors are independent of *how* each Ok cell was
  // obtained (simulated vs journal-restored), so a resumed run's summary is
  // byte-identical to an uninterrupted one.
  out << "  \"cells\": {";
  bool first_count = true;
  for (const CellStatus status : {CellStatus::Ok, CellStatus::Failed, CellStatus::Timeout,
                                  CellStatus::Cancelled, CellStatus::Pending}) {
    out << (first_count ? "" : ", ") << '"' << cell_status_name(status)
        << "\": " << result.count(status);
    first_count = false;
  }
  out << "},\n";
  out << "  \"cell_errors\": [";
  bool first_error = true;
  for (const CellResult& cell : result.cells) {
    if (cell.status == CellStatus::Ok || cell.status == CellStatus::Pending) continue;
    out << (first_error ? "" : ", ") << "{\"index\": " << cell.cell.index << ", \"status\": \""
        << cell_status_name(cell.status) << "\", \"error\": \"" << json_escape(cell.error)
        << "\"}";
    first_error = false;
  }
  out << "],\n";
  // Observability block, present only when the campaign ran with obs armed.
  // Emitted as a contiguous group of lines whose delimiters appear nowhere
  // else in this writer, so the byte-identity contract is checkable with
  //   sed '/^  "breakdown": \[$/,/^  \],$/d' summary.json
  // (the CI trace leg and tests/test_obs.cpp do exactly that).
  if (result.breakdown_enabled) {
    out << "  \"breakdown\": [\n";
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      const CellResult& cell = result.cells[i];
      const CellResult::Breakdown& b = cell.breakdown;
      const char* provenance = cell.restored      ? "journal"
                               : !b.collected     ? "none"
                               : b.cache_hit      ? "cache"
                                                  : "computed";
      out << "    {\"index\": " << cell.cell.index << ", \"policy\": \""
          << json_escape(cell.cell.policy.display_name()) << "\", \"seed\": " << cell.cell.seed
          << ", \"status\": \"" << cell_status_name(cell.status) << "\", \"provenance\": \""
          << provenance << "\", \"wall_seconds\": " << format_round_trip_double(b.wall_seconds)
          << ", \"events_delivered\": " << b.events_delivered
          << ", \"scheduler_invocations\": " << b.scheduler_invocations
          << ", \"sim_makespan_seconds\": " << format_round_trip_double(b.sim_makespan_seconds)
          << ", \"fst_forks\": " << b.fst_forks << ", \"fst_drained\": " << b.fst_drained
          << ", \"fst_resolved_from_master\": " << b.fst_resolved_from_master
          << ", \"fst_peak_batch_bytes\": " << b.fst_peak_batch_bytes << "}"
          << (i + 1 != result.cells.size() ? "," : "") << '\n';
    }
    out << "  ],\n";
  }
  out << "  \"seeds\": [";
  for (std::size_t i = 0; i < result.plan.seeds.size(); ++i)
    out << (i != 0 ? ", " : "") << result.plan.seeds[i];
  out << "],\n";
  out << "  \"wcl_enforcement\": \"" << wcl_name(spec.wcl_enforcement) << "\",\n";
  out << "  \"tolerance_seconds\": " << spec.tolerance << ",\n";
  out << "  \"bootstrap\": {\"resamples\": " << spec.bootstrap_resamples
      << ", \"confidence\": " << format_round_trip_double(spec.bootstrap_confidence)
      << ", \"seed\": " << spec.bootstrap_seed << "},\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < spec.metrics.size(); ++i)
    out << (i != 0 ? ", " : "") << '"' << json_escape(spec.metrics[i]) << '"';
  out << "],\n";
  out << "  \"policies\": [\n";
  for (std::size_t a = 0; a < result.aggregates.size(); ++a) {
    const AggregateResult& aggregate = result.aggregates[a];
    out << "    {\"policy\": \"" << json_escape(aggregate.policy)
        << "\", \"decay\": " << format_round_trip_double(aggregate.decay)
        << ", \"replicates\": " << aggregate.replicates << ", \"metrics\": {";
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      const util::BootstrapCi& ci = aggregate.metrics[m];
      out << (m != 0 ? ", " : "") << '"' << json_escape(spec.metrics[m])
          << "\": {\"mean\": " << format_round_trip_double(ci.mean)
          << ", \"ci_lo\": " << format_round_trip_double(ci.lo)
          << ", \"ci_hi\": " << format_round_trip_double(ci.hi) << '}';
    }
    out << "}}" << (a + 1 != result.aggregates.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

}  // namespace psched::scenario
