#include "scenario/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "metrics/fst.hpp"
#include "metrics/selection.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/transform.hpp"

namespace psched::scenario {

namespace {

/// Reset knobs the cell's policy kind never reads to their defaults, so two
/// grid cells that would simulate identically share one canonical key. The
/// simulation is unchanged: make_scheduler forwards these values but the
/// schedulers only consult them behind the corresponding kind/flag.
PolicyConfig normalize_irrelevant_knobs(PolicyConfig config) {
  if (config.kind != PolicyKind::Cplant) {
    config.starvation_delay = hours(24);
    config.bar_heavy_users = false;
    config.heavy_user_factor = 4.0;
  } else {
    if (config.starvation_delay == kNoTime) config.bar_heavy_users = false;
    if (!config.bar_heavy_users) config.heavy_user_factor = 4.0;
  }
  if (config.kind != PolicyKind::Depth) config.reservation_depth = 4;
  return config;
}

std::string cell_key(const CampaignCell& cell, sim::WclEnforcement wcl) {
  std::ostringstream key;
  key << "seed=" << cell.seed << "|decay=" << std::hexfloat << cell.decay << std::defaultfloat
      << "|wcl=" << static_cast<int>(wcl) << '|' << cell.policy.canonical_key();
  return key.str();
}

/// Round-trip double formatting for the results store: the shortest decimal
/// representation that parses back to exactly `value` (0.9 stays "0.9", not
/// "0.90000000000000002"), so diffs of two result stores stay readable.
std::string fmt_double(double value) {
  for (int precision = 1; precision < std::numeric_limits<double>::max_digits10; ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << value;
    if (std::stod(out.str()) == value) return out.str();
  }
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* wcl_name(sim::WclEnforcement wcl) {
  switch (wcl) {
    case sim::WclEnforcement::Never: return "never";
    case sim::WclEnforcement::KillIfNeeded: return "kill_if_needed";
    case sim::WclEnforcement::Always: return "always";
  }
  return "?";
}

}  // namespace

CampaignPlan expand_campaign(const ScenarioSpec& spec) {
  CampaignPlan plan;
  plan.seeds = spec.effective_seeds();

  // Axis helpers: iterate the override list, or a single "leave it" slot.
  const auto axis_size = [](std::size_t n) { return std::max<std::size_t>(1, n); };
  const PolicyGrid& grid = spec.grid;

  std::set<std::string> seen_keys;
  for (const std::uint64_t seed : plan.seeds) {
    for (const std::string& name : spec.policy_names) {
      const PolicyConfig base = *policy_from_name(name);
      for (std::size_t a = 0; a < axis_size(grid.starvation_delay.size()); ++a)
        for (std::size_t b = 0; b < axis_size(grid.bar_heavy_users.size()); ++b)
          for (std::size_t c = 0; c < axis_size(grid.heavy_user_factor.size()); ++c)
            for (std::size_t d = 0; d < axis_size(grid.max_runtime.size()); ++d)
              for (std::size_t e = 0; e < axis_size(grid.reservation_depth.size()); ++e)
                for (std::size_t f = 0; f < axis_size(grid.decay.size()); ++f) {
                  ++plan.expanded_cells;
                  CampaignCell cell;
                  cell.seed = seed;
                  cell.decay = grid.decay.empty() ? spec.decay : grid.decay[f];
                  cell.policy = base;
                  if (!grid.starvation_delay.empty())
                    cell.policy.starvation_delay = grid.starvation_delay[a];
                  if (!grid.bar_heavy_users.empty())
                    cell.policy.bar_heavy_users = grid.bar_heavy_users[b];
                  if (!grid.heavy_user_factor.empty())
                    cell.policy.heavy_user_factor = grid.heavy_user_factor[c];
                  if (!grid.max_runtime.empty()) cell.policy.max_runtime = grid.max_runtime[d];
                  if (!grid.reservation_depth.empty())
                    cell.policy.reservation_depth = grid.reservation_depth[e];
                  // Preset names (the paper policies carry one) would go
                  // stale under overrides and would defeat canonical-key
                  // dedup; always re-derive from the knobs.
                  cell.policy.name.clear();
                  cell.policy = normalize_irrelevant_knobs(cell.policy);
                  cell.key = cell_key(cell, spec.wcl_enforcement);
                  if (!seen_keys.insert(cell.key).second) continue;
                  cell.index = plan.cells.size();
                  plan.cells.push_back(std::move(cell));
                }
    }
  }
  return plan;
}

Workload build_workload(const WorkloadSpec& spec, std::uint64_t seed,
                        workload::SwfReadResult* swf_info) {
  Workload trace;
  if (spec.source == WorkloadSpec::Source::Swf) {
    workload::SwfReadOptions options;
    if (spec.swf_accept_all_statuses) options.accepted_statuses.clear();
    workload::SwfReadResult read =
        workload::read_swf_file(spec.swf_file, spec.system_size, options);
    trace = std::move(read.workload);
    if (swf_info != nullptr) {
      *swf_info = std::move(read);
      // The jobs moved into `trace`; keep the info struct lean but make
      // describe_sizing() (which reads workload.system_size) still correct.
      swf_info->workload.jobs.clear();
      swf_info->workload.system_size = trace.system_size;
    }
  } else {
    workload::GeneratorConfig generator;
    generator.seed = seed;
    generator.count_scale = spec.scale;
    if (spec.system_size > 0) generator.system_size = spec.system_size;
    // Same span scaling as psched_run / the figure binaries, so a spec with
    // matching (seed, scale) reproduces their trace byte-identically.
    if (spec.scale < 1.0)
      generator.span = std::max<Time>(
          weeks(4),
          static_cast<Time>(static_cast<double>(workload::kRossTraceSpan) * spec.scale));
    trace = workload::generate_ross_workload(generator);
  }
  if (spec.head > 0) trace = workload::head(trace, spec.head);
  if (spec.rescale_load != 1.0) trace = workload::rescale_load(trace, spec.rescale_load);
  if (spec.estimate_factor > 0.0)
    trace = workload::with_estimate_factor(trace, spec.estimate_factor);
  return trace;
}

CampaignResult run_campaign(const ScenarioSpec& spec, const CampaignOptions& options) {
  CampaignResult result;
  result.spec = spec;
  result.plan = expand_campaign(spec);

  // One workload per replicate seed, built up front (groups with different
  // engine knobs share it).
  std::vector<std::pair<std::uint64_t, Workload>> workloads;
  for (const std::uint64_t seed : result.plan.seeds) {
    workload::SwfReadResult swf_info;
    const bool want_swf = spec.workload.source == WorkloadSpec::Source::Swf && !result.swf_info;
    workloads.emplace_back(seed,
                           build_workload(spec.workload, seed, want_swf ? &swf_info : nullptr));
    if (want_swf) result.swf_info = std::move(swf_info);
    CampaignResult::TraceInfo info;
    info.seed = seed;
    info.jobs = workloads.back().second.jobs.size();
    info.system_size = workloads.back().second.system_size;
    result.traces.push_back(info);
  }
  const auto workload_for = [&](std::uint64_t seed) -> const Workload& {
    for (const auto& [s, w] : workloads)
      if (s == seed) return w;
    throw std::logic_error("run_campaign: seed without workload");
  };

  // Shard: cells sharing (seed, engine knobs) sweep through one cached
  // ExperimentRunner; groups run in first-appearance order, so every output
  // is deterministic regardless of options.jobs.
  struct Group {
    std::uint64_t seed;
    double decay;
    std::vector<std::size_t> cell_positions;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < result.plan.cells.size(); ++i) {
    const CampaignCell& cell = result.plan.cells[i];
    const auto group = std::find_if(groups.begin(), groups.end(), [&](const Group& g) {
      return g.seed == cell.seed && g.decay == cell.decay;
    });
    if (group == groups.end())
      groups.push_back({cell.seed, cell.decay, {i}});
    else
      group->cell_positions.push_back(i);
  }

  result.cells.resize(result.plan.cells.size());
  result.reports.resize(result.plan.cells.size());
  for (const Group& group : groups) {
    sim::EngineConfig base;
    base.fairshare_decay = group.decay;
    base.wcl_enforcement = spec.wcl_enforcement;
    metrics::FstOptions fst;
    fst.tolerance = spec.tolerance;
    sim::ExperimentRunner runner(workload_for(group.seed), base, fst);

    std::vector<PolicyConfig> policies;
    policies.reserve(group.cell_positions.size());
    for (const std::size_t position : group.cell_positions)
      policies.push_back(result.plan.cells[position].policy);
    const std::vector<const sim::ExperimentResult*> runs = runner.run_all(policies, options.jobs);

    for (std::size_t i = 0; i < group.cell_positions.size(); ++i) {
      const std::size_t position = group.cell_positions[i];
      metrics::PolicyReport report = runs[i]->report;
      CellResult& cell = result.cells[position];
      cell.cell = result.plan.cells[position];
      cell.metrics.reserve(spec.metrics.size());
      for (const std::string& metric : spec.metrics)
        cell.metrics.push_back(metrics::metric_value(report, metric));
      result.reports[position] = std::move(report);
    }
  }

  // Aggregate replicate seeds: cells identical up to the seed share one
  // aggregate, values in seed-list order. Bootstrap rng streams are derived
  // per (aggregate, metric) from the spec seed, so the CI is deterministic
  // and independent of sweep parallelism.
  struct AggSlot {
    std::string key;
    std::vector<std::size_t> cell_positions;
  };
  std::vector<AggSlot> slots;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CampaignCell& cell = result.cells[i].cell;
    std::ostringstream key;
    key << "decay=" << std::hexfloat << cell.decay << std::defaultfloat << '|'
        << cell.policy.canonical_key();
    const std::string agg_key = key.str();
    const auto slot = std::find_if(slots.begin(), slots.end(),
                                   [&](const AggSlot& s) { return s.key == agg_key; });
    if (slot == slots.end())
      slots.push_back({agg_key, {i}});
    else
      slot->cell_positions.push_back(i);
  }
  const util::Rng bootstrap_base(spec.bootstrap_seed);
  for (std::size_t a = 0; a < slots.size(); ++a) {
    const AggSlot& slot = slots[a];
    AggregateResult aggregate;
    const CampaignCell& first = result.cells[slot.cell_positions.front()].cell;
    aggregate.policy = first.policy.display_name();
    aggregate.decay = first.decay;
    aggregate.replicates = slot.cell_positions.size();
    const util::Rng agg_rng = bootstrap_base.fork(a);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      std::vector<double> values;
      values.reserve(slot.cell_positions.size());
      for (const std::size_t position : slot.cell_positions)
        values.push_back(result.cells[position].metrics[m]);
      util::Rng metric_rng = agg_rng.fork(m);
      aggregate.metrics.push_back(util::bootstrap_mean_ci(
          values, spec.bootstrap_resamples, spec.bootstrap_confidence, metric_rng.next_u64()));
    }
    result.aggregates.push_back(std::move(aggregate));
  }
  return result;
}

void write_cells_csv(const CampaignResult& result, std::ostream& out) {
  out << "index,seed,decay,wcl_enforcement,policy";
  for (const std::string& metric : result.spec.metrics) out << ',' << metric;
  out << '\n';
  for (const CellResult& cell : result.cells) {
    out << cell.cell.index << ',' << cell.cell.seed << ',' << fmt_double(cell.cell.decay) << ','
        << wcl_name(result.spec.wcl_enforcement) << ',' << cell.cell.policy.display_name();
    for (const double value : cell.metrics) out << ',' << fmt_double(value);
    out << '\n';
  }
}

void write_summary_json(const CampaignResult& result, std::ostream& out) {
  const ScenarioSpec& spec = result.spec;
  out << "{\n";
  out << "  \"campaign\": \"" << json_escape(spec.name) << "\",\n";
  if (spec.workload.source == WorkloadSpec::Source::Swf)
    out << "  \"source\": \"swf:" << json_escape(spec.workload.swf_file) << "\",\n";
  else
    out << "  \"source\": \"ross\",\n  \"scale\": " << fmt_double(spec.workload.scale) << ",\n";
  out << "  \"expanded_cells\": " << result.plan.expanded_cells << ",\n";
  out << "  \"unique_cells\": " << result.plan.cells.size() << ",\n";
  out << "  \"seeds\": [";
  for (std::size_t i = 0; i < result.plan.seeds.size(); ++i)
    out << (i != 0 ? ", " : "") << result.plan.seeds[i];
  out << "],\n";
  out << "  \"wcl_enforcement\": \"" << wcl_name(spec.wcl_enforcement) << "\",\n";
  out << "  \"tolerance_seconds\": " << spec.tolerance << ",\n";
  out << "  \"bootstrap\": {\"resamples\": " << spec.bootstrap_resamples
      << ", \"confidence\": " << fmt_double(spec.bootstrap_confidence)
      << ", \"seed\": " << spec.bootstrap_seed << "},\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < spec.metrics.size(); ++i)
    out << (i != 0 ? ", " : "") << '"' << json_escape(spec.metrics[i]) << '"';
  out << "],\n";
  out << "  \"policies\": [\n";
  for (std::size_t a = 0; a < result.aggregates.size(); ++a) {
    const AggregateResult& aggregate = result.aggregates[a];
    out << "    {\"policy\": \"" << json_escape(aggregate.policy)
        << "\", \"decay\": " << fmt_double(aggregate.decay)
        << ", \"replicates\": " << aggregate.replicates << ", \"metrics\": {";
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      const util::BootstrapCi& ci = aggregate.metrics[m];
      out << (m != 0 ? ", " : "") << '"' << json_escape(spec.metrics[m]) << "\": {\"mean\": "
          << fmt_double(ci.mean) << ", \"ci_lo\": " << fmt_double(ci.lo)
          << ", \"ci_hi\": " << fmt_double(ci.hi) << '}';
    }
    out << "}}" << (a + 1 != result.aggregates.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

}  // namespace psched::scenario
