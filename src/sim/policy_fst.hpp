#pragma once
// The earlier Sabin/Sadayappan FST variant discussed in paper section 4: a
// job's fair start time is its start in a re-run of the *actual scheduling
// policy* on a universe where no later jobs ever arrive. Directly measures
// whether later arrivals hurt the job, at the cost of one full simulation
// per job — O(n^2) in trace length, so intended for small traces and tests
// (the paper's hybrid metric exists precisely to avoid this cost).

#include <vector>

#include "sim/engine.hpp"

namespace psched::sim {

struct PolicyFstOptions {
  bool parallel = true;
};

/// fair_start[i] = start of workload.jobs[i] when the simulation is re-run
/// with every job submitted after jobs[i] removed (same-submit ties with a
/// lower id are kept). Requires config.policy.max_runtime == kNoTime, since
/// segment chaining has no well-defined per-original start otherwise.
std::vector<Time> policy_no_later_arrivals_fst(const Workload& workload,
                                               const EngineConfig& config,
                                               const PolicyFstOptions& options = {});

}  // namespace psched::sim
