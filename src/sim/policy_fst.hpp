#pragma once
// The earlier Sabin/Sadayappan FST variant discussed in paper section 4: a
// job's fair start time is its start in a re-run of the *actual scheduling
// policy* on a universe where no later jobs ever arrive. Directly measures
// whether later arrivals hurt the job.
//
// Computed with the forkable engine: ONE full simulation, forked at every
// arrival (engine state at job i's arrival is identical whether or not jobs
// i+1..n exist — see SimulationEngine::fork_for_arrival), each fork drained
// with no further arrivals until its job starts. Cost is one pass plus the
// fork tails instead of the seed's n truncated re-simulations (O(n^2)
// simulated events); bench/perf_fst.cpp measures the pair
// (BM_PolicyFstForked vs BM_RefPolicyFstNaive) and the win grows with trace
// length. The naive re-simulation is preserved below as the behavioral
// oracle — tests pin the two byte-identical for every policy.

#include <cstddef>
#include <vector>

#include "sim/engine.hpp"

namespace psched::sim {

/// Observability counters filled by policy_no_later_arrivals_fst when the
/// caller wires PolicyFstOptions::stats. Deterministic for a given
/// (workload, config, options) triple.
struct PolicyFstStats {
  std::size_t forks = 0;                  ///< forks taken (== job count)
  std::size_t drained = 0;                ///< forks that paid a drain tail
  std::size_t resolved_from_master = 0;   ///< answered free from the master pass
  std::size_t fork_batch = 0;             ///< the batch cap actually used
  /// Max over drain batches of the summed fork footprints
  /// (SimulationEngine::fork_footprint_bytes) alive at drain time — the
  /// peak engine-state memory the bounded batching admits.
  std::size_t peak_batch_bytes = 0;
};

struct PolicyFstOptions {
  /// Drain forks concurrently on the global pool (results are byte-identical
  /// to a serial drain: each fork is independent and writes one integer to
  /// its own result slot).
  bool parallel = true;
  /// Forks accumulated before a drain. 0 = automatic (the historical
  /// behavior: max(4 * pool size, 16) when parallel, 16 serial). Peak memory
  /// scales with this times the per-fork O(queue) footprint; latency on wide
  /// pools wants it >= the pool size.
  std::size_t fork_batch = 0;
  /// Optional out-param for drain observability; untouched when null.
  PolicyFstStats* stats = nullptr;
};

/// fair_start[i] = start of workload.jobs[i] when the simulation is re-run
/// with every job submitted after jobs[i] removed (same-submit ties with a
/// lower id are kept). Requires config.policy.max_runtime == kNoTime, since
/// segment chaining has no well-defined per-original start.
std::vector<Time> policy_no_later_arrivals_fst(const Workload& workload,
                                               const EngineConfig& config,
                                               const PolicyFstOptions& options = {});

/// The seed implementation, preserved verbatim as the behavioral oracle: one
/// truncated-workload re-simulation per job (O(n^2) simulated events
/// overall). Reference for tests and BM_RefPolicyFstNaive; use
/// policy_no_later_arrivals_fst everywhere else.
std::vector<Time> policy_no_later_arrivals_fst_naive(const Workload& workload,
                                                     const EngineConfig& config,
                                                     const PolicyFstOptions& options = {});

}  // namespace psched::sim
