#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace psched::sim {

SimulationEngine::SimulationEngine(const Workload& workload, EngineConfig config)
    : SimulationEngine(workload, std::move(config), nullptr) {}

SimulationEngine::SimulationEngine(const Workload& workload, EngineConfig config,
                                   std::unique_ptr<Scheduler> scheduler)
    : workload_(workload),
      config_(std::move(config)),
      limiter_(config_.policy.max_runtime),
      scheduler_(scheduler ? std::move(scheduler) : make_scheduler(config_.policy)),
      fairshare_(config_.fairshare_decay, config_.fairshare_period,
                 workload.jobs.empty() ? 0 : workload.jobs.front().submit,
                 config_.fairshare_update),
      system_size_(workload.system_size),
      free_nodes_(workload.system_size) {
  workload_.validate();
  scheduler_->attach(*this);
  now_ = workload_.jobs.empty() ? 0 : workload_.jobs.front().submit;

  result_.policy_name = config_.policy.display_name();
  result_.system_size = system_size_;
  result_.original_job_count = workload_.jobs.size();
  result_.segments_of_original.resize(workload_.jobs.size());

  // Seed the record table: all segments up front in preprocessing mode, only
  // segment 0 in chained (checkpoint/restart) mode. Their arrivals are NOT
  // pushed onto the event heap — seeded records are already in (submit, id)
  // order (segments inherit the original's submit; the workload is sorted),
  // so the run loop walks them with a cursor instead. The heap stays
  // O(queue) and a fork inherits the cursor, not O(trace) arrival events.
  for (const Job& original : workload_.jobs) {
    const std::int32_t count = config_.segment_arrival == SegmentArrival::AtOriginalSubmit
                                   ? limiter_.segment_count(original)
                                   : 1;
    for (std::int32_t s = 0; s < count; ++s) {
      const Job segment = limiter_.make_segment(original, s, /*id=*/0, original.submit);
      add_record(segment);
    }
  }
  seeded_end_ = static_cast<JobId>(result_.records.size());
}

SimulationEngine::SimulationEngine(const SimulationEngine& other, JobId target)
    : workload_(other.workload_),
      config_(other.config_),
      limiter_(other.limiter_),
      scheduler_(other.scheduler_->clone()),
      fairshare_(other.fairshare_),
      system_size_(other.system_size_),
      free_nodes_(other.free_nodes_),
      now_(other.now_),
      ran_(true),
      events_(other.events_),
      pending_timers_(other.pending_timers_),
      arrival_limit_(target),
      next_seeded_(other.next_seeded_),
      seeded_end_(std::min<JobId>(other.seeded_end_, target + 1)),
      running_state_(other.running_state_),
      running_view_(other.running_view_),
      waiting_(other.waiting_),
      waiting_demand_(other.waiting_demand_),
      running_nodes_(other.running_nodes_) {
  if (!scheduler_)
    throw std::logic_error("SimulationEngine::fork: the scheduler does not implement clone()");
  scheduler_->attach(*this);
  config_.record_snapshots = false;  // forks exist only to produce start times

  // The fork's universe ends with job `target` — enforced by capping the
  // seeded-arrival cursor at target + 1 above, a constant-time operation
  // where trimming a record table used to cost O(target). The copied event
  // heap holds only completions / WCL checks / timers (forks require no
  // runtime limiter, so no chained arrivals can be pending): O(queue).
  //
  // Start times and waiting positions go to sparse overlays instead of the
  // master's dense per-record vectors; only the jobs currently in the queue
  // can ever be touched, so the overlays stay O(queue) too.
  fork_waiting_pos_.reserve(waiting_.size());
  for (std::size_t pos = 0; pos < waiting_.size(); ++pos)
    fork_waiting_pos_[waiting_[pos]] = static_cast<std::int32_t>(pos);
}

std::unique_ptr<SimulationEngine> SimulationEngine::fork_for_arrival(JobId target) const {
  if (limiter_.enabled())
    throw std::logic_error(
        "SimulationEngine::fork_for_arrival: runtime-limit segments break the record-id == "
        "workload-index identity forks rely on");
  if (target < 0 || static_cast<std::size_t>(target) >= result_.records.size())
    throw std::out_of_range("SimulationEngine::fork_for_arrival: unknown record id");
  // The state-equivalence argument holds exactly when the target's arrival
  // is the next pending event (the hook fires there); forking any other id
  // would silently yield a start from the wrong universe, so check it.
  const std::optional<PendingEvent> pending = peek_event();
  if (!pending || pending->event.kind != EventKind::Arrive || pending->event.id != target)
    throw std::logic_error(
        "SimulationEngine::fork_for_arrival: only valid from inside the arrival hook for the "
        "target (its arrival must be the next pending event)");
  return std::unique_ptr<SimulationEngine>(new SimulationEngine(*this, target));
}

const Job& SimulationEngine::job(JobId id) const {
  // A fork has no record table; record ids equal workload indices there
  // (fork_for_arrival rejects runtime-limit runs), so the shared immutable
  // job table serves every lookup. Note a master record's job differs from
  // the workload's only in segment bookkeeping (parent/segment fields),
  // which nothing on the fork path reads.
  if (is_fork()) return workload_.jobs.at(static_cast<std::size_t>(id));
  return result_.records.at(static_cast<std::size_t>(id)).job;
}

Time SimulationEngine::record_start(JobId id) const {
  if (is_fork()) {
    const auto it = fork_starts_.find(id);
    return it == fork_starts_.end() ? kNoTime : it->second;
  }
  return result_.records.at(static_cast<std::size_t>(id)).start;
}

void SimulationEngine::set_record_start(JobId id, Time at) {
  if (is_fork()) {
    fork_starts_[id] = at;
    return;
  }
  result_.records[static_cast<std::size_t>(id)].start = at;
}

std::int32_t SimulationEngine::waiting_pos_of(JobId id) const {
  if (is_fork()) {
    const auto it = fork_waiting_pos_.find(id);
    return it == fork_waiting_pos_.end() ? -1 : it->second;
  }
  const auto idx = static_cast<std::size_t>(id);
  return idx < waiting_pos_.size() ? waiting_pos_[idx] : -1;
}

void SimulationEngine::set_waiting_pos(JobId id, std::int32_t pos) {
  if (is_fork()) {
    if (pos < 0)
      fork_waiting_pos_.erase(id);
    else
      fork_waiting_pos_[id] = pos;
    return;
  }
  waiting_pos_[static_cast<std::size_t>(id)] = pos;
}

JobId SimulationEngine::add_record(const Job& segment) {
  const auto record_id = static_cast<JobId>(result_.records.size());
  JobRecord record;
  record.job = segment;
  record.job.id = record_id;
  result_.records.push_back(record);
  result_.segments_of_original.at(static_cast<std::size_t>(segment.parent)).push_back(record_id);
  return record_id;
}

void SimulationEngine::advance_accounting(Time to) {
  const Time dt = to - now_;
  if (dt > 0) {
    const double seconds = static_cast<double>(dt);
    result_.busy_proc_seconds += static_cast<double>(running_nodes_) * seconds;
    const NodeCount idle = system_size_ - running_nodes_;
    const NodeCount wasted = std::min(waiting_demand_, idle);
    result_.loc_proc_seconds += static_cast<double>(wasted) * seconds;
  }
  fairshare_.advance(to);
  now_ = to;
}

void SimulationEngine::record_snapshot(JobId id) {
  ArrivalSnapshot snapshot;
  snapshot.id = id;
  snapshot.at = now_;
  snapshot.running.reserve(running_state_.size());
  for (std::size_t i = 0; i < running_state_.size(); ++i) {
    SnapshotRunning r;
    r.nodes = running_view_[i].nodes;
    r.remaining = running_state_[i].actual_end - now_;
    r.est_remaining = std::max<Time>(1, running_view_[i].est_end - now_);
    snapshot.running.push_back(r);
  }
  snapshot.waiting.reserve(waiting_.size());
  for (const JobId waiting_id : waiting_) {
    const Job& j = job(waiting_id);
    SnapshotWaiting w;
    w.id = waiting_id;
    w.nodes = j.nodes;
    w.runtime = j.runtime;
    w.wcl = j.wcl;
    w.submit = j.submit;
    w.priority = fairshare_.usage(j.user);
    snapshot.waiting.push_back(w);
  }
  result_.snapshots.at(static_cast<std::size_t>(id)) = std::move(snapshot);
}

void SimulationEngine::remove_waiting(JobId id) {
  const std::int32_t pos_index = waiting_pos_of(id);
  if (pos_index < 0)
    throw std::logic_error("engine: started a job that is not waiting");
  const auto pos = static_cast<std::size_t>(pos_index);
  const JobId moved = waiting_.back();
  waiting_[pos] = moved;
  set_waiting_pos(moved, static_cast<std::int32_t>(pos));
  waiting_.pop_back();
  set_waiting_pos(id, -1);
}

void SimulationEngine::deliver_arrival(JobId id) {
  if (!is_fork() && waiting_pos_.size() < result_.records.size())
    waiting_pos_.resize(result_.records.size(), -1);
  set_waiting_pos(id, static_cast<std::int32_t>(waiting_.size()));
  waiting_.push_back(id);
  waiting_demand_ += job(id).nodes;
  if (config_.record_snapshots) record_snapshot(id);
  scheduler_->on_submit(id);
}

void SimulationEngine::start_job(JobId id) {
  const Job& j = job(id);
  if (j.nodes > free_nodes_)
    throw std::logic_error("engine: scheduler started " + std::to_string(j.nodes) +
                           " nodes with only " + std::to_string(free_nodes_) + " free");
  remove_waiting(id);
  waiting_demand_ -= j.nodes;
  free_nodes_ -= j.nodes;
  running_nodes_ += j.nodes;
  fairshare_.on_job_start(j.user, j.nodes);

  set_record_start(id, now_);
  if (result_.first_start == kNoTime || now_ < result_.first_start) result_.first_start = now_;

  Time end = now_ + j.runtime;
  bool killed = false;
  if (config_.wcl_enforcement == WclEnforcement::Always && j.wcl < j.runtime) {
    end = now_ + j.wcl;
    killed = true;
  }
  running_state_.push_back({id, now_ + j.runtime});
  running_view_.push_back({id, j.nodes, now_, now_ + j.wcl});

  if (killed) {
    push_event({end, EventKind::Complete, id});
    // The kill annotation is per-record output; forks produce no records.
    if (!is_fork()) result_.records[static_cast<std::size_t>(id)].killed_at_wcl = true;
  } else {
    push_event({now_ + j.runtime, EventKind::Complete, id});
    if (config_.wcl_enforcement == WclEnforcement::KillIfNeeded && j.wcl < j.runtime)
      push_event({now_ + j.wcl, EventKind::WclCheck, id});
  }
}

void SimulationEngine::deliver_completion(JobId id, Time finish, bool killed) {
  const auto state_it =
      std::find_if(running_state_.begin(), running_state_.end(),
                   [id](const RunningState& r) { return r.id == id; });
  if (state_it == running_state_.end()) return;  // already completed (e.g. killed earlier)
  const auto index = static_cast<std::size_t>(std::distance(running_state_.begin(), state_it));

  const Job& j = job(id);
  free_nodes_ += j.nodes;
  running_nodes_ -= j.nodes;
  fairshare_.on_job_stop(j.user, j.nodes);
  running_state_.erase(state_it);
  running_view_.erase(running_view_.begin() + static_cast<std::ptrdiff_t>(index));

  if (!is_fork()) {
    JobRecord& record = result_.records[static_cast<std::size_t>(id)];
    record.finish = finish;
    record.killed_at_wcl = record.killed_at_wcl || killed;
  }
  if (result_.last_finish == kNoTime || finish > result_.last_finish) result_.last_finish = finish;

  scheduler_->on_complete(id);

  // Chain the next runtime-limit segment, if any (Chained mode only; in
  // preprocessing mode every segment was seeded at construction). Guarded on
  // the limiter because a fork's job(id) has no segment parentage to follow
  // — and forks forbid runtime limits anyway, so the guard costs nothing.
  if (config_.segment_arrival == SegmentArrival::Chained && limiter_.enabled()) {
    const Job& original = workload_.jobs.at(static_cast<std::size_t>(j.parent));
    const std::optional<Job> next = limiter_.next_segment(original, j, finish, /*id=*/0);
    if (next) {
      const JobId next_record = add_record(*next);
      push_event({finish, EventKind::Arrive, next_record});
    }
  }
}

void SimulationEngine::handle_wcl_check(JobId id) {
  const auto state_it =
      std::find_if(running_state_.begin(), running_state_.end(),
                   [id](const RunningState& r) { return r.id == id; });
  if (state_it == running_state_.end()) return;  // finished before the check fired
  const Job& j = job(id);
  // CPlant semantics: the over-running job dies only if some waiting job
  // could start with the freed processors.
  const NodeCount would_be_free = free_nodes_ + j.nodes;
  const bool needed = std::any_of(waiting_.begin(), waiting_.end(), [&](JobId w) {
    return job(w).nodes <= would_be_free;
  });
  if (needed)
    deliver_completion(id, now_, /*killed=*/true);
  else
    push_event({now_ + config_.wcl_recheck_interval, EventKind::WclCheck, id});
}

void SimulationEngine::schedule_timer(Time at) {
  if (at <= now_) at = now_ + 1;
  if (pending_timers_.insert(at).second) push_event({at, EventKind::Timer, kInvalidJob});
}

void SimulationEngine::push_event(const Event& event) {
  events_.push_back(event);
  std::push_heap(events_.begin(), events_.end(), std::greater<Event>{});
}

void SimulationEngine::pop_event() {
  std::pop_heap(events_.begin(), events_.end(), std::greater<Event>{});
  events_.pop_back();
}

std::optional<SimulationEngine::PendingEvent> SimulationEngine::peek_event() const {
  if (next_seeded_ < seeded_end_) {
    const Event cursor{job(next_seeded_).submit, EventKind::Arrive, next_seeded_};
    // The cursor arrival wins ties against itself never (ids are unique) and
    // loses ties to completions/earlier kinds exactly as a heap entry would:
    // both sides use Event's (at, kind, id) order.
    if (events_.empty() || events_top() > cursor) return PendingEvent{cursor, true};
  }
  if (events_.empty()) return std::nullopt;
  return PendingEvent{events_top(), false};
}

void SimulationEngine::consume_event(const PendingEvent& pending) {
  if (pending.from_cursor)
    ++next_seeded_;
  else
    pop_event();
}

std::size_t SimulationEngine::fork_footprint_bytes() const {
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);  // hash-bucket / tree links
  return events_.capacity() * sizeof(Event) +
         waiting_.capacity() * sizeof(JobId) +
         running_state_.capacity() * sizeof(RunningState) +
         running_view_.capacity() * sizeof(RunningView) +
         fork_starts_.size() * (sizeof(JobId) + sizeof(Time) + kNodeOverhead) +
         fork_waiting_pos_.size() * (sizeof(JobId) + sizeof(std::int32_t) + kNodeOverhead) +
         pending_timers_.size() * (sizeof(Time) + 2 * kNodeOverhead);
}

void SimulationEngine::run_loop(const ArrivalHook* hook, JobId run_until) {
  // Count events/invocations in locals (no atomics in the hot loop) and
  // flush once per run_loop call — the destructor also runs on the early
  // fork return and on SimulationCancelled, so partial passes still report.
  // The obs bumps are each one relaxed load when tracing is disarmed.
  struct CounterFlush {
    explicit CounterFlush(SimulationResult* r) : result(r) {}
    SimulationResult* result;
    std::uint64_t events = 0;
    std::uint64_t invocations = 0;
    ~CounterFlush() {
      result->events_delivered += events;
      result->scheduler_invocations += invocations;
      obs::count(obs::Counter::kEngineEventsDelivered, events);
      obs::count(obs::Counter::kEngineSchedulerInvocations, invocations);
    }
  } flush{&result_};

  std::vector<JobId> starts;
  std::optional<PendingEvent> pending;
  while ((pending = peek_event())) {
    // Cooperative cancellation at the event boundary: engine state here is a
    // consistent between-events snapshot, so a cancelled run can be thrown
    // away without ever exposing a torn result.
    if (config_.stop.stop_requested()) throw SimulationCancelled(config_.stop.reason());
    const Time t = pending->event.at;
    advance_accounting(t);

    // Drain every event at this instant; completions sort before arrivals,
    // and chained segment arrivals pushed "now" are picked up here too.
    while (pending && pending->event.at == t) {
      const Event event = pending->event;
      // The hook fires with the arrival still pending: nothing of this (or
      // any later) job has touched the engine yet, so a fork taken here is
      // byte-identical to a run over the workload truncated after event.id.
      if (hook != nullptr && event.kind == EventKind::Arrive) (*hook)(event.id);
      consume_event(*pending);
      ++flush.events;
      switch (event.kind) {
        case EventKind::Complete:
          deliver_completion(event.id, t, /*killed=*/false);
          break;
        case EventKind::Arrive:
          if (arrival_limit_ != kInvalidJob && event.id > arrival_limit_) break;
          // Snapshot storage may need to grow for chained segments.
          if (config_.record_snapshots &&
              result_.snapshots.size() < result_.records.size())
            result_.snapshots.resize(result_.records.size());
          deliver_arrival(event.id);
          break;
        case EventKind::WclCheck:
          handle_wcl_check(event.id);
          break;
        case EventKind::Timer:
          pending_timers_.erase(t);
          break;
      }
      pending = peek_event();
    }

    starts.clear();
    scheduler_->collect_starts(starts);
    ++flush.invocations;
    for (const JobId id : starts) start_job(id);

    if (run_until != kInvalidJob && record_start(run_until) != kNoTime) return;

    if (const std::optional<Time> wake = scheduler_->next_wakeup(); wake && !waiting_.empty())
      schedule_timer(*wake);
  }
}

SimulationResult SimulationEngine::run() { return run_with_arrival_hook(nullptr); }

SimulationResult SimulationEngine::run_with_arrival_hook(const ArrivalHook& hook) {
  if (ran_) throw std::logic_error("SimulationEngine::run called twice");
  ran_ = true;
  if (config_.record_snapshots) result_.snapshots.resize(result_.records.size());

  run_loop(hook ? &hook : nullptr, kInvalidJob);

  if (!waiting_.empty())
    throw std::logic_error("engine: simulation ended with " + std::to_string(waiting_.size()) +
                           " jobs still waiting");
  if (!running_state_.empty())
    throw std::logic_error("engine: simulation ended with jobs still running");

  return std::move(result_);
}

Time SimulationEngine::run_until_started(JobId target) {
  if (!is_fork())
    throw std::logic_error("SimulationEngine::run_until_started: not a fork");
  if (target != arrival_limit_)
    throw std::logic_error("SimulationEngine::run_until_started: target is not the fork's job");
  run_loop(nullptr, target);
  const Time start = record_start(target);
  if (start == kNoTime)
    throw std::logic_error("SimulationEngine::run_until_started: fork drained without starting " +
                           std::to_string(target));
  return start;
}

SimulationResult simulate(const Workload& workload, const EngineConfig& config) {
  SimulationEngine engine(workload, config);
  return engine.run();
}

SimulationResult simulate_with(const Workload& workload, const EngineConfig& config,
                               std::unique_ptr<Scheduler> scheduler) {
  SimulationEngine engine(workload, config, std::move(scheduler));
  return engine.run();
}

}  // namespace psched::sim
