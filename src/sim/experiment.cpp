#include "sim/experiment.hpp"

#include <atomic>

#include "obs/clock.hpp"
#include "obs/obs.hpp"
#include "sim/policy_fst.hpp"
#include "util/thread_pool.hpp"

namespace psched::sim {

ExperimentRunner::ExperimentRunner(Workload workload, EngineConfig base,
                                   metrics::FstOptions fst_options)
    : workload_(std::move(workload)), base_(std::move(base)), fst_options_(fst_options) {
  workload_.validate();
}

ExperimentRunner::CacheEntry& ExperimentRunner::entry_for(const PolicyConfig& policy) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<CacheEntry>& slot = cache_[policy.canonical_key()];
  if (!slot) slot = std::make_unique<CacheEntry>();
  return *slot;
}

const ExperimentResult& ExperimentRunner::run(const PolicyConfig& policy, util::StopToken stop,
                                              bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  CacheEntry& entry = entry_for(policy);
  std::unique_lock<std::mutex> lock(entry.mutex);
  if (entry.state == CacheEntry::State::Running) {
    // Join the in-flight computation and share its outcome — including its
    // error (retrying per joiner would simulate a broken config N times).
    obs::count(obs::Counter::kExperimentSingleFlightWaits);
    if (cache_hit != nullptr) *cache_hit = true;
    entry.cv.wait(lock, [&] { return entry.state != CacheEntry::State::Running; });
    if (entry.state == CacheEntry::State::Done) return *entry.result;
    std::rethrow_exception(entry.error);
  }
  if (entry.state == CacheEntry::State::Done) {
    obs::count(obs::Counter::kExperimentCacheHits);
    if (cache_hit != nullptr) *cache_hit = true;
    return *entry.result;
  }

  // Empty, or Failed: become the flight. A Failed entry is evicted here so a
  // retry (e.g. after a cancellation or timeout) can succeed without a
  // process restart; concurrent retriers serialize on the Running state.
  obs::count(obs::Counter::kExperimentCacheMisses);
  entry.state = CacheEntry::State::Running;
  entry.error = nullptr;
  lock.unlock();

  std::unique_ptr<ExperimentResult> result;
  std::exception_ptr error;
  try {
    result = std::make_unique<ExperimentResult>();
    result->policy = policy;
    EngineConfig config = base_;
    config.policy = policy;
    if (stop.valid()) config.stop = stop;
    result->simulation = simulate(workload_, config);
    result->report = metrics::evaluate(result->simulation, fst_options_);
    if (fst_options_.policy_knowledge) {
      // The forked-engine FST re-runs the policy itself, so it needs the
      // workload and config — this is the one place with both in hand. The
      // fork drain help-drains safely from inside a sweep lane's pool task.
      PolicyFstOptions policy_options;
      policy_options.fork_batch = fst_options_.fork_batch;
      policy_options.stats = &result->fst_stats;
      result->report.policy_fairness.fair_start =
          policy_no_later_arrivals_fst(workload_, config, policy_options);
      metrics::aggregate_fst(result->simulation, fst_options_,
                             result->report.policy_fairness);
      result->report.has_policy_fairness = true;
    }
  } catch (...) {
    error = std::current_exception();
    result.reset();
  }

  lock.lock();
  if (error) {
    entry.error = error;
    entry.state = CacheEntry::State::Failed;
  } else {
    entry.result = std::move(result);
    entry.state = CacheEntry::State::Done;  // terminal: references stay valid
  }
  entry.cv.notify_all();
  if (entry.error) std::rethrow_exception(entry.error);
  return *entry.result;
}

std::vector<const ExperimentResult*> ExperimentRunner::run_all(
    const std::vector<PolicyConfig>& policies, std::size_t jobs, util::StopToken stop) {
  obs::Span sweep_span("sweep");
  const std::size_t n = policies.size();
  std::vector<const ExperimentResult*> results(n, nullptr);
  util::ThreadPool& pool = util::global_pool();
  if (jobs == 0) jobs = pool.size();
  jobs = std::min(jobs, n);

  // run() can block on an in-flight cache entry, so sweep tasks are compound
  // pool work (never help-drained). That also means a sweep started from
  // inside a pool task could wait on workers that are all occupied by its
  // ancestors — run serially there instead.
  if (jobs <= 1 || util::ThreadPool::in_pool_task()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (stop.stop_requested()) throw SimulationCancelled(stop.reason());
      results[i] = &run(policies[i], stop);
    }
    return results;
  }

  // `jobs` pool tasks pull policy indices from a shared counter, so a slow
  // policy (consdyn) never serializes the rest behind a fixed partition.
  // Each task writes only its own results[i] slots; run() deduplicates
  // concurrent equal configs via the single-flight cache.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const auto sweep = [&] {
    // Stop pulling new policies once any lane failed or the token tripped:
    // every further simulation would be discarded anyway.
    while (!failed.load(std::memory_order_relaxed) && !stop.stop_requested()) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = &run(policies[i], stop);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(jobs);
  for (std::size_t j = 0; j + 1 < jobs; ++j) futures.push_back(pool.submit(sweep));
  std::exception_ptr first_error;
  try {
    sweep();  // the calling thread is the jobs-th lane
  } catch (...) {
    first_error = std::current_exception();
  }
  // Always join the submitted lanes — they reference this frame's state.
  for (auto& future : futures) {
    try {
      future.get();
    } catch (const util::SubmitRejected&) {
      // The lane was never queued (shutdown race or injected fault). The
      // shared counter means the surviving lanes — at minimum this calling
      // thread — still sweep every policy: degraded parallelism, not failure.
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  // A tripped token can leave slots unvisited without any lane throwing;
  // callers dereference every slot, so surface the cancellation instead.
  if (stop.stop_requested())
    for (const ExperimentResult* r : results)
      if (r == nullptr) throw SimulationCancelled(stop.reason());
  return results;
}

std::vector<CellOutcome> ExperimentRunner::run_isolated(
    const std::vector<PolicyConfig>& policies, const IsolatedRunOptions& options) {
  obs::Span sweep_span("sweep");
  const std::size_t n = policies.size();
  std::vector<CellOutcome> outcomes(n);
  util::ThreadPool& pool = util::global_pool();
  std::size_t jobs = options.jobs == 0 ? pool.size() : options.jobs;
  jobs = std::min(jobs, n);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> halt{false};
  std::mutex finish_mutex;
  const auto lane = [&] {
    while (!halt.load(std::memory_order_relaxed) && !options.stop.stop_requested()) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      CellOutcome outcome;
      {
        obs::Span cell_span("cell");
        const std::uint64_t cell_t0 = obs::armed() ? obs::now_us() : 0;
        if (obs::armed()) cell_span.set_arg(policies[i].display_name());
        try {
          // Build the cell's token before on_start so timeouts measure from
          // the instant the cell is picked up, fault hooks included.
          const util::StopToken token =
              options.cell_stop ? options.cell_stop(i) : options.stop;
          if (options.on_start) options.on_start(i, token);
          outcome.result = &run(policies[i], token, &outcome.cache_hit);
        } catch (...) {
          outcome.error = std::current_exception();
          if (!options.keep_going) halt.store(true, std::memory_order_relaxed);
        }
        // Errors are timed too — a timed-out cell's lane occupancy is exactly
        // what a breakdown reader wants to see.
        if (obs::armed())
          outcome.wall_seconds = static_cast<double>(obs::now_us() - cell_t0) * 1e-6;
      }
      outcomes[i] = outcome;  // each lane writes only its own slots
      if (options.on_finish) {
        const std::lock_guard<std::mutex> guard(finish_mutex);
        options.on_finish(i, outcomes[i]);
      }
    }
  };

  // Same compound-task discipline as run_all: serial when nested in the pool.
  if (jobs <= 1 || util::ThreadPool::in_pool_task()) {
    lane();
    return outcomes;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(jobs);
  for (std::size_t j = 0; j + 1 < jobs; ++j) futures.push_back(pool.submit(lane));
  std::exception_ptr first_error;  // only on_finish can throw out of a lane
  try {
    lane();
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (const util::SubmitRejected&) {
      // Rejected lane: the remaining lanes pull its share of cells from the
      // shared counter, so the sweep completes with less parallelism.
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return outcomes;
}

}  // namespace psched::sim
