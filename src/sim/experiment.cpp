#include "sim/experiment.hpp"

#include <atomic>

#include "util/thread_pool.hpp"

namespace psched::sim {

ExperimentRunner::ExperimentRunner(Workload workload, EngineConfig base,
                                   metrics::FstOptions fst_options)
    : workload_(std::move(workload)), base_(std::move(base)), fst_options_(fst_options) {
  workload_.validate();
}

ExperimentRunner::CacheEntry& ExperimentRunner::entry_for(const PolicyConfig& policy) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<CacheEntry>& slot = cache_[policy.canonical_key()];
  if (!slot) slot = std::make_unique<CacheEntry>();
  return *slot;
}

const ExperimentResult& ExperimentRunner::run(const PolicyConfig& policy) {
  CacheEntry& entry = entry_for(policy);
  std::call_once(entry.once, [&] {
    // Errors are cached too: every caller of a broken config sees the same
    // exception instead of half of them retrying the simulation.
    try {
      auto result = std::make_unique<ExperimentResult>();
      result->policy = policy;
      EngineConfig config = base_;
      config.policy = policy;
      result->simulation = simulate(workload_, config);
      result->report = metrics::evaluate(result->simulation, fst_options_);
      entry.result = std::move(result);
    } catch (...) {
      entry.error = std::current_exception();
    }
  });
  if (entry.error) std::rethrow_exception(entry.error);
  return *entry.result;
}

std::vector<const ExperimentResult*> ExperimentRunner::run_all(
    const std::vector<PolicyConfig>& policies, std::size_t jobs) {
  const std::size_t n = policies.size();
  std::vector<const ExperimentResult*> results(n, nullptr);
  util::ThreadPool& pool = util::global_pool();
  if (jobs == 0) jobs = pool.size();
  jobs = std::min(jobs, n);

  // run() can block on an in-flight cache entry, so sweep tasks are compound
  // pool work (never help-drained). That also means a sweep started from
  // inside a pool task could wait on workers that are all occupied by its
  // ancestors — run serially there instead.
  if (jobs <= 1 || util::ThreadPool::in_pool_task()) {
    for (std::size_t i = 0; i < n; ++i) results[i] = &run(policies[i]);
    return results;
  }

  // `jobs` pool tasks pull policy indices from a shared counter, so a slow
  // policy (consdyn) never serializes the rest behind a fixed partition.
  // Each task writes only its own results[i] slots; run() deduplicates
  // concurrent equal configs via the single-flight cache.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const auto sweep = [&] {
    // Stop pulling new policies once any lane failed: the sweep's error is
    // about to be rethrown and every further simulation would be discarded.
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = &run(policies[i]);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(jobs);
  for (std::size_t j = 0; j + 1 < jobs; ++j) futures.push_back(pool.submit(sweep));
  std::exception_ptr first_error;
  try {
    sweep();  // the calling thread is the jobs-th lane
  } catch (...) {
    first_error = std::current_exception();
  }
  // Always join the submitted lanes — they reference this frame's state.
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace psched::sim
