#include "sim/experiment.hpp"

namespace psched::sim {

ExperimentRunner::ExperimentRunner(Workload workload, EngineConfig base)
    : workload_(std::move(workload)), base_(std::move(base)) {
  workload_.validate();
}

const ExperimentResult& ExperimentRunner::run(const PolicyConfig& policy) {
  const std::string key = policy.display_name();
  if (const auto it = cache_.find(key); it != cache_.end()) return *it->second;

  auto result = std::make_unique<ExperimentResult>();
  result->policy = policy;
  EngineConfig config = base_;
  config.policy = policy;
  result->simulation = simulate(workload_, config);
  result->report = metrics::evaluate(result->simulation);
  const auto [it, inserted] = cache_.emplace(key, std::move(result));
  return *it->second;
}

std::vector<const ExperimentResult*> ExperimentRunner::run_all(
    const std::vector<PolicyConfig>& policies) {
  std::vector<const ExperimentResult*> results;
  results.reserve(policies.size());
  for (const PolicyConfig& policy : policies) results.push_back(&run(policy));
  return results;
}

}  // namespace psched::sim
