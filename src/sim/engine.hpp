#pragma once
// Event-driven simulation engine (paper section 3.1). The engine owns all
// machine and accounting state — free nodes, running jobs, the fairshare
// tracker, the loss-of-capacity integral, per-arrival snapshots and the
// event heap — and delegates policy decisions to a core::Scheduler built
// from the configured PolicyConfig.
//
// Maximum-runtime limits (section 5.1) are applied here: an original job
// longer than the limit enters as segment 0, and each following segment is
// submitted the instant its predecessor completes.

#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "core/fairshare.hpp"
#include "core/job.hpp"
#include "core/policy.hpp"
#include "core/record.hpp"
#include "core/runtime_limit.hpp"
#include "core/scheduler.hpp"

namespace psched::sim {

/// What happens when a job reaches its wall clock limit while still running.
/// CPlant killed jobs at the WCL only when other jobs wanted the processors
/// (paper section 2.2); trace replays conventionally let jobs run to their
/// recorded runtime.
enum class WclEnforcement {
  Never,         ///< jobs always run to their trace runtime (default)
  KillIfNeeded,  ///< kill at WCL when a waiting job could use the nodes
  Always,        ///< hard limit: runtime is truncated to the WCL
};

/// How maximum-runtime segments enter the system.
enum class SegmentArrival {
  /// All segments are submitted at the original job's submit time, as if the
  /// trace had been preprocessed — the paper's treatment (section 5.1/6).
  AtOriginalSubmit,
  /// Segment k+1 is submitted when segment k completes (checkpoint/restart
  /// semantics; segments of one job can never overlap).
  Chained,
};

struct EngineConfig {
  PolicyConfig policy;
  /// Usage multiplier per decay period. 0.9/day keeps a heavy user's standing
  /// depressed for a week or two (half-life ~6.6 days), which is what makes
  /// the starvation dynamics of the paper's policies visible; 0.5/day would
  /// forgive heavy use overnight.
  double fairshare_decay = 0.9;
  Time fairshare_period = days(1);     ///< CPlant decayed every 24 hours
  /// Priority refresh cadence (daily batch, as production fairshare works).
  FairshareUpdate fairshare_update = FairshareUpdate::AtDecayBoundary;
  WclEnforcement wcl_enforcement = WclEnforcement::Never;
  SegmentArrival segment_arrival = SegmentArrival::AtOriginalSubmit;
  bool record_snapshots = true;        ///< needed by the FST metrics
  /// Re-test interval for spared over-running jobs under KillIfNeeded.
  Time wcl_recheck_interval = hours(1);
};

/// Runs one policy over one workload. Single-shot: construct, run(), read the
/// result. The engine implements SchedulerContext for its scheduler.
class SimulationEngine final : public SchedulerContext {
 public:
  SimulationEngine(const Workload& workload, EngineConfig config);

  /// Inject a custom Scheduler implementation instead of building one from
  /// config.policy (the policy's max_runtime / fairshare knobs still apply).
  SimulationEngine(const Workload& workload, EngineConfig config,
                   std::unique_ptr<Scheduler> scheduler);

  /// Execute to completion and return the full result. Callable once.
  SimulationResult run();

  // --- SchedulerContext ------------------------------------------------------
  Time now() const override { return now_; }
  NodeCount total_nodes() const override { return system_size_; }
  NodeCount free_nodes() const override { return free_nodes_; }
  const Job& job(JobId id) const override;
  const std::vector<RunningView>& running() const override { return running_view_; }
  double user_usage(UserId user) const override { return fairshare_.usage(user); }
  double mean_positive_usage() const override { return fairshare_.mean_positive_usage(); }

 private:
  enum class EventKind : int { Complete = 0, Arrive = 1, WclCheck = 2, Timer = 3 };
  struct Event {
    Time at;
    EventKind kind;
    JobId id;  // record id (kInvalidJob for Timer)
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      if (kind != other.kind) return kind > other.kind;
      return id > other.id;
    }
  };

  struct RunningState {
    JobId id;
    Time actual_end;  ///< when the job completes if never killed
  };

  void advance_accounting(Time to);
  JobId add_record(const Job& job);
  void deliver_arrival(JobId id);
  void deliver_completion(JobId id, Time finish, bool killed);
  void record_snapshot(JobId id);
  void start_job(JobId id);
  void handle_wcl_check(JobId id);
  void schedule_timer(Time at);
  /// O(1) removal from the waiting set (swap-pop via the position index).
  /// The waiting set is unordered; consumers that need an order sort by
  /// their own keys.
  void remove_waiting(JobId id);

  const Workload& workload_;
  EngineConfig config_;
  RuntimeLimiter limiter_;
  std::unique_ptr<Scheduler> scheduler_;
  FairshareTracker fairshare_;

  NodeCount system_size_;
  NodeCount free_nodes_;
  Time now_ = 0;
  bool ran_ = false;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::set<Time> pending_timers_;

  SimulationResult result_;
  std::vector<RunningState> running_state_;   // parallel to running_view_
  std::vector<RunningView> running_view_;
  std::vector<JobId> waiting_;                // record ids not yet started (unordered)
  std::vector<std::int32_t> waiting_pos_;     // record id -> index in waiting_ (-1 = absent)
  NodeCount waiting_demand_ = 0;              // sum of waiting nodes
  NodeCount running_nodes_ = 0;
};

/// Convenience wrapper: build an engine and run it.
SimulationResult simulate(const Workload& workload, const EngineConfig& config);

/// Run a user-provided Scheduler implementation (the extension point for
/// custom policies; see examples/custom_policy.cpp).
SimulationResult simulate_with(const Workload& workload, const EngineConfig& config,
                               std::unique_ptr<Scheduler> scheduler);

}  // namespace psched::sim
