#pragma once
// Event-driven simulation engine (paper section 3.1). The engine owns all
// machine and accounting state — free nodes, running jobs, the fairshare
// tracker, the loss-of-capacity integral, per-arrival snapshots and the
// event heap — and delegates policy decisions to a core::Scheduler built
// from the configured PolicyConfig.
//
// Maximum-runtime limits (section 5.1) are applied here: an original job
// longer than the limit enters as segment 0, and each following segment is
// submitted the instant its predecessor completes.
//
// Arrival events are NOT pre-seeded into the event heap: the seeded records
// are already sorted by (submit, record id) — exactly the heap's ordering —
// so a cursor over them is merged with the heap on the fly. The heap only
// ever holds completions, WCL checks, timers and chained-segment arrivals,
// keeping it (and every fork's copy of it) O(queue), not O(trace).

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/fairshare.hpp"
#include "core/job.hpp"
#include "core/policy.hpp"
#include "core/record.hpp"
#include "core/runtime_limit.hpp"
#include "core/scheduler.hpp"
#include "util/stop_token.hpp"

namespace psched::sim {

/// Thrown when a simulation observes its StopToken tripped (cancellation or
/// deadline). Always raised at an event boundary, so the abandoned engine
/// never produced a partial SimulationResult — a cancelled run is simply
/// discarded, never a corrupted result. reason() distinguishes an explicit
/// stop (SIGINT, dependent failure) from a deadline (cell timeout,
/// wall-clock budget).
class SimulationCancelled : public std::runtime_error {
 public:
  explicit SimulationCancelled(util::StopReason reason)
      : std::runtime_error(std::string("simulation stopped: ") +
                           util::stop_reason_name(reason)),
        reason_(reason) {}
  util::StopReason reason() const { return reason_; }

 private:
  util::StopReason reason_;
};

/// What happens when a job reaches its wall clock limit while still running.
/// CPlant killed jobs at the WCL only when other jobs wanted the processors
/// (paper section 2.2); trace replays conventionally let jobs run to their
/// recorded runtime.
enum class WclEnforcement {
  Never,         ///< jobs always run to their trace runtime (default)
  KillIfNeeded,  ///< kill at WCL when a waiting job could use the nodes
  Always,        ///< hard limit: runtime is truncated to the WCL
};

/// How maximum-runtime segments enter the system.
enum class SegmentArrival {
  /// All segments are submitted at the original job's submit time, as if the
  /// trace had been preprocessed — the paper's treatment (section 5.1/6).
  AtOriginalSubmit,
  /// Segment k+1 is submitted when segment k completes (checkpoint/restart
  /// semantics; segments of one job can never overlap).
  Chained,
};

struct EngineConfig {
  PolicyConfig policy;
  /// Usage multiplier per decay period. 0.9/day keeps a heavy user's standing
  /// depressed for a week or two (half-life ~6.6 days), which is what makes
  /// the starvation dynamics of the paper's policies visible; 0.5/day would
  /// forgive heavy use overnight.
  double fairshare_decay = 0.9;
  Time fairshare_period = days(1);     ///< CPlant decayed every 24 hours
  /// Priority refresh cadence (daily batch, as production fairshare works).
  FairshareUpdate fairshare_update = FairshareUpdate::AtDecayBoundary;
  WclEnforcement wcl_enforcement = WclEnforcement::Never;
  SegmentArrival segment_arrival = SegmentArrival::AtOriginalSubmit;
  bool record_snapshots = true;        ///< needed by the FST metrics
  /// Re-test interval for spared over-running jobs under KillIfNeeded.
  Time wcl_recheck_interval = hours(1);
  /// Cooperative cancellation: polled at every event boundary of the run
  /// loop (and therefore inside every fork drain — forks copy the config).
  /// When it trips, the run throws SimulationCancelled. Empty (the default)
  /// costs one branch per event batch.
  util::StopToken stop;
};

/// Runs one policy over one workload. Single-shot: construct, run(), read the
/// result. The engine implements SchedulerContext for its scheduler.
class SimulationEngine final : public SchedulerContext {
 public:
  SimulationEngine(const Workload& workload, EngineConfig config);

  /// Inject a custom Scheduler implementation instead of building one from
  /// config.policy (the policy's max_runtime / fairshare knobs still apply).
  SimulationEngine(const Workload& workload, EngineConfig config,
                   std::unique_ptr<Scheduler> scheduler);

  /// Execute to completion and return the full result. Callable once.
  SimulationResult run();

  // --- fork support ----------------------------------------------------------
  //
  // In an event-driven simulation the engine state at job i's arrival is
  // identical whether or not jobs i+1..n exist: arrival events are ordered by
  // (submit, record id) and the workload is sorted the same way, so when job
  // i's arrival is the next event to deliver, no later job has touched any
  // state yet. A fork taken at that instant therefore resumes as if the
  // workload had been truncated after job i — which turns the O(n^2)
  // "re-simulate the truncated workload per job" fair-start-time metric into
  // one full pass plus a cheap per-arrival fork (sim/policy_fst.hpp).

  /// Invoked immediately before an arrival event is delivered; the engine
  /// state at that instant is byte-identical to a run over the workload
  /// truncated after the arriving job (see above).
  using ArrivalHook = std::function<void(JobId)>;

  /// Like run(), but fires `hook` at every arrival. fork_for_arrival() is
  /// only meaningful from inside the hook. Callable once, instead of run().
  SimulationResult run_with_arrival_hook(const ArrivalHook& hook);

  /// Clone the engine mid-run into an independent fork that never sees an
  /// arrival with record id > `target`: machine state, pending events,
  /// fairshare tracker, waiting/running sets and the scheduler (via
  /// Scheduler::clone()) are all copied — every one of them O(queue depth).
  /// The job table is the parent's immutable shared Workload (a view bump,
  /// not a copy), start times land in a sparse per-fork overlay, and the
  /// seeded-arrival cursor is simply capped at `target`, so fork cost is
  /// independent of the arrival index. Only valid from inside an arrival
  /// hook, at the hook invocation for `target`; requires no maximum-runtime
  /// limit (record ids must equal workload indices) and a clone()-capable
  /// scheduler.
  std::unique_ptr<SimulationEngine> fork_for_arrival(JobId target) const;

  /// Drain a fork until `target` starts and return its start time — the
  /// "no later arrivals under the actual policy" fair start time of
  /// `target`. Throws std::logic_error if the fork ends without starting it.
  Time run_until_started(JobId target);

  /// Mid-run observer: the start time recorded for `id` so far (kNoTime if
  /// it has not started yet). Lets the FST driver resolve forks whose target
  /// provably started before the fork's universe diverged — i.e. before the
  /// next arrival was delivered — without draining them.
  Time recorded_start(JobId id) const { return record_start(id); }

  /// Approximate bytes of fork-owned heap state (event heap, waiting/running
  /// sets, sparse start/waiting overlays, timers). Excludes the shared job
  /// table — that is the point of the shared-workload design — and the
  /// scheduler clone's internals. Used to report peak drain-batch footprint.
  std::size_t fork_footprint_bytes() const;

  // --- SchedulerContext ------------------------------------------------------
  Time now() const override { return now_; }
  NodeCount total_nodes() const override { return system_size_; }
  NodeCount free_nodes() const override { return free_nodes_; }
  const Job& job(JobId id) const override;
  const std::vector<RunningView>& running() const override { return running_view_; }
  double user_usage(UserId user) const override { return fairshare_.usage(user); }
  double mean_positive_usage() const override { return fairshare_.mean_positive_usage(); }

 private:
  enum class EventKind : int { Complete = 0, Arrive = 1, WclCheck = 2, Timer = 3 };
  struct Event {
    Time at;
    EventKind kind;
    JobId id;  // record id (kInvalidJob for Timer)
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      if (kind != other.kind) return kind > other.kind;
      return id > other.id;
    }
  };
  /// The next event to deliver: either the heap top or the virtual arrival
  /// of the seeded-record cursor, whichever sorts first under Event's order.
  struct PendingEvent {
    Event event;
    bool from_cursor;
  };

  /// Fork copy (fork_for_arrival): clone `other` mid-run with the seeded
  /// arrival cursor capped at `target`; all copied state is O(queue depth).
  SimulationEngine(const SimulationEngine& other, JobId target);

  struct RunningState {
    JobId id;
    Time actual_end;  ///< when the job completes if never killed
  };

  bool is_fork() const { return arrival_limit_ != kInvalidJob; }

  void advance_accounting(Time to);
  JobId add_record(const Job& job);
  void deliver_arrival(JobId id);
  void deliver_completion(JobId id, Time finish, bool killed);
  void record_snapshot(JobId id);
  void start_job(JobId id);
  void handle_wcl_check(JobId id);
  void schedule_timer(Time at);
  /// O(1) removal from the waiting set (swap-pop via the position index).
  /// The waiting set is unordered; consumers that need an order sort by
  /// their own keys.
  void remove_waiting(JobId id);

  // Start times and the waiting-position index live in the dense record
  // table on a master engine, and in sparse per-fork overlays on a fork —
  // a fork may only ever touch O(queue) of either, and the dense tables
  // are what made fork cost O(arrival index).
  Time record_start(JobId id) const;
  void set_record_start(JobId id, Time at);
  std::int32_t waiting_pos_of(JobId id) const;
  void set_waiting_pos(JobId id, std::int32_t pos);

  /// The shared event loop. `hook` (may be null) fires before each arrival;
  /// when `run_until` is a valid record id the loop returns as soon as that
  /// record has started (fork draining) instead of draining the heap.
  void run_loop(const ArrivalHook* hook, JobId run_until);

  // Event heap primitives (min-heap over a plain vector) plus the merged
  // heap-or-cursor view the run loop consumes.
  const Event& events_top() const { return events_.front(); }
  void push_event(const Event& event);
  void pop_event();
  std::optional<PendingEvent> peek_event() const;
  void consume_event(const PendingEvent& pending);

  Workload workload_;  ///< immutable shared view; copying it is O(1)
  EngineConfig config_;
  RuntimeLimiter limiter_;
  std::unique_ptr<Scheduler> scheduler_;
  FairshareTracker fairshare_;

  NodeCount system_size_;
  NodeCount free_nodes_;
  Time now_ = 0;
  bool ran_ = false;

  std::vector<Event> events_;  ///< min-heap (std::push_heap/pop_heap, greater)
  std::set<Time> pending_timers_;
  /// Forks only: arrival events with a record id above this are discarded
  /// (kInvalidJob = deliver everything, the normal mode).
  JobId arrival_limit_ = kInvalidJob;
  /// Seeded-arrival cursor: records [next_seeded_, seeded_end_) have not
  /// arrived yet and are delivered in record order (== (submit, id) order).
  JobId next_seeded_ = 0;
  JobId seeded_end_ = 0;

  SimulationResult result_;
  std::vector<RunningState> running_state_;   // parallel to running_view_
  std::vector<RunningView> running_view_;
  std::vector<JobId> waiting_;                // record ids not yet started (unordered)
  std::vector<std::int32_t> waiting_pos_;     // master: record id -> index in waiting_ (-1 = absent)
  // Fork overlays (lookups only, never iterated — determinism-safe).
  std::unordered_map<JobId, Time> fork_starts_;
  std::unordered_map<JobId, std::int32_t> fork_waiting_pos_;
  NodeCount waiting_demand_ = 0;              // sum of waiting nodes
  NodeCount running_nodes_ = 0;
};

/// Convenience wrapper: build an engine and run it.
SimulationResult simulate(const Workload& workload, const EngineConfig& config);

/// Run a user-provided Scheduler implementation (the extension point for
/// custom policies; see examples/custom_policy.cpp).
SimulationResult simulate_with(const Workload& workload, const EngineConfig& config,
                               std::unique_ptr<Scheduler> scheduler);

}  // namespace psched::sim
