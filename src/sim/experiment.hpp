#pragma once
// Experiment runner: one workload, many policies, cached results. Every
// figure binary in bench/ funnels through this so repeated policies within a
// process simulate exactly once.
//
// The cache is keyed on PolicyConfig::canonical_key() (covers every field —
// display_name collides for configs differing only in heavy_user_factor) and
// is single-flight: concurrent callers asking for the same policy block until
// the one in-flight simulation finishes, then share its result. Error entries
// are evictable: callers that joined a flight share its error, but a *later*
// call retries (re-entering single-flight), so a transient failure — a
// cancelled or timed-out cell — does not poison the config for the rest of
// the process (what --resume / --keep-going re-runs rely on).

#include <condition_variable>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "sim/engine.hpp"
#include "sim/policy_fst.hpp"
#include "util/stop_token.hpp"

namespace psched::sim {

struct ExperimentResult {
  PolicyConfig policy;
  SimulationResult simulation;
  metrics::PolicyReport report;
  /// Drain observability from the policy-knowledge FST pass (zeros when the
  /// metric set never selected it). Deterministic per (workload, config).
  PolicyFstStats fst_stats;
};

/// The per-policy outcome of a fault-isolated sweep (run_isolated): exactly
/// one of `result`/`error` is set for an attempted cell; both are null when
/// the sweep stopped before the cell was ever pulled.
struct CellOutcome {
  const ExperimentResult* result = nullptr;
  std::exception_ptr error;
  /// Cache provenance + lane wall time, for campaign breakdowns. The result
  /// bytes never depend on either: wall_seconds is only measured while obs
  /// tracing is armed (and stays 0.0 otherwise), cache_hit only feeds the
  /// summary "breakdown" block an armed run emits.
  bool cache_hit = false;
  double wall_seconds = 0.0;
  bool attempted() const { return result != nullptr || error != nullptr; }
};

/// Hooks and knobs for run_isolated.
struct IsolatedRunOptions {
  /// Concurrent lanes (0 = global pool size, 1 = serial).
  std::size_t jobs = 0;
  /// Sweep-wide stop: once tripped, lanes stop pulling new cells (cells
  /// already in flight are cancelled through their own tokens when those
  /// chain to this one).
  util::StopToken stop;
  /// false: the first failing cell also stops lanes from pulling new cells
  /// (already-pulled cells still finish and are reported).
  bool keep_going = true;
  /// Per-cell token factory, called in the lane immediately before the cell
  /// starts (so deadlines measure per-cell wall clock). Default: `stop`.
  std::function<util::StopToken(std::size_t)> cell_stop;
  /// Called in the lane after the token is built and before the simulation —
  /// the test-only fault-injection point; a throw becomes the cell's error.
  std::function<void(std::size_t, const util::StopToken&)> on_start;
  /// Called once per attempted cell as it finishes, serialized under an
  /// internal mutex (safe to append to a journal). Must not throw.
  std::function<void(std::size_t, const CellOutcome&)> on_finish;
};

class ExperimentRunner {
 public:
  /// `base` supplies everything except the policy (fairshare decay, WCL
  /// enforcement, snapshot recording); `fst_options` is the metric
  /// configuration every cached report is evaluated with (tolerance,
  /// knowledge model) — per-runner, so cached reports never mix tolerances.
  /// The workload is copied once and is read-only afterwards, so concurrent
  /// simulations can share it.
  ExperimentRunner(Workload workload, EngineConfig base = {},
                   metrics::FstOptions fst_options = {});

  /// Simulate `policy` (or return the cached result). Thread-safe and
  /// single-flight: duplicate configs simulate exactly once regardless of how
  /// many threads ask; a failed flight rethrows its error to every caller
  /// that joined it, and the next fresh call retries. `stop` (when valid)
  /// cancels the simulation at an event boundary with SimulationCancelled;
  /// empty falls back to the base config's token. Returned references stay
  /// valid for the runner's lifetime. `cache_hit` (optional) reports whether
  /// the result was served without simulating here — a Done entry or a
  /// joined in-flight computation.
  const ExperimentResult& run(const PolicyConfig& policy, util::StopToken stop = {},
                              bool* cache_hit = nullptr);

  /// Run several policies, up to `jobs` concurrently on util::global_pool()
  /// (0 = pool size; 1 = serial). Results are returned in input order and are
  /// byte-identical to a serial sweep regardless of thread count: each
  /// simulation owns all its mutable state, and the FST aggregation inside
  /// each run is index-deterministic. The first error aborts the sweep (all
  /// lanes join first) and rethrows; a tripped `stop` surfaces as
  /// SimulationCancelled.
  std::vector<const ExperimentResult*> run_all(const std::vector<PolicyConfig>& policies,
                                               std::size_t jobs = 0, util::StopToken stop = {});

  /// Fault-isolated sweep: like run_all, but a failing cell never aborts the
  /// others — each policy gets its own CellOutcome (result, error, or
  /// never-attempted when the sweep stopped first). Never throws for
  /// cell-level failures; exceptions escaping on_finish are rethrown after
  /// all lanes join. The campaign runner builds its per-cell status rows,
  /// timeouts and journal records on top of this.
  std::vector<CellOutcome> run_isolated(const std::vector<PolicyConfig>& policies,
                                        const IsolatedRunOptions& options = {});

  const Workload& workload() const { return workload_; }
  const EngineConfig& base_config() const { return base_; }

 private:
  /// One cache slot per canonical key. A small state machine instead of
  /// once_flag so failed flights can be retried: Done is terminal (result
  /// references must stay valid), Failed is evicted by the next caller.
  struct CacheEntry {
    enum class State { Empty, Running, Done, Failed };
    std::mutex mutex;
    std::condition_variable cv;
    State state = State::Empty;
    std::unique_ptr<ExperimentResult> result;
    std::exception_ptr error;
  };

  CacheEntry& entry_for(const PolicyConfig& policy);

  Workload workload_;
  EngineConfig base_;
  metrics::FstOptions fst_options_;
  std::mutex mutex_;  ///< guards cache_ lookup/insert only, never held while simulating
  std::map<std::string, std::unique_ptr<CacheEntry>> cache_;
};

}  // namespace psched::sim
