#pragma once
// Experiment runner: one workload, many policies, cached results. Every
// figure binary in bench/ funnels through this so repeated policies within a
// process simulate exactly once.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "sim/engine.hpp"

namespace psched::sim {

struct ExperimentResult {
  PolicyConfig policy;
  SimulationResult simulation;
  metrics::PolicyReport report;
};

class ExperimentRunner {
 public:
  /// `base` supplies everything except the policy (fairshare decay, WCL
  /// enforcement, snapshot recording). The workload is copied once.
  ExperimentRunner(Workload workload, EngineConfig base = {});

  /// Simulate `policy` (or return the cached result). Thread-compatible:
  /// guard with your own synchronization if calling concurrently.
  const ExperimentResult& run(const PolicyConfig& policy);

  /// Run several policies in order; FST aggregation inside each run already
  /// uses the global thread pool.
  std::vector<const ExperimentResult*> run_all(const std::vector<PolicyConfig>& policies);

  const Workload& workload() const { return workload_; }
  const EngineConfig& base_config() const { return base_; }

 private:
  Workload workload_;
  EngineConfig base_;
  std::map<std::string, std::unique_ptr<ExperimentResult>> cache_;
};

}  // namespace psched::sim
