#pragma once
// Experiment runner: one workload, many policies, cached results. Every
// figure binary in bench/ funnels through this so repeated policies within a
// process simulate exactly once.
//
// The cache is keyed on PolicyConfig::canonical_key() (covers every field —
// display_name collides for configs differing only in heavy_user_factor) and
// is single-flight: concurrent callers asking for the same policy block until
// the one in-flight simulation finishes, then share its result.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "sim/engine.hpp"

namespace psched::sim {

struct ExperimentResult {
  PolicyConfig policy;
  SimulationResult simulation;
  metrics::PolicyReport report;
};

class ExperimentRunner {
 public:
  /// `base` supplies everything except the policy (fairshare decay, WCL
  /// enforcement, snapshot recording); `fst_options` is the metric
  /// configuration every cached report is evaluated with (tolerance,
  /// knowledge model) — per-runner, so cached reports never mix tolerances.
  /// The workload is copied once and is read-only afterwards, so concurrent
  /// simulations can share it.
  ExperimentRunner(Workload workload, EngineConfig base = {},
                   metrics::FstOptions fst_options = {});

  /// Simulate `policy` (or return the cached result). Thread-safe and
  /// single-flight: duplicate configs simulate exactly once regardless of how
  /// many threads ask; a failed simulation rethrows its error to every
  /// caller. Returned references stay valid for the runner's lifetime.
  const ExperimentResult& run(const PolicyConfig& policy);

  /// Run several policies, up to `jobs` concurrently on util::global_pool()
  /// (0 = pool size; 1 = serial). Results are returned in input order and are
  /// byte-identical to a serial sweep regardless of thread count: each
  /// simulation owns all its mutable state, and the FST aggregation inside
  /// each run is index-deterministic.
  std::vector<const ExperimentResult*> run_all(const std::vector<PolicyConfig>& policies,
                                               std::size_t jobs = 0);

  const Workload& workload() const { return workload_; }
  const EngineConfig& base_config() const { return base_; }

 private:
  /// One cache slot per canonical key; the once_flag makes computation
  /// single-flight, and map node stability keeps entry references valid
  /// while the mutex is released during simulation.
  struct CacheEntry {
    std::once_flag once;
    std::unique_ptr<ExperimentResult> result;
    std::exception_ptr error;
  };

  CacheEntry& entry_for(const PolicyConfig& policy);

  Workload workload_;
  EngineConfig base_;
  metrics::FstOptions fst_options_;
  std::mutex mutex_;  ///< guards cache_ lookup/insert only, never held while simulating
  std::map<std::string, std::unique_ptr<CacheEntry>> cache_;
};

}  // namespace psched::sim
