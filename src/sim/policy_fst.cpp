#include "sim/policy_fst.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace psched::sim {

namespace {

void require_no_max_runtime(const EngineConfig& config) {
  if (config.policy.max_runtime != kNoTime)
    throw std::invalid_argument(
        "policy_no_later_arrivals_fst: requires config.policy.max_runtime == kNoTime — "
        "segment chaining has no well-defined per-original start");
}

}  // namespace

std::vector<Time> policy_no_later_arrivals_fst(const Workload& workload,
                                               const EngineConfig& config,
                                               const PolicyFstOptions& options) {
  require_no_max_runtime(config);

  const std::size_t n = workload.jobs.size();
  std::vector<Time> fair_start(n, kNoTime);
  if (n == 0) return fair_start;

  EngineConfig run = config;
  run.record_snapshots = false;

  // One full pass: the master engine simulates the whole workload and forks
  // itself at every arrival; each fork sees no later arrivals and is drained
  // until its job starts. Forks are independent (they share only the
  // read-only workload), so batches of them drain concurrently as leaf tasks
  // — safe to help-drain from inside another pool task, and byte-identical
  // to a serial drain (one integer write per fork, each to its own slot).
  // The batch is bounded to keep peak memory at O(batch * engine) instead of
  // accumulating all n forks.
  // Serial draining uses the same bounded batch as parallel: deferring a
  // fork's drain to a later hook lets the master answer it for free via the
  // resolve-without-drain check below (draining inside the fork's own hook
  // would find recorded_start still unset and always pay the full tail).
  std::vector<std::pair<JobId, std::unique_ptr<SimulationEngine>>> batch;
  const std::size_t batch_cap =
      options.fork_batch > 0
          ? options.fork_batch
          : std::max<std::size_t>(options.parallel ? 4 * util::global_pool().size() : 0, 16);
  batch.reserve(batch_cap);
  // Stats are kept unconditionally (integer bookkeeping is free); only the
  // per-batch footprint walk — a fork_footprint_bytes() sweep — stays gated
  // on someone actually consuming it (the caller's out-param or armed obs).
  PolicyFstStats local_stats;
  PolicyFstStats* stats = options.stats != nullptr ? options.stats : &local_stats;
  *stats = PolicyFstStats{};
  stats->forks = n;
  stats->fork_batch = batch_cap;
  const bool want_batch_bytes = options.stats != nullptr || obs::armed();

  SimulationEngine master(workload, run);
  const SimulationResult* master_result = nullptr;  // set once the pass ends

  // A fork's universe diverges from the master only when the first later
  // arrival is delivered — at jobs[target + 1].submit. A master start
  // strictly before that instant was therefore decided in still-identical
  // state and IS the fork's start: resolve it without draining. (The last
  // job never diverges; its fork is always resolved from the master.)
  const auto resolved_without_drain = [&](JobId target) {
    const Time start = master_result != nullptr
                           ? master_result->records[static_cast<std::size_t>(target)].start
                           : master.recorded_start(target);
    const auto next = static_cast<std::size_t>(target) + 1;
    if (start == kNoTime || (next < n && start >= workload.jobs[next].submit))
      return kNoTime;  // unknown or post-divergence: the fork must be drained
    return start;
  };

  std::vector<std::size_t> pending;  // batch indices that genuinely need a drain
  const auto drain_batch = [&] {
    if (batch.empty()) return;
    obs::Span batch_span("fork-batch");
    if (obs::armed()) batch_span.set_arg(std::to_string(batch.size()) + " forks");
    if (want_batch_bytes) {
      // Peak engine-state memory this batch admitted: every fork in it is
      // still alive here, before resolution frees any of them.
      std::size_t batch_bytes = 0;
      for (const auto& entry : batch) batch_bytes += entry.second->fork_footprint_bytes();
      stats->peak_batch_bytes = std::max(stats->peak_batch_bytes, batch_bytes);
    }
    pending.clear();
    for (std::size_t k = 0; k < batch.size(); ++k) {
      const Time resolved = resolved_without_drain(batch[k].first);
      if (resolved != kNoTime) {
        fair_start[static_cast<std::size_t>(batch[k].first)] = resolved;
        batch[k].second.reset();
      } else {
        pending.push_back(k);
      }
    }
    const auto drain_one = [&](std::size_t p) {
      auto& [target, fork] = batch[pending[p]];
      fair_start[static_cast<std::size_t>(target)] = fork->run_until_started(target);
      fork.reset();  // free the fork as soon as it is drained
    };
    if (options.parallel)
      util::parallel_for(pending.size(), drain_one);
    else
      for (std::size_t p = 0; p < pending.size(); ++p) drain_one(p);
    stats->drained += pending.size();
    stats->resolved_from_master += batch.size() - pending.size();
    batch.clear();
  };

  const SimulationResult result = master.run_with_arrival_hook([&](JobId id) {
    batch.emplace_back(id, master.fork_for_arrival(id));
    if (batch.size() >= batch_cap) drain_batch();
  });
  master_result = &result;  // run() moved the records out of the engine
  drain_batch();
  obs::count(obs::Counter::kFstForks, stats->forks);
  obs::count(obs::Counter::kFstForksDrained, stats->drained);
  obs::count(obs::Counter::kFstResolvedFromMaster, stats->resolved_from_master);
  obs::record_max(obs::Counter::kFstPeakBatchBytes, stats->peak_batch_bytes);
  return fair_start;
}

std::vector<Time> policy_no_later_arrivals_fst_naive(const Workload& workload,
                                                     const EngineConfig& config,
                                                     const PolicyFstOptions& options) {
  require_no_max_runtime(config);

  const std::size_t n = workload.jobs.size();
  std::vector<Time> fair_start(n, kNoTime);

  const auto compute_one = [&](std::size_t i) {
    // A truncation is a view over the shared job table — ids already match
    // indices and the target is the last job.
    const Workload truncated = workload.truncate(i + 1);
    EngineConfig run = config;
    run.record_snapshots = false;
    const SimulationResult result = simulate(truncated, run);
    fair_start[i] = result.records.at(i).start;
  };

  if (options.parallel)
    util::parallel_for(n, compute_one);
  else
    for (std::size_t i = 0; i < n; ++i) compute_one(i);
  return fair_start;
}

}  // namespace psched::sim
