#include "sim/policy_fst.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace psched::sim {

std::vector<Time> policy_no_later_arrivals_fst(const Workload& workload,
                                               const EngineConfig& config,
                                               const PolicyFstOptions& options) {
  if (config.policy.max_runtime != kNoTime)
    throw std::invalid_argument(
        "policy_no_later_arrivals_fst: requires config.policy.max_runtime == kNoTime — "
        "segment chaining has no well-defined per-original start");

  const std::size_t n = workload.jobs.size();
  std::vector<Time> fair_start(n, kNoTime);

  const auto compute_one = [&](std::size_t i) {
    Workload truncated;
    truncated.system_size = workload.system_size;
    truncated.jobs.assign(workload.jobs.begin(),
                          workload.jobs.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    // ids already match indices; the target is the last job.
    EngineConfig run = config;
    run.record_snapshots = false;
    const SimulationResult result = simulate(truncated, run);
    fair_start[i] = result.records.at(i).start;
  };

  if (options.parallel)
    util::parallel_for(n, compute_one);
  else
    for (std::size_t i = 0; i < n; ++i) compute_one(i);
  return fair_start;
}

}  // namespace psched::sim
