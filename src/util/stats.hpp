#pragma once
// Small descriptive-statistics toolkit used by trace characterization
// (Figures 4-7) and the experiment reports.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace psched::util {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (see stddev() below)
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double total = 0.0;
};

/// Full summary; empty input yields a zeroed Summary with count == 0.
Summary summarize(std::span<const double> values);

double mean(std::span<const double> values);

/// Sample standard deviation (Bessel-corrected, divides by N-1): everything
/// we summarize — waits, slowdowns, trace columns — is a sample of the
/// workload process, not a full population, and the N-1 estimator matches the
/// size() < 2 guard (one observation carries no spread information).
/// Fewer than two values yield 0.
double stddev(std::span<const double> values);

/// Linear-interpolated percentile, q in [0, 1]. Empty input returns 0.
double percentile(std::span<const double> values, double q);

/// Pearson correlation coefficient; 0 if either side is degenerate.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> x, std::span<const double> y);

/// Ordinary least squares fit y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Jain's fairness index of a non-negative sample: (sum x)^2 / (n * sum x^2).
/// 1.0 means perfectly equal; 1/n means maximally concentrated.
double jain_fairness_index(std::span<const double> values);

/// Ranks with ties averaged (1-based), helper for spearman and tests.
std::vector<double> average_ranks(std::span<const double> values);

/// Percentile-bootstrap confidence interval for the mean of a sample — the
/// campaign aggregator's building block for summarizing replicate seeds.
struct BootstrapCi {
  std::size_t count = 0;    ///< sample size (0 = empty input, all else zeroed)
  double mean = 0.0;        ///< sample mean (not the resample mean-of-means)
  double lo = 0.0;          ///< lower percentile bound of the resampled means
  double hi = 0.0;          ///< upper percentile bound
  double confidence = 0.0;  ///< echo of the requested level
  std::size_t resamples = 0;
};

/// Resample `values` with replacement `resamples` times, take the mean of
/// each resample, and return the (1-confidence)/2 .. 1-(1-confidence)/2
/// percentile band of those means. Deterministic given `seed` (all draws flow
/// through util::Rng). A single observation yields lo == hi == mean — one
/// replicate carries no spread information, same convention as stddev().
/// Throws std::invalid_argument for resamples == 0 or confidence outside
/// (0, 1).
BootstrapCi bootstrap_mean_ci(std::span<const double> values, std::size_t resamples,
                              double confidence, std::uint64_t seed);

}  // namespace psched::util
