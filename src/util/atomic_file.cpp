#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "obs/obs.hpp"
#include "util/fault.hpp"
#include "util/retry.hpp"

namespace psched::util {

namespace {

[[noreturn]] void fail(const std::string& step, const std::string& path, int err) {
  throw std::runtime_error("atomic_write_file: " + step + " " + path + ": " +
                           std::strerror(err));
}

/// Remove temp files left next to `path` by crashed runs. Only siblings from
/// *other* pids are touched: a same-pid name may belong to a concurrent
/// writer in this process (their names are already collision-free via the
/// counter suffix). Best-effort — cleanup must never fail the write.
void unlink_stale_tmps(const std::string& path) {
  namespace fs = std::filesystem;
  const std::size_t slash = path.find_last_of('/');
  const fs::path dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp.";
  const std::string own = prefix + std::to_string(::getpid()) + ".";
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.rfind(own, 0) == 0) continue;
    fs::remove(it->path(), ec);
    ec.clear();
  }
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Failure here is NOT a failed write: the rename already happened and the
/// new file is visible; only its crash-durability is unconfirmed. The error
/// text says so, and the renamed file is left in place.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  int err = 0;
  if (fd < 0) {
    err = errno;
  } else {
    err = retry_io([&]() -> int {
      if (const int injected = PSCHED_FAULT("atomic_write.parent_fsync")) return injected;
      return ::fsync(fd) != 0 ? errno : 0;
    });
    ::close(fd);
  }
  if (err != 0) {
    throw std::runtime_error("atomic_write_file: rename durability unconfirmed: fsync directory " +
                             dir + ": " + std::strerror(err) + " (" + path +
                             " was replaced and remains visible, but the rename may not survive "
                             "a crash)");
  }
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  obs::count(obs::Counter::kStoreAtomicWrites);
  obs::Span span("store-write");
  if (obs::armed()) span.set_arg(path);
  // Temp name: <path>.tmp.<pid>.<counter>. The process-wide counter keeps
  // concurrent writers of the same path in one process apart (pool lanes
  // under --keep-going, benches); O_EXCL turns the remaining collision — a
  // stale tmp from a crashed run under a recycled pid — into a retry with a
  // fresh counter value instead of silently reusing a foreign file.
  static std::atomic<std::uint64_t> g_tmp_counter{0};

  int fd = -1;
  std::string tmp;
  int open_err = EEXIST;
  for (int attempt = 0; attempt < 16 && fd < 0; ++attempt) {
    tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
          std::to_string(g_tmp_counter.fetch_add(1, std::memory_order_relaxed));
    open_err = retry_io([&]() -> int {
      if (const int injected = PSCHED_FAULT("atomic_write.open")) return injected;
      fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
      return fd < 0 ? errno : 0;
    });
    if (open_err != 0 && open_err != EEXIST) fail("open", tmp, open_err);
  }
  if (fd < 0) fail("open", tmp, open_err);

  std::size_t off = 0;
  while (off < contents.size()) {
    ssize_t written = -1;
    const int err = retry_io([&]() -> int {
      if (const int injected = PSCHED_FAULT("atomic_write.write")) return injected;
      written = ::write(fd, contents.data() + off, contents.size() - off);
      return written < 0 ? errno : 0;
    });
    if (err != 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write", tmp, err);
    }
    off += static_cast<std::size_t>(written);
  }

  const int fsync_err = retry_io([&]() -> int {
    if (const int injected = PSCHED_FAULT("atomic_write.fsync")) return injected;
    return ::fsync(fd) != 0 ? errno : 0;
  });
  if (fsync_err != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync", tmp, fsync_err);
  }

  // close() is never retried: on linux the fd is gone even when close fails,
  // and a second close could hit a recycled descriptor. The real close always
  // runs so an injected failure does not leak the fd.
  int close_err = PSCHED_FAULT("atomic_write.close");
  if (::close(fd) != 0 && close_err == 0) close_err = errno;
  if (close_err != 0) {
    ::unlink(tmp.c_str());
    fail("close", tmp, close_err);
  }

  unlink_stale_tmps(path);

  const int rename_err = retry_io([&]() -> int {
    if (const int injected = PSCHED_FAULT("atomic_write.rename")) return injected;
    return ::rename(tmp.c_str(), path.c_str()) != 0 ? errno : 0;
  });
  if (rename_err != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path, rename_err);
  }
  sync_parent_dir(path);
}

}  // namespace psched::util
