#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace psched::util {

namespace {

[[noreturn]] void fail(const std::string& step, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + step + " " + path + ": " +
                           std::strerror(errno));
}

/// fsync the directory containing `path` so the rename itself is durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("fsync directory", dir);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp);

  const char* data = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write", tmp);
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }
  sync_parent_dir(path);
}

}  // namespace psched::util
