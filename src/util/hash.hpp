#pragma once
// FNV-1a 64-bit: a tiny, dependency-free, stable hash for content
// fingerprints (workload identity, spec identity in the campaign journal).
// Not cryptographic — it only needs to make accidental collisions between
// *different inputs the user actually writes* vanishingly unlikely, and to be
// bit-stable across platforms and runs so fingerprints can be persisted.

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

namespace psched::util {

/// Incremental FNV-1a 64-bit hasher. mix() integral values by their
/// little-endian byte patterns (fixed-width, so the stream is unambiguous);
/// mix doubles via their bit pattern; mix strings length-prefixed so
/// ("ab","c") and ("a","bc") hash differently.
class Fnv1a {
 public:
  void mix_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ull;
    }
  }

  template <typename T, typename = std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>>>
  void mix(T value) {
    const auto wide = static_cast<std::uint64_t>(static_cast<std::int64_t>(value));
    mix_bytes(&wide, sizeof(wide));
  }

  void mix(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix_bytes(&bits, sizeof(bits));
  }

  void mix(std::string_view text) {
    mix(text.size());
    mix_bytes(text.data(), text.size());
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

}  // namespace psched::util
