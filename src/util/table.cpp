#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace psched::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

TextTable& TextTable::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  if (rows_.empty()) throw std::logic_error("TextTable::add before begin_row");
  if (rows_.back().size() >= header_.size()) throw std::logic_error("TextTable: row overflow");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(double value, int precision) {
  return add(format_number(value, precision));
}

TextTable& TextTable::add_int(long long value) { return add(std::to_string(value)); }

TextTable& TextTable::add_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return add(os.str());
}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) throw std::invalid_argument("TextTable::add_row: width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return s.find_first_not_of("0123456789+-.eE%,") == std::string::npos;
}
}  // namespace

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      const bool right = align_numeric && looks_numeric(cell);
      if (c) os << "  ";
      if (right)
        os << std::setw(static_cast<int>(width[c])) << std::right << cell;
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << cell;
    }
    os << '\n';
  };
  emit_row(header_, false);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return os.str();
}

std::string TextTable::csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) os << (c ? "," : "") << escape(header_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < header_.size(); ++c)
      os << (c ? "," : "") << (c < row.size() ? escape(row[c]) : std::string{});
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) { return os << table.str(); }

std::string format_number(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string format_duration_short(double seconds) {
  const double abs = std::abs(seconds);
  std::ostringstream os;
  if (abs < 60.0)
    os << format_number(seconds, 1) << 's';
  else if (abs < 3600.0)
    os << format_number(seconds / 60.0, 1) << 'm';
  else if (abs < 86400.0)
    os << format_number(seconds / 3600.0, 1) << 'h';
  else
    os << format_number(seconds / 86400.0, 2) << 'd';
  return os.str();
}

}  // namespace psched::util
