#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace psched::util {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2) throw std::invalid_argument("Histogram: need at least 2 edges");
  if (!std::is_sorted(edges_.begin(), edges_.end()))
    throw std::invalid_argument("Histogram: edges must be sorted");
  counts_.assign(edges_.size() - 1, 0.0);
}

void Histogram::add(double value, double weight) {
  if (value < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (value >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto idx = static_cast<std::size_t>(std::distance(edges_.begin(), it)) - 1;
  counts_[idx] += weight;
}

double Histogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0) + underflow_ + overflow_;
}

std::vector<double> log_edges(double lo, double hi, std::size_t n_bins) {
  if (!(lo > 0.0) || !(hi > lo) || n_bins == 0)
    throw std::invalid_argument("log_edges: need 0 < lo < hi, n_bins > 0");
  std::vector<double> edges(n_bins + 1);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i <= n_bins; ++i)
    edges[i] = std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(n_bins));
  edges.front() = lo;
  edges.back() = hi;
  return edges;
}

std::vector<double> linear_edges(double lo, double hi, std::size_t n_bins) {
  if (!(hi > lo) || n_bins == 0) throw std::invalid_argument("linear_edges: need lo < hi, n_bins > 0");
  std::vector<double> edges(n_bins + 1);
  for (std::size_t i = 0; i <= n_bins; ++i)
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n_bins);
  return edges;
}

Histogram2D::Histogram2D(std::vector<double> x_edges, std::vector<double> y_edges)
    : x_edges_(std::move(x_edges)), y_edges_(std::move(y_edges)) {
  if (x_edges_.size() < 2 || y_edges_.size() < 2)
    throw std::invalid_argument("Histogram2D: need at least 2 edges per axis");
  cells_.assign((x_edges_.size() - 1) * (y_edges_.size() - 1), 0.0);
}

void Histogram2D::add(double x, double y) {
  if (x < x_edges_.front() || x >= x_edges_.back()) return;
  if (y < y_edges_.front() || y >= y_edges_.back()) return;
  const auto xi = static_cast<std::size_t>(
      std::distance(x_edges_.begin(), std::upper_bound(x_edges_.begin(), x_edges_.end(), x)) - 1);
  const auto yi = static_cast<std::size_t>(
      std::distance(y_edges_.begin(), std::upper_bound(y_edges_.begin(), y_edges_.end(), y)) - 1);
  cells_[yi * x_bins() + xi] += 1.0;
  ++total_;
}

double Histogram2D::count(std::size_t xi, std::size_t yi) const {
  return cells_[yi * x_bins() + xi];
}

std::string Histogram2D::render(const std::string& x_label, const std::string& y_label) const {
  static constexpr char kShades[] = {' ', '.', ':', '+', 'x', 'X', '#', '@'};
  const double peak = *std::max_element(cells_.begin(), cells_.end());
  std::ostringstream os;
  os << y_label << " (rows, increasing downward is reversed: top = max)\n";
  for (std::size_t row = y_bins(); row-- > 0;) {
    os << "  |";
    for (std::size_t col = 0; col < x_bins(); ++col) {
      const double c = count(col, row);
      std::size_t shade = 0;
      if (c > 0.0 && peak > 0.0) {
        const double frac = std::log1p(c) / std::log1p(peak);
        shade = 1 + static_cast<std::size_t>(frac * 6.999);
        shade = std::min<std::size_t>(shade, sizeof(kShades) - 1);
      }
      os << kShades[shade];
    }
    os << "|\n";
  }
  os << "   " << std::string(x_bins(), '-') << "\n";
  os << "   " << x_label << " (log bins left->right)\n";
  return os.str();
}

}  // namespace psched::util
