#pragma once
// Deterministic, seed-driven fault injection. Every syscall-shaped edge in
// the I/O layer declares a named point (`PSCHED_FAULT("journal.append.write")`)
// that normally compiles down to one relaxed atomic load and a never-taken
// branch. Arming happens through the PSCHED_FAULTS environment variable (read
// once at process start) or programmatically via arm() in tests:
//
//   PSCHED_FAULTS="journal.append.write:errno=ENOSPC:after=3"
//
// Spec grammar (comma-separated list of specs, each colon-separated):
//
//   <point>:<action>[:<mode>[:seed=S]]
//   action:  errno=<NAME|number> | throw | hang
//   mode:    after=N   fire exactly once, on the Nth hit (default after=1)
//            every=N   fire on every Nth hit
//            p=X       fire each hit with probability X, drawn from a
//                      util::Rng stream (seed=S, default 1) — deterministic
//                      given the seed and the hit order
//
// Actions: `errno=E` makes the instrumented call report failure with errno E
// (the policy layer — util::retry_io, degraded-journal handling — then reacts
// exactly as it would to the real failure); `throw` raises std::runtime_error
// from the point itself; `hang` blocks the calling thread forever (for
// SIGKILL + --resume tests) after flushing the fired-count report so a
// harness can detect the hang externally.
//
// PSCHED_FAULTS_REPORT=<path> writes a per-point "name hits fired" report at
// process exit (and immediately when a hang fires). Tests use report() /
// fired_count() in-process to assert a site was actually exercised.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace psched::util::fault {

enum class Action {
  kNone,   ///< point did not fire; proceed normally
  kErrno,  ///< report failure with Shot::err as errno
  kThrow,  ///< raise std::runtime_error at the point
  kHang,   ///< block forever (kill-based chaos legs)
};

/// Outcome of one hit on a fault point.
struct Shot {
  Action action = Action::kNone;
  int err = 0;  ///< errno payload when action == kErrno
};

namespace detail {
/// Number of armed points; 0 means every PSCHED_FAULT is a single
/// relaxed load + never-taken branch.
extern std::atomic<int> g_armed_points;
Shot check_slow(const char* name);
int inject_slow(const char* name);
}  // namespace detail

/// Record a hit on `name` and decide whether it fires. Never throws and never
/// hangs: kThrow/kHang are returned to the caller, which implements them in
/// the way its context requires (e.g. campaign cells hang cooperatively so a
/// stop token can still cancel them).
inline Shot check(const char* name) {
  if (detail::g_armed_points.load(std::memory_order_relaxed) == 0) return {};
  return detail::check_slow(name);
}

/// Syscall-edge convenience around check(): returns the errno to report
/// (0 = proceed), implements kThrow by throwing std::runtime_error
/// ("injected fault at <name>") and kHang by sleeping forever.
inline int inject(const char* name) {
  if (detail::g_armed_points.load(std::memory_order_relaxed) == 0) return 0;
  return detail::inject_slow(name);
}

/// Arm one spec (grammar above, without the comma). Unknown point names are
/// accepted (the point is created on the fly) so tests can use scratch names.
/// Throws std::invalid_argument on grammar errors.
void arm(const std::string& spec);

/// Arm a comma-separated spec list (the PSCHED_FAULTS format).
void arm_list(const std::string& specs);

/// Disarm every point and zero all hit/fired counters (test isolation).
void disarm_all();

struct PointReport {
  std::string name;
  std::uint64_t hits = 0;   ///< times the point was reached while armed
  std::uint64_t fired = 0;  ///< times it actually injected a fault
};

/// Snapshot of every registered point (catalog + any test-created ones),
/// sorted by name.
std::vector<PointReport> report();

/// Fired count for one point (0 if never hit or unknown).
std::uint64_t fired_count(const std::string& name);

/// The compiled-in catalog of fault points threaded through the tree. A
/// chaos harness enumerates this to exercise every failure edge; the list is
/// maintained by hand in fault.cpp next to the grammar (see
/// docs/fault_injection.md for the site of each point).
const std::vector<std::string>& catalog();

}  // namespace psched::util::fault

/// Marker used at instrumented call sites; reads as "this call can be made to
/// fail here". Returns the injected errno (0 = proceed).
#define PSCHED_FAULT(name) (::psched::util::fault::inject(name))
