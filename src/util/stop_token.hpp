#pragma once
// Cooperative cancellation: a StopSource owns a stop request (an atomic flag
// plus an optional wall-clock deadline) and hands out cheap StopToken views
// that long-running loops poll at safe boundaries. No dependencies beyond
// <atomic>/<chrono>, usable from a signal handler (request_stop is one atomic
// store), and composable: a source built over a parent token also stops
// whenever the parent does, which is how a per-cell timeout nests inside a
// campaign-wide SIGINT / wall-budget stop.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

namespace psched::util {

/// Why a token reports stop_requested(). Cancelled = an explicit
/// request_stop() (user interrupt, dependent failure); Timeout = a deadline
/// passed. A chained token reports its own state first, its parent's second.
enum class StopReason { None, Cancelled, Timeout };

const char* stop_reason_name(StopReason reason);

class StopSource;

/// A read-only view of a StopSource. Default-constructed tokens are empty and
/// never stop — the zero-cost "no cancellation" default for engine configs.
class StopToken {
 public:
  StopToken() = default;

  bool valid() const { return state_ != nullptr; }
  /// True once the source (or any ancestor) was stopped or timed out.
  bool stop_requested() const;
  /// StopReason::None until stop_requested(); then the nearest cause.
  StopReason reason() const;

 private:
  friend class StopSource;
  struct State;
  explicit StopToken(std::shared_ptr<const State> state) : state_(std::move(state)) {}
  std::shared_ptr<const State> state_;
};

struct StopToken::State {
  std::atomic<bool> requested{false};
  /// Deadline in steady-clock nanoseconds; max() = no deadline set.
  std::atomic<std::int64_t> deadline_ns{std::numeric_limits<std::int64_t>::max()};
  StopToken parent;  ///< empty for a root source
};

class StopSource {
 public:
  StopSource() : state_(std::make_shared<StopToken::State>()) {}
  /// A source that additionally stops whenever `parent` stops.
  explicit StopSource(StopToken parent) : StopSource() { state_->parent = std::move(parent); }

  /// Async-signal-safe (a single relaxed atomic store; the shared state is
  /// owned by this source, so no allocation or locking happens here).
  void request_stop() { state_->requested.store(true, std::memory_order_relaxed); }

  /// Stop automatically once `seconds` of wall-clock time elapse from now.
  void set_deadline_after(double seconds);

  bool stop_requested() const { return token().stop_requested(); }
  StopToken token() const { return StopToken(state_); }

 private:
  std::shared_ptr<StopToken::State> state_;
};

}  // namespace psched::util
