#pragma once
// Minimal leveled logger. The simulator is deterministic and mostly silent;
// logging exists for diagnostics in examples and benches.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace psched::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_line(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace psched::util
