#pragma once
// Bounded retry for transient I/O failures. The simulation clock is never
// involved: retry backoff is the one place in the library that sleeps wall
// time, and only for EAGAIN-class errors on real syscalls (journal appends,
// store writes), never inside a simulated timeline.

#include <chrono>
#include <functional>

namespace psched::util {

struct RetryPolicy {
  int max_attempts = 5;  ///< total tries, >= 1
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{50};  ///< cap for the doubling backoff
};

/// True for the transient errno class worth retrying (EINTR, EAGAIN,
/// EWOULDBLOCK). Everything else — ENOSPC, EIO, EBADF, ... — is permanent and
/// must surface to the caller's failure policy immediately.
bool retryable_errno(int err);

/// Run `op` (returning 0 on success, a positive errno on failure) up to
/// policy.max_attempts times. EINTR retries immediately; EAGAIN/EWOULDBLOCK
/// back off with capped doubling wall sleeps. Returns 0 on eventual success,
/// otherwise the last errno (non-transient errors return after one attempt).
int retry_io(const std::function<int()>& op, const RetryPolicy& policy = {});

}  // namespace psched::util
