#include "util/fault.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace psched::util::fault {

namespace {

// The hand-maintained catalog: every PSCHED_FAULT / fault::check site in the
// tree. psched_chaos enumerates this list and proves each point lands in the
// retried / degraded / fail-loud trichotomy; keep it in sync when adding a
// point (docs/fault_injection.md describes the drill).
const char* const kCatalog[] = {
    "atomic_write.open",          // util/atomic_file.cpp  open(tmp, O_EXCL)
    "atomic_write.write",         // util/atomic_file.cpp  write(fd, ...)
    "atomic_write.fsync",         // util/atomic_file.cpp  fsync(fd)
    "atomic_write.close",         // util/atomic_file.cpp  close(fd)
    "atomic_write.rename",        // util/atomic_file.cpp  rename(tmp, path)
    "atomic_write.parent_fsync",  // util/atomic_file.cpp  fsync(dirfd)
    "journal.open",               // scenario/journal.cpp  open(journal.jsonl)
    "journal.append.write",       // scenario/journal.cpp  write(record line)
    "journal.append.fsync",       // scenario/journal.cpp  fsync after append
    "journal.replay.read",        // scenario/journal.cpp  journal read loop
    "swf.open",                   // workload/swf.cpp      trace file open
    "swf.read.line",              // workload/swf.cpp      shared read loop
    "threadpool.submit",          // util/thread_pool.cpp  compound submit
    "campaign.cell",              // scenario/campaign.cpp cell on_start hook
};

enum class Mode { kAfter, kEvery, kProb };

struct Arming {
  Action action = Action::kErrno;
  int err = 0;
  Mode mode = Mode::kAfter;
  std::uint64_t n = 1;       // after=N / every=N
  double p = 0.0;            // p=X
  std::optional<Rng> rng;    // kProb stream
  bool spent = false;        // kAfter fires exactly once
};

struct Point {
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  std::optional<Arming> arming;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
  std::string report_path;

  Registry() {
    for (const char* name : kCatalog) points.emplace(name, Point{});
  }
};

Registry& registry() {
  static Registry reg;
  return reg;
}

int errno_from_name(const std::string& text) {
  static const std::map<std::string, int> kNames = {
      {"EINTR", EINTR},   {"EAGAIN", EAGAIN}, {"EWOULDBLOCK", EWOULDBLOCK},
      {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EDQUOT", EDQUOT},
      {"ENOENT", ENOENT}, {"EACCES", EACCES}, {"EMFILE", EMFILE},
      {"ENFILE", ENFILE}, {"EBADF", EBADF},   {"EEXIST", EEXIST},
      {"EROFS", EROFS},   {"EFBIG", EFBIG},   {"ENOMEM", ENOMEM},
  };
  const auto it = kNames.find(text);
  if (it != kNames.end()) return it->second;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value <= 0) {
    throw std::invalid_argument("PSCHED_FAULTS: unknown errno name '" + text + "'");
  }
  return static_cast<int>(value);
}

std::uint64_t parse_count(const std::string& spec, const std::string& text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value == 0) {
    throw std::invalid_argument("PSCHED_FAULTS: bad count in '" + spec + "'");
  }
  return value;
}

/// Write the fired-count report with raw syscalls: this runs from atexit and
/// from inside a firing hang, where iostreams may be mid-teardown.
void write_report_locked(Registry& reg) {
  if (reg.report_path.empty()) return;
  std::string body;
  for (const auto& [name, point] : reg.points) {
    body += name + " " + std::to_string(point.hits) + " " +
            std::to_string(point.fired) + "\n";
  }
  const std::string tmp = reg.report_path + ".tmp";
  // psched-lint: allow(raw-file-write): fired-count diagnostic report, not a results store
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;  // diagnostics are best-effort
  const char* data = body.data();
  std::size_t remaining = body.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return;
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  ::close(fd);
  ::rename(tmp.c_str(), reg.report_path.c_str());
}

void write_report_at_exit() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  write_report_locked(reg);
}

/// Decide whether an armed point fires on this hit. Caller holds reg.mu.
bool decide_fire(Arming& arming, std::uint64_t hit_index) {
  switch (arming.mode) {
    case Mode::kAfter:
      if (arming.spent || hit_index < arming.n) return false;
      arming.spent = true;
      return true;
    case Mode::kEvery:
      return hit_index % arming.n == 0;
    case Mode::kProb:
      return arming.rng->uniform01() < arming.p;
  }
  return false;
}

Shot hit(const char* name) {
  Registry& reg = registry();
  Shot shot;
  const std::lock_guard<std::mutex> lock(reg.mu);
  Point& point = reg.points[name];
  ++point.hits;
  if (point.arming && decide_fire(*point.arming, point.hits)) {
    ++point.fired;
    shot.action = point.arming->action;
    shot.err = point.arming->err;
    // A hang never returns, so a harness watching from outside needs the
    // report on disk *now* to learn the hang actually started.
    if (shot.action == Action::kHang) write_report_locked(reg);
  }
  return shot;
}

struct EnvInit {
  EnvInit() {
    // psched-lint note: this constructor is the one sanctioned consumer of
    // the PSCHED_FAULT* environment (rule raw-fault-env).
    const char* report = std::getenv("PSCHED_FAULTS_REPORT");
    if (report != nullptr && *report != '\0') {
      registry().report_path = report;
      std::atexit(write_report_at_exit);
    }
    const char* specs = std::getenv("PSCHED_FAULTS");
    if (specs == nullptr || *specs == '\0') return;
    try {
      arm_list(specs);
    } catch (const std::exception& e) {
      // Static-init context: no exception can propagate; a silently ignored
      // typo would make a chaos run vacuously green, so die loudly instead.
      std::fprintf(stderr, "psched: %s\n", e.what());
      std::_Exit(2);
    }
  }
};

EnvInit g_env_init;

}  // namespace

namespace detail {

std::atomic<int> g_armed_points{0};

Shot check_slow(const char* name) { return hit(name); }

int inject_slow(const char* name) {
  const Shot shot = hit(name);
  switch (shot.action) {
    case Action::kNone:
      return 0;
    case Action::kErrno:
      return shot.err;
    case Action::kThrow:
      throw std::runtime_error(std::string("injected fault at ") + name);
    case Action::kHang:
      for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return 0;
}

}  // namespace detail

void arm(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 2 || parts[0].empty()) {
    throw std::invalid_argument("PSCHED_FAULTS: expected <point>:<action> in '" + spec + "'");
  }

  Arming arming;
  const std::string& action = parts[1];
  if (action == "throw") {
    arming.action = Action::kThrow;
  } else if (action == "hang") {
    arming.action = Action::kHang;
  } else if (action.rfind("errno=", 0) == 0) {
    arming.action = Action::kErrno;
    arming.err = errno_from_name(action.substr(6));
  } else {
    throw std::invalid_argument("PSCHED_FAULTS: unknown action '" + action + "' in '" + spec + "'");
  }

  std::uint64_t seed = 1;
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    const auto mode_arg = [&](const char* prefix) -> std::optional<std::string> {
      if (part.rfind(prefix, 0) != 0) return std::nullopt;
      return part.substr(std::strlen(prefix));
    };
    if (const auto arg = mode_arg("after=")) {
      arming.mode = Mode::kAfter;
      arming.n = parse_count(spec, *arg);
    } else if (const auto arg2 = mode_arg("every=")) {
      arming.mode = Mode::kEvery;
      arming.n = parse_count(spec, *arg2);
    } else if (const auto arg3 = mode_arg("p=")) {
      arming.mode = Mode::kProb;
      char* end = nullptr;
      arming.p = std::strtod(arg3->c_str(), &end);
      if (end == arg3->c_str() || *end != '\0' || arming.p < 0.0 || arming.p > 1.0) {
        throw std::invalid_argument("PSCHED_FAULTS: bad probability in '" + spec + "'");
      }
    } else if (const auto arg4 = mode_arg("seed=")) {
      seed = parse_count(spec, *arg4);
    } else {
      throw std::invalid_argument("PSCHED_FAULTS: unknown mode '" + part + "' in '" + spec + "'");
    }
  }
  if (arming.mode == Mode::kProb) arming.rng.emplace(seed);

  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  Point& point = reg.points[parts[0]];
  if (!point.arming) detail::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  point.arming = std::move(arming);
}

void arm_list(const std::string& specs) {
  std::size_t start = 0;
  while (start <= specs.size()) {
    const std::size_t comma = specs.find(',', start);
    const std::string spec =
        specs.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!spec.empty()) arm(spec);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

void disarm_all() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, point] : reg.points) {
    point.arming.reset();
    point.hits = 0;
    point.fired = 0;
  }
  detail::g_armed_points.store(0, std::memory_order_relaxed);
}

std::vector<PointReport> report() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<PointReport> out;
  out.reserve(reg.points.size());
  for (const auto& [name, point] : reg.points) {
    out.push_back({name, point.hits, point.fired});
  }
  return out;
}

std::uint64_t fired_count(const std::string& name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.fired;
}

const std::vector<std::string>& catalog() {
  static const std::vector<std::string> names(std::begin(kCatalog), std::end(kCatalog));
  return names;
}

}  // namespace psched::util::fault
