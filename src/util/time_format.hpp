#pragma once
// Time constants and helpers. Simulation time is int64 seconds from an
// arbitrary epoch (the trace start).

#include <cstdint>
#include <string>

namespace psched::util {

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86'400;
inline constexpr std::int64_t kSecondsPerWeek = 7 * kSecondsPerDay;

constexpr std::int64_t minutes(std::int64_t m) { return m * kSecondsPerMinute; }
constexpr std::int64_t hours(std::int64_t h) { return h * kSecondsPerHour; }
constexpr std::int64_t days(std::int64_t d) { return d * kSecondsPerDay; }
constexpr std::int64_t weeks(std::int64_t w) { return w * kSecondsPerWeek; }

/// "[Dd ]HH:MM:SS" rendering of a duration in seconds (negative allowed).
std::string format_hms(std::int64_t seconds);

/// Floor division that works for negative numerators (unlike C++ '/').
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  const std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Day index containing second t (epoch day 0 starts at t == 0).
constexpr std::int64_t day_index(std::int64_t t) { return floor_div(t, kSecondsPerDay); }
/// Week index containing second t.
constexpr std::int64_t week_index(std::int64_t t) { return floor_div(t, kSecondsPerWeek); }

}  // namespace psched::util
