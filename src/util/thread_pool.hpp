#pragma once
// Work-stealing-free, dead-simple thread pool with a blocking parallel_for.
// Used for the embarrassingly parallel layers of the study: per-job FST
// computation and running independent policy simulations side by side.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace psched::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task; the future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), blocking until all complete. Work is divided
  /// into contiguous chunks (deterministic partitioning regardless of thread
  /// timing). Exceptions from fn propagate (first one wins). Safe to call
  /// from inside a pool task: the waiting thread helps drain the queue, so
  /// nested parallel_for cannot deadlock.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t min_chunk = 1);

  /// Run one queued task on the calling thread if any is pending.
  bool try_run_one();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Shared process-wide pool (lazily constructed, hardware concurrency).
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk = 1);

}  // namespace psched::util
