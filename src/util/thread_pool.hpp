#pragma once
// Work-stealing-free, dead-simple thread pool with a blocking parallel_for.
// Used for the embarrassingly parallel layers of the study: per-job FST
// computation and running independent policy simulations side by side.
//
// Two task classes keep nested waiting safe:
//
//  - *Leaf* tasks are the chunks parallel_for creates. They are pure compute
//    (never block on shared state), so any thread stuck waiting for a
//    parallel_for may execute them ("help-drain") without risk.
//  - *Compound* tasks enter through submit(). They may block — e.g. on a
//    single-flight experiment-cache entry — so they run only at worker-thread
//    top level, never nested inside another task. Help-draining a compound
//    task could otherwise re-enter a lock the helping thread already holds
//    lower in its stack (a real deadlock: two run_all sweeps sharing a
//    policy, one helping the other while its own simulation is in flight).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace psched::util {

/// Carried by a submit()-returned future when the compound task was never
/// queued — submit raced shutdown(), or the `threadpool.submit` fault point
/// fired. The work did not and will not run; a caller that can execute it on
/// its own thread should treat this as degraded parallelism, not failure
/// (ExperimentRunner's sweep lanes do exactly that).
class SubmitRejected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Enqueue a compound task; the future reports completion/exceptions.
  /// After shutdown() the task is rejected and the returned future carries a
  /// std::runtime_error instead of the call throwing into the submitter.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), blocking until all complete. Work is divided
  /// into contiguous chunks (deterministic partitioning regardless of thread
  /// timing). Exceptions from fn propagate (first one wins). Safe to call
  /// from inside a pool task: the waiting thread helps drain leaf chunks and
  /// otherwise blocks on a condition variable until some task completes, so
  /// nested parallel_for cannot deadlock and nobody busy-spins.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t min_chunk = 1);

  /// Run one queued *leaf* chunk on the calling thread if any is pending.
  /// Compound tasks are deliberately not eligible (see the header comment).
  bool try_run_one();

  /// Stop accepting compound tasks, drain both queues, and join the workers.
  /// Idempotent; also called by the destructor. Tasks already queued still
  /// run to completion — including any parallel_for they perform while
  /// draining (leaf chunks are exempt from the shutdown rejection; their
  /// waiter drains them itself, so parallel_for keeps working even after
  /// shutdown, degraded to the calling thread).
  void shutdown();

  /// true when the calling thread is currently executing a pool task (worker
  /// top level or help-drained chunk). Used to fall back to serial execution
  /// instead of submitting compound work that could starve.
  static bool in_pool_task();

 private:
  void worker_loop();
  /// Run `task` and publish its completion (bumps completed_epoch_ and wakes
  /// parallel_for waiters blocked on done_cv_).
  void run_task(std::packaged_task<void()>& task);
  std::future<void> enqueue(std::function<void()> task, bool leaf);

  std::size_t size_ = 0;
  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> leaf_tasks_;      ///< help-drainable
  std::queue<std::packaged_task<void()>> compound_tasks_;  ///< workers only
  std::mutex join_mutex_;  ///< serializes concurrent shutdown() calls
  std::mutex mutex_;
  std::condition_variable cv_;       ///< workers: "a task is available"
  std::condition_variable done_cv_;  ///< waiters: "a task completed / a leaf was enqueued"
  std::uint64_t completed_epoch_ = 0;  ///< guarded by mutex_
  bool stopping_ = false;
};

/// Shared process-wide pool, lazily constructed on first use. Size comes from
/// the PSCHED_THREADS environment variable when set (>= 1), otherwise
/// hardware concurrency.
ThreadPool& global_pool();

/// Convenience wrapper over global_pool().parallel_for.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t min_chunk = 1);

}  // namespace psched::util
