#pragma once
// Durable whole-file replacement: write to a sibling temp file, fsync it,
// rename() over the destination, fsync the directory. A reader (or a process
// resuming after a crash) therefore sees either the previous complete file or
// the new complete file — never a truncated or interleaved one. Used for
// every results-store artifact (cells.csv, summary.json, BENCH_*.json).

#include <string>
#include <string_view>

namespace psched::util {

/// Atomically replace `path` with `contents`. Transient failures (EINTR /
/// EAGAIN) are retried with bounded backoff via util::retry_io; permanent
/// ones throw std::runtime_error with the failing step, path, and errno text.
/// On failure before the rename the destination is untouched (the temp file
/// is unlinked best-effort). A directory-fsync failure *after* a successful
/// rename throws a distinct "rename durability unconfirmed" error and leaves
/// the renamed file in place: the new contents are visible, only their
/// crash-durability is in doubt. Stale `<path>.tmp.<pid>.<n>` files from
/// crashed runs are swept before the rename; temp names carry a process-wide
/// counter so concurrent same-process writers never collide. Every step is a
/// registered fault point (see docs/fault_injection.md).
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace psched::util
