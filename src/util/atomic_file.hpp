#pragma once
// Durable whole-file replacement: write to a sibling temp file, fsync it,
// rename() over the destination, fsync the directory. A reader (or a process
// resuming after a crash) therefore sees either the previous complete file or
// the new complete file — never a truncated or interleaved one. Used for
// every results-store artifact (cells.csv, summary.json, BENCH_*.json).

#include <string>
#include <string_view>

namespace psched::util {

/// Atomically replace `path` with `contents`. Throws std::runtime_error with
/// the failing step and errno text; on failure the destination is untouched
/// (the temp file is unlinked best-effort).
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace psched::util
