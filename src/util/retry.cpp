#include "util/retry.hpp"

#include <algorithm>
#include <cerrno>
#include <thread>

#include "obs/obs.hpp"

namespace psched::util {

bool retryable_errno(int err) {
  // EAGAIN == EWOULDBLOCK on linux, but the identity is not portable.
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

int retry_io(const std::function<int()>& op, const RetryPolicy& policy) {
  std::chrono::milliseconds backoff = policy.initial_backoff;
  int err = 0;
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    err = op();
    if (err == 0 || !retryable_errno(err)) return err;
    if (attempt + 1 == attempts) break;
    obs::count(obs::Counter::kRetryReissues);
    if (err != EINTR) {  // EINTR: the call was interrupted, just reissue it
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, policy.max_backoff);
    }
  }
  return err;
}

}  // namespace psched::util
