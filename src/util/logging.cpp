#include "util/logging.hpp"

#include <atomic>

namespace psched::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[psched:" << level_name(level) << "] " << message << '\n';
}

}  // namespace psched::util
