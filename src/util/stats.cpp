#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace psched::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  s.mean = s.total / static_cast<double>(sorted.size());
  s.stddev = stddev(values);
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile(sorted, 0.25);
  s.median = percentile(sorted, 0.50);
  s.p75 = percentile(sorted, 0.75);
  s.p90 = percentile(sorted, 0.90);
  s.p99 = percentile(sorted, 0.99);
  return s;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: size mismatch");
  if (x.size() < 2) return 0.0;
  const std::vector<double> rx = average_ranks(x);
  const std::vector<double> ry = average_ranks(y);
  return pearson(rx, ry);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("linear_fit: size mismatch");
  LinearFit fit;
  if (x.size() < 2) return fit;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double jain_fairness_index(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (const double v : values) {
    if (v < 0.0) throw std::invalid_argument("jain_fairness_index: negative value");
    sum += v;
    sumsq += v * v;
  }
  if (sumsq == 0.0) return 1.0;  // all zero: trivially equal
  return (sum * sum) / (static_cast<double>(values.size()) * sumsq);
}

BootstrapCi bootstrap_mean_ci(std::span<const double> values, std::size_t resamples,
                              double confidence, std::uint64_t seed) {
  if (resamples == 0) throw std::invalid_argument("bootstrap_mean_ci: resamples == 0");
  if (!(confidence > 0.0 && confidence < 1.0))
    throw std::invalid_argument("bootstrap_mean_ci: confidence outside (0, 1)");
  BootstrapCi ci;
  ci.count = values.size();
  ci.confidence = confidence;
  ci.resamples = resamples;
  if (values.empty()) return ci;
  ci.mean = mean(values);
  if (values.size() == 1) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  Rng rng(seed);
  const auto n = static_cast<std::int64_t>(values.size());
  std::vector<double> means(resamples, 0.0);
  for (double& m : means) {
    double acc = 0.0;
    for (std::int64_t draw = 0; draw < n; ++draw)
      acc += values[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    m = acc / static_cast<double>(n);
  }
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = percentile(means, alpha);
  ci.hi = percentile(means, 1.0 - alpha);
  return ci;
}

}  // namespace psched::util
