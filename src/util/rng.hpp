#pragma once
// Deterministic random sources and the distributions the workload generator
// needs. All randomness in the project flows through Rng so that a single
// seed reproduces every experiment bit-for-bit.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace psched::util {

/// Seeded wrapper around std::mt19937_64 with the distribution helpers used
/// throughout the project. Copyable (simulation snapshots fork streams).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child stream; (seed, salt) pairs map to distinct
  /// well-mixed states via splitmix64.
  Rng fork(std::uint64_t salt) const;

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform in [0, 1).
  double uniform01() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform in [lo, hi] (inclusive), requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform in [lo, hi), requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Log-uniform in [lo, hi], requires 0 < lo <= hi. Models scale-free sizes.
  double log_uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Lognormal given the mean/sigma of the underlying normal.
  double lognormal(double log_mean, double log_sigma);

  /// Normal.
  double normal(double mean, double sigma);

  /// Bernoulli.
  bool flip(double p_true) { return uniform01() < p_true; }

  /// Index drawn from unnormalized non-negative weights (at least one > 0).
  std::size_t categorical(std::span<const double> weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// splitmix64 hash step; used for stable stream derivation.
std::uint64_t splitmix64(std::uint64_t x);

/// Zipf-like weights: weight[i] = 1 / (i+1)^s, i in [0, n).
std::vector<double> zipf_weights(std::size_t n, double s);

}  // namespace psched::util
