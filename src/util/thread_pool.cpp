#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace psched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> result = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              std::size_t min_chunk) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t max_chunks = (n + min_chunk - 1) / min_chunk;
  const std::size_t chunks = std::min(std::max<std::size_t>(1, size() * 4), max_chunks);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  if (chunks == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    // Help drain the queue while waiting so nested parallel_for calls from
    // worker threads make progress instead of deadlocking.
    while (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!try_run_one()) future.wait_for(std::chrono::milliseconds(1));
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  return true;
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn, std::size_t min_chunk) {
  global_pool().parallel_for(n, fn, min_chunk);
}

}  // namespace psched::util
