#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/fault.hpp"

namespace psched::util {

namespace {
thread_local bool t_in_pool_task = false;
}  // namespace

bool ThreadPool::in_pool_task() { return t_in_pool_task; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  size_ = threads;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  done_cv_.notify_all();
  const std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

std::future<void> ThreadPool::enqueue(std::function<void()> task, bool leaf) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> result = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Leaf chunks stay accepted while stopping: a queued compound task that
    // calls parallel_for during the shutdown drain must still complete (the
    // drain guarantee), and the parallel_for caller always drains its own
    // chunks via try_run_one, so leaf work cannot outlive its waiter even
    // with zero workers left.
    if (stopping_ && !leaf) {
      // Reject via the future, not by throwing into the caller: shutdown can
      // race submission from another thread, and the caller already has a
      // uniform error path through future.get().
      std::promise<void> rejected;
      rejected.set_exception(
          std::make_exception_ptr(SubmitRejected("ThreadPool::submit after shutdown")));
      return rejected.get_future();
    }
    (leaf ? leaf_tasks_ : compound_tasks_).push(std::move(packaged));
    obs::count(leaf ? obs::Counter::kPoolTasksLeaf : obs::Counter::kPoolTasksCompound);
    obs::record_max(obs::Counter::kPoolQueueDepthHighWater,
                    leaf_tasks_.size() + compound_tasks_.size());
  }
  cv_.notify_one();
  if (leaf) done_cv_.notify_all();  // parallel_for waiters may help with leaf work
  return result;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  if (const int injected = PSCHED_FAULT("threadpool.submit")) {
    std::promise<void> rejected;
    rejected.set_exception(std::make_exception_ptr(SubmitRejected(
        std::string("ThreadPool::submit: injected fault: ") + std::strerror(injected))));
    return rejected.get_future();
  }
  return enqueue(std::move(task), /*leaf=*/false);
}

void ThreadPool::run_task(std::packaged_task<void()>& task) {
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  task();  // packaged_task captures exceptions into the future
  t_in_pool_task = was_in_task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++completed_epoch_;
  }
  done_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock,
               [this] { return stopping_ || !leaf_tasks_.empty() || !compound_tasks_.empty(); });
      if (stopping_ && leaf_tasks_.empty() && compound_tasks_.empty()) return;
      // Leaf chunks first: they are the inner loops of whatever compound
      // work is already in flight, and finishing them unblocks waiters.
      auto& queue = !leaf_tasks_.empty() ? leaf_tasks_ : compound_tasks_;
      task = std::move(queue.front());
      queue.pop();
    }
    run_task(task);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              std::size_t min_chunk) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t max_chunks = (n + min_chunk - 1) / min_chunk;
  const std::size_t chunks = std::min(std::max<std::size_t>(1, size() * 4), max_chunks);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  if (chunks == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(enqueue(
        [lo, hi, &fn] {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        },
        /*leaf=*/true));
  }
  std::exception_ptr first_error;
  const auto ready = [](const std::future<void>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  };
  for (auto& future : futures) {
    // Help drain leaf chunks while waiting so nested parallel_for calls from
    // worker threads make progress instead of deadlocking. When no leaf work
    // is pending, block on done_cv_ (woken on every task completion and leaf
    // enqueue) instead of spinning; the epoch snapshot closes the window
    // where our chunk completes between the readiness check and the wait.
    while (!ready(future)) {
      if (try_run_one()) continue;
      std::unique_lock<std::mutex> lock(mutex_);
      if (!leaf_tasks_.empty()) continue;  // help with the chunk that just appeared
      const std::uint64_t epoch = completed_epoch_;
      lock.unlock();
      if (ready(future)) break;
      lock.lock();
      done_cv_.wait(lock, [&] { return completed_epoch_ != epoch || !leaf_tasks_.empty(); });
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::try_run_one() {
  std::packaged_task<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (leaf_tasks_.empty()) return false;
    task = std::move(leaf_tasks_.front());
    leaf_tasks_.pop();
  }
  run_task(task);
  return true;
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PSCHED_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};  // hardware concurrency
  }());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn, std::size_t min_chunk) {
  global_pool().parallel_for(n, fn, min_chunk);
}

}  // namespace psched::util
