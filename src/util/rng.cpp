#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace psched::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::uint64_t salt) const {
  // Mix the current engine state hash with the salt; copying engine_ then
  // discarding would correlate streams, so reseed through splitmix64.
  std::mt19937_64 probe = engine_;
  const std::uint64_t state_digest = probe();
  return Rng(splitmix64(state_digest ^ splitmix64(salt)));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("Rng::uniform_real: lo >= hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || lo > hi) throw std::invalid_argument("Rng::log_uniform: need 0 < lo <= hi");
  if (lo == hi) return lo;
  const double u = uniform_real(std::log(lo), std::log(hi));
  return std::exp(u);
}

double Rng::exponential(double mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::lognormal(double log_mean, double log_sigma) {
  return std::lognormal_distribution<double>(log_mean, log_sigma)(engine_);
}

double Rng::normal(double mean, double sigma) {
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (!(total > 0.0)) throw std::invalid_argument("Rng::categorical: all weights zero");
  double mark = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    mark -= weights[i];
    if (mark < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: mark consumed by rounding
}

std::vector<double> zipf_weights(std::size_t n, double s) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  return w;
}

}  // namespace psched::util
