#pragma once
// Aligned text tables and CSV output; every experiment bench reports through
// this so table/figure reproductions share one look.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace psched::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendering right-aligns numeric-looking cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Start a new row; subsequent add_* calls append cells to it.
  TextTable& begin_row();
  TextTable& add(std::string cell);
  TextTable& add(double value, int precision = 2);
  TextTable& add_int(long long value);
  TextTable& add_percent(double fraction, int precision = 2);  // 0.031 -> "3.10%"

  /// Convenience: append a fully-formed row (must match header width).
  TextTable& add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const { return rows_[row][col]; }

  /// Render with a separator under the header.
  std::string str() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

/// Format seconds in a compact human unit, e.g. "72h", "36h", "90s", "2.5d".
std::string format_duration_short(double seconds);

/// Format a double with the given precision, trimming trailing zeros.
std::string format_number(double value, int precision = 2);

}  // namespace psched::util
