#include "util/stop_token.hpp"

#include <chrono>

namespace psched::util {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

}  // namespace

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::None: return "none";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::Timeout: return "timeout";
  }
  return "?";
}

bool StopToken::stop_requested() const {
  for (const State* state = state_.get(); state != nullptr;
       state = state->parent.state_.get()) {
    if (state->requested.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = state->deadline_ns.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline && steady_now_ns() >= deadline) return true;
  }
  return false;
}

StopReason StopToken::reason() const {
  for (const State* state = state_.get(); state != nullptr;
       state = state->parent.state_.get()) {
    if (state->requested.load(std::memory_order_relaxed)) return StopReason::Cancelled;
    const std::int64_t deadline = state->deadline_ns.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline && steady_now_ns() >= deadline) return StopReason::Timeout;
  }
  return StopReason::None;
}

void StopSource::set_deadline_after(double seconds) {
  const auto delta = static_cast<std::int64_t>(seconds * 1e9);
  state_->deadline_ns.store(steady_now_ns() + delta, std::memory_order_relaxed);
}

}  // namespace psched::util
