#include "util/time_format.hpp"

#include <cstdio>

namespace psched::util {

std::string format_hms(std::int64_t seconds) {
  const bool negative = seconds < 0;
  if (negative) seconds = -seconds;
  const std::int64_t d = seconds / kSecondsPerDay;
  const std::int64_t h = (seconds % kSecondsPerDay) / kSecondsPerHour;
  const std::int64_t m = (seconds % kSecondsPerHour) / kSecondsPerMinute;
  const std::int64_t s = seconds % kSecondsPerMinute;
  char buffer[64];
  if (d > 0)
    std::snprintf(buffer, sizeof(buffer), "%s%lldd %02lld:%02lld:%02lld", negative ? "-" : "",
                  static_cast<long long>(d), static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s));
  else
    std::snprintf(buffer, sizeof(buffer), "%s%02lld:%02lld:%02lld", negative ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m), static_cast<long long>(s));
  return buffer;
}

}  // namespace psched::util
