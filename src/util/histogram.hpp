#pragma once
// Fixed- and log-binned histograms. The trace-characterization benches use
// log-binned 2-D histograms as the textual stand-in for the paper's scatter
// plots (Figures 4-7).

#include <cstddef>
#include <string>
#include <vector>

namespace psched::util {

/// 1-D histogram over explicit bin edges: bin i covers [edges[i], edges[i+1]).
/// Values below the first edge or at/above the last edge are counted in
/// underflow/overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void add(double value, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const { return edges_[i]; }
  double bin_hi(std::size_t i) const { return edges_[i + 1]; }
  double count(std::size_t i) const { return counts_[i]; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double total() const;

 private:
  std::vector<double> edges_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

/// Logarithmically spaced edges: n_bins bins spanning [lo, hi], lo > 0.
std::vector<double> log_edges(double lo, double hi, std::size_t n_bins);

/// Linearly spaced edges.
std::vector<double> linear_edges(double lo, double hi, std::size_t n_bins);

/// 2-D histogram on log-log bins; `render` prints a density grid with one
/// character per cell, darkest for the densest cell (scatter-plot stand-in).
class Histogram2D {
 public:
  Histogram2D(std::vector<double> x_edges, std::vector<double> y_edges);

  void add(double x, double y);

  double count(std::size_t xi, std::size_t yi) const;
  std::size_t x_bins() const { return x_edges_.size() - 1; }
  std::size_t y_bins() const { return y_edges_.size() - 1; }
  double x_lo(std::size_t i) const { return x_edges_[i]; }
  double y_lo(std::size_t i) const { return y_edges_[i]; }
  std::size_t total() const { return total_; }

  /// ASCII density plot, y axis increasing upward.
  std::string render(const std::string& x_label, const std::string& y_label) const;

 private:
  std::vector<double> x_edges_;
  std::vector<double> y_edges_;
  std::vector<double> cells_;  // row-major [yi][xi]
  std::size_t total_ = 0;
};

}  // namespace psched::util
