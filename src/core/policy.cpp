#include "core/policy.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "core/conservative_scheduler.hpp"
#include "core/cplant_scheduler.hpp"
#include "core/depth_scheduler.hpp"
#include "core/easy_scheduler.hpp"
#include "core/fcfs_scheduler.hpp"

namespace psched {

std::string PolicyConfig::display_name() const {
  if (!name.empty()) return name;
  const std::string max_part = max_runtime == kNoTime
                                   ? "nomax"
                                   : std::to_string(max_runtime / hours(1)) + "max";
  switch (kind) {
    case PolicyKind::Fcfs:
      return priority == PriorityKind::Fcfs ? "fcfs" : "fcfs.fairshare";
    case PolicyKind::Easy:
      return priority == PriorityKind::Fcfs ? "easy" : "easy.fairshare";
    case PolicyKind::Depth: {
      std::string n = "depth" + std::to_string(reservation_depth);
      if (priority == PriorityKind::Fcfs) n += ".fcfs";
      return n + "." + max_part;
    }
    case PolicyKind::Cplant: {
      if (starvation_delay == kNoTime) return "noguarantee." + max_part;
      std::string n = "cplant" + std::to_string(starvation_delay / hours(1));
      n += "." + max_part;
      n += bar_heavy_users ? ".fair" : ".all";
      return n;
    }
    case PolicyKind::Conservative: {
      std::string n = "cons";
      if (priority == PriorityKind::Fcfs) n += ".fcfs";
      return n + "." + max_part;
    }
    case PolicyKind::ConservativeDynamic: {
      std::string n = "consdyn";
      if (priority == PriorityKind::Fcfs) n += ".fcfs";
      return n + "." + max_part;
    }
  }
  throw std::logic_error("PolicyConfig::display_name: unknown kind");
}

std::string PolicyConfig::canonical_key() const {
  std::ostringstream key;
  // hexfloat round-trips heavy_user_factor exactly; `name` feeds the result's
  // policy_name so it is part of the identity, and goes last because it is
  // the only free-form field (no separator can be forged after it).
  key << "kind=" << static_cast<int>(kind) << "|priority=" << static_cast<int>(priority)
      << "|starvation_delay=" << starvation_delay << "|bar_heavy_users=" << bar_heavy_users
      << "|heavy_user_factor=" << std::hexfloat << heavy_user_factor << std::defaultfloat
      << "|reservation_depth=" << reservation_depth << "|max_runtime=" << max_runtime
      << "|name=" << name;
  return key.str();
}

std::unique_ptr<Scheduler> make_scheduler(const PolicyConfig& config) {
  switch (config.kind) {
    case PolicyKind::Fcfs:
      return std::make_unique<FcfsScheduler>(config.priority);
    case PolicyKind::Easy:
      return std::make_unique<EasyScheduler>(config.priority);
    case PolicyKind::Depth: {
      DepthConfig c;
      c.priority = config.priority;
      c.reservation_depth = config.reservation_depth;
      return std::make_unique<DepthScheduler>(c);
    }
    case PolicyKind::Cplant: {
      CplantConfig c;
      c.priority = config.priority;
      c.starvation_delay = config.starvation_delay;
      c.bar_heavy_users = config.bar_heavy_users;
      c.heavy_user_factor = config.heavy_user_factor;
      return std::make_unique<CplantScheduler>(c);
    }
    case PolicyKind::Conservative:
    case PolicyKind::ConservativeDynamic: {
      ConservativeConfig c;
      c.priority = config.priority;
      c.dynamic_reservations = config.kind == PolicyKind::ConservativeDynamic;
      return std::make_unique<ConservativeScheduler>(c);
    }
  }
  throw std::invalid_argument("make_scheduler: unknown policy kind");
}

PolicyConfig paper_policy(PaperPolicy policy) {
  PolicyConfig c;  // defaults: Cplant, fairshare, 24 h, no bar, no max
  switch (policy) {
    case PaperPolicy::Cplant24NomaxAll:
      break;
    case PaperPolicy::Cplant72NomaxAll:
      c.starvation_delay = hours(72);
      break;
    case PaperPolicy::Cplant24NomaxFair:
      c.bar_heavy_users = true;
      break;
    case PaperPolicy::Cplant24MaxAll:
      c.max_runtime = hours(72);
      break;
    case PaperPolicy::Cplant72MaxFair:
      c.starvation_delay = hours(72);
      c.bar_heavy_users = true;
      c.max_runtime = hours(72);
      break;
    case PaperPolicy::ConsNomax:
      c.kind = PolicyKind::Conservative;
      break;
    case PaperPolicy::ConsMax:
      c.kind = PolicyKind::Conservative;
      c.max_runtime = hours(72);
      break;
    case PaperPolicy::ConsdynNomax:
      c.kind = PolicyKind::ConservativeDynamic;
      break;
    case PaperPolicy::ConsdynMax:
      c.kind = PolicyKind::ConservativeDynamic;
      c.max_runtime = hours(72);
      break;
  }
  c.name = c.display_name();
  return c;
}

std::optional<PolicyConfig> policy_from_name(const std::string& name) {
  for (const PolicyConfig& policy : all_paper_policies())
    if (policy.display_name() == name) return policy;
  PolicyConfig c;
  if (name == "fcfs") {
    c.kind = PolicyKind::Fcfs;
    c.priority = PriorityKind::Fcfs;
    return c;
  }
  if (name == "fcfs.fairshare") {
    c.kind = PolicyKind::Fcfs;
    return c;
  }
  if (name == "easy") {
    c.kind = PolicyKind::Easy;
    c.priority = PriorityKind::Fcfs;
    return c;
  }
  if (name == "easy.fairshare") {
    c.kind = PolicyKind::Easy;
    return c;
  }
  if (name == "noguarantee") {
    c.kind = PolicyKind::Cplant;
    c.starvation_delay = kNoTime;
    return c;
  }
  if (name == "cons.fcfs") {
    c.kind = PolicyKind::Conservative;
    c.priority = PriorityKind::Fcfs;
    return c;
  }
  if (name.rfind("depth", 0) == 0) {
    // Strict parse: "depth4junk" and out-of-range values are unknown names,
    // not depth 4 — spec files rely on hard rejection.
    int depth = 0;
    const char* first = name.c_str() + 5;
    const char* last = name.c_str() + name.size();
    const auto [end, err] = std::from_chars(first, last, depth);
    if (err == std::errc() && end == last && depth >= 1) {
      c.kind = PolicyKind::Depth;
      c.reservation_depth = depth;
      return c;
    }
  }
  return std::nullopt;
}

std::vector<PolicyConfig> minor_change_policies() {
  return {paper_policy(PaperPolicy::Cplant24NomaxAll), paper_policy(PaperPolicy::Cplant24NomaxFair),
          paper_policy(PaperPolicy::Cplant72NomaxAll), paper_policy(PaperPolicy::Cplant24MaxAll),
          paper_policy(PaperPolicy::Cplant72MaxFair)};
}

std::vector<PolicyConfig> all_paper_policies() {
  std::vector<PolicyConfig> all = minor_change_policies();
  all.push_back(paper_policy(PaperPolicy::ConsNomax));
  all.push_back(paper_policy(PaperPolicy::ConsdynNomax));
  all.push_back(paper_policy(PaperPolicy::ConsMax));
  all.push_back(paper_policy(PaperPolicy::ConsdynMax));
  return all;
}

}  // namespace psched
