#pragma once
// Reference (pre-optimization) implementations of the availability Profile
// and the per-node ListScheduler, preserved verbatim from the seed tree.
//
// These are the *specification* the optimized hot-path classes in
// core/profile.hpp and core/list_scheduler.hpp must match bit-for-bit:
//   * tests/test_core_profile_diff.cpp drives both implementations through
//     randomized add/remove/earliest_fit sequences and asserts identical
//     observable behavior;
//   * bench/perf_profile.cpp and bench/perf_fst.cpp benchmark both, so the
//     committed BENCH_*.json baselines record the speedup as a measured
//     fact rather than a claim.
//
// Do not optimize this file. Clarity and fidelity to the original algorithms
// (full-array coalesce on every mutation, restart-on-block earliest_fit,
// sort-per-occupy list scheduler) are the point.

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace psched::reference {

/// Seed availability profile: sorted breakpoints with a full-array coalesce
/// after every mutation and a windowed earliest_fit that restarts the scan
/// after each blocking step (quadratic in breakpoints).
class ReferenceProfile {
 public:
  ReferenceProfile(NodeCount capacity, Time origin);

  void reset(Time origin);

  NodeCount capacity() const { return capacity_; }
  Time origin() const { return origin_; }

  void add_usage(Time from, Time to, NodeCount nodes);
  void remove_usage(Time from, Time to, NodeCount nodes);

  NodeCount free_at(Time t) const;
  bool fits_at(Time start, Time duration, NodeCount nodes) const;
  Time earliest_fit(Time earliest, Time duration, NodeCount nodes) const;

  std::size_t breakpoints() const { return steps_.size(); }
  void check_invariants() const;
  std::string debug_string() const;

 private:
  struct Step {
    Time at;
    NodeCount free;
  };

  std::size_t step_index(Time t) const;
  std::size_t ensure_breakpoint(Time t);
  void coalesce();

  NodeCount capacity_;
  Time origin_;
  std::vector<Step> steps_;
};

/// Seed per-node list scheduler: one availability time per node, re-sorted
/// with std::sort on every occupy() (O(P log P) per running job).
class ReferenceListScheduler {
 public:
  ReferenceListScheduler(NodeCount nodes, Time origin);

  void occupy(NodeCount nodes, Time until);
  Time schedule(NodeCount nodes, Time duration, Time earliest);
  Time peek_start(NodeCount nodes, Time earliest) const;
  NodeCount node_count() const { return static_cast<NodeCount>(avail_.size()); }
  Time earliest_available() const;

 private:
  std::vector<Time> avail_;
};

}  // namespace psched::reference
