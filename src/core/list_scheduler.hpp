#pragma once
// Per-node-completion-time list scheduler: the substrate of the paper's
// hybrid fair-start-time metric (section 4.1).
//
// The list scheduler keeps a completion time for each node. To place a job
// needing N nodes it picks the N earliest-available nodes; the job starts at
// the latest of those availability times (never earlier than `earliest`),
// and those nodes become available again at start + runtime. Unlike
// conservative backfilling it can never use "holes" before existing
// assignments; unlike a strict no-backfill queue it does let disjoint node
// sets proceed independently.
//
// Representation: node availability times are run-length compressed into a
// sorted vector of (time, node count) runs. Every operation the FST engine
// performs (occupy a running job's nodes, schedule the next queued job)
// touches whole runs, so the cost per operation is O(runs) — typically the
// number of distinct job end times, which is far below the node count on a
// 1000+ node machine. The seed implementation (one vector entry per node,
// re-sorted with std::sort on every occupy) is preserved as
// reference::ReferenceListScheduler and benchmarked side by side in
// bench/perf_fst.cpp; observable behavior is identical.

#include <vector>

#include "core/types.hpp"

namespace psched {

class ListScheduler {
 public:
  /// All `nodes` nodes available at `origin`.
  ListScheduler(NodeCount nodes, Time origin);

  /// Re-initialize to "all nodes available at origin", keeping allocated
  /// storage. The FST hot loop reuses one scratch instance per thread
  /// instead of constructing (and heap-allocating) one per snapshot.
  void reset(Time origin);

  /// Mark `nodes` nodes (the earliest-available ones) busy until `until`.
  /// Used to seed the running jobs of a snapshot. Throws if fewer than
  /// `nodes` nodes exist.
  void occupy(NodeCount nodes, Time until);

  /// Place a job; returns its start time and updates node availability.
  Time schedule(NodeCount nodes, Time duration, Time earliest);

  /// Start time the next schedule() call *would* return, without placing.
  Time peek_start(NodeCount nodes, Time earliest) const;

  NodeCount node_count() const { return total_; }

  /// Earliest availability over all nodes.
  Time earliest_available() const;

 private:
  struct Run {
    Time at;           // these nodes become available at this instant
    NodeCount count;   // number of nodes in the run
  };

  /// Insert `count` nodes available at `t`, merging into an existing run.
  void insert_run(Time t, NodeCount count);

  // Sorted ascending by time; counts sum to total_.
  std::vector<Run> runs_;
  NodeCount total_;
};

}  // namespace psched
