#pragma once
// Per-node-completion-time list scheduler: the substrate of the paper's
// hybrid fair-start-time metric (section 4.1).
//
// The list scheduler keeps a completion time for each node. To place a job
// needing N nodes it picks the N earliest-available nodes; the job starts at
// the latest of those availability times (never earlier than `earliest`),
// and those nodes become available again at start + runtime. Unlike
// conservative backfilling it can never use "holes" before existing
// assignments; unlike a strict no-backfill queue it does let disjoint node
// sets proceed independently.

#include <vector>

#include "core/types.hpp"

namespace psched {

class ListScheduler {
 public:
  /// All `nodes` nodes available at `origin`.
  ListScheduler(NodeCount nodes, Time origin);

  /// Mark `nodes` nodes (the earliest-available ones) busy until `until`.
  /// Used to seed the running jobs of a snapshot. Throws if fewer than
  /// `nodes` nodes exist.
  void occupy(NodeCount nodes, Time until);

  /// Place a job; returns its start time and updates node availability.
  Time schedule(NodeCount nodes, Time duration, Time earliest);

  /// Start time the next schedule() call *would* return, without placing.
  Time peek_start(NodeCount nodes, Time earliest) const;

  NodeCount node_count() const { return static_cast<NodeCount>(avail_.size()); }

  /// Earliest availability over all nodes.
  Time earliest_available() const;

 private:
  // Sorted ascending; kept sorted by schedule()/occupy().
  std::vector<Time> avail_;
};

}  // namespace psched
