#include "core/fcfs_scheduler.hpp"

#include <algorithm>

namespace psched {

FcfsScheduler::FcfsScheduler(PriorityKind priority) : priority_(priority) {}

std::string FcfsScheduler::name() const {
  return priority_ == PriorityKind::Fcfs ? "fcfs" : "fcfs.fairshare";
}

void FcfsScheduler::on_submit(JobId id) { waiting_.push_back(id); }

void FcfsScheduler::on_complete(JobId) {}

void FcfsScheduler::collect_starts(std::vector<JobId>& starts) {
  NodeCount free = ctx().free_nodes();
  std::vector<JobId> order = sorted_by_priority(waiting_, priority_);
  std::size_t started = 0;
  for (const JobId id : order) {
    const Job& job = ctx().job(id);
    if (job.nodes > free) break;  // strict: the head blocks everyone behind it
    starts.push_back(id);
    free -= job.nodes;
    ++started;
  }
  if (started > 0) {
    for (std::size_t i = 0; i < started; ++i)
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), order[i]));
  }
}

}  // namespace psched
