#include "core/fairshare.hpp"

#include <stdexcept>

namespace psched {

FairshareTracker::FairshareTracker(double decay_factor, Time decay_period, Time start_time,
                                   FairshareUpdate update)
    : decay_factor_(decay_factor), decay_period_(decay_period), now_(start_time), update_(update) {
  if (!(decay_factor > 0.0) || decay_factor > 1.0)
    throw std::invalid_argument("FairshareTracker: decay_factor must be in (0, 1]");
  if (decay_period <= 0) throw std::invalid_argument("FairshareTracker: decay_period must be > 0");
  // First boundary strictly after start_time, aligned to the period grid.
  next_decay_ = (util::floor_div(start_time, decay_period) + 1) * decay_period;
}

FairshareTracker::UserState& FairshareTracker::state(UserId user) {
  if (user < 0) throw std::invalid_argument("FairshareTracker: negative user id");
  const auto index = static_cast<std::size_t>(user);
  if (index >= users_.size()) users_.resize(index + 1);
  return users_[index];
}

void FairshareTracker::accrue(Time dt) {
  if (dt <= 0 || total_running_ == 0) return;
  const auto seconds = static_cast<double>(dt);
  for (UserState& u : users_)
    if (u.running > 0) u.usage += static_cast<double>(u.running) * seconds;
}

void FairshareTracker::advance(Time to) {
  if (to < now_) throw std::logic_error("FairshareTracker::advance: time went backwards");
  while (next_decay_ <= to) {
    accrue(next_decay_ - now_);
    now_ = next_decay_;
    for (UserState& u : users_) {
      if (decay_factor_ < 1.0) u.usage *= decay_factor_;
      u.published = u.usage;  // boundary = priority refresh point
    }
    next_decay_ += decay_period_;
  }
  accrue(to - now_);
  now_ = to;
}

void FairshareTracker::on_job_start(UserId user, NodeCount nodes) {
  if (nodes <= 0) throw std::invalid_argument("FairshareTracker: nodes must be positive");
  state(user).running += nodes;
  total_running_ += nodes;
}

void FairshareTracker::on_job_stop(UserId user, NodeCount nodes) {
  UserState& u = state(user);
  if (nodes <= 0 || u.running < nodes)
    throw std::logic_error("FairshareTracker::on_job_stop: releasing more than running");
  u.running -= nodes;
  total_running_ -= nodes;
}

double FairshareTracker::usage(UserId user) const {
  if (user < 0) return 0.0;
  const auto index = static_cast<std::size_t>(user);
  if (index >= users_.size()) return 0.0;
  return update_ == FairshareUpdate::Continuous ? users_[index].usage
                                                : users_[index].published;
}

double FairshareTracker::live_usage(UserId user) const {
  if (user < 0) return 0.0;
  const auto index = static_cast<std::size_t>(user);
  return index < users_.size() ? users_[index].usage : 0.0;
}

double FairshareTracker::mean_positive_usage() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const UserState& u : users_) {
    const double value = update_ == FairshareUpdate::Continuous ? u.usage : u.published;
    if (value > 0.0) {
      total += value;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace psched
