#pragma once
// Reservation-depth backfilling (paper section 1: "Many production
// schedulers use variations between conservative and aggressive backfilling,
// giving the first n jobs in the queue a reservation").
//
// At every scheduling event the first `depth` jobs in priority order receive
// reservations (computed in that order); any other job may start immediately
// if it violates none of them. depth == 1 behaves like EASY; depth large
// enough to cover the queue approaches conservative-with-dynamic-reservations
// (reservations are replanned every event, not sticky).

#include <optional>

#include "core/scheduler.hpp"

namespace psched {

struct DepthConfig {
  PriorityKind priority = PriorityKind::Fairshare;
  int reservation_depth = 4;  ///< >= 1
};

class DepthScheduler final : public Scheduler {
 public:
  explicit DepthScheduler(DepthConfig config);

  std::string name() const override;
  void on_submit(JobId id) override;
  void on_complete(JobId id) override;
  void collect_starts(std::vector<JobId>& starts) override;
  std::optional<Time> next_wakeup() const override;
  std::unique_ptr<Scheduler> clone() const override { return cloned(*this); }

  const DepthConfig& config() const { return config_; }

 private:
  DepthConfig config_;
  std::vector<JobId> waiting_;
  std::optional<Time> wakeup_;
};

}  // namespace psched
