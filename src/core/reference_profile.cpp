#include "core/reference_profile.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psched::reference {

ReferenceProfile::ReferenceProfile(NodeCount capacity, Time origin)
    : capacity_(capacity), origin_(origin) {
  if (capacity <= 0) throw std::invalid_argument("Profile: capacity must be positive");
  steps_.push_back({origin_, capacity_});
}

void ReferenceProfile::reset(Time origin) {
  origin_ = origin;
  steps_.clear();
  steps_.push_back({origin_, capacity_});
}

std::size_t ReferenceProfile::step_index(Time t) const {
  if (t < origin_) throw std::logic_error("Profile: time before origin");
  // Last step with at <= t.
  const auto it = std::upper_bound(steps_.begin(), steps_.end(), t,
                                   [](Time value, const Step& s) { return value < s.at; });
  return static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
}

std::size_t ReferenceProfile::ensure_breakpoint(Time t) {
  const std::size_t i = step_index(t);
  if (steps_[i].at == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1, {t, steps_[i].free});
  return i + 1;
}

void ReferenceProfile::coalesce() {
  std::size_t out = 1;
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].free == steps_[out - 1].free) continue;
    steps_[out++] = steps_[i];
  }
  steps_.resize(out);
}

void ReferenceProfile::add_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::add_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::add_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);  // end marker keeps old free value
  // Validate the whole window before mutating so a failed add leaves the
  // free counts untouched (strong exception safety; stray breakpoints are
  // harmless and coalesce away later).
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free < nodes)
      throw std::logic_error("Profile::add_usage: over-reservation at t=" +
                             std::to_string(steps_[i].at));
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free -= nodes;
  coalesce();
}

void ReferenceProfile::remove_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::remove_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::remove_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free + nodes > capacity_)
      throw std::logic_error("Profile::remove_usage: exceeds capacity at t=" +
                             std::to_string(steps_[i].at));
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free += nodes;
  coalesce();
}

NodeCount ReferenceProfile::free_at(Time t) const { return steps_[step_index(t)].free; }

bool ReferenceProfile::fits_at(Time start, Time duration, NodeCount nodes) const {
  if (start < origin_) return false;
  if (nodes > capacity_) return false;
  if (duration <= 0 || nodes <= 0) return true;
  const Time end = start + duration;
  for (std::size_t i = step_index(start); i < steps_.size() && steps_[i].at < end; ++i) {
    if (steps_[i].free < nodes) return false;
  }
  return true;
}

Time ReferenceProfile::earliest_fit(Time earliest, Time duration, NodeCount nodes) const {
  if (nodes > capacity_)
    throw std::invalid_argument("Profile::earliest_fit: job wider than machine");
  earliest = std::max(earliest, origin_);
  if (duration <= 0 || nodes <= 0) return earliest;

  std::size_t i = step_index(earliest);
  Time candidate = earliest;
  for (;;) {
    // Advance past steps that cannot host the job's start.
    while (i < steps_.size() && steps_[i].free < nodes) {
      ++i;
      if (i == steps_.size()) return candidate;  // unreachable: last step == capacity
      candidate = steps_[i].at;
    }
    // Check the window [candidate, candidate + duration).
    const Time end = candidate + duration;
    std::size_t j = i;
    bool ok = true;
    while (j < steps_.size() && steps_[j].at < end) {
      if (steps_[j].free < nodes) {
        ok = false;
        break;
      }
      ++j;
    }
    if (ok) return candidate;
    // Restart after the blocking step.
    i = j + 1;
    if (i >= steps_.size()) {
      // The profile tail always returns to full capacity, so the candidate
      // after the last breakpoint is feasible.
      return steps_.back().at;
    }
    candidate = steps_[i].at;
  }
}

void ReferenceProfile::check_invariants() const {
  if (steps_.empty()) throw std::logic_error("Profile: empty step list");
  if (steps_.front().at != origin_) throw std::logic_error("Profile: first step not at origin");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].free < 0 || steps_[i].free > capacity_)
      throw std::logic_error("Profile: free count out of range");
    if (i > 0 && steps_[i - 1].at >= steps_[i].at)
      throw std::logic_error("Profile: steps not strictly increasing");
  }
  if (steps_.back().free != capacity_)
    throw std::logic_error("Profile: tail must return to full capacity");
}

std::string ReferenceProfile::debug_string() const {
  std::ostringstream os;
  os << "Profile(cap=" << capacity_ << ")";
  for (const Step& s : steps_) os << " [" << s.at << ":" << s.free << "]";
  return os.str();
}

ReferenceListScheduler::ReferenceListScheduler(NodeCount nodes, Time origin) {
  if (nodes <= 0) throw std::invalid_argument("ListScheduler: nodes must be positive");
  avail_.assign(static_cast<std::size_t>(nodes), origin);
}

void ReferenceListScheduler::occupy(NodeCount nodes, Time until) {
  if (nodes <= 0 || static_cast<std::size_t>(nodes) > avail_.size())
    throw std::invalid_argument("ListScheduler::occupy: bad node count");
  // The earliest-available nodes are at the front (vector kept sorted).
  for (std::size_t i = 0; i < static_cast<std::size_t>(nodes); ++i)
    avail_[i] = std::max(avail_[i], until);
  std::sort(avail_.begin(), avail_.end());
}

Time ReferenceListScheduler::peek_start(NodeCount nodes, Time earliest) const {
  if (nodes <= 0 || static_cast<std::size_t>(nodes) > avail_.size())
    throw std::invalid_argument("ListScheduler::peek_start: bad node count");
  // Picking the N earliest-available nodes minimizes the start time; the
  // start is the availability of the N-th of them.
  return std::max(earliest, avail_[static_cast<std::size_t>(nodes) - 1]);
}

Time ReferenceListScheduler::schedule(NodeCount nodes, Time duration, Time earliest) {
  if (duration < 0) throw std::invalid_argument("ListScheduler::schedule: negative duration");
  const Time start = peek_start(nodes, earliest);
  const Time end = start + duration;
  const auto n = static_cast<std::size_t>(nodes);
  for (std::size_t i = 0; i < n; ++i) avail_[i] = end;
  // The first n entries were the smallest and are now all `end`; merge back
  // into sorted order (rotate to the insertion point).
  const auto insert_at = std::lower_bound(avail_.begin() + static_cast<std::ptrdiff_t>(n),
                                          avail_.end(), end);
  std::rotate(avail_.begin(), avail_.begin() + static_cast<std::ptrdiff_t>(n), insert_at);
  return start;
}

Time ReferenceListScheduler::earliest_available() const { return avail_.front(); }

}  // namespace psched::reference
