#pragma once
// The width (nodes) and length (runtime) category bins of the paper's
// Tables 1-2 and the per-width breakdowns of Figures 10, 12, 16 and 18.

#include <array>
#include <string>

#include "core/types.hpp"

namespace psched {

inline constexpr int kWidthCategories = 11;
inline constexpr int kLengthCategories = 8;

/// 0:"1", 1:"2", 2:"3-4", 3:"5-8", 4:"9-16", 5:"17-32", 6:"33-64",
/// 7:"65-128", 8:"129-256", 9:"257-512", 10:"513+"  (nodes >= 1)
int width_category(NodeCount nodes);

/// 0:"0-15 mins", 1:"15-60 mins", 2:"1-4 hrs", 3:"4-8 hrs", 4:"8-16 hrs",
/// 5:"16-24 hrs", 6:"1-2 days", 7:"2+ days"  (runtime >= 0 seconds)
int length_category(Time runtime);

const std::string& width_category_label(int category);
const std::string& length_category_label(int category);

/// Inclusive node bounds of a width category; the last category's upper bound
/// is reported as the given system size (or INT32_MAX if system_size <= 0).
struct WidthBounds {
  NodeCount lo;
  NodeCount hi;
};
WidthBounds width_category_bounds(int category, NodeCount system_size = 0);

/// Runtime bounds [lo, hi) in seconds of a length category; the last
/// category's hi is a large sentinel (kLengthOpenEnd).
struct LengthBounds {
  Time lo;
  Time hi;
};
inline constexpr Time kLengthOpenEnd = days(365);
LengthBounds length_category_bounds(int category);

/// All labels, in bin order (convenient for table headers).
const std::array<std::string, kWidthCategories>& width_labels();
const std::array<std::string, kLengthCategories>& length_labels();

}  // namespace psched
