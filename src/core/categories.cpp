#include "core/categories.hpp"

#include <limits>
#include <stdexcept>

namespace psched {

namespace {
// Upper inclusive node bound per width category (last is open).
constexpr std::array<NodeCount, kWidthCategories - 1> kWidthUpper = {1,  2,  4,   8,   16,
                                                                     32, 64, 128, 256, 512};
// Length bin boundaries in seconds: [0,15m) [15m,1h) [1,4h) [4,8h) [8,16h)
// [16,24h) [1d,2d) [2d,inf)
constexpr std::array<Time, kLengthCategories - 1> kLengthUpper = {
    minutes(15), hours(1), hours(4), hours(8), hours(16), hours(24), days(2)};
}  // namespace

int width_category(NodeCount nodes) {
  if (nodes < 1) throw std::invalid_argument("width_category: nodes must be >= 1");
  for (int c = 0; c < kWidthCategories - 1; ++c)
    if (nodes <= kWidthUpper[static_cast<std::size_t>(c)]) return c;
  return kWidthCategories - 1;
}

int length_category(Time runtime) {
  if (runtime < 0) throw std::invalid_argument("length_category: runtime must be >= 0");
  for (int c = 0; c < kLengthCategories - 1; ++c)
    if (runtime < kLengthUpper[static_cast<std::size_t>(c)]) return c;
  return kLengthCategories - 1;
}

const std::array<std::string, kWidthCategories>& width_labels() {
  static const std::array<std::string, kWidthCategories> labels = {
      "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", "129-256", "257-512", "513+"};
  return labels;
}

const std::array<std::string, kLengthCategories>& length_labels() {
  static const std::array<std::string, kLengthCategories> labels = {
      "0-15 mins", "15-60 mins", "1-4 hrs", "4-8 hrs", "8-16 hrs", "16-24 hrs", "1-2 days",
      "2+ days"};
  return labels;
}

const std::string& width_category_label(int category) {
  if (category < 0 || category >= kWidthCategories)
    throw std::out_of_range("width_category_label: bad category");
  return width_labels()[static_cast<std::size_t>(category)];
}

const std::string& length_category_label(int category) {
  if (category < 0 || category >= kLengthCategories)
    throw std::out_of_range("length_category_label: bad category");
  return length_labels()[static_cast<std::size_t>(category)];
}

WidthBounds width_category_bounds(int category, NodeCount system_size) {
  if (category < 0 || category >= kWidthCategories)
    throw std::out_of_range("width_category_bounds: bad category");
  const NodeCount lo = category == 0 ? 1 : kWidthUpper[static_cast<std::size_t>(category - 1)] + 1;
  NodeCount hi;
  if (category == kWidthCategories - 1)
    hi = system_size > 0 ? system_size : std::numeric_limits<NodeCount>::max();
  else
    hi = kWidthUpper[static_cast<std::size_t>(category)];
  return {lo, hi};
}

LengthBounds length_category_bounds(int category) {
  if (category < 0 || category >= kLengthCategories)
    throw std::out_of_range("length_category_bounds: bad category");
  const Time lo = category == 0 ? 0 : kLengthUpper[static_cast<std::size_t>(category - 1)];
  const Time hi =
      category == kLengthCategories - 1 ? kLengthOpenEnd : kLengthUpper[static_cast<std::size_t>(category)];
  return {lo, hi};
}

}  // namespace psched
