#pragma once
// Fundamental identifiers and time units shared by every layer.
//
// Simulation time is integer seconds from the trace epoch (t = 0 at the first
// possible submission). Integer time keeps the reservation/profile logic exact
// (no FP-comparison hazards) and matches the Standard Workload Format.

#include <cstdint>

#include "util/time_format.hpp"

namespace psched {

using Time = std::int64_t;       ///< seconds since trace epoch
using JobId = std::int32_t;      ///< dense index into a workload / record table
using UserId = std::int32_t;     ///< dense user index (SWF-style anonymized)
using GroupId = std::int32_t;    ///< dense group index
using NodeCount = std::int32_t;  ///< number of compute nodes

inline constexpr JobId kInvalidJob = -1;
inline constexpr UserId kInvalidUser = -1;
inline constexpr Time kNoTime = -1;

using util::days;
using util::hours;
using util::minutes;
using util::weeks;

}  // namespace psched
