#include "core/depth_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace psched {

DepthScheduler::DepthScheduler(DepthConfig config) : config_(config) {
  if (config_.reservation_depth < 1)
    throw std::invalid_argument("DepthScheduler: reservation_depth must be >= 1");
}

std::string DepthScheduler::name() const {
  std::string n = "depth" + std::to_string(config_.reservation_depth);
  if (config_.priority == PriorityKind::Fcfs) n += ".fcfs";
  return n;
}

void DepthScheduler::on_submit(JobId id) { waiting_.push_back(id); }

void DepthScheduler::on_complete(JobId) {}

void DepthScheduler::collect_starts(std::vector<JobId>& starts) {
  wakeup_.reset();
  if (waiting_.empty()) return;

  const Time now = ctx().now();
  NodeCount free = ctx().free_nodes();
  Profile& profile = scratch_profile(now);
  add_running_to_profile(profile);

  const std::vector<JobId> order = sorted_by_priority(waiting_, config_.priority);
  std::vector<JobId> started;
  std::optional<Time> earliest_reservation;
  int reserved = 0;

  for (const JobId id : order) {
    const Job& job = ctx().job(id);
    // Anyone may start if it fits and violates no reservation made so far.
    if (job.nodes <= free && profile.fits_at(now, job.wcl, job.nodes)) {
      starts.push_back(id);
      started.push_back(id);
      profile.add_usage(now, now + job.wcl, job.nodes);
      free -= job.nodes;
      continue;
    }
    // Blocked: the first `depth` blocked jobs (in priority order) pin
    // reservations that later jobs must respect.
    if (reserved < config_.reservation_depth) {
      const Time at = profile.earliest_fit(now, job.wcl, job.nodes);
      profile.add_usage(at, at + job.wcl, job.nodes);
      if (!earliest_reservation || at < *earliest_reservation) earliest_reservation = at;
      ++reserved;
    }
  }

  for (const JobId id : started)
    waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
  wakeup_ = earliest_reservation;
}

std::optional<Time> DepthScheduler::next_wakeup() const { return wakeup_; }

}  // namespace psched
