#include "core/easy_scheduler.hpp"

#include <algorithm>

namespace psched {

EasyScheduler::EasyScheduler(PriorityKind priority) : priority_(priority) {}

std::string EasyScheduler::name() const {
  return priority_ == PriorityKind::Fcfs ? "easy" : "easy.fairshare";
}

void EasyScheduler::on_submit(JobId id) { waiting_.push_back(id); }

void EasyScheduler::on_complete(JobId) {}

void EasyScheduler::collect_starts(std::vector<JobId>& starts) {
  head_reservation_.reset();
  if (waiting_.empty()) return;

  const Time now = ctx().now();
  NodeCount free = ctx().free_nodes();
  Profile& profile = scratch_profile(now);
  add_running_to_profile(profile);

  std::vector<JobId> order = sorted_by_priority(waiting_, priority_);
  std::vector<JobId> started;

  // The head either starts now or pins a reservation everyone must respect.
  std::size_t next = 0;
  while (next < order.size()) {
    const Job& head = ctx().job(order[next]);
    if (head.nodes <= free && profile.fits_at(now, head.wcl, head.nodes)) {
      starts.push_back(head.id);
      started.push_back(head.id);
      profile.add_usage(now, now + head.wcl, head.nodes);
      free -= head.nodes;
      ++next;
      continue;
    }
    const Time reserve_at = profile.earliest_fit(now, head.wcl, head.nodes);
    profile.add_usage(reserve_at, reserve_at + head.wcl, head.nodes);
    head_reservation_ = reserve_at;
    ++next;
    break;
  }

  // Backfill pass: anything that fits now without touching the reservation.
  for (std::size_t i = next; i < order.size(); ++i) {
    const Job& job = ctx().job(order[i]);
    if (job.nodes <= free && profile.fits_at(now, job.wcl, job.nodes)) {
      starts.push_back(job.id);
      started.push_back(job.id);
      profile.add_usage(now, now + job.wcl, job.nodes);
      free -= job.nodes;
    }
  }

  for (const JobId id : started)
    waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
}

std::optional<Time> EasyScheduler::next_wakeup() const { return head_reservation_; }

}  // namespace psched
