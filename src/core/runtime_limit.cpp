#include "core/runtime_limit.hpp"

#include <algorithm>
#include <stdexcept>

namespace psched {

RuntimeLimiter::RuntimeLimiter(Time max_runtime) : max_runtime_(max_runtime) {
  if (max_runtime != kNoTime && max_runtime <= 0)
    throw std::invalid_argument("RuntimeLimiter: max_runtime must be positive or kNoTime");
}

std::int32_t RuntimeLimiter::segment_count(const Job& original) const {
  if (!enabled() || original.runtime <= max_runtime_) return 1;
  return static_cast<std::int32_t>((original.runtime + max_runtime_ - 1) / max_runtime_);
}

Job RuntimeLimiter::make_segment(const Job& original, std::int32_t index, JobId id,
                                 Time submit) const {
  const std::int32_t count = segment_count(original);
  if (index < 0 || index >= count) throw std::out_of_range("RuntimeLimiter: bad segment index");
  if (count == 1) {
    // Unsplit: the job passes through with a fresh id / submit only.
    Job job = original;
    job.id = id;
    job.submit = submit;
    job.parent = original.id;
    job.segment = 0;
    job.segment_count = 1;
    return job;
  }
  Job seg = original;
  seg.id = id;
  seg.submit = submit;
  seg.parent = original.id;
  seg.segment = index;
  seg.segment_count = count;
  const Time done_before = static_cast<Time>(index) * max_runtime_;
  seg.runtime = std::min(max_runtime_, original.runtime - done_before);
  seg.wcl = std::min(max_runtime_, std::max(original.wcl - done_before, kMinSegmentWcl));
  // A segment's WCL may never undercut its own runtime *knowledge* model —
  // users submit estimates, so we only enforce positivity, not accuracy.
  return seg;
}

std::optional<Job> RuntimeLimiter::next_segment(const Job& original, const Job& segment,
                                                Time completion, JobId id) const {
  const std::int32_t count = segment_count(original);
  if (segment.segment + 1 >= count) return std::nullopt;
  return make_segment(original, segment.segment + 1, id, completion);
}

Workload split_workload(const Workload& original, Time max_runtime) {
  const RuntimeLimiter limiter(max_runtime);
  WorkloadBuilder split;
  split.system_size = original.system_size;
  for (const Job& job : original.jobs) {
    const std::int32_t count = limiter.segment_count(job);
    for (std::int32_t s = 0; s < count; ++s)
      split.jobs.push_back(limiter.make_segment(job, s, /*id=*/0, job.submit));
  }
  split.normalize();
  Workload built = split.build();
  built.validate();
  return built;
}

}  // namespace psched
