#pragma once
// Maximum-runtime limits (paper section 5.1): jobs longer than a threshold
// must be submitted as several <= threshold segments, giving the scheduler a
// very coarse form of preemption. CPlant users already checkpointed, so the
// paper treats the split as cheap.
//
// Segments are *chained*: segment k+1 is submitted the moment segment k
// completes (you cannot restart from a checkpoint that does not exist yet).
// The simulation engine drives this; the splitting arithmetic lives here so
// it can be unit-tested in isolation.

#include <optional>

#include "core/job.hpp"
#include "core/types.hpp"

namespace psched {

class RuntimeLimiter {
 public:
  /// max_runtime == kNoTime disables splitting entirely.
  explicit RuntimeLimiter(Time max_runtime);

  bool enabled() const { return max_runtime_ != kNoTime; }
  Time max_runtime() const { return max_runtime_; }

  /// Number of segments `original` will be split into (1 = unsplit).
  std::int32_t segment_count(const Job& original) const;

  /// Build segment `index` (0-based) of `original`, submitted at `submit`
  /// with the fresh id `id`. Throws std::out_of_range for invalid index.
  ///
  /// Runtime of segment k: min(max, runtime - k*max).
  /// WCL of segment k:     min(max, max(wcl - k*max, kMinSegmentWcl)), so
  /// under-estimating users still submit sane limits for trailing segments.
  Job make_segment(const Job& original, std::int32_t index, JobId id, Time submit) const;

  /// The segment to submit when `segment` (a segment of `original`)
  /// completes at `completion`; nullopt when it was the last.
  std::optional<Job> next_segment(const Job& original, const Job& segment, Time completion,
                                  JobId id) const;

  static constexpr Time kMinSegmentWcl = minutes(10);

 private:
  Time max_runtime_;
};

/// Trace-preprocessing form of the maximum-runtime policy (the paper's
/// "breaking longer jobs up into several 72 hour segments"): every segment of
/// every job is submitted at the original job's submit time, with no
/// dependency between segments. Parent/segment fields link each segment to
/// its original; ids are renumbered. This is how a trace-driven simulator
/// applies the limit; the engine's Chained mode models checkpoint/restart
/// instead (segment k+1 submitted when k completes).
Workload split_workload(const Workload& original, Time max_runtime);

}  // namespace psched
