#pragma once
// Scheduler interface: the policy side of the simulator. The simulation
// engine owns machine state, running jobs, fairshare accounting and the event
// loop; a Scheduler observes submissions/completions and answers two
// questions at every scheduling event: "which waiting jobs start right now?"
// and "when do you next need to act without an external event?".

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fairshare.hpp"
#include "core/job.hpp"
#include "core/profile.hpp"
#include "core/types.hpp"

namespace psched {

/// What a policy may legitimately know about a running job: its identity,
/// width, start, and *estimated* end (start + WCL). Actual runtimes are
/// hidden — production schedulers only see estimates.
struct RunningView {
  JobId id = kInvalidJob;
  NodeCount nodes = 0;
  Time start = 0;
  Time est_end = 0;
};

/// Read-only window onto engine state, implemented by sim::SimulationEngine
/// (and by lightweight fixtures in tests).
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;
  virtual Time now() const = 0;
  virtual NodeCount total_nodes() const = 0;
  virtual NodeCount free_nodes() const = 0;
  virtual const Job& job(JobId id) const = 0;
  virtual const std::vector<RunningView>& running() const = 0;
  /// Decayed fairshare usage of a user (lower = higher priority).
  virtual double user_usage(UserId user) const = 0;
  /// Mean usage over users with positive usage (heavy-user bar threshold).
  virtual double mean_positive_usage() const = 0;
};

/// Queue ordering used by the policies. Fairshare is the Sandia production
/// order; Fcfs is used for baselines and for the CONS_P fairness metric.
enum class PriorityKind { Fairshare, Fcfs };

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Must be called once before any event is delivered.
  void attach(const SchedulerContext& context) { ctx_ = &context; }

  virtual std::string name() const = 0;

  /// A job entered the wait queue at ctx().now().
  virtual void on_submit(JobId id) = 0;

  /// A running job completed (its nodes are already back in the free pool).
  virtual void on_complete(JobId id) = 0;

  /// Append jobs to launch *now*, in launch order. The engine launches them
  /// in exactly that order and errors out on infeasible requests, so the
  /// scheduler must account for its own picks within one call (free nodes
  /// are not refreshed until the call returns). Implementations remove
  /// emitted jobs from their own queues.
  virtual void collect_starts(std::vector<JobId>& starts) = 0;

  /// Next time the scheduler needs a timer event (reservation start,
  /// starvation-queue eligibility, ...). nullopt = only external events.
  virtual std::optional<Time> next_wakeup() const { return std::nullopt; }

  /// Deep-copy the scheduler, including all queue and planning state (e.g.
  /// the conservative family's persistent plan profile). The clone is NOT
  /// attached — the new owner must call attach() with its own context before
  /// delivering events. This is what makes the simulation engine forkable
  /// (sim::SimulationEngine::fork_for_arrival): a fork resumes mid-run from
  /// a byte-identical policy state. The default returns nullptr, meaning the
  /// scheduler does not support forking; all built-in policies override it.
  virtual std::unique_ptr<Scheduler> clone() const { return nullptr; }

 protected:
  const SchedulerContext& ctx() const;

  /// Helper for clone() implementations: copy-construct `Derived` and clear
  /// the copied context pointer, so using the clone before attach() fails
  /// loudly instead of silently reading the original engine's state.
  template <typename Derived>
  static std::unique_ptr<Scheduler> cloned(const Derived& self) {
    auto copy = std::make_unique<Derived>(self);
    copy->ctx_ = nullptr;
    return copy;
  }

  /// true if a's queue priority is ahead of b's under `kind`.
  bool priority_less(const Job& a, const Job& b, PriorityKind kind) const;

  /// Waiting ids sorted by priority (stable, deterministic tie-breaks).
  /// Sort keys are materialized once per id instead of re-derived through
  /// the context on every comparison.
  std::vector<JobId> sorted_by_priority(std::vector<JobId> ids, PriorityKind kind) const;

  /// Fill `profile` with usage of all running jobs. Jobs past their
  /// estimated end are assumed to run on for max(kOverrunGrace, elapsed
  /// overrun) more seconds — an exponential-backoff horizon that keeps
  /// over-runners from triggering per-second replans.
  void add_running_to_profile(Profile& profile) const;

  /// Shared per-scheduler scratch profile, reset to "all free from now".
  /// Lazily sized to ctx().total_nodes(); reusing it across scheduling
  /// events avoids re-allocating the step vector on every event.
  Profile& scratch_profile(Time now);

  /// Assumed end of a running job's usage at time `now`: its estimated end,
  /// or — once it has over-run — an exponential-backoff horizon of
  /// max(kOverrunGrace, elapsed overrun) more seconds. The single source of
  /// truth for every policy's profile seeding.
  static Time assumed_running_end(const RunningView& r, Time now);

  /// Minimum assumed remaining runtime for a job past its WCL.
  static constexpr Time kOverrunGrace = 300;

 private:
  const SchedulerContext* ctx_ = nullptr;
  std::optional<Profile> scratch_profile_;
};

}  // namespace psched
