#include "core/conservative_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"

namespace psched {

ConservativeScheduler::ConservativeScheduler(ConservativeConfig config) : config_(config) {}

std::string ConservativeScheduler::name() const {
  std::string n = config_.dynamic_reservations ? "consdyn" : "cons";
  if (config_.priority == PriorityKind::Fcfs) n += ".fcfs";
  return n;
}

void ConservativeScheduler::on_submit(JobId id) {
  waiting_.push_back(id);
  reservations_.emplace(id, kNoTime);
  pending_arrivals_.push_back(id);
}

void ConservativeScheduler::on_complete(JobId id) { pending_completions_.push_back(id); }

Time ConservativeScheduler::reservation(JobId id) const {
  const auto it = reservations_.find(id);
  return it == reservations_.end() ? kNoTime : it->second;
}

void ConservativeScheduler::seed_running_usage(Time now) {
  if (!plan_ || plan_->capacity() != ctx().total_nodes())
    plan_.emplace(ctx().total_nodes(), now);
  else
    plan_->reset(now);
  planned_end_.clear();
  plan_->begin_batch();
  for (const RunningView& r : ctx().running()) {
    const Time end = assumed_running_end(r, now);
    plan_->add_usage(now, end, r.nodes);
    planned_end_.emplace(r.id, end);
  }
  plan_->end_batch();
}

void ConservativeScheduler::compression_pass(Time now) {
  Profile& plan = *plan_;
  bool moved = false;
  priority_order_ = sorted_by_priority(waiting_, config_.priority);
  order_fresh_ = true;
  for (const JobId id : priority_order_) {
    const Job& job = ctx().job(id);
    const Time current = reservations_.at(id);
    plan.remove_usage(current, current + job.wcl, job.nodes);
    const Time improved = plan.earliest_fit(now, job.wcl, job.nodes);
    const Time chosen = improved < current ? improved : current;
    plan.add_usage(chosen, chosen + job.wcl, job.nodes);
    if (chosen != current) moved = true;
    reservations_[id] = chosen;
  }
  compress_active_ = moved;
  capacity_freed_ = false;
}

void ConservativeScheduler::full_replan(Time now) {
  obs::count(obs::Counter::kSchedReplanFull);
  seed_running_usage(now);
  Profile& plan = *plan_;

  if (config_.dynamic_reservations) {
    // Plan from scratch in priority order at every event.
    last_order_ = sorted_by_priority(waiting_, config_.priority);
    for (const JobId id : last_order_) {
      const Job& job = ctx().job(id);
      const Time start = plan.earliest_fit(now, job.wcl, job.nodes);
      plan.add_usage(start, start + job.wcl, job.nodes);
      reservations_[id] = start;
    }
  } else {
    // Static conservative. Pass 1: re-seat stored reservations in stored-start
    // order; a slot only moves later if an over-running job broke it. Brand-new
    // arrivals (kNoTime) are seated last so they cannot delay anyone.
    std::vector<JobId> seat_order = waiting_;
    std::sort(seat_order.begin(), seat_order.end(), [&](JobId a, JobId b) {
      const Time ra = reservations_.at(a);
      const Time rb = reservations_.at(b);
      const Time ka = ra == kNoTime ? std::numeric_limits<Time>::max() : ra;
      const Time kb = rb == kNoTime ? std::numeric_limits<Time>::max() : rb;
      if (ka != kb) return ka < kb;
      return a < b;
    });
    for (const JobId id : seat_order) {
      const Job& job = ctx().job(id);
      const Time stored = reservations_.at(id);
      const Time from = stored == kNoTime ? now : std::max(stored, now);
      const Time start = plan.earliest_fit(from, job.wcl, job.nodes);
      plan.add_usage(start, start + job.wcl, job.nodes);
      reservations_[id] = start;
    }

    // Pass 2: improvement attempts in priority order — higher-priority jobs get
    // the first chance at space freed by early completions. A job keeps its
    // slot unless the found one is strictly earlier.
    compression_pass(now);
  }

  pending_arrivals_.clear();
  pending_completions_.clear();
  capacity_freed_ = false;
}

bool ConservativeScheduler::incremental_replan(Time now) {
  // Counts attempts: a false return falls through to full_replan, so
  // full + incremental together bound the replan work actually done.
  obs::count(obs::Counter::kSchedReplanIncremental);
  Profile& plan = *plan_;

  // A completion whose planned usage extends past now frees future capacity.
  // Static mode handles it by returning the usage and compressing; dynamic
  // mode must rebuild (every reservation may shift onto the freed space).
  for (const JobId id : pending_completions_) {
    const auto it = planned_end_.find(id);
    if (it == planned_end_.end()) return false;  // job unknown to the plan
    if (it->second > now) {
      if (config_.dynamic_reservations) return false;
      plan.remove_usage(now, it->second, ctx().job(id).nodes);
      capacity_freed_ = true;
    }
    planned_end_.erase(it);
  }
  pending_completions_.clear();

  if (config_.dynamic_reservations) {
    // Replan only the suffix of the priority order that no longer matches
    // the order the current plan was built in. Jobs launched since remain in
    // the plan as running usage over exactly their reservation interval, so
    // eliding them keeps the planning prefix byte-identical.
    std::vector<JobId> order = sorted_by_priority(waiting_, config_.priority);
    std::vector<JobId> previous;
    previous.reserve(last_order_.size());
    for (const JobId id : last_order_)
      if (reservations_.count(id) != 0) previous.push_back(id);
    std::size_t prefix = 0;
    while (prefix < order.size() && prefix < previous.size() &&
           order[prefix] == previous[prefix])
      ++prefix;
    if (prefix * 2 < order.size()) return false;  // mostly reshuffled: rebuild is cheaper
    for (std::size_t i = prefix; i < previous.size(); ++i) {
      const Job& job = ctx().job(previous[i]);
      const Time start = reservations_.at(previous[i]);
      plan.remove_usage(start, start + job.wcl, job.nodes);
    }
    for (std::size_t i = prefix; i < order.size(); ++i) {
      const Job& job = ctx().job(order[i]);
      const Time start = plan.earliest_fit(now, job.wcl, job.nodes);
      plan.add_usage(start, start + job.wcl, job.nodes);
      reservations_[order[i]] = start;
    }
    last_order_ = std::move(order);
    pending_arrivals_.clear();
    return true;
  }

  // Static mode: existing reservations are untouched by arrivals (the naive
  // pass 1 re-seats them at exactly their stored slots), so only the new
  // jobs need seating — last, in record-id order, matching the naive
  // tie-break for kNoTime entries.
  std::sort(pending_arrivals_.begin(), pending_arrivals_.end());
  for (const JobId id : pending_arrivals_) {
    const Job& job = ctx().job(id);
    const Time start = plan.earliest_fit(now, job.wcl, job.nodes);
    plan.add_usage(start, start + job.wcl, job.nodes);
    reservations_[id] = start;
  }
  pending_arrivals_.clear();

  // The compression pass is a provable no-op unless capacity was freed or
  // the previous pass still moved reservations (cascades may continue).
  if (capacity_freed_ || compress_active_) compression_pass(now);
  return true;
}

void ConservativeScheduler::collect_starts(std::vector<JobId>& starts) {
  wakeup_.reset();
  order_fresh_ = false;
  const Time now = ctx().now();

  // While any running job over-runs its estimate, its assumed horizon moves
  // with now and can push reservations around — replan from scratch exactly
  // like the naive algorithm, and keep doing so until the over-run clears.
  bool overrun = false;
  for (const RunningView& r : ctx().running()) {
    if (r.est_end <= now) {
      overrun = true;
      break;
    }
  }

  if (!plan_valid_ || overrun) {
    full_replan(now);
  } else {
    plan_->advance_origin(now);
    if (!incremental_replan(now)) full_replan(now);
  }
  plan_valid_ = !overrun;

  // Launch everything whose reservation came due, highest priority first.
  // The replan path usually just computed this exact order (last_order_ in
  // dynamic mode, the compression pass's sort otherwise); avoid re-sorting.
  if (config_.dynamic_reservations) {
    priority_order_ = last_order_;
  } else if (!order_fresh_) {
    priority_order_ = sorted_by_priority(waiting_, config_.priority);
  }
  NodeCount free = ctx().free_nodes();
  std::optional<Time> wake;
  for (const JobId id : priority_order_) {
    const Time start = reservations_.at(id);
    if (start <= now) {
      const Job& job = ctx().job(id);
      if (job.nodes > free)
        throw std::logic_error("ConservativeScheduler: reservation due but nodes not free");
      starts.push_back(id);
      free -= job.nodes;
      reservations_.erase(id);
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
      if (start == now) {
        // The launched job's reservation usage [now, now + wcl) stays in the
        // plan as its running usage (est_end == now + wcl).
        planned_end_.emplace(id, now + job.wcl);
      } else {
        plan_valid_ = false;  // stale reservation interval; rebuild next event
      }
    } else if (!wake || start < *wake) {
      wake = start;
    }
  }
  wakeup_ = wake;
}

std::optional<Time> ConservativeScheduler::next_wakeup() const { return wakeup_; }

}  // namespace psched
