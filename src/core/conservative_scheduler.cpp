#include "core/conservative_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace psched {

ConservativeScheduler::ConservativeScheduler(ConservativeConfig config) : config_(config) {}

std::string ConservativeScheduler::name() const {
  std::string n = config_.dynamic_reservations ? "consdyn" : "cons";
  if (config_.priority == PriorityKind::Fcfs) n += ".fcfs";
  return n;
}

void ConservativeScheduler::on_submit(JobId id) {
  waiting_.push_back(id);
  reservations_.emplace(id, kNoTime);
}

void ConservativeScheduler::on_complete(JobId) {}

Time ConservativeScheduler::reservation(JobId id) const {
  const auto it = reservations_.find(id);
  return it == reservations_.end() ? kNoTime : it->second;
}

void ConservativeScheduler::replan(Profile& profile) {
  const Time now = ctx().now();

  if (config_.dynamic_reservations) {
    // Plan from scratch in priority order at every event.
    for (const JobId id : sorted_by_priority(waiting_, config_.priority)) {
      const Job& job = ctx().job(id);
      const Time start = profile.earliest_fit(now, job.wcl, job.nodes);
      profile.add_usage(start, start + job.wcl, job.nodes);
      reservations_[id] = start;
    }
    return;
  }

  // Static conservative. Pass 1: re-seat stored reservations in stored-start
  // order; a slot only moves later if an over-running job broke it. Brand-new
  // arrivals (kNoTime) are seated last so they cannot delay anyone.
  std::vector<JobId> seat_order = waiting_;
  std::sort(seat_order.begin(), seat_order.end(), [&](JobId a, JobId b) {
    const Time ra = reservations_.at(a);
    const Time rb = reservations_.at(b);
    const Time ka = ra == kNoTime ? std::numeric_limits<Time>::max() : ra;
    const Time kb = rb == kNoTime ? std::numeric_limits<Time>::max() : rb;
    if (ka != kb) return ka < kb;
    return a < b;
  });
  for (const JobId id : seat_order) {
    const Job& job = ctx().job(id);
    const Time stored = reservations_.at(id);
    const Time from = stored == kNoTime ? now : std::max(stored, now);
    const Time start = profile.earliest_fit(from, job.wcl, job.nodes);
    profile.add_usage(start, start + job.wcl, job.nodes);
    reservations_[id] = start;
  }

  // Pass 2: improvement attempts in priority order — higher-priority jobs get
  // the first chance at space freed by early completions. A job keeps its
  // slot unless the found one is strictly earlier.
  for (const JobId id : sorted_by_priority(waiting_, config_.priority)) {
    const Job& job = ctx().job(id);
    const Time current = reservations_.at(id);
    profile.remove_usage(current, current + job.wcl, job.nodes);
    const Time improved = profile.earliest_fit(now, job.wcl, job.nodes);
    const Time chosen = improved < current ? improved : current;
    profile.add_usage(chosen, chosen + job.wcl, job.nodes);
    reservations_[id] = chosen;
  }
}

void ConservativeScheduler::collect_starts(std::vector<JobId>& starts) {
  wakeup_.reset();
  const Time now = ctx().now();
  Profile profile(ctx().total_nodes(), now);
  add_running_to_profile(profile);
  replan(profile);

  // Launch everything whose reservation came due, highest priority first.
  NodeCount free = ctx().free_nodes();
  std::optional<Time> wake;
  for (const JobId id : sorted_by_priority(waiting_, config_.priority)) {
    const Time start = reservations_.at(id);
    if (start <= now) {
      const Job& job = ctx().job(id);
      if (job.nodes > free)
        throw std::logic_error("ConservativeScheduler: reservation due but nodes not free");
      starts.push_back(id);
      free -= job.nodes;
      reservations_.erase(id);
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
    } else if (!wake || start < *wake) {
      wake = start;
    }
  }
  wakeup_ = wake;
}

std::optional<Time> ConservativeScheduler::next_wakeup() const { return wakeup_; }

}  // namespace psched
