#pragma once
// The Sandia "fairshare" queuing priority (paper section 2.1): a historical
// sum of processor-seconds used per user that decays on a regular basis
// (every 24 hours on CPlant). Users with *lower* decayed usage get *higher*
// queue priority, so users who have not recently used the machine go first.
//
// The tracker accrues usage continuously while jobs run: the simulation
// engine calls advance() at every event boundary, and the tracker integrates
// running-processor counts over the elapsed interval, applying the decay at
// each period boundary it crosses.

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace psched {

/// When the *published* priority value refreshes. Production fairshare
/// systems recompute priorities on the decay schedule (a daily batch on
/// CPlant), so queue order is stable between refreshes; Continuous updates
/// the published value at every accrual instead (an idealized variant used
/// by ablations).
enum class FairshareUpdate { AtDecayBoundary, Continuous };

class FairshareTracker {
 public:
  /// decay_factor in (0, 1]: multiplier applied to all usage at each period
  /// boundary (1.0 disables decay and degenerates to total historical usage).
  FairshareTracker(double decay_factor, Time decay_period, Time start_time = 0,
                   FairshareUpdate update = FairshareUpdate::AtDecayBoundary);

  /// Move the clock to `to` (>= now()): accrue usage for running processors
  /// and apply decay at each crossed period boundary.
  void advance(Time to);

  /// A job of `user` started/stopped using `nodes` processors at now().
  void on_job_start(UserId user, NodeCount nodes);
  void on_job_stop(UserId user, NodeCount nodes);

  Time now() const { return now_; }

  /// Published decayed processor-seconds of `user` (the queuing priority
  /// value; lower goes first). Unknown users have 0. Under AtDecayBoundary
  /// this is the value computed at the most recent boundary; under
  /// Continuous it tracks accrual instantly.
  double usage(UserId user) const;

  /// Instantaneous decayed usage regardless of update mode (metrics/tests).
  double live_usage(UserId user) const;

  /// Mean usage over users with positive usage; 0 if none. Used by the
  /// "bar heavy users from the starvation queue" policy.
  double mean_positive_usage() const;

  /// Number of distinct users ever observed.
  std::size_t user_count() const { return users_.size(); }

  /// Sum of currently running processors (accrual-rate sanity checks).
  NodeCount running_processors() const { return total_running_; }

 private:
  struct UserState {
    double usage = 0.0;      // live decayed proc-seconds
    double published = 0.0;  // value exposed as the queue priority
    NodeCount running = 0;
  };

  void accrue(Time dt);
  UserState& state(UserId user);

  double decay_factor_;
  Time decay_period_;
  Time now_;
  Time next_decay_;
  FairshareUpdate update_;
  NodeCount total_running_ = 0;
  std::vector<UserState> users_;  // dense by UserId
};

}  // namespace psched
