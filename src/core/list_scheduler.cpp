#include "core/list_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace psched {

ListScheduler::ListScheduler(NodeCount nodes, Time origin) {
  if (nodes <= 0) throw std::invalid_argument("ListScheduler: nodes must be positive");
  avail_.assign(static_cast<std::size_t>(nodes), origin);
}

void ListScheduler::occupy(NodeCount nodes, Time until) {
  if (nodes <= 0 || static_cast<std::size_t>(nodes) > avail_.size())
    throw std::invalid_argument("ListScheduler::occupy: bad node count");
  // The earliest-available nodes are at the front (vector kept sorted).
  for (std::size_t i = 0; i < static_cast<std::size_t>(nodes); ++i)
    avail_[i] = std::max(avail_[i], until);
  std::sort(avail_.begin(), avail_.end());
}

Time ListScheduler::peek_start(NodeCount nodes, Time earliest) const {
  if (nodes <= 0 || static_cast<std::size_t>(nodes) > avail_.size())
    throw std::invalid_argument("ListScheduler::peek_start: bad node count");
  // Picking the N earliest-available nodes minimizes the start time; the
  // start is the availability of the N-th of them.
  return std::max(earliest, avail_[static_cast<std::size_t>(nodes) - 1]);
}

Time ListScheduler::schedule(NodeCount nodes, Time duration, Time earliest) {
  if (duration < 0) throw std::invalid_argument("ListScheduler::schedule: negative duration");
  const Time start = peek_start(nodes, earliest);
  const Time end = start + duration;
  const auto n = static_cast<std::size_t>(nodes);
  for (std::size_t i = 0; i < n; ++i) avail_[i] = end;
  // The first n entries were the smallest and are now all `end`; merge back
  // into sorted order (rotate to the insertion point).
  const auto insert_at = std::lower_bound(avail_.begin() + static_cast<std::ptrdiff_t>(n),
                                          avail_.end(), end);
  std::rotate(avail_.begin(), avail_.begin() + static_cast<std::ptrdiff_t>(n), insert_at);
  return start;
}

Time ListScheduler::earliest_available() const { return avail_.front(); }

}  // namespace psched
