#include "core/list_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace psched {

ListScheduler::ListScheduler(NodeCount nodes, Time origin) : total_(nodes) {
  if (nodes <= 0) throw std::invalid_argument("ListScheduler: nodes must be positive");
  runs_.push_back({origin, nodes});
}

void ListScheduler::reset(Time origin) {
  runs_.clear();
  runs_.push_back({origin, total_});
}

void ListScheduler::insert_run(Time t, NodeCount count) {
  const auto it = std::lower_bound(runs_.begin(), runs_.end(), t,
                                   [](const Run& r, Time value) { return r.at < value; });
  if (it != runs_.end() && it->at == t)
    it->count += count;
  else
    runs_.insert(it, {t, count});
}

void ListScheduler::occupy(NodeCount nodes, Time until) {
  if (nodes <= 0 || nodes > total_)
    throw std::invalid_argument("ListScheduler::occupy: bad node count");
  // Of the `nodes` earliest-available nodes, those available before `until`
  // move to `until`; those already available at or after it are unchanged.
  // The affected nodes form a prefix of the run list.
  NodeCount budget = nodes;
  NodeCount moved = 0;
  std::size_t i = 0;
  while (i < runs_.size() && budget > 0 && runs_[i].at < until) {
    const NodeCount take = std::min(runs_[i].count, budget);
    runs_[i].count -= take;
    moved += take;
    budget -= take;
    if (runs_[i].count == 0)
      ++i;  // fully consumed; erased below
    else
      break;
  }
  if (i > 0) runs_.erase(runs_.begin(), runs_.begin() + static_cast<std::ptrdiff_t>(i));
  if (moved > 0) insert_run(until, moved);
}

Time ListScheduler::peek_start(NodeCount nodes, Time earliest) const {
  if (nodes <= 0 || nodes > total_)
    throw std::invalid_argument("ListScheduler::peek_start: bad node count");
  // Picking the N earliest-available nodes minimizes the start time; the
  // start is the availability of the N-th of them.
  NodeCount remaining = nodes;
  for (const Run& r : runs_) {
    remaining -= r.count;
    if (remaining <= 0) return std::max(earliest, r.at);
  }
  throw std::logic_error("ListScheduler::peek_start: run counts out of sync");
}

Time ListScheduler::schedule(NodeCount nodes, Time duration, Time earliest) {
  if (duration < 0) throw std::invalid_argument("ListScheduler::schedule: negative duration");
  const Time start = peek_start(nodes, earliest);
  const Time end = start + duration;
  // Consume the N earliest-available nodes (a prefix of the run list; the
  // last touched run may be consumed only partially).
  NodeCount budget = nodes;
  std::size_t i = 0;
  while (budget > 0) {
    const NodeCount take = std::min(runs_[i].count, budget);
    runs_[i].count -= take;
    budget -= take;
    if (runs_[i].count == 0) ++i;
  }
  if (i > 0) runs_.erase(runs_.begin(), runs_.begin() + static_cast<std::ptrdiff_t>(i));
  insert_run(end, nodes);
  return start;
}

Time ListScheduler::earliest_available() const { return runs_.front().at; }

}  // namespace psched
