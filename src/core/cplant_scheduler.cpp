#include "core/cplant_scheduler.hpp"

#include <algorithm>

namespace psched {

CplantScheduler::CplantScheduler(CplantConfig config) : config_(config) {}

std::string CplantScheduler::name() const {
  if (!starvation_enabled()) return "noguarantee";
  std::string n = "cplant" + std::to_string(config_.starvation_delay / hours(1));
  n += config_.bar_heavy_users ? ".fair" : ".all";
  return n;
}

void CplantScheduler::on_submit(JobId id) { waiting_.push_back(id); }

void CplantScheduler::on_complete(JobId) {}

bool CplantScheduler::user_is_heavy(UserId user) const {
  const double mean = ctx().mean_positive_usage();
  if (mean <= 0.0) return false;
  return ctx().user_usage(user) > config_.heavy_user_factor * mean;
}

void CplantScheduler::promote_starving_jobs() {
  if (!starvation_enabled()) return;
  const Time now = ctx().now();
  std::vector<JobId> eligible;
  for (const JobId id : waiting_) {
    const Job& job = ctx().job(id);
    if (now - job.submit < config_.starvation_delay) continue;
    if (config_.bar_heavy_users && user_is_heavy(job.user)) continue;
    eligible.push_back(id);
  }
  // The starvation queue is FCFS by submission.
  std::sort(eligible.begin(), eligible.end(), [&](JobId a, JobId b) {
    const Job& ja = ctx().job(a);
    const Job& jb = ctx().job(b);
    return ja.submit != jb.submit ? ja.submit < jb.submit : a < b;
  });
  for (const JobId id : eligible) {
    starve_.push_back(id);
    waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
  }
}

void CplantScheduler::collect_starts(std::vector<JobId>& starts) {
  wakeup_.reset();
  promote_starving_jobs();

  const Time now = ctx().now();
  NodeCount free = ctx().free_nodes();
  Profile& profile = scratch_profile(now);
  add_running_to_profile(profile);

  std::optional<Time> head_reservation;

  // Starvation queue first, FCFS: start heads while they fit; the first head
  // that does not fit pins the (single) internal reservation.
  while (!starve_.empty()) {
    const Job& head = ctx().job(starve_.front());
    if (head.nodes <= free && profile.fits_at(now, head.wcl, head.nodes)) {
      starts.push_back(head.id);
      profile.add_usage(now, now + head.wcl, head.nodes);
      free -= head.nodes;
      starve_.pop_front();
      continue;
    }
    const Time reserve_at = profile.earliest_fit(now, head.wcl, head.nodes);
    profile.add_usage(reserve_at, reserve_at + head.wcl, head.nodes);
    head_reservation = reserve_at;
    break;
  }

  // Remaining starvation-queue jobs may still start if they respect the head
  // reservation, then the main queue in fairshare (or configured) order.
  auto try_start = [&](JobId id) {
    const Job& job = ctx().job(id);
    if (job.nodes <= free && profile.fits_at(now, job.wcl, job.nodes)) {
      starts.push_back(id);
      profile.add_usage(now, now + job.wcl, job.nodes);
      free -= job.nodes;
      return true;
    }
    return false;
  };

  if (!starve_.empty()) {
    std::deque<JobId> still_starving;
    bool first = true;
    for (const JobId id : starve_) {
      // The blocked head stays put (its reservation is already in the profile).
      if (first) {
        still_starving.push_back(id);
        first = false;
        continue;
      }
      if (!try_start(id)) still_starving.push_back(id);
    }
    starve_ = std::move(still_starving);
  }

  std::vector<JobId> order = sorted_by_priority(waiting_, config_.priority);
  for (const JobId id : order) {
    if (try_start(id)) waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
  }

  // Timers: the head reservation, the next starvation-eligibility instant,
  // and (with the heavy-user bar) a periodic recheck for barred jobs.
  std::optional<Time> wake = head_reservation;
  if (starvation_enabled()) {
    bool any_barred_now = false;
    for (const JobId id : waiting_) {
      const Time eligible_at = ctx().job(id).submit + config_.starvation_delay;
      if (eligible_at > now) {
        if (!wake || eligible_at < *wake) wake = eligible_at;
      } else {
        any_barred_now = true;  // eligible but (necessarily) barred
      }
    }
    if (any_barred_now) {
      const Time recheck = now + config_.heavy_recheck_interval;
      if (!wake || recheck < *wake) wake = recheck;
    }
  }
  wakeup_ = wake;
}

std::optional<Time> CplantScheduler::next_wakeup() const { return wakeup_; }

}  // namespace psched
