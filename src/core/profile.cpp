#include "core/profile.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace psched {

namespace {
constexpr int kHintProbes = 2;  ///< forward probes before binary search
}  // namespace

// Crossover measured two ways (see the gap-index section of ROADMAP.md):
// pure query/pack loops win from ~1k breakpoints
// (bench/perf_profile BM_ProfilePackIndexed vs BM_ProfilePackLinear), while
// the churn-heavy conservative compression pass — remove/re-fit/re-add per
// queued job, which dirties and repairs aggregates at the same rate it
// queries them — is noisier around the boundary. A threshold sweep over the
// end-to-end deep-burst sims (bench/perf_schedulers BM_Sim*DeepQueue vs the
// linear-scan BM_RefSim* twins, depths 2000/4000/10000) found 2048 to be
// the value that is never worse than the linear scan at any depth and keeps
// the deep-replan wins; higher gates (4096+) disable the index exactly
// where plans hover around the boundary at peak queue depth. Shallow
// profiles (EASY/CPlant scratch, FST) stay on the zero-bookkeeping linear
// scan either way.
std::size_t Profile::gap_index_threshold_ = 2048;

std::size_t Profile::gap_index_threshold() { return gap_index_threshold_; }

void Profile::set_gap_index_threshold(std::size_t threshold) { gap_index_threshold_ = threshold; }

Profile::Profile(NodeCount capacity, Time origin) : capacity_(capacity), origin_(origin) {
  if (capacity <= 0) throw std::invalid_argument("Profile: capacity must be positive");
  steps_.push_back({origin_, capacity_});
}

void Profile::reset(Time origin) {
  origin_ = origin;
  steps_.clear();
  steps_.push_back({origin_, capacity_});
  hint_ = 0;
  batch_depth_ = 0;
  batch_dirty_ = false;
  index_built_ = false;
  index_dirty_lo_ = 0;
  index_dirty_hi_ = -1;
}

void Profile::advance_origin(Time now) {
  if (now <= origin_) return;
  const std::size_t i = step_index(now);
  if (i > 0) steps_.erase(steps_.begin(), steps_.begin() + static_cast<std::ptrdiff_t>(i));
  steps_.front().at = now;
  // The front step moves into now's bucket; buckets before it become
  // unreachable (no step time is ever below the origin again).
  index_mark(now, now);
  origin_ = now;
  hint_ = 0;
}

std::size_t Profile::step_index(Time t) const {
  if (t < origin_) throw std::logic_error("Profile: time before origin");
  const std::size_t n = steps_.size();
  std::size_t i = hint_ < n ? hint_ : n - 1;
  const auto before = [](Time value, const Step& s) { return value < s.at; };
  if (steps_[i].at <= t) {
    // Monotone scans resolve within a few forward probes.
    for (int probe = 0; probe < kHintProbes; ++probe) {
      if (i + 1 >= n || steps_[i + 1].at > t) {
        hint_ = i;
        return i;
      }
      ++i;
    }
    const auto it = std::upper_bound(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                     steps_.end(), t, before);
    i = static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
  } else {
    const auto it =
        std::upper_bound(steps_.begin(), steps_.begin() + static_cast<std::ptrdiff_t>(i), t, before);
    i = static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
  }
  hint_ = i;
  return i;
}

std::size_t Profile::ensure_breakpoint(Time t) {
  const std::size_t i = step_index(t);
  if (steps_[i].at == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1, {t, steps_[i].free});
  hint_ = i + 1;
  index_mark(t, t);
  return i + 1;
}

void Profile::coalesce_range(std::size_t lo, std::size_t hi) {
  // The mutation changed free counts in [lo, hi); only the adjacency pairs
  // (i-1, i) for i in [lo, hi] can have become equal.
  if (lo < 1) lo = 1;
  const std::size_t end = std::min(hi + 1, steps_.size());
  if (lo >= end) return;
  std::size_t out = lo;
  for (std::size_t i = lo; i < end; ++i) {
    if (steps_[i].free == steps_[out - 1].free) continue;
    steps_[out++] = steps_[i];
  }
  if (out < end) {
    // No index_mark: coalescing only erases steps equal to their
    // predecessor, so the free FUNCTION — which the bucket aggregates are
    // computed over, via covering steps — is pointwise unchanged.
    steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(out),
                 steps_.begin() + static_cast<std::ptrdiff_t>(end));
    hint_ = out - 1;
  }
}

void Profile::coalesce_all() {
  std::size_t out = 1;
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].free == steps_[out - 1].free) continue;
    steps_[out++] = steps_[i];
  }
  if (out < steps_.size()) {
    // No index_mark — see coalesce_range: erasures leave the free function
    // (and thus every bucket aggregate) unchanged.
    steps_.resize(out);
  }
  hint_ = 0;
}

void Profile::begin_batch() { ++batch_depth_; }

void Profile::end_batch() {
  if (batch_depth_ <= 0) throw std::logic_error("Profile::end_batch without begin_batch");
  if (--batch_depth_ == 0 && batch_dirty_) {
    coalesce_all();
    batch_dirty_ = false;
  }
}

void Profile::add_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::add_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::add_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);  // end marker keeps old free value
  // Validate the whole window before mutating so a failed add leaves the
  // free counts untouched (strong exception safety). The breakpoints the
  // validation may have inserted carry unchanged free counts; drop them
  // again so a failed call leaves no structural trace either.
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free < nodes) {
      const Time bad = steps_[i].at;
      if (batch_depth_ == 0)
        coalesce_range(first, last);
      else
        batch_dirty_ = true;  // end_batch sweeps the validation breakpoints
      throw std::logic_error("Profile::add_usage: over-reservation at t=" + std::to_string(bad));
    }
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free -= nodes;
  index_mark(from, to);
  if (batch_depth_ == 0)
    coalesce_range(first, last);
  else
    batch_dirty_ = true;
}

void Profile::remove_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::remove_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::remove_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free + nodes > capacity_) {
      const Time bad = steps_[i].at;
      if (batch_depth_ == 0)
        coalesce_range(first, last);
      else
        batch_dirty_ = true;  // end_batch sweeps the validation breakpoints
      throw std::logic_error("Profile::remove_usage: exceeds capacity at t=" + std::to_string(bad));
    }
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free += nodes;
  index_mark(from, to);
  if (batch_depth_ == 0)
    coalesce_range(first, last);
  else
    batch_dirty_ = true;
}

NodeCount Profile::free_at(Time t) const { return steps_[step_index(t)].free; }

bool Profile::fits_at(Time start, Time duration, NodeCount nodes) const {
  if (start < origin_) return false;
  if (nodes > capacity_) return false;
  if (duration <= 0 || nodes <= 0) return true;
  const Time end = start + duration;
  const std::size_t i = step_index(start);
  if (index_active()) {
    index_sync();
    return index_first_blocked_before(i, end, nodes) == kIndexNone;
  }
  for (std::size_t k = i; k < steps_.size() && steps_[k].at < end; ++k) {
    if (steps_[k].free < nodes) return false;
  }
  return true;
}

Time Profile::earliest_fit(Time earliest, Time duration, NodeCount nodes) const {
  if (nodes > capacity_)
    throw std::invalid_argument("Profile::earliest_fit: job wider than machine");
  earliest = std::max(earliest, origin_);
  if (duration <= 0 || nodes <= 0) return earliest;
  if (index_active()) return earliest_fit_indexed(earliest, duration, nodes);

  // Single forward pass: maintain the start of the current feasible run of
  // steps; the first candidate whose run extends `duration` past it wins.
  // The tail step always has free == capacity >= nodes, so the scan always
  // terminates with a candidate.
  const std::size_t n = steps_.size();
  std::size_t i = step_index(earliest);
  bool open = steps_[i].free >= nodes;  // a feasible window is in progress
  Time candidate = earliest;
  for (;;) {
    if (open && (i + 1 >= n || steps_[i + 1].at >= candidate + duration)) return candidate;
    ++i;
    if (steps_[i].free >= nodes) {
      if (!open) {
        open = true;
        candidate = steps_[i].at;
      }
    } else {
      open = false;
    }
  }
}

// --- gap index ---------------------------------------------------------------

namespace {
/// Bucket sizing target: ~this many steps per bucket at (re)build time. A
/// probe then amortizes over dozens of skipped steps while a lazy bucket
/// rebuild stays cheap.
constexpr std::size_t kStepsPerBucket = 32;
/// Adaptive probe credit: each probe spends one credit; a successful skip
/// earns credit proportional to the buckets it advanced. Queries whose
/// probes don't pay for themselves run out of credit and degrade to the
/// plain linear walk; skip-rich scans keep probing.
constexpr int kProbeCredit = 8;        ///< initial credit per query
constexpr int kProbeCreditCap = 64;    ///< earned credit ceiling
/// An open-window swallow only pays once it skips several buckets: the
/// sequential step walk costs ~1ns/step while a jump (aggregate run +
/// gallop landing) costs a few hundred ns. Shorter runs are simply walked.
constexpr std::size_t kMinSkipBuckets = 4;
/// Probes start only after the scan has crossed this many bucket
/// boundaries: short queries (the common case in compression passes, where
/// a job re-fits at or near its old slot) never touch the index machinery.
constexpr Time kProbeWarmupBuckets = 2;
constexpr int kMaxClasses = 31;  ///< NodeCount is 32-bit; bit 31 marks min-stale
constexpr std::uint32_t kAllStale = 0xFFFFFFFFu;
constexpr std::uint32_t kMinStale = 0x80000000u;

/// Width class with 2^c <= nodes (nodes >= 1): runs kept for class c are a
/// superset of the true nodes-feasible runs, so skips stay safe. The shift
/// is 64-bit: nodes >= 2^30 needs 2 << 30, which overflows 32-bit NodeCount.
int width_class(NodeCount nodes) {
  int c = 0;
  while ((std::int64_t{2} << c) <= nodes) ++c;
  return c;
}
}  // namespace

bool Profile::index_active() const { return steps_.size() >= gap_index_threshold_; }

void Profile::index_mark(Time lo, Time hi) {
  if (index_dirty_lo_ > index_dirty_hi_) {
    index_dirty_lo_ = lo;
    index_dirty_hi_ = hi;
    return;
  }
  index_dirty_lo_ = std::min(index_dirty_lo_, lo);
  index_dirty_hi_ = std::max(index_dirty_hi_, hi);
}

void Profile::index_sync() const {
  const std::size_t n = steps_.size();
  const Time span_hi = steps_.back().at;
  bool rebuild = !index_built_;
  if (!rebuild) {
    // Re-key when the population drifts far from target (4x hysteresis on
    // both sides avoids thrash), deciding on the WOULD-BE bucket count
    // before any resize: one far-future breakpoint can demand millions of
    // buckets at the current width, and materializing those tables just to
    // discard them in the rebuild below can exhaust memory. The too-fine
    // test divides instead of multiplying so a huge horizon cannot
    // overflow; past it, needed <= n/8 bounds the too-coarse product.
    // The too-coarse test uses the SPAN's bucket count, not the table's:
    // when a far-future reservation is removed the span collapses but the
    // table keeps its trailing buckets, and judging coarseness by table
    // size would leave the whole live region inside one bucket forever.
    // advance_origin also funnels through here: dead leading buckets
    // inflate the count until a rebuild re-anchors bucket_time0_ at the
    // current origin.
    const std::size_t span_buckets =
        static_cast<std::size_t>((span_hi - bucket_time0_) >> bucket_shift_) + 1;
    const std::size_t needed = std::max(span_buckets, bucket_dirty_.size());
    if (needed > 16 && needed > n / (kStepsPerBucket / 4))
      rebuild = true;  // too fine: fewer than ~8 steps per bucket
    else if (n > span_buckets * kStepsPerBucket * 4)
      rebuild = true;  // too coarse: probes would scan huge buckets
    else if (needed > bucket_dirty_.size()) {
      // Extend coverage to the current horizon (new buckets start dirty).
      bucket_min_.resize(needed);
      bucket_runs_.resize(needed * static_cast<std::size_t>(bucket_classes_));
      bucket_dirty_.resize(needed, kAllStale);
    }
  }
  if (rebuild) {
    int classes = 1;
    while ((NodeCount{1} << classes) <= capacity_ && classes < kMaxClasses - 1) ++classes;
    bucket_classes_ = classes;
    const Time span = std::max<Time>(1, span_hi - origin_ + 1);
    const auto target = static_cast<Time>(std::max<std::size_t>(1, n / kStepsPerBucket));
    int shift = 0;
    while (shift < 62 && (span >> shift) + 1 > target) ++shift;
    bucket_shift_ = shift;
    bucket_time0_ = (origin_ >> shift) << shift;
    const auto count = static_cast<std::size_t>((span_hi - bucket_time0_) >> shift) + 1;
    bucket_min_.assign(count, 0);
    bucket_runs_.assign(count * static_cast<std::size_t>(classes), BucketRuns{});
    bucket_dirty_.assign(count, kAllStale);
    index_built_ = true;
    index_dirty_lo_ = 0;
    index_dirty_hi_ = -1;
    return;
  }
  if (index_dirty_lo_ <= index_dirty_hi_) {
    // Clamp to the TABLE's coverage, not the current horizon: a removal can
    // shrink the breakpoint span while buckets beyond it stay in the table
    // (and stay reachable by scans), so their staleness must be recorded.
    const Time lo = std::max(index_dirty_lo_, bucket_time0_);
    if (lo <= index_dirty_hi_) {
      const auto klo = static_cast<std::size_t>((lo - bucket_time0_) >> bucket_shift_);
      const auto khi = std::min(
          static_cast<std::size_t>((index_dirty_hi_ - bucket_time0_) >> bucket_shift_),
          bucket_dirty_.size() - 1);
      for (std::size_t k = klo; k <= khi; ++k) bucket_dirty_[k] = kAllStale;
    }
    index_dirty_lo_ = 0;
    index_dirty_hi_ = -1;
  }
}

void Profile::index_rebuild_min(std::size_t k) const {
  const Time bstart = bucket_time0_ + (static_cast<Time>(k) << bucket_shift_);
  const Time bend = bstart + (Time{1} << bucket_shift_);
  const Time lo = std::max(bstart, origin_);
  // The covering step (at <= lo) carries the free count into the bucket, so
  // aggregates are over the free FUNCTION on the bucket's time range, not
  // just member steps — which makes empty buckets exact, not a special case.
  const auto before = [](Time value, const Step& s) { return value < s.at; };
  auto it = std::upper_bound(steps_.begin(), steps_.end(), lo, before);
  std::size_t idx = static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
  const std::size_t n = steps_.size();
  NodeCount mn = steps_[idx].free;
  while (idx + 1 < n && steps_[idx + 1].at < bend) {
    ++idx;
    mn = std::min(mn, steps_[idx].free);
  }
  bucket_min_[k] = mn;
  bucket_dirty_[k] &= ~kMinStale;
}

void Profile::index_rebuild_runs(std::size_t k, int c) const {
  const Time bstart = bucket_time0_ + (static_cast<Time>(k) << bucket_shift_);
  const Time bend = bstart + (Time{1} << bucket_shift_);
  const Time lo = std::max(bstart, origin_);
  const auto before = [](Time value, const Step& s) { return value < s.at; };
  auto it = std::upper_bound(steps_.begin(), steps_.end(), lo, before);
  std::size_t idx = static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
  const NodeCount need = NodeCount{1} << c;
  BucketRuns& runs = bucket_runs_[k * static_cast<std::size_t>(bucket_classes_) + c];
  runs = BucketRuns{};
  Time run = 0;
  bool broke = false;
  const std::size_t n = steps_.size();
  Time seg_lo = lo;
  while (seg_lo < bend) {
    const Time seg_hi = (idx + 1 < n) ? std::min(steps_[idx + 1].at, bend) : bend;
    if (steps_[idx].free >= need) {
      run += seg_hi - seg_lo;
    } else {
      if (!broke) {
        runs.pre = run;
        broke = true;
      }
      runs.best = std::max(runs.best, run);
      run = 0;
    }
    seg_lo = seg_hi;
    ++idx;
  }
  if (!broke) runs.pre = run;
  runs.best = std::max(runs.best, run);
  runs.suf = run;
  bucket_dirty_[k] &= ~(std::uint32_t{1} << c);
}

bool Profile::bucket_clear(std::size_t k, NodeCount nodes) const {
  if (bucket_dirty_[k] & kMinStale) index_rebuild_min(k);
  return bucket_min_[k] >= nodes;
}

std::size_t Profile::gallop_time(std::size_t i, Time t) const {
  const std::size_t n = steps_.size();
  if (i >= n || steps_[i].at >= t) return i;
  std::size_t stride = 1;
  std::size_t lo = i;  // known: at < t
  while (lo + stride < n && steps_[lo + stride].at < t) {
    lo += stride;
    stride <<= 1;
  }
  const std::size_t hi = std::min(lo + stride, n);  // first candidate with at >= t (or n)
  const auto it = std::lower_bound(steps_.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                                   steps_.begin() + static_cast<std::ptrdiff_t>(hi), t,
                                   [](const Step& s, Time v) { return s.at < v; });
  return static_cast<std::size_t>(std::distance(steps_.begin(), it));
}

namespace {

/// Per-query gap-index tallies, flushed once on every exit path so the probe
/// loops stay atomic-free; each flush line is a single relaxed load when
/// tracing is disarmed. `credit` counts grants pre-cap (the raw skip reward,
/// before kProbeCreditCap clamps the balance).
struct GapIndexFlush {
  std::uint64_t probes = 0;
  std::uint64_t skips = 0;
  std::uint64_t credit = 0;
  ~GapIndexFlush() {
    obs::count(obs::Counter::kGapIndexProbes, probes);
    obs::count(obs::Counter::kGapIndexSkips, skips);
    obs::count(obs::Counter::kGapIndexCreditEarned, credit);
  }
};

}  // namespace

std::size_t Profile::index_first_blocked_before(std::size_t l, Time end, NodeCount nodes) const {
  GapIndexFlush tally;
  const std::size_t n = steps_.size();
  const std::size_t buckets = bucket_dirty_.size();
  std::size_t i = l;
  int credit = kProbeCredit;
  // Cheap per-step boundary test: one time comparison against the start of
  // the next probed bucket (recomputed only on crossings) instead of
  // re-deriving bucket keys for every step.
  Time next_bucket =
      bucket_time0_ +
      ((((steps_[i].at - bucket_time0_) >> bucket_shift_) + kProbeWarmupBuckets)
       << bucket_shift_);
  while (i < n && steps_[i].at < end) {
    if (credit > 0 && steps_[i].at >= next_bucket) {
      --credit;
      ++tally.probes;
      auto k = static_cast<std::size_t>((steps_[i].at - bucket_time0_) >> bucket_shift_);
      const std::size_t k0 = k;
      while (k < buckets && bucket_clear(k, nodes)) ++k;
      if (k >= buckets) return kIndexNone;  // no blocker anywhere ahead
      if (k - k0 >= kMinSkipBuckets) {
        ++tally.skips;
        tally.credit += (k - k0) >> 2;
        credit = std::min(kProbeCreditCap, credit + static_cast<int>((k - k0) >> 2));
        const Time t = bucket_time0_ + (static_cast<Time>(k) << bucket_shift_);
        if (t >= end) return kIndexNone;  // next possible blocker is past the window
        i = gallop_time(i, t);
        next_bucket = t + (Time{1} << bucket_shift_);
        continue;
      }
      next_bucket = bucket_time0_ + ((static_cast<Time>(k0) + 1) << bucket_shift_);
    }
    if (steps_[i].free < nodes) return i;
    ++i;
  }
  return kIndexNone;
}

Time Profile::earliest_fit_indexed(Time earliest, Time duration, NodeCount nodes) const {
  GapIndexFlush tally;
  index_sync();
  // The exact sliding-window pass of the linear scan, accelerated at bucket
  // boundaries:
  //   * While a window is open, a run of buckets whose min free clears
  //     `nodes` cannot close it and is swallowed whole (the win-check
  //     returns the same candidate whether it fires mid-run or at the
  //     run's end).
  //   * While hunting for a window start, per-class feasible-run aggregates
  //     are composed across buckets (carrying the suffix run) until a
  //     bucket is reached where a run of `duration` COULD start; the hunt
  //     resumes stepwise at that run's recorded start. Runs are kept for
  //     width 2^c <= nodes — a superset of the true feasible runs — so
  //     skipped regions provably hold no window start, and a false
  //     positive only costs the stepwise re-scan.
  // Every step actually visited follows the linear pass exactly, so
  // results do too.
  const std::size_t n = steps_.size();
  const std::size_t buckets = bucket_dirty_.size();
  const int classes = bucket_classes_;
  const Time width = Time{1} << bucket_shift_;
  // The table only stores bucket_classes_ classes (capped at kMaxClasses-1);
  // capacity_ >= 2^30 puts the widest jobs one class past that. Clamping
  // down stays safe — a smaller width class keeps a superset of the true
  // feasible runs — it only skips less.
  const int wclass = std::min(width_class(nodes), bucket_classes_ - 1);
  std::size_t i = step_index(earliest);
  bool open = steps_[i].free >= nodes;  // a feasible window is in progress
  Time candidate = earliest;
  int credit = kProbeCredit;
  Time next_bucket =
      bucket_time0_ +
      ((((steps_[i].at - bucket_time0_) >> bucket_shift_) + kProbeWarmupBuckets)
       << bucket_shift_);
  for (;;) {
    if (open && (i + 1 >= n || steps_[i + 1].at >= candidate + duration)) return candidate;
    ++i;
    if (credit > 0 && steps_[i].at >= next_bucket) {
      --credit;
      ++tally.probes;
      auto k = static_cast<std::size_t>((steps_[i].at - bucket_time0_) >> bucket_shift_);
      const std::size_t k0 = k;
      if (open) {
        // Swallow whole clear buckets; only long runs pay for the jump.
        while (k < buckets && bucket_clear(k, nodes)) ++k;
        if (k - k0 >= kMinSkipBuckets || k >= buckets) {
          ++tally.skips;
          tally.credit += (k - k0) >> 2;
          credit = std::min(kProbeCreditCap, credit + static_cast<int>((k - k0) >> 2));
          if (k >= buckets) {
            i = n - 1;  // everything to the tail is skippable
          } else {
            const Time t = bucket_time0_ + (static_cast<Time>(k) << bucket_shift_);
            i = std::min(gallop_time(i, t), n - 1);
          }
          // The window may have completed inside the swallowed run: the
          // top-of-loop check only sees the step after i, so test the
          // landing step itself before it can close the window.
          if (steps_[i].at >= candidate + duration) return candidate;
          next_bucket = bucket_time0_ +
                        ((((steps_[i].at - bucket_time0_) >> bucket_shift_) + 1) << bucket_shift_);
        } else {
          next_bucket = bucket_time0_ + ((static_cast<Time>(k0) + 1) << bucket_shift_);
        }
      } else {
        // Hunt: compose per-class runs across buckets. Entering carry is
        // zero because the current step is blocked.
        Time carry = 0;
        Time run_start = 0;
        Time resume = -1;
        for (;;) {
          if (k >= buckets) {
            // Off the table: the run containing the always-feasible tail is
            // the only remaining place a window can start.
            resume = run_start;  // carry > 0 is guaranteed by the tail step
            break;
          }
          if (bucket_dirty_[k] & (std::uint32_t{1} << wclass)) index_rebuild_runs(k, wclass);
          const BucketRuns& br = bucket_runs_[k * static_cast<std::size_t>(classes) + wclass];
          const Time bstart = bucket_time0_ + (static_cast<Time>(k) << bucket_shift_);
          const Time eff_lo = std::max(bstart, origin_);
          const Time span = bstart + width - eff_lo;
          if ((carry > 0 && carry + br.pre >= duration) || br.best >= duration) {
            resume = carry > 0 ? run_start : eff_lo;
            break;
          }
          if (br.pre >= span) {  // whole bucket feasible: the run continues
            if (carry == 0) run_start = eff_lo;
            carry += span;
          } else if (br.suf > 0) {
            carry = br.suf;
            run_start = bstart + width - br.suf;
          } else {
            carry = 0;
          }
          ++k;
        }
        ++tally.skips;
        tally.credit += (k - k0) >> 1;
        credit = std::min(kProbeCreditCap, credit + static_cast<int>((k - k0) >> 1));
        // Resume the exact linear machine at the covering step of `resume`
        // (a run start is always a breakpoint or a proven-blocked instant).
        i = gallop_time(i - 1, resume + 1) - 1;
        next_bucket = bucket_time0_ + ((static_cast<Time>(std::min(k, buckets - 1)) + 1)
                                       << bucket_shift_);
      }
    }
    if (steps_[i].free >= nodes) {
      if (!open) {
        open = true;
        candidate = steps_[i].at;
      }
    } else {
      open = false;
    }
  }
}

void Profile::check_invariants() const {
  if (steps_.empty()) throw std::logic_error("Profile: empty step list");
  if (steps_.front().at != origin_) throw std::logic_error("Profile: first step not at origin");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].free < 0 || steps_[i].free > capacity_)
      throw std::logic_error("Profile: free count out of range");
    if (i > 0 && steps_[i - 1].at >= steps_[i].at)
      throw std::logic_error("Profile: steps not strictly increasing");
  }
  if (steps_.back().free != capacity_)
    throw std::logic_error("Profile: tail must return to full capacity");
}

std::string Profile::debug_string() const {
  std::ostringstream os;
  os << "Profile(cap=" << capacity_ << ")";
  for (const Step& s : steps_) os << " [" << s.at << ":" << s.free << "]";
  return os.str();
}

}  // namespace psched
