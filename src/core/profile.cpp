#include "core/profile.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psched {

Profile::Profile(NodeCount capacity, Time origin) : capacity_(capacity), origin_(origin) {
  if (capacity <= 0) throw std::invalid_argument("Profile: capacity must be positive");
  steps_.push_back({origin_, capacity_});
}

void Profile::reset(Time origin) {
  origin_ = origin;
  steps_.clear();
  steps_.push_back({origin_, capacity_});
}

std::size_t Profile::step_index(Time t) const {
  if (t < origin_) throw std::logic_error("Profile: time before origin");
  // Last step with at <= t.
  const auto it = std::upper_bound(steps_.begin(), steps_.end(), t,
                                   [](Time value, const Step& s) { return value < s.at; });
  return static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
}

std::size_t Profile::ensure_breakpoint(Time t) {
  const std::size_t i = step_index(t);
  if (steps_[i].at == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1, {t, steps_[i].free});
  return i + 1;
}

void Profile::coalesce() {
  std::size_t out = 1;
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].free == steps_[out - 1].free) continue;
    steps_[out++] = steps_[i];
  }
  steps_.resize(out);
}

void Profile::add_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::add_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::add_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);  // end marker keeps old free value
  // Validate the whole window before mutating so a failed add leaves the
  // free counts untouched (strong exception safety; stray breakpoints are
  // harmless and coalesce away later).
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free < nodes)
      throw std::logic_error("Profile::add_usage: over-reservation at t=" +
                             std::to_string(steps_[i].at));
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free -= nodes;
  coalesce();
}

void Profile::remove_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::remove_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::remove_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free + nodes > capacity_)
      throw std::logic_error("Profile::remove_usage: exceeds capacity at t=" +
                             std::to_string(steps_[i].at));
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free += nodes;
  coalesce();
}

NodeCount Profile::free_at(Time t) const { return steps_[step_index(t)].free; }

bool Profile::fits_at(Time start, Time duration, NodeCount nodes) const {
  if (start < origin_) return false;
  if (nodes > capacity_) return false;
  if (duration <= 0 || nodes <= 0) return true;
  const Time end = start + duration;
  for (std::size_t i = step_index(start); i < steps_.size() && steps_[i].at < end; ++i) {
    if (steps_[i].free < nodes) return false;
  }
  return true;
}

Time Profile::earliest_fit(Time earliest, Time duration, NodeCount nodes) const {
  if (nodes > capacity_)
    throw std::invalid_argument("Profile::earliest_fit: job wider than machine");
  earliest = std::max(earliest, origin_);
  if (duration <= 0 || nodes <= 0) return earliest;

  std::size_t i = step_index(earliest);
  Time candidate = earliest;
  for (;;) {
    // Advance past steps that cannot host the job's start.
    while (i < steps_.size() && steps_[i].free < nodes) {
      ++i;
      if (i == steps_.size()) return candidate;  // unreachable: last step == capacity
      candidate = steps_[i].at;
    }
    // Check the window [candidate, candidate + duration).
    const Time end = candidate + duration;
    std::size_t j = i;
    bool ok = true;
    while (j < steps_.size() && steps_[j].at < end) {
      if (steps_[j].free < nodes) {
        ok = false;
        break;
      }
      ++j;
    }
    if (ok) return candidate;
    // Restart after the blocking step.
    i = j + 1;
    if (i >= steps_.size()) {
      // The profile tail always returns to full capacity, so the candidate
      // after the last breakpoint is feasible.
      return steps_.back().at;
    }
    candidate = steps_[i].at;
  }
}

void Profile::check_invariants() const {
  if (steps_.empty()) throw std::logic_error("Profile: empty step list");
  if (steps_.front().at != origin_) throw std::logic_error("Profile: first step not at origin");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].free < 0 || steps_[i].free > capacity_)
      throw std::logic_error("Profile: free count out of range");
    if (i > 0 && steps_[i - 1].at >= steps_[i].at)
      throw std::logic_error("Profile: steps not strictly increasing");
  }
  if (steps_.back().free != capacity_)
    throw std::logic_error("Profile: tail must return to full capacity");
}

std::string Profile::debug_string() const {
  std::ostringstream os;
  os << "Profile(cap=" << capacity_ << ")";
  for (const Step& s : steps_) os << " [" << s.at << ":" << s.free << "]";
  return os.str();
}

}  // namespace psched
