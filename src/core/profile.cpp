#include "core/profile.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psched {

namespace {
constexpr int kHintProbes = 2;  ///< forward probes before binary search
}

Profile::Profile(NodeCount capacity, Time origin) : capacity_(capacity), origin_(origin) {
  if (capacity <= 0) throw std::invalid_argument("Profile: capacity must be positive");
  steps_.push_back({origin_, capacity_});
}

void Profile::reset(Time origin) {
  origin_ = origin;
  steps_.clear();
  steps_.push_back({origin_, capacity_});
  hint_ = 0;
  batch_depth_ = 0;
  batch_dirty_ = false;
}

void Profile::advance_origin(Time now) {
  if (now <= origin_) return;
  const std::size_t i = step_index(now);
  if (i > 0) steps_.erase(steps_.begin(), steps_.begin() + static_cast<std::ptrdiff_t>(i));
  steps_.front().at = now;
  origin_ = now;
  hint_ = 0;
}

std::size_t Profile::step_index(Time t) const {
  if (t < origin_) throw std::logic_error("Profile: time before origin");
  const std::size_t n = steps_.size();
  std::size_t i = hint_ < n ? hint_ : n - 1;
  const auto before = [](Time value, const Step& s) { return value < s.at; };
  if (steps_[i].at <= t) {
    // Monotone scans resolve within a few forward probes.
    for (int probe = 0; probe < kHintProbes; ++probe) {
      if (i + 1 >= n || steps_[i + 1].at > t) {
        hint_ = i;
        return i;
      }
      ++i;
    }
    const auto it = std::upper_bound(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                                     steps_.end(), t, before);
    i = static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
  } else {
    const auto it =
        std::upper_bound(steps_.begin(), steps_.begin() + static_cast<std::ptrdiff_t>(i), t, before);
    i = static_cast<std::size_t>(std::distance(steps_.begin(), it)) - 1;
  }
  hint_ = i;
  return i;
}

std::size_t Profile::ensure_breakpoint(Time t) {
  const std::size_t i = step_index(t);
  if (steps_[i].at == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1, {t, steps_[i].free});
  hint_ = i + 1;
  return i + 1;
}

void Profile::coalesce_range(std::size_t lo, std::size_t hi) {
  // The mutation changed free counts in [lo, hi); only the adjacency pairs
  // (i-1, i) for i in [lo, hi] can have become equal.
  if (lo < 1) lo = 1;
  const std::size_t end = std::min(hi + 1, steps_.size());
  if (lo >= end) return;
  std::size_t out = lo;
  for (std::size_t i = lo; i < end; ++i) {
    if (steps_[i].free == steps_[out - 1].free) continue;
    steps_[out++] = steps_[i];
  }
  if (out < end) {
    steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(out),
                 steps_.begin() + static_cast<std::ptrdiff_t>(end));
    hint_ = out - 1;
  }
}

void Profile::coalesce_all() {
  std::size_t out = 1;
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].free == steps_[out - 1].free) continue;
    steps_[out++] = steps_[i];
  }
  steps_.resize(out);
  hint_ = 0;
}

void Profile::begin_batch() { ++batch_depth_; }

void Profile::end_batch() {
  if (batch_depth_ <= 0) throw std::logic_error("Profile::end_batch without begin_batch");
  if (--batch_depth_ == 0 && batch_dirty_) {
    coalesce_all();
    batch_dirty_ = false;
  }
}

void Profile::add_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::add_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::add_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);  // end marker keeps old free value
  // Validate the whole window before mutating so a failed add leaves the
  // free counts untouched (strong exception safety). The breakpoints the
  // validation may have inserted carry unchanged free counts; drop them
  // again so a failed call leaves no structural trace either.
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free < nodes) {
      const Time bad = steps_[i].at;
      if (batch_depth_ == 0)
        coalesce_range(first, last);
      else
        batch_dirty_ = true;  // end_batch sweeps the validation breakpoints
      throw std::logic_error("Profile::add_usage: over-reservation at t=" + std::to_string(bad));
    }
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free -= nodes;
  if (batch_depth_ == 0)
    coalesce_range(first, last);
  else
    batch_dirty_ = true;
}

void Profile::remove_usage(Time from, Time to, NodeCount nodes) {
  if (nodes < 0) throw std::invalid_argument("Profile::remove_usage: negative nodes");
  if (nodes == 0 || from >= to) return;
  if (from < origin_) throw std::logic_error("Profile::remove_usage: interval before origin");
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].free + nodes > capacity_) {
      const Time bad = steps_[i].at;
      if (batch_depth_ == 0)
        coalesce_range(first, last);
      else
        batch_dirty_ = true;  // end_batch sweeps the validation breakpoints
      throw std::logic_error("Profile::remove_usage: exceeds capacity at t=" + std::to_string(bad));
    }
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].free += nodes;
  if (batch_depth_ == 0)
    coalesce_range(first, last);
  else
    batch_dirty_ = true;
}

NodeCount Profile::free_at(Time t) const { return steps_[step_index(t)].free; }

bool Profile::fits_at(Time start, Time duration, NodeCount nodes) const {
  if (start < origin_) return false;
  if (nodes > capacity_) return false;
  if (duration <= 0 || nodes <= 0) return true;
  const Time end = start + duration;
  for (std::size_t i = step_index(start); i < steps_.size() && steps_[i].at < end; ++i) {
    if (steps_[i].free < nodes) return false;
  }
  return true;
}

Time Profile::earliest_fit(Time earliest, Time duration, NodeCount nodes) const {
  if (nodes > capacity_)
    throw std::invalid_argument("Profile::earliest_fit: job wider than machine");
  earliest = std::max(earliest, origin_);
  if (duration <= 0 || nodes <= 0) return earliest;

  // Single forward pass: maintain the start of the current feasible run of
  // steps; the first candidate whose run extends `duration` past it wins.
  // The tail step always has free == capacity >= nodes, so the scan always
  // terminates with a candidate.
  const std::size_t n = steps_.size();
  std::size_t i = step_index(earliest);
  bool open = steps_[i].free >= nodes;  // a feasible window is in progress
  Time candidate = earliest;
  for (;;) {
    if (open && (i + 1 >= n || steps_[i + 1].at >= candidate + duration)) return candidate;
    ++i;
    if (steps_[i].free >= nodes) {
      if (!open) {
        open = true;
        candidate = steps_[i].at;
      }
    } else {
      open = false;
    }
  }
}

void Profile::check_invariants() const {
  if (steps_.empty()) throw std::logic_error("Profile: empty step list");
  if (steps_.front().at != origin_) throw std::logic_error("Profile: first step not at origin");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].free < 0 || steps_[i].free > capacity_)
      throw std::logic_error("Profile: free count out of range");
    if (i > 0 && steps_[i - 1].at >= steps_[i].at)
      throw std::logic_error("Profile: steps not strictly increasing");
  }
  if (steps_.back().free != capacity_)
    throw std::logic_error("Profile: tail must return to full capacity");
}

std::string Profile::debug_string() const {
  std::ostringstream os;
  os << "Profile(cap=" << capacity_ << ")";
  for (const Step& s : steps_) os << " [" << s.at << ":" << s.free << "]";
  return os.str();
}

}  // namespace psched
