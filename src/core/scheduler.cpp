#include "core/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace psched {

const SchedulerContext& Scheduler::ctx() const {
  if (ctx_ == nullptr) throw std::logic_error("Scheduler used before attach()");
  return *ctx_;
}

bool Scheduler::priority_less(const Job& a, const Job& b, PriorityKind kind) const {
  if (kind == PriorityKind::Fairshare) {
    const double ua = ctx().user_usage(a.user);
    const double ub = ctx().user_usage(b.user);
    if (ua != ub) return ua < ub;  // lower decayed usage goes first
  }
  if (a.submit != b.submit) return a.submit < b.submit;
  return a.id < b.id;
}

std::vector<JobId> Scheduler::sorted_by_priority(std::vector<JobId> ids, PriorityKind kind) const {
  std::sort(ids.begin(), ids.end(), [&](JobId x, JobId y) {
    return priority_less(ctx().job(x), ctx().job(y), kind);
  });
  return ids;
}

void Scheduler::add_running_to_profile(Profile& profile) const {
  const Time now = ctx().now();
  for (const RunningView& r : ctx().running()) {
    // A job past its estimated end is assumed to keep running for as long as
    // it has already over-run (at least kOverrunGrace). The growing horizon
    // keeps reservation recomputations to O(log overrun) instead of stepping
    // one second at a time.
    Time end = r.est_end;
    if (end <= now) end = now + std::max<Time>(kOverrunGrace, now - r.est_end);
    profile.add_usage(now, end, r.nodes);
  }
}

}  // namespace psched
