#include "core/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace psched {

const SchedulerContext& Scheduler::ctx() const {
  if (ctx_ == nullptr) throw std::logic_error("Scheduler used before attach()");
  return *ctx_;
}

bool Scheduler::priority_less(const Job& a, const Job& b, PriorityKind kind) const {
  if (kind == PriorityKind::Fairshare) {
    const double ua = ctx().user_usage(a.user);
    const double ub = ctx().user_usage(b.user);
    if (ua != ub) return ua < ub;  // lower decayed usage goes first
  }
  if (a.submit != b.submit) return a.submit < b.submit;
  return a.id < b.id;
}

std::vector<JobId> Scheduler::sorted_by_priority(std::vector<JobId> ids, PriorityKind kind) const {
  // Decorate-sort-undecorate: one context/job lookup per id instead of two
  // virtual calls per comparison. Key order mirrors priority_less exactly.
  struct Key {
    double usage;
    Time submit;
    JobId id;
  };
  std::vector<Key> keys;
  keys.reserve(ids.size());
  for (const JobId id : ids) {
    const Job& job = ctx().job(id);
    keys.push_back({kind == PriorityKind::Fairshare ? ctx().user_usage(job.user) : 0.0,
                    job.submit, id});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.usage != b.usage) return a.usage < b.usage;
    if (a.submit != b.submit) return a.submit < b.submit;
    return a.id < b.id;
  });
  for (std::size_t i = 0; i < keys.size(); ++i) ids[i] = keys[i].id;
  return ids;
}

Time Scheduler::assumed_running_end(const RunningView& r, Time now) {
  // A job past its estimated end is assumed to keep running for as long as
  // it has already over-run (at least kOverrunGrace). The growing horizon
  // keeps reservation recomputations to O(log overrun) instead of stepping
  // one second at a time.
  if (r.est_end > now) return r.est_end;
  return now + std::max<Time>(kOverrunGrace, now - r.est_end);
}

void Scheduler::add_running_to_profile(Profile& profile) const {
  const Time now = ctx().now();
  profile.begin_batch();
  for (const RunningView& r : ctx().running())
    profile.add_usage(now, assumed_running_end(r, now), r.nodes);
  profile.end_batch();
}

Profile& Scheduler::scratch_profile(Time now) {
  const NodeCount capacity = ctx().total_nodes();
  if (!scratch_profile_ || scratch_profile_->capacity() != capacity)
    scratch_profile_.emplace(capacity, now);
  else
    scratch_profile_->reset(now);
  return *scratch_profile_;
}

}  // namespace psched
