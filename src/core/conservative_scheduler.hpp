#pragma once
// Conservative backfilling (paper section 5.3) and conservative backfilling
// with dynamic reservations (section 5.4).
//
// Static mode: every job receives an internal reservation on arrival (the
// earliest slot that delays nobody). At each scheduling event the queue is
// processed in fairshare priority order and each job may *improve* its
// reservation — it never gives one up unless the new slot is strictly
// earlier, so arrival-time reservations are upper bounds on wait time and no
// starvation queue is needed.
//
// Dynamic mode: reservations are not sticky. At every scheduling event all
// reservations are discarded and the whole schedule is rebuilt in fairshare
// priority order, removing the "FCFS feel" of static conservative — a job's
// position tracks its user's current fairshare standing.

#include <optional>
#include <unordered_map>

#include "core/scheduler.hpp"

namespace psched {

struct ConservativeConfig {
  PriorityKind priority = PriorityKind::Fairshare;
  bool dynamic_reservations = false;
};

class ConservativeScheduler final : public Scheduler {
 public:
  explicit ConservativeScheduler(ConservativeConfig config);

  std::string name() const override;
  void on_submit(JobId id) override;
  void on_complete(JobId id) override;
  void collect_starts(std::vector<JobId>& starts) override;
  std::optional<Time> next_wakeup() const override;

  const ConservativeConfig& config() const { return config_; }

  /// Current reservation of a waiting job (kNoTime before its first
  /// scheduling event). Exposed for tests/metrics.
  Time reservation(JobId id) const;

 private:
  /// Rebuild the availability profile and all reservations for "now".
  /// Static mode keeps each stored slot unless an improvement (searched in
  /// priority order) is strictly earlier; dynamic mode replans everything in
  /// priority order.
  void replan(Profile& profile);

  ConservativeConfig config_;
  std::vector<JobId> waiting_;
  std::unordered_map<JobId, Time> reservations_;  // stored starts (kNoTime = new)
  std::optional<Time> wakeup_;
};

}  // namespace psched
