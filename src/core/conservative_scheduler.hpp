#pragma once
// Conservative backfilling (paper section 5.3) and conservative backfilling
// with dynamic reservations (section 5.4).
//
// Static mode: every job receives an internal reservation on arrival (the
// earliest slot that delays nobody). At each scheduling event the queue is
// processed in fairshare priority order and each job may *improve* its
// reservation — it never gives one up unless the new slot is strictly
// earlier, so arrival-time reservations are upper bounds on wait time and no
// starvation queue is needed.
//
// Dynamic mode: reservations are not sticky. At every scheduling event all
// reservations are discarded and the whole schedule is rebuilt in fairshare
// priority order, removing the "FCFS feel" of static conservative — a job's
// position tracks its user's current fairshare standing.
//
// Implementation note — incremental replanning. The observable behavior is
// exactly the naive per-event rebuild described above (the determinism test
// in tests/test_sched_determinism.cpp checks this against a verbatim copy of
// the original algorithm), but the planned-schedule profile is kept alive
// across events and updated in place:
//   * an arrival seats only the new job (the planning prefix is unchanged);
//   * a completion returns the completed job's planned usage and triggers a
//     compression pass, which is skipped once the plan reaches a fixed point
//     (no capacity freed and the previous pass moved nothing — provably a
//     no-op);
//   * dynamic mode reuses the longest priority-order prefix shared with the
//     previous plan and replans only the suffix, falling back to a full
//     rebuild when priorities reshuffle;
//   * a full rebuild also happens whenever a running job over-runs its
//     estimate (the assumed over-run horizon then changes every event).

#include <optional>
#include <unordered_map>

#include "core/scheduler.hpp"

namespace psched {

struct ConservativeConfig {
  PriorityKind priority = PriorityKind::Fairshare;
  bool dynamic_reservations = false;
};

class ConservativeScheduler final : public Scheduler {
 public:
  explicit ConservativeScheduler(ConservativeConfig config);

  std::string name() const override;
  void on_submit(JobId id) override;
  void on_complete(JobId id) override;
  void collect_starts(std::vector<JobId>& starts) override;
  std::optional<Time> next_wakeup() const override;
  /// Copies the whole incremental-planning state — the persistent plan
  /// `Profile` (with its live gap index; Profile's value semantics are
  /// pinned by ProfileDeep.CopyMidDirty*), reservations, pending event
  /// queues and the fixed-point compression flags — so a fork replans
  /// byte-identically to the original from the clone point on.
  std::unique_ptr<Scheduler> clone() const override { return cloned(*this); }

  const ConservativeConfig& config() const { return config_; }

  /// Current reservation of a waiting job (kNoTime before its first
  /// scheduling event). Exposed for tests/metrics.
  Time reservation(JobId id) const;

 private:
  /// Rebuild the plan profile and all reservations from scratch for "now"
  /// (the pre-optimization per-event behavior). Static mode keeps each
  /// stored slot unless an improvement (searched in priority order) is
  /// strictly earlier; dynamic mode replans everything in priority order.
  void full_replan(Time now);

  /// Apply this event's arrivals/completions to the persistent plan without
  /// reseating unaffected reservations. Returns false if the plan cannot be
  /// patched (caller falls back to full_replan).
  bool incremental_replan(Time now);

  /// Seed running-job usage into a freshly reset plan profile; fills
  /// planned_end_.
  void seed_running_usage(Time now);

  /// One compression round: in priority order, each job moves to a strictly
  /// earlier slot if one exists. Updates compress_active_/capacity_freed_.
  void compression_pass(Time now);

  ConservativeConfig config_;
  std::vector<JobId> waiting_;
  std::unordered_map<JobId, Time> reservations_;  // stored starts (kNoTime = new)
  std::optional<Time> wakeup_;

  // --- persistent planning state (incremental replanning) -------------------
  std::optional<Profile> plan_;  ///< running usage + all reservations
  bool plan_valid_ = false;      ///< plan_ mirrors the last event's schedule
  /// Assumed end of each running job's usage inside plan_.
  std::unordered_map<JobId, Time> planned_end_;
  std::vector<JobId> pending_arrivals_;     ///< submitted since last event
  std::vector<JobId> pending_completions_;  ///< completed since last event
  /// A completion freed future capacity since the last compression pass.
  bool capacity_freed_ = false;
  /// The last compression pass moved at least one reservation (so the next
  /// one may cascade further and cannot be skipped).
  bool compress_active_ = false;
  /// Dynamic mode: priority order the current plan was built in.
  std::vector<JobId> last_order_;
  /// Scratch: priority order of waiting_ computed during this event's
  /// replan (compression pass), reusable by the launch loop.
  std::vector<JobId> priority_order_;
  bool order_fresh_ = false;  ///< priority_order_ matches waiting_ right now
};

}  // namespace psched
