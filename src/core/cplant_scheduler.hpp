#pragma once
// The Sandia CPlant production scheduler (paper section 2.1) and its "minor
// change" variants (sections 5.2 / 5.5):
//
//   * no-guarantee backfilling: at every scheduling event the wait queue is
//     processed in fairshare priority order and any job that fits in the
//     currently free nodes is started — no internal reservations;
//   * a secondary FCFS "starvation queue": jobs that have waited longer than
//     `starvation_delay` (24 h in production) move there; its *head* receives
//     an aggressive-backfilling-style reservation, guaranteeing progress;
//   * optional heavy-user bar: jobs of users whose decayed fairshare usage
//     exceeds `heavy_user_factor` x (mean positive usage) are temporarily
//     refused entry into the starvation queue (policy *.fair).
//
// Setting starvation_delay = kNoTime yields pure no-guarantee backfilling
// (used by tests/ablations; production CPlant always had the queue).

#include <deque>
#include <optional>

#include "core/scheduler.hpp"

namespace psched {

struct CplantConfig {
  PriorityKind priority = PriorityKind::Fairshare;
  Time starvation_delay = hours(24);
  bool bar_heavy_users = false;
  double heavy_user_factor = 1.0;
  /// How often to re-test barred jobs for entry when no other event fires.
  Time heavy_recheck_interval = hours(1);
};

class CplantScheduler final : public Scheduler {
 public:
  explicit CplantScheduler(CplantConfig config);

  std::string name() const override;
  void on_submit(JobId id) override;
  void on_complete(JobId id) override;
  void collect_starts(std::vector<JobId>& starts) override;
  std::optional<Time> next_wakeup() const override;
  std::unique_ptr<Scheduler> clone() const override { return cloned(*this); }

  const CplantConfig& config() const { return config_; }
  /// Jobs currently in the starvation queue (FCFS order); exposed for tests.
  const std::deque<JobId>& starvation_queue() const { return starve_; }

 private:
  bool starvation_enabled() const { return config_.starvation_delay != kNoTime; }
  bool user_is_heavy(UserId user) const;
  void promote_starving_jobs();

  CplantConfig config_;
  std::vector<JobId> waiting_;  // main queue (unordered; sorted per decision)
  std::deque<JobId> starve_;    // starvation queue, FCFS by submit
  std::optional<Time> wakeup_;
};

}  // namespace psched
