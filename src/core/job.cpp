#include "core/job.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psched {

std::string validate_job(const Job& job, NodeCount system_size) {
  std::ostringstream problem;
  if (job.nodes <= 0)
    problem << "job " << job.id << ": nodes must be positive, got " << job.nodes;
  else if (system_size > 0 && job.nodes > system_size)
    problem << "job " << job.id << ": nodes " << job.nodes << " exceeds system size " << system_size;
  else if (job.runtime <= 0)
    problem << "job " << job.id << ": runtime must be positive, got " << job.runtime;
  else if (job.wcl <= 0)
    problem << "job " << job.id << ": wall clock limit must be positive, got " << job.wcl;
  else if (job.submit < 0)
    problem << "job " << job.id << ": submit must be non-negative, got " << job.submit;
  else if (job.user < 0)
    problem << "job " << job.id << ": user must be non-negative, got " << job.user;
  return problem.str();
}

const Job& JobSpan::at(std::size_t index) const {
  if (index >= count_)
    throw std::out_of_range("JobSpan::at: index " + std::to_string(index) + " >= size " +
                            std::to_string(count_));
  return data_[index];
}

Workload::Workload(std::vector<Job> jobs_in, NodeCount size)
    : system_size(size),
      storage_(std::make_shared<const std::vector<Job>>(std::move(jobs_in))) {
  jobs = JobSpan(storage_->data(), storage_->size());
}

Workload Workload::truncate(std::size_t count) const {
  if (count > jobs.size())
    throw std::out_of_range("Workload::truncate: count " + std::to_string(count) + " > size " +
                            std::to_string(jobs.size()));
  Workload out = *this;  // shares storage_
  out.jobs = JobSpan(jobs.begin(), count);
  return out;
}

void Workload::validate() const {
  if (system_size <= 0) throw std::invalid_argument("Workload: system_size must be positive");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    if (job.id != static_cast<JobId>(i))
      throw std::invalid_argument("Workload: job id " + std::to_string(job.id) +
                                  " does not match index " + std::to_string(i));
    const std::string problem = validate_job(job, system_size);
    if (!problem.empty()) throw std::invalid_argument("Workload: " + problem);
    if (i > 0 && jobs[i - 1].submit > job.submit)
      throw std::invalid_argument("Workload: jobs not sorted by submit time at index " +
                                  std::to_string(i));
  }
}

double Workload::total_proc_seconds() const {
  double total = 0.0;
  for (const Job& job : jobs) total += job.proc_seconds();
  return total;
}

Time Workload::earliest_submit() const { return jobs.empty() ? kNoTime : jobs.front().submit; }

Time Workload::latest_submit() const { return jobs.empty() ? kNoTime : jobs.back().submit; }

WorkloadBuilder::WorkloadBuilder(const Workload& workload)
    : jobs(workload.jobs.begin(), workload.jobs.end()), system_size(workload.system_size) {}

void WorkloadBuilder::normalize() {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = static_cast<JobId>(i);
}

Workload WorkloadBuilder::build() { return Workload(std::move(jobs), system_size); }

}  // namespace psched
