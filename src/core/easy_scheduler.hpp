#pragma once
// EASY / aggressive backfilling (paper section 1): only the job at the head
// of the priority queue holds a reservation; any other job may leap forward
// if starting it now does not delay that reservation. With PriorityKind::
// Fairshare this is "aggressive backfill over the Sandia fairshare order" —
// the closest reservation-bearing relative of the CPlant production policy.

#include <optional>

#include "core/scheduler.hpp"

namespace psched {

class EasyScheduler final : public Scheduler {
 public:
  explicit EasyScheduler(PriorityKind priority = PriorityKind::Fcfs);

  std::string name() const override;
  void on_submit(JobId id) override;
  void on_complete(JobId id) override;
  void collect_starts(std::vector<JobId>& starts) override;
  std::optional<Time> next_wakeup() const override;
  std::unique_ptr<Scheduler> clone() const override { return cloned(*this); }

 private:
  PriorityKind priority_;
  std::vector<JobId> waiting_;
  std::optional<Time> head_reservation_;  // start time of the head's reservation
};

}  // namespace psched
