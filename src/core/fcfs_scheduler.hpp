#pragma once
// Strict First-Come-First-Serve without backfilling (paper Figure 1): only
// the job at the head of the queue may start; everything else waits even if
// nodes are idle. "Fair" in arrival order but poor utilization — the paper's
// motivating strawman and a useful lower bound in tests.

#include <deque>

#include "core/scheduler.hpp"

namespace psched {

class FcfsScheduler final : public Scheduler {
 public:
  /// `priority` generalizes "first" — Fcfs is the classical scheduler; the
  /// Fairshare variant runs a strict no-backfill queue in fairshare order.
  explicit FcfsScheduler(PriorityKind priority = PriorityKind::Fcfs);

  std::string name() const override;
  void on_submit(JobId id) override;
  void on_complete(JobId id) override;
  void collect_starts(std::vector<JobId>& starts) override;
  std::unique_ptr<Scheduler> clone() const override { return cloned(*this); }

 private:
  PriorityKind priority_;
  std::vector<JobId> waiting_;
};

}  // namespace psched
