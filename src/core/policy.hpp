#pragma once
// PolicyConfig: a declarative description of a complete scheduling policy —
// base scheduler, queue priority, starvation-queue knobs, and the engine-level
// maximum-runtime limit — plus the factory and the paper's named policy
// matrix (section 5.5).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/types.hpp"

namespace psched {

enum class PolicyKind {
  Fcfs,                 ///< strict queue, no backfilling
  Cplant,               ///< no-guarantee backfill + starvation queue
  Easy,                 ///< aggressive backfilling (head reservation)
  Depth,                ///< first-n-jobs reservations (between EASY and cons)
  Conservative,         ///< reservation for every job
  ConservativeDynamic,  ///< conservative, reservations replanned every event
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::Cplant;
  PriorityKind priority = PriorityKind::Fairshare;

  // CPlant-family knobs (ignored by other kinds).
  Time starvation_delay = hours(24);  ///< kNoTime disables the starvation queue
  bool bar_heavy_users = false;
  /// A user is "heavy" when their decayed usage exceeds this multiple of the
  /// mean positive usage. 4x bars only the genuinely dominant users, so the
  /// *.fair policies trim the worst starvation-queue abuse without gutting
  /// the queue (the paper's framing of a minor, mostly-transparent change).
  double heavy_user_factor = 4.0;

  /// Reservation depth for PolicyKind::Depth (ignored by other kinds).
  int reservation_depth = 4;

  /// Engine-level maximum contiguous runtime; kNoTime = unlimited.
  Time max_runtime = kNoTime;

  /// Display name; empty = derived ("cplant24.nomax.all" style).
  std::string name;

  /// The paper's naming scheme: <base><delay>.<max|nomax>.<all|fair> for the
  /// CPlant family, cons[dyn].<max|nomax> for the conservative family.
  std::string display_name() const;

  /// Injective encoding of every field (unlike display_name, which omits
  /// heavy_user_factor and can be overridden by `name`). Two configs have
  /// equal canonical keys iff they describe the same simulation — this is
  /// the ExperimentRunner cache key.
  std::string canonical_key() const;
};

/// Instantiate the scheduler described by `config` (max_runtime is applied by
/// the engine, not the scheduler). Throws std::invalid_argument on nonsense.
std::unique_ptr<Scheduler> make_scheduler(const PolicyConfig& config);

/// The nine named policies of paper section 5.5, in presentation order.
enum class PaperPolicy {
  Cplant24NomaxAll,   // baseline production scheduler
  Cplant72NomaxAll,   // 72 h before starvation-queue entry
  Cplant24NomaxFair,  // heavy users barred from the starvation queue
  Cplant24MaxAll,     // 72 h maximum runtime
  Cplant72MaxFair,    // all three minor changes combined
  ConsNomax,          // conservative backfilling, fairshare order
  ConsMax,            // conservative + 72 h maximum runtime
  ConsdynNomax,       // conservative with dynamic reservations
  ConsdynMax,         // dynamic + 72 h maximum runtime
};

PolicyConfig paper_policy(PaperPolicy policy);

/// Resolve a policy by name: any of the nine paper display names
/// ("cplant24.nomax.all", "consdyn.72max", ...) plus the extra spellings the
/// CLI accepts — "fcfs", "fcfs.fairshare", "easy", "easy.fairshare",
/// "noguarantee", "cons.fcfs", and "depthN" (N >= 1). Returns nullopt for an
/// unknown name. Shared by psched_run and the scenario spec parser so every
/// surface speaks the same vocabulary.
std::optional<PolicyConfig> policy_from_name(const std::string& name);

/// Figures 8-13 compare these five ("minor changes" group).
std::vector<PolicyConfig> minor_change_policies();
/// Figures 14-19 compare all nine.
std::vector<PolicyConfig> all_paper_policies();

}  // namespace psched
