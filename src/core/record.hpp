#pragma once
// Simulation outputs: per-job records, the per-arrival snapshots consumed by
// the fair-start-time engines, and the whole-run result bundle. These are
// plain data, shared between the engine (producer) and the metrics layer
// (consumer).

#include <cstdint>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/types.hpp"

namespace psched {

/// One scheduled job (possibly a runtime-limit segment) and its outcome.
struct JobRecord {
  Job job;
  Time start = kNoTime;
  Time finish = kNoTime;
  bool killed_at_wcl = false;  ///< finish truncated by WCL enforcement

  bool completed() const { return finish != kNoTime; }
  Time wait() const { return start - job.submit; }
  Time turnaround() const { return finish - job.submit; }
  Time executed_runtime() const { return finish - start; }
};

/// A running job as seen at some snapshot instant.
struct SnapshotRunning {
  NodeCount nodes = 0;
  Time remaining = 0;      ///< actual remaining runtime (perfect knowledge)
  Time est_remaining = 0;  ///< WCL-based remaining (the scheduler's knowledge)
};

/// A waiting job as seen at some snapshot instant.
struct SnapshotWaiting {
  JobId id = kInvalidJob;
  NodeCount nodes = 0;
  Time runtime = 0;      ///< actual runtime (perfect knowledge)
  Time wcl = 0;          ///< wall clock limit (the scheduler's knowledge)
  Time submit = 0;
  double priority = 0.0;  ///< fairshare usage of the owner (lower goes first)
};

/// System state captured at one job's arrival: the input of the paper's
/// hybrid FST metric (section 4.1). `waiting` includes the arriving job.
struct ArrivalSnapshot {
  JobId id = kInvalidJob;
  Time at = kNoTime;
  std::vector<SnapshotRunning> running;
  std::vector<SnapshotWaiting> waiting;
};

/// Everything one policy run produces.
struct SimulationResult {
  std::string policy_name;
  NodeCount system_size = 0;

  /// Index == record id. With maximum-runtime limits there are more records
  /// than original jobs (one per segment).
  std::vector<JobRecord> records;

  /// Index == record id; empty when snapshot recording is disabled.
  std::vector<ArrivalSnapshot> snapshots;

  /// segments_of_original[original job id] -> record ids, in segment order.
  std::vector<std::vector<JobId>> segments_of_original;
  std::size_t original_job_count = 0;

  Time first_start = kNoTime;   ///< MinStartTime of Eq. 3
  Time last_finish = kNoTime;   ///< MaxCompletionTime of Eq. 3
  double busy_proc_seconds = 0.0;  ///< integral of running processors
  /// Integral of min(queued demand, idle processors) — Eq. 4 numerator.
  double loc_proc_seconds = 0.0;

  /// Deterministic run-shape counts (events consumed, collect_starts
  /// batches), maintained by the engine for per-cell breakdowns. Not a
  /// metric: never serialized into a results store.
  std::uint64_t events_delivered = 0;
  std::uint64_t scheduler_invocations = 0;

  Time makespan() const {
    return (first_start == kNoTime || last_finish == kNoTime) ? 0 : last_finish - first_start;
  }
};

}  // namespace psched
