#pragma once
// Job model and workload container.
//
// A Job is the 2-D rectangle of the paper's introduction: width = nodes,
// length = the user's wall-clock limit (WCL); `runtime` is what the job
// actually did on the machine. Jobs produced by the 72 h maximum-runtime
// policy (paper section 5.1) carry their original job in `parent`.

#include <string>
#include <vector>

#include "core/types.hpp"

namespace psched {

struct Job {
  JobId id = kInvalidJob;
  UserId user = 0;
  GroupId group = 0;
  Time submit = 0;   ///< arrival time (seconds since epoch)
  Time runtime = 0;  ///< actual runtime; > 0 for a valid job
  Time wcl = 0;      ///< user-estimated runtime / wall clock limit; > 0
  NodeCount nodes = 1;

  // Segment bookkeeping for maximum-runtime splitting (kInvalidJob == not a
  // segment). Segment 0 keeps the original submit time; segment k+1 is
  // submitted when segment k completes (checkpoint/restart semantics).
  JobId parent = kInvalidJob;
  std::int32_t segment = 0;
  std::int32_t segment_count = 1;

  bool is_segment() const { return parent != kInvalidJob; }
  double proc_seconds() const { return static_cast<double>(nodes) * static_cast<double>(runtime); }
};

/// Validation outcome for a single job; empty string means valid.
std::string validate_job(const Job& job, NodeCount system_size);

/// A trace plus the machine it ran on. Invariants (checked by validate()):
/// jobs sorted by submit time, ids equal to vector index, every job valid.
struct Workload {
  std::vector<Job> jobs;
  NodeCount system_size = 0;

  /// Throws std::invalid_argument describing the first violation, if any.
  void validate() const;

  /// Sorts by (submit, id) and renumbers ids to match indices.
  void normalize();

  double total_proc_seconds() const;
  Time earliest_submit() const;  ///< kNoTime when empty
  Time latest_submit() const;    ///< kNoTime when empty
};

}  // namespace psched
