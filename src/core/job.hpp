#pragma once
// Job model and workload container.
//
// A Job is the 2-D rectangle of the paper's introduction: width = nodes,
// length = the user's wall-clock limit (WCL); `runtime` is what the job
// actually did on the machine. Jobs produced by the 72 h maximum-runtime
// policy (paper section 5.1) carry their original job in `parent`.
//
// A Workload is an immutable VIEW over a shared, frozen job array: copying
// one is O(1) (a pointer pair plus a shared_ptr bump) and truncating one is
// a count, not a copy. This is what makes per-arrival engine forks and the
// policy-knowledge FST affordable at archive scale — a thousand forks share
// one job table instead of each memcpying a prefix of it. All mutation
// (ingestion, transforms, normalization) lives on WorkloadBuilder.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace psched {

struct Job {
  JobId id = kInvalidJob;
  UserId user = 0;
  GroupId group = 0;
  Time submit = 0;   ///< arrival time (seconds since epoch)
  Time runtime = 0;  ///< actual runtime; > 0 for a valid job
  Time wcl = 0;      ///< user-estimated runtime / wall clock limit; > 0
  NodeCount nodes = 1;

  // Segment bookkeeping for maximum-runtime splitting (kInvalidJob == not a
  // segment). Segment 0 keeps the original submit time; segment k+1 is
  // submitted when segment k completes (checkpoint/restart semantics).
  JobId parent = kInvalidJob;
  std::int32_t segment = 0;
  std::int32_t segment_count = 1;

  bool is_segment() const { return parent != kInvalidJob; }
  double proc_seconds() const { return static_cast<double>(nodes) * static_cast<double>(runtime); }
};

/// Validation outcome for a single job; empty string means valid.
std::string validate_job(const Job& job, NodeCount system_size);

/// Read-only view over a contiguous run of jobs. Mirrors the subset of the
/// std::vector<Job> read interface the tree uses, so read sites compile
/// unchanged against `Workload::jobs`.
class JobSpan {
 public:
  using value_type = Job;
  using const_iterator = const Job*;

  JobSpan() = default;
  JobSpan(const Job* data, std::size_t count) : data_(data), count_(count) {}

  const Job* data() const { return data_; }
  const Job* begin() const { return data_; }
  const Job* end() const { return data_ + count_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const Job& operator[](std::size_t index) const { return data_[index]; }
  const Job& at(std::size_t index) const;  ///< throws std::out_of_range
  const Job& front() const { return data_[0]; }
  const Job& back() const { return data_[count_ - 1]; }

 private:
  const Job* data_ = nullptr;
  std::size_t count_ = 0;
};

/// A trace plus the machine it ran on. Invariants (checked by validate()):
/// jobs sorted by submit time, ids equal to span index, every job valid.
///
/// Immutable once constructed: the job array is owned by a shared_ptr and
/// `jobs` is a prefix view into it. Build or edit one via WorkloadBuilder.
class Workload {
 public:
  JobSpan jobs;
  NodeCount system_size = 0;

  Workload() = default;

  /// Freezes `jobs_in` as-is. No sorting or renumbering happens here — use
  /// WorkloadBuilder::normalize() first when the invariants aren't already met.
  Workload(std::vector<Job> jobs_in, NodeCount size);

  /// Prefix view of the first `count` jobs sharing this workload's storage:
  /// a count, not a copy. Throws std::out_of_range if count > jobs.size().
  Workload truncate(std::size_t count) const;

  /// Throws std::invalid_argument describing the first violation, if any.
  void validate() const;

  double total_proc_seconds() const;
  Time earliest_submit() const;  ///< kNoTime when empty
  Time latest_submit() const;    ///< kNoTime when empty

 private:
  std::shared_ptr<const std::vector<Job>> storage_;
};

/// Mutable staging area for producing a Workload: ingestion and transforms
/// append/edit `jobs` freely, then build() freezes the array into an
/// immutable shared Workload (moving the vector — the builder is left empty).
struct WorkloadBuilder {
  std::vector<Job> jobs;
  NodeCount system_size = 0;

  WorkloadBuilder() = default;
  WorkloadBuilder(std::vector<Job> jobs_in, NodeCount size)
      : jobs(std::move(jobs_in)), system_size(size) {}
  /// Copies the view's jobs back into mutable storage for editing.
  explicit WorkloadBuilder(const Workload& workload);

  /// Sorts by (submit, id) and renumbers ids to match indices.
  void normalize();

  Workload build();
};

}  // namespace psched
