#pragma once
// Availability profile: the piecewise-constant "free nodes over time"
// timeline that backfilling schedulers pack jobs into (the 2-D chart of the
// paper's Figures 1-2). This is the substrate under EASY reservations, the
// CPlant starvation-queue head reservation, and both conservative schedulers.
//
// Representation: sorted breakpoints (time, free-from-here). The profile
// starts at `origin` with all nodes free and extends to +infinity with the
// free count of the last breakpoint (which is `capacity` once all usage
// intervals end).
//
// Hot-path design (every backfilling scheduler hits this on every event):
//   * Lookups go through a cursor hint: scheduler scans are monotone in
//     time, so step_index() first probes the step found by the previous
//     lookup and its neighbors before falling back to O(log n) binary
//     search. A monotone pass over the timeline costs amortized O(1) per
//     lookup instead of O(log n).
//   * Mutations coalesce only the steps adjacent to the touched window
//     (range-local), not the whole array.
//   * earliest_fit() is a single forward sliding-window pass over the
//     breakpoints: O(k) in the number of breakpoints scanned, where the
//     pre-optimization implementation restarted the window scan after every
//     blocking step (O(k^2) worst case).
//   * A batch/transaction API lets replanners stage many reservations and
//     pay for one normalization pass at commit.
//   * Deep profiles (>= gap_index_threshold() breakpoints) carry a gap
//     index: per-time-bucket (min, max) free aggregates. earliest_fit and
//     fits_at skip whole buckets that cannot contain a window boundary —
//     blocked runs while hunting for a start, feasible runs while extending
//     one — instead of walking a 10k-reservation plan step by step. See
//     "gap index" below.
//
// The pre-optimization implementation is preserved as
// core/reference_profile.hpp; tests/test_core_profile_diff.cpp checks the
// two against each other on randomized operation sequences.
//
// Thread safety: NONE, including for const queries — free_at, fits_at and
// earliest_fit update the mutable cursor hint. A Profile must not be shared
// across threads without external synchronization; give each worker its own
// instance (as the FST engine does with its per-thread scratch).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace psched {

class Profile {
 public:
  Profile(NodeCount capacity, Time origin);

  /// Reset to "everything free from origin". Keeps allocated storage, so a
  /// long-lived Profile member is cheaper than constructing a fresh one per
  /// scheduling event.
  void reset(Time origin);

  /// Move the origin forward to `now`, dropping breakpoints strictly before
  /// it. The profile at times >= now is unchanged. No-op if now <= origin().
  /// Incremental replanners use this to slide a persistent profile along
  /// with simulation time instead of rebuilding it.
  void advance_origin(Time now);

  NodeCount capacity() const { return capacity_; }
  Time origin() const { return origin_; }

  /// Subtract `nodes` free nodes over [from, to). Throws std::logic_error if
  /// this would drive any step negative (over-reservation) or if from < origin.
  /// Strong exception safety: a failed add leaves all free counts untouched
  /// (stray zero-width breakpoints may remain; they are semantically inert).
  void add_usage(Time from, Time to, NodeCount nodes);

  /// Exact inverse of add_usage (returns the nodes to the free pool).
  /// Throws std::logic_error if this would exceed capacity anywhere.
  void remove_usage(Time from, Time to, NodeCount nodes);

  // --- batch / transaction API ----------------------------------------------
  //
  // Between begin_batch() and end_batch(), add_usage/remove_usage skip the
  // per-mutation coalescing pass; end_batch() runs one full normalization.
  // Contract:
  //   * begin/end pairs nest; only the outermost end_batch() normalizes.
  //   * All queries (free_at, fits_at, earliest_fit) remain exact inside a
  //     batch — deferred coalescing only leaves redundant breakpoints with
  //     equal adjacent free counts, never wrong free counts.
  //   * breakpoints() may be larger inside a batch than after end_batch().
  //   * Validation and exception guarantees are identical to unbatched mode.
  void begin_batch();
  void end_batch();

  /// Free nodes at instant t (t >= origin).
  NodeCount free_at(Time t) const;

  /// True iff `nodes` are free throughout [start, start+duration).
  bool fits_at(Time start, Time duration, NodeCount nodes) const;

  /// Earliest start >= earliest such that `nodes` are free for `duration`.
  /// Always succeeds (the profile ends with free nodes <= capacity; callers
  /// must ensure nodes <= capacity, else std::invalid_argument).
  Time earliest_fit(Time earliest, Time duration, NodeCount nodes) const;

  std::size_t breakpoints() const { return steps_.size(); }

  // --- gap index ------------------------------------------------------------
  //
  // Once breakpoints() reaches the threshold, earliest_fit and fits_at route
  // through per-TIME-BUCKET aggregates of the free-count timeline:
  //
  //   * min free over the bucket's time range — exact, used to swallow whole
  //     buckets while a window is open (min >= width: it cannot close here)
  //     and by fits_at's blocker hunt.
  //   * feasible-run times (prefix/suffix/best) per power-of-two width
  //     class — used while hunting for a window start. Composing suffix +
  //     prefix runs across buckets tells the hunt "no window of this
  //     duration can start before bucket K", so the packed prefix of a deep
  //     plan — including feasible POCKETS shorter than the window — is
  //     skipped in O(buckets) instead of O(steps). Runs are kept for widths
  //     2^c <= w, a superset of the true w-runs, so a skip is always safe
  //     and a false positive only costs a stepwise re-scan from the run's
  //     recorded start.
  //
  // Keying the aggregates on time rather than breakpoint position is the
  // other load-bearing decision: replan loops insert/erase breakpoints on
  // every mutation, which shifts every later array position. A
  // position-keyed index (segment tree or blocked array) is invalidated
  // wholesale by each shift, and the rebuild work is anti-correlated with
  // the scan it saves — measured 10x SLOWER than the linear scan on the
  // deep pack loop. Time keying makes a mutation dirty only the buckets it
  // touches (O(1) pending-range bookkeeping), so queries probe clean
  // aggregates; dirty buckets are rebuilt lazily on first probe. A
  // per-query probe-credit scheme stops consulting aggregates when probes
  // don't pay for themselves (short skips), bounding the overhead.
  //
  // Query results are identical with the index on or off (the randomized
  // diff tests force both paths against the reference implementation).
  // The crossover below which the plain scan wins was measured with
  // bench/perf_profile's BM_ProfilePackIndexed/BM_ProfilePackLinear pair —
  // see the gap-index section of ROADMAP.md for the numbers.

  /// Sentinels for set_gap_index_threshold / ThresholdGuard: force the
  /// index on from the first breakpoint, or disable it entirely.
  static constexpr std::size_t kForceIndex = 0;
  static constexpr std::size_t kDisableIndex = static_cast<std::size_t>(-1);

  /// Minimum breakpoints() before queries consult the gap index.
  static std::size_t gap_index_threshold();
  /// Override the crossover (kForceIndex / kDisableIndex for the extremes).
  /// Process-global; meant for benchmarks and tests. Do not call while other
  /// threads are running Profile queries.
  static void set_gap_index_threshold(std::size_t threshold);

  /// Scoped (exception-safe) override of the gap-index crossover, for
  /// benchmarks and tests that compare the indexed and linear paths.
  class ThresholdGuard {
   public:
    explicit ThresholdGuard(std::size_t threshold) : saved_(gap_index_threshold()) {
      set_gap_index_threshold(threshold);
    }
    ~ThresholdGuard() { set_gap_index_threshold(saved_); }
    ThresholdGuard(const ThresholdGuard&) = delete;
    ThresholdGuard& operator=(const ThresholdGuard&) = delete;

   private:
    std::size_t saved_;
  };

  /// Internal consistency: strictly increasing step times starting at
  /// origin, every free count in [0, capacity], and the final step's free
  /// count equal to capacity (usage intervals are finite, so the timeline
  /// always returns to fully free after the last one ends).
  void check_invariants() const;

  std::string debug_string() const;

 private:
  struct Step {
    Time at;         // step applies from this instant
    NodeCount free;  // free nodes in [at, next.at)
  };

  /// Index of the step covering time t (t >= origin). Probes the cursor
  /// hint first; falls back to binary search. Updates the hint.
  std::size_t step_index(Time t) const;
  /// Ensure a breakpoint exists exactly at t; returns its index.
  std::size_t ensure_breakpoint(Time t);
  /// Merge equal-adjacent steps in the window [lo-1, hi] only.
  void coalesce_range(std::size_t lo, std::size_t hi);
  /// Full-array merge of equal-adjacent steps (used by end_batch).
  void coalesce_all();

  // gap index internals -------------------------------------------------------
  /// Feasible-run aggregates of one bucket for one width class: time with
  /// free >= 2^c contiguous from the bucket start (pre), ending at the
  /// bucket end (suf), and the best run anywhere inside (best).
  struct BucketRuns {
    Time pre = 0;
    Time suf = 0;
    Time best = 0;
  };
  bool index_active() const;
  /// Record that steps with times in [lo, hi] changed (values, inserts or
  /// erases). O(1): mutations only widen a pending dirty time range.
  void index_mark(Time lo, Time hi);
  /// (Re)size the bucket table for the current span and materialize the
  /// pending dirty range into per-bucket bits. Call once per indexed query.
  void index_sync() const;
  /// Recompute one bucket's min free; clears its min-stale bit.
  void index_rebuild_min(std::size_t k) const;
  /// Recompute one bucket's runs for one width class; clears its class bit.
  /// Rebuilds are per-class lazy: a mutation marks every aggregate of the
  /// touched buckets stale, but a query only pays to refresh the one class
  /// it actually consults.
  void index_rebuild_runs(std::size_t k, int c) const;
  /// Bucket k's time range holds no instant with free < nodes (skippable
  /// while a window is open / while hunting for a blocker).
  bool bucket_clear(std::size_t k, NodeCount nodes) const;
  /// First index >= l whose step starts before `end` and has free < nodes,
  /// or kIndexNone if no such blocker exists. Skips clear buckets.
  std::size_t index_first_blocked_before(std::size_t l, Time end, NodeCount nodes) const;
  /// First index >= i with steps_[index].at >= t. Galloping search from i:
  /// O(log distance), so short bucket skips cost almost nothing.
  std::size_t gallop_time(std::size_t i, Time t) const;
  Time earliest_fit_indexed(Time earliest, Time duration, NodeCount nodes) const;

  NodeCount capacity_;
  Time origin_;
  std::vector<Step> steps_;
  mutable std::size_t hint_ = 0;  ///< index of the most recently looked-up step
  int batch_depth_ = 0;
  bool batch_dirty_ = false;  ///< a batched mutation deferred its coalesce

  // Gap-index storage. Mutable: const queries rebuild dirty buckets lazily
  // (same model as the cursor hint — see the thread-safety note). Bucket k
  // covers times [bucket_time0_ + (k << bucket_shift_), + one width).
  static constexpr std::size_t kIndexNone = static_cast<std::size_t>(-1);
  static std::size_t gap_index_threshold_;
  mutable std::vector<NodeCount> bucket_min_;      ///< min free over the bucket's range
  mutable std::vector<BucketRuns> bucket_runs_;    ///< [k * classes + c] run aggregates
  /// Per-bucket stale bits: bit c = class-c runs stale, bit 31 = min stale.
  mutable std::vector<std::uint32_t> bucket_dirty_;
  mutable int bucket_classes_ = 0;      ///< width classes (bit_width of capacity)
  mutable int bucket_shift_ = 0;        ///< log2 of the bucket time width
  mutable Time bucket_time0_ = 0;       ///< aligned start time of bucket 0
  mutable bool index_built_ = false;    ///< bucket table exists and matches shift/base
  mutable Time index_dirty_lo_ = 0;     ///< pending dirty time range from mutations;
  mutable Time index_dirty_hi_ = -1;    ///< empty when lo > hi
};

}  // namespace psched
