#pragma once
// Availability profile: the piecewise-constant "free nodes over time"
// timeline that backfilling schedulers pack jobs into (the 2-D chart of the
// paper's Figures 1-2). This is the substrate under EASY reservations, the
// CPlant starvation-queue head reservation, and both conservative schedulers.
//
// Representation: sorted breakpoints (time, free-from-here). The profile
// starts at `origin` with all nodes free and extends to +infinity with the
// free count of the last breakpoint (which is `capacity` once all usage
// intervals end).
//
// Hot-path design (every backfilling scheduler hits this on every event):
//   * Lookups go through a cursor hint: scheduler scans are monotone in
//     time, so step_index() first probes the step found by the previous
//     lookup and its neighbors before falling back to O(log n) binary
//     search. A monotone pass over the timeline costs amortized O(1) per
//     lookup instead of O(log n).
//   * Mutations coalesce only the steps adjacent to the touched window
//     (range-local), not the whole array.
//   * earliest_fit() is a single forward sliding-window pass over the
//     breakpoints: O(k) in the number of breakpoints scanned, where the
//     pre-optimization implementation restarted the window scan after every
//     blocking step (O(k^2) worst case).
//   * A batch/transaction API lets replanners stage many reservations and
//     pay for one normalization pass at commit.
//
// The pre-optimization implementation is preserved as
// core/reference_profile.hpp; tests/test_core_profile_diff.cpp checks the
// two against each other on randomized operation sequences.
//
// Thread safety: NONE, including for const queries — free_at, fits_at and
// earliest_fit update the mutable cursor hint. A Profile must not be shared
// across threads without external synchronization; give each worker its own
// instance (as the FST engine does with its per-thread scratch).

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace psched {

class Profile {
 public:
  Profile(NodeCount capacity, Time origin);

  /// Reset to "everything free from origin". Keeps allocated storage, so a
  /// long-lived Profile member is cheaper than constructing a fresh one per
  /// scheduling event.
  void reset(Time origin);

  /// Move the origin forward to `now`, dropping breakpoints strictly before
  /// it. The profile at times >= now is unchanged. No-op if now <= origin().
  /// Incremental replanners use this to slide a persistent profile along
  /// with simulation time instead of rebuilding it.
  void advance_origin(Time now);

  NodeCount capacity() const { return capacity_; }
  Time origin() const { return origin_; }

  /// Subtract `nodes` free nodes over [from, to). Throws std::logic_error if
  /// this would drive any step negative (over-reservation) or if from < origin.
  /// Strong exception safety: a failed add leaves all free counts untouched
  /// (stray zero-width breakpoints may remain; they are semantically inert).
  void add_usage(Time from, Time to, NodeCount nodes);

  /// Exact inverse of add_usage (returns the nodes to the free pool).
  /// Throws std::logic_error if this would exceed capacity anywhere.
  void remove_usage(Time from, Time to, NodeCount nodes);

  // --- batch / transaction API ----------------------------------------------
  //
  // Between begin_batch() and end_batch(), add_usage/remove_usage skip the
  // per-mutation coalescing pass; end_batch() runs one full normalization.
  // Contract:
  //   * begin/end pairs nest; only the outermost end_batch() normalizes.
  //   * All queries (free_at, fits_at, earliest_fit) remain exact inside a
  //     batch — deferred coalescing only leaves redundant breakpoints with
  //     equal adjacent free counts, never wrong free counts.
  //   * breakpoints() may be larger inside a batch than after end_batch().
  //   * Validation and exception guarantees are identical to unbatched mode.
  void begin_batch();
  void end_batch();

  /// Free nodes at instant t (t >= origin).
  NodeCount free_at(Time t) const;

  /// True iff `nodes` are free throughout [start, start+duration).
  bool fits_at(Time start, Time duration, NodeCount nodes) const;

  /// Earliest start >= earliest such that `nodes` are free for `duration`.
  /// Always succeeds (the profile ends with free nodes <= capacity; callers
  /// must ensure nodes <= capacity, else std::invalid_argument).
  Time earliest_fit(Time earliest, Time duration, NodeCount nodes) const;

  std::size_t breakpoints() const { return steps_.size(); }

  /// Internal consistency: strictly increasing step times starting at
  /// origin, every free count in [0, capacity], and the final step's free
  /// count equal to capacity (usage intervals are finite, so the timeline
  /// always returns to fully free after the last one ends).
  void check_invariants() const;

  std::string debug_string() const;

 private:
  struct Step {
    Time at;         // step applies from this instant
    NodeCount free;  // free nodes in [at, next.at)
  };

  /// Index of the step covering time t (t >= origin). Probes the cursor
  /// hint first; falls back to binary search. Updates the hint.
  std::size_t step_index(Time t) const;
  /// Ensure a breakpoint exists exactly at t; returns its index.
  std::size_t ensure_breakpoint(Time t);
  /// Merge equal-adjacent steps in the window [lo-1, hi] only.
  void coalesce_range(std::size_t lo, std::size_t hi);
  /// Full-array merge of equal-adjacent steps (used by end_batch).
  void coalesce_all();

  NodeCount capacity_;
  Time origin_;
  std::vector<Step> steps_;
  mutable std::size_t hint_ = 0;  ///< index of the most recently looked-up step
  int batch_depth_ = 0;
  bool batch_dirty_ = false;  ///< a batched mutation deferred its coalesce
};

}  // namespace psched
