#pragma once
// Availability profile: the piecewise-constant "free nodes over time"
// timeline that backfilling schedulers pack jobs into (the 2-D chart of the
// paper's Figures 1-2). This is the substrate under EASY reservations, the
// CPlant starvation-queue head reservation, and both conservative schedulers.
//
// Representation: sorted breakpoints (time, free-from-here). The profile
// starts at `origin` with all nodes free and extends to +infinity with the
// free count of the last breakpoint (which is `capacity` once all usage
// intervals end).

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace psched {

class Profile {
 public:
  Profile(NodeCount capacity, Time origin);

  /// Reset to "everything free from origin".
  void reset(Time origin);

  NodeCount capacity() const { return capacity_; }
  Time origin() const { return origin_; }

  /// Subtract `nodes` free nodes over [from, to). Throws std::logic_error if
  /// this would drive any step negative (over-reservation) or if from < origin.
  void add_usage(Time from, Time to, NodeCount nodes);

  /// Exact inverse of add_usage (returns the nodes to the free pool).
  /// Throws std::logic_error if this would exceed capacity anywhere.
  void remove_usage(Time from, Time to, NodeCount nodes);

  /// Free nodes at instant t (t >= origin).
  NodeCount free_at(Time t) const;

  /// True iff `nodes` are free throughout [start, start+duration).
  bool fits_at(Time start, Time duration, NodeCount nodes) const;

  /// Earliest start >= earliest such that `nodes` are free for `duration`.
  /// Always succeeds (the profile ends with free nodes <= capacity; callers
  /// must ensure nodes <= capacity, else std::invalid_argument).
  Time earliest_fit(Time earliest, Time duration, NodeCount nodes) const;

  std::size_t breakpoints() const { return steps_.size(); }

  /// Internal consistency: sorted strictly increasing times, free in
  /// [0, capacity], last step's free == capacity is NOT required (running
  /// jobs may extend forever is not allowed though: usage intervals are
  /// finite so the final step always has free == capacity).
  void check_invariants() const;

  std::string debug_string() const;

 private:
  struct Step {
    Time at;         // step applies from this instant
    NodeCount free;  // free nodes in [at, next.at)
  };

  /// Index of the step covering time t (t >= origin).
  std::size_t step_index(Time t) const;
  /// Ensure a breakpoint exists exactly at t; returns its index.
  std::size_t ensure_breakpoint(Time t);
  /// Merge adjacent steps with equal free counts.
  void coalesce();

  NodeCount capacity_;
  Time origin_;
  std::vector<Step> steps_;
};

}  // namespace psched
