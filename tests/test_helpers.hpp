#pragma once
// Shared fixtures/builders for the test suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "core/job.hpp"
#include "core/policy.hpp"
#include "sim/engine.hpp"

namespace psched::test {

/// Build a job with the common fields; wcl defaults to runtime (perfect
/// estimate) when left at 0.
inline Job make_job(Time submit, Time runtime, NodeCount nodes, UserId user = 0, Time wcl = 0) {
  Job job;
  job.submit = submit;
  job.runtime = runtime;
  job.wcl = wcl > 0 ? wcl : runtime;
  job.nodes = nodes;
  job.user = user;
  job.group = user % 4;
  return job;
}

/// Normalized workload from a job list.
inline Workload make_workload(NodeCount system_size, std::vector<Job> jobs) {
  WorkloadBuilder builder(std::move(jobs), system_size);
  builder.normalize();
  Workload w = builder.build();
  w.validate();
  return w;
}

/// Run one policy on a workload with default engine settings.
inline SimulationResult run_policy(const Workload& workload, PolicyKind kind,
                                   PriorityKind priority = PriorityKind::Fcfs) {
  sim::EngineConfig config;
  config.policy.kind = kind;
  config.policy.priority = priority;
  return sim::simulate(workload, config);
}

/// No record may over-allocate the machine at any instant.
inline void expect_no_overallocation(const SimulationResult& result) {
  // Sweep start/finish events.
  std::vector<std::pair<Time, NodeCount>> deltas;
  for (const JobRecord& r : result.records) {
    deltas.push_back({r.start, r.job.nodes});
    deltas.push_back({r.finish, static_cast<NodeCount>(-r.job.nodes)});
  }
  std::sort(deltas.begin(), deltas.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // releases before allocations at equal time
  });
  NodeCount busy = 0;
  for (const auto& [at, delta] : deltas) {
    busy += delta;
    ASSERT_LE(busy, result.system_size) << "over-allocation at t=" << at;
    ASSERT_GE(busy, 0);
  }
}

/// Every record completed, started no earlier than submitted, ran its runtime.
inline void expect_complete_and_causal(const SimulationResult& result) {
  for (const JobRecord& r : result.records) {
    ASSERT_TRUE(r.completed()) << "record " << r.job.id;
    EXPECT_GE(r.start, r.job.submit) << "record " << r.job.id;
    if (!r.killed_at_wcl) {
      EXPECT_EQ(r.finish - r.start, r.job.runtime) << "record " << r.job.id;
    }
  }
}

}  // namespace psched::test
