#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace psched::util {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  // Sample (N-1) estimator: sum of squared deviations is 32 over 8 values,
  // so s = sqrt(32/7). (The population variant of this classic example
  // would give exactly 2.0 — pinning the ratio pins the estimator choice.)
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(32.0 / 7.0));
}

TEST(Stats, StddevDegenerateSamples) {
  // Fewer than two observations carry no spread information: the N-1
  // estimator is undefined there, and stddev() returns 0 by contract.
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{42.0}), 0.0);
  // Two equal values: well-defined, zero spread.
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{3.0, 3.0}), 0.0);
  // Two values: s = |a - b| / sqrt(2).
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0, 3.0}), std::sqrt(2.0));
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(percentile(empty, 0.5), 0.0);
  const Summary s = summarize(empty);
  EXPECT_EQ(s.count, 0u);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.5);
  EXPECT_THROW(percentile(v, 1.5), std::invalid_argument);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.total, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> ny{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  const std::vector<double> x{1.0, 1.0, 1.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  EXPECT_THROW(pearson(x, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Stats, SpearmanMonotonicNonlinear) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y{1.0, 8.0, 27.0, 64.0, 125.0};  // monotone, nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Stats, AverageRanksHandleTies) {
  const std::vector<double> v{10.0, 20.0, 20.0, 30.0};
  const std::vector<double> r = average_ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(Stats, JainIndexBounds) {
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{1.0, 1.0, 1.0, 1.0}), 1.0);
  // Fully concentrated: index = 1/n.
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{4.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{}), 1.0);
  EXPECT_THROW(jain_fairness_index(std::vector<double>{-1.0}), std::invalid_argument);
}

TEST(Bootstrap, DeterministicGivenSeed) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const BootstrapCi a = bootstrap_mean_ci(v, 500, 0.95, 42);
  const BootstrapCi b = bootstrap_mean_ci(v, 500, 0.95, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  // A different stream gives a (slightly) different band — the seed is live.
  const BootstrapCi c = bootstrap_mean_ci(v, 500, 0.95, 43);
  EXPECT_TRUE(c.lo != a.lo || c.hi != a.hi);
}

TEST(Bootstrap, BandBracketsTheMeanAndStaysInRange) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const BootstrapCi ci = bootstrap_mean_ci(v, 2000, 0.95, 7);
  EXPECT_EQ(ci.count, v.size());
  EXPECT_DOUBLE_EQ(ci.mean, mean(v));
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  // Resampled means can never leave the sample's range.
  EXPECT_GE(ci.lo, 1.0);
  EXPECT_LE(ci.hi, 9.0);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(Bootstrap, HigherConfidenceWidensTheBand) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0};
  const BootstrapCi narrow = bootstrap_mean_ci(v, 2000, 0.5, 11);
  const BootstrapCi wide = bootstrap_mean_ci(v, 2000, 0.99, 11);
  EXPECT_LT(wide.lo, narrow.lo);
  EXPECT_GT(wide.hi, narrow.hi);
}

TEST(Bootstrap, DegenerateInputs) {
  const BootstrapCi empty = bootstrap_mean_ci(std::vector<double>{}, 100, 0.95, 1);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 0.0);
  // One replicate carries no spread information: lo == hi == mean.
  const BootstrapCi single = bootstrap_mean_ci(std::vector<double>{42.0}, 100, 0.95, 1);
  EXPECT_EQ(single.count, 1u);
  EXPECT_DOUBLE_EQ(single.mean, 42.0);
  EXPECT_DOUBLE_EQ(single.lo, 42.0);
  EXPECT_DOUBLE_EQ(single.hi, 42.0);
  // Constant sample: every resample mean is the constant.
  const BootstrapCi constant =
      bootstrap_mean_ci(std::vector<double>{5.0, 5.0, 5.0}, 100, 0.95, 1);
  EXPECT_DOUBLE_EQ(constant.lo, 5.0);
  EXPECT_DOUBLE_EQ(constant.hi, 5.0);
}

TEST(Bootstrap, RejectsNonsenseParameters) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(bootstrap_mean_ci(v, 0, 0.95, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(v, 100, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(v, 100, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace psched::util
