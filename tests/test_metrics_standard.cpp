#include "metrics/standard.hpp"

#include <gtest/gtest.h>

#include "metrics/loc.hpp"
#include "metrics/weekly.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::metrics {
namespace {

using test::make_job;
using test::make_workload;
using test::run_policy;

SimulationResult hand_result() {
  // Two jobs on a 4-node machine, fully deterministic outcomes.
  SimulationResult r;
  r.system_size = 4;
  JobRecord a;
  a.job = make_job(0, 100, 2);
  a.job.id = 0;
  a.start = 0;
  a.finish = 100;
  JobRecord b;
  b.job = make_job(10, 50, 4);
  b.job.id = 1;
  b.start = 100;
  b.finish = 150;
  r.records = {a, b};
  r.first_start = 0;
  r.last_finish = 150;
  r.busy_proc_seconds = 2.0 * 100 + 4.0 * 50;
  // While b waited (10..100), 2 nodes idle and b wanted 4: min(4, 2) = 2.
  r.loc_proc_seconds = 2.0 * 90;
  return r;
}

TEST(StandardMetrics, HandComputedValues) {
  const StandardMetrics m = compute_standard(hand_result());
  EXPECT_EQ(m.job_count, 2u);
  EXPECT_DOUBLE_EQ(m.avg_wait, (0.0 + 90.0) / 2.0);
  EXPECT_DOUBLE_EQ(m.avg_turnaround, (100.0 + 140.0) / 2.0);  // Eq. 1
  EXPECT_EQ(m.makespan, 150);                                 // Eq. 3
  EXPECT_DOUBLE_EQ(m.utilization, 400.0 / (150.0 * 4.0));     // Eq. 2
  EXPECT_DOUBLE_EQ(m.loss_of_capacity, 180.0 / (150.0 * 4.0));  // Eq. 4
  EXPECT_DOUBLE_EQ(m.max_wait, 90.0);
}

TEST(StandardMetrics, BoundedSlowdown) {
  const StandardMetrics m = compute_standard(hand_result());
  // a: TAT 100, runtime 100 -> 1. b: TAT 140, runtime 50 -> 2.8.
  EXPECT_DOUBLE_EQ(m.avg_bounded_slowdown, (1.0 + 2.8) / 2.0);
}

TEST(StandardMetrics, WidthBreakdowns) {
  const StandardMetrics m = compute_standard(hand_result());
  EXPECT_EQ(m.jobs_by_width[1], 1u);  // the 2-node job
  EXPECT_EQ(m.jobs_by_width[2], 1u);  // the 4-node job
  EXPECT_DOUBLE_EQ(m.avg_turnaround_by_width[1], 100.0);
  EXPECT_DOUBLE_EQ(m.avg_turnaround_by_width[2], 140.0);
  EXPECT_DOUBLE_EQ(m.avg_turnaround_by_width[0], 0.0);
}

TEST(StandardMetrics, IncompleteRecordThrows) {
  SimulationResult r = hand_result();
  r.records[1].finish = kNoTime;
  EXPECT_THROW(compute_standard(r), std::invalid_argument);
}

TEST(StandardMetrics, EmptyResult) {
  const StandardMetrics m = compute_standard(SimulationResult{});
  EXPECT_EQ(m.job_count, 0u);
  EXPECT_DOUBLE_EQ(m.utilization, 0.0);
}

TEST(Loc, EngineIntegralMatchesRecordSweep) {
  const Workload w = psched::workload::generate_small_workload(17, 250, 48, days(6));
  for (const PolicyKind kind : {PolicyKind::Fcfs, PolicyKind::Easy, PolicyKind::Cplant,
                                PolicyKind::Conservative, PolicyKind::ConservativeDynamic}) {
    const SimulationResult r = run_policy(w, kind);
    EXPECT_NEAR(recompute_loc_integral(r), r.loc_proc_seconds, 1e-6)
        << "policy kind " << static_cast<int>(kind);
    EXPECT_NEAR(recompute_busy_integral(r), r.busy_proc_seconds, 1e-6);
  }
}

TEST(Loc, WorkConservingScheduleHasZeroLoc) {
  // Jobs that always fit immediately: the queue is never non-empty while
  // nodes are idle.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 8),
                                          make_job(200, 100, 8),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  EXPECT_DOUBLE_EQ(r.loc_proc_seconds, 0.0);
  EXPECT_DOUBLE_EQ(loss_of_capacity(r), 0.0);
}

TEST(Loc, FcfsBlockingCreatesLoc) {
  // The classic FCFS pathology: head doesn't fit, capacity idles.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),
                                          make_job(1, 100, 4),  // blocks with 2 idle
                                          make_job(2, 50, 2),   // could run but FCFS forbids
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  EXPECT_GT(r.loc_proc_seconds, 0.0);
  const double loc = loss_of_capacity(r);
  EXPECT_GT(loc, 0.0);
  EXPECT_LT(loc, 1.0);
}

TEST(Weekly, SeriesSumsMatchTotals) {
  const Workload w = psched::workload::generate_small_workload(19, 150, 32, days(20));
  const SimulationResult r = run_policy(w, PolicyKind::Easy);
  const WeeklySeries series = weekly_series(r);
  double offered = 0.0, used = 0.0;
  for (const double v : series.offered_load) offered += v;
  for (const double v : series.utilization) used += v;
  const double weekly_capacity = 32.0 * static_cast<double>(util::kSecondsPerWeek);
  EXPECT_NEAR(offered * weekly_capacity, r.busy_proc_seconds, 1.0);
  EXPECT_NEAR(used * weekly_capacity, r.busy_proc_seconds, 1.0);
}

TEST(Weekly, UtilizationNeverExceedsOne) {
  const Workload w = psched::workload::generate_small_workload(29, 400, 16, days(14));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant);
  const WeeklySeries series = weekly_series(r);
  for (std::size_t i = 0; i + 1 < series.utilization.size(); ++i)
    EXPECT_LE(series.utilization[i], 1.0 + 1e-9) << "week " << i;
}

}  // namespace
}  // namespace psched::metrics
