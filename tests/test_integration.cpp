// Cross-module integration tests: hand-built scenarios exercising the whole
// stack (generator -> engine -> metrics) plus directional checks of the
// paper's headline findings on a scaled-down synthetic Ross trace.

#include <gtest/gtest.h>

#include "metrics/fst.hpp"
#include "metrics/loc.hpp"
#include "metrics/report.hpp"
#include "sim/experiment.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched {
namespace {

using test::make_job;
using test::make_workload;

// One shared quarter-scale trace: heavy enough for contention, fast to run.
const Workload& quarter_trace() {
  static const Workload trace = [] {
    workload::GeneratorConfig config;
    config.count_scale = 0.25;
    config.span = weeks(8);
    return workload::generate_ross_workload(config);
  }();
  return trace;
}

sim::ExperimentRunner& shared_runner() {
  static sim::ExperimentRunner runner(quarter_trace());
  return runner;
}

TEST(Integration, AllNinePoliciesCompleteEveryJob) {
  for (const PolicyConfig& policy : all_paper_policies()) {
    const sim::ExperimentResult& r = shared_runner().run(policy);
    test::expect_complete_and_causal(r.simulation);
    test::expect_no_overallocation(r.simulation);
  }
}

TEST(Integration, WorkIsConservedAcrossPolicies) {
  const double expected = quarter_trace().total_proc_seconds();
  for (const PolicyConfig& policy : all_paper_policies()) {
    const sim::ExperimentResult& r = shared_runner().run(policy);
    double total = 0.0;
    for (const JobRecord& rec : r.simulation.records)
      total += static_cast<double>(rec.job.nodes) * static_cast<double>(rec.executed_runtime());
    EXPECT_NEAR(total, expected, 1.0) << policy.display_name();
    EXPECT_NEAR(r.simulation.busy_proc_seconds, expected, 1.0) << policy.display_name();
  }
}

TEST(Integration, LocEngineMatchesSweepOnRossTrace) {
  const sim::ExperimentResult& r = shared_runner().run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  EXPECT_NEAR(metrics::recompute_loc_integral(r.simulation), r.simulation.loc_proc_seconds, 1e-3);
}

TEST(Integration, BackfillingBeatsStrictFcfs) {
  // The motivation of the whole field: FCFS wastes capacity.
  PolicyConfig fcfs;
  fcfs.kind = PolicyKind::Fcfs;
  fcfs.priority = PriorityKind::Fcfs;
  PolicyConfig easy;
  easy.kind = PolicyKind::Easy;
  easy.priority = PriorityKind::Fcfs;
  const auto& r_fcfs = shared_runner().run(fcfs);
  const auto& r_easy = shared_runner().run(easy);
  EXPECT_LT(r_easy.report.standard.avg_turnaround, r_fcfs.report.standard.avg_turnaround);
  EXPECT_LT(r_easy.report.standard.avg_wait, r_fcfs.report.standard.avg_wait);
  EXPECT_LE(r_easy.report.standard.makespan, r_fcfs.report.standard.makespan);
}

TEST(Integration, MaxRuntimeLimitsImproveLossOfCapacity) {
  // Paper section 6.1: the 72 h limit improves LOC and turnaround.
  const auto& base = shared_runner().run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  const auto& limited = shared_runner().run(paper_policy(PaperPolicy::Cplant24MaxAll));
  EXPECT_LT(limited.report.standard.loss_of_capacity, base.report.standard.loss_of_capacity);
}

TEST(Integration, ConservativeWithLimitsImprovesFairnessOnBothAxes) {
  // Paper section 6.2: cons.72max is the only policy markedly better on both
  // percent-unfair and average miss time.
  const auto& base = shared_runner().run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  const auto& cons72 = shared_runner().run(paper_policy(PaperPolicy::ConsMax));
  EXPECT_LT(cons72.report.fairness.percent_unfair, base.report.fairness.percent_unfair);
  EXPECT_LT(cons72.report.fairness.avg_miss_all, base.report.fairness.avg_miss_all);
}

TEST(Integration, ConsdynHasFewestUnfairJobs) {
  // Paper Figure 14. On the quarter-scale trace the two other very-low-count
  // policies (cplant*.fair, consdyn.72max) are within noise of consdyn, so
  // the assertion covers the robust core of the claim: consdyn beats the
  // baseline and every static policy.
  const auto& consdyn = shared_runner().run(paper_policy(PaperPolicy::ConsdynNomax));
  for (const PaperPolicy policy :
       {PaperPolicy::Cplant24NomaxAll, PaperPolicy::Cplant72NomaxAll, PaperPolicy::Cplant24MaxAll,
        PaperPolicy::ConsNomax, PaperPolicy::ConsMax}) {
    const auto& other = shared_runner().run(paper_policy(policy));
    EXPECT_LE(consdyn.report.fairness.percent_unfair,
              other.report.fairness.percent_unfair + 1e-12)
        << paper_policy(policy).display_name();
  }
}

TEST(Integration, StarvationDelayIncreasesMissOfStarvedJobs) {
  // Paper Figure 9/10: delaying starvation-queue entry hurts the jobs that
  // need it (higher per-unfair-job miss), even as counts drop.
  const auto& d24 = shared_runner().run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  const auto& d72 = shared_runner().run(paper_policy(PaperPolicy::Cplant72NomaxAll));
  EXPECT_LE(d72.report.fairness.percent_unfair, d24.report.fairness.percent_unfair + 1e-12);
}

TEST(Integration, ReportTablesRenderForAllPolicies) {
  std::vector<metrics::PolicyReport> reports;
  for (const PolicyConfig& policy : minor_change_policies())
    reports.push_back(shared_runner().run(policy).report);
  const std::string fairness = metrics::fairness_summary_table(reports).str();
  const std::string perf = metrics::performance_summary_table(reports).str();
  const std::string miss = metrics::miss_by_width_table(reports).str();
  const std::string tat = metrics::turnaround_by_width_table(reports).str();
  for (const auto* table : {&fairness, &perf, &miss, &tat}) {
    EXPECT_NE(table->find("cplant24.nomax.all"), std::string::npos);
    EXPECT_GT(table->size(), 100u);
  }
  EXPECT_NE(miss.find("513+"), std::string::npos);
}

TEST(Integration, DeterministicEndToEnd) {
  // Same seed, same policy -> byte-identical outcomes (runs in a process
  // that already used the thread pool, so this also guards against
  // scheduling-order nondeterminism).
  workload::GeneratorConfig config;
  config.count_scale = 0.05;
  const Workload w1 = workload::generate_ross_workload(config);
  const Workload w2 = workload::generate_ross_workload(config);
  sim::EngineConfig engine;
  engine.policy = paper_policy(PaperPolicy::ConsNomax);
  const SimulationResult r1 = sim::simulate(w1, engine);
  const SimulationResult r2 = sim::simulate(w2, engine);
  ASSERT_EQ(r1.records.size(), r2.records.size());
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    EXPECT_EQ(r1.records[i].start, r2.records[i].start);
    EXPECT_EQ(r1.records[i].finish, r2.records[i].finish);
  }
}

TEST(Integration, SegmentAccountingOnRossTrace) {
  const auto& limited = shared_runner().run(paper_policy(PaperPolicy::Cplant24MaxAll));
  const SimulationResult& sim = limited.simulation;
  EXPECT_GT(sim.records.size(), sim.original_job_count);
  std::size_t total_segments = 0;
  for (const auto& segments : sim.segments_of_original) {
    ASSERT_FALSE(segments.empty());
    total_segments += segments.size();
    // Segment runtimes respect the limit.
    for (const JobId id : segments)
      EXPECT_LE(sim.records[static_cast<std::size_t>(id)].job.runtime, hours(72));
  }
  EXPECT_EQ(total_segments, sim.records.size());
}

}  // namespace
}  // namespace psched
