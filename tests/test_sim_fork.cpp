// Forkable-engine coverage: the forked policy-knowledge FST must be
// byte-identical to the preserved naive re-simulation (the behavioral
// oracle) for every policy, every WCL enforcement mode and several seeds;
// serial and parallel fork draining must agree; and the fork API must
// enforce its preconditions. The PolicyFstFork suite is part of
// tools/run_tsan.sh's concurrency set (parallel draining races would
// surface here).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/policy_fst.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::sim {
namespace {

/// The nine named policies with the maximum-runtime limit cleared: the
/// policy FST is defined only for unsegmented runs, so the *max variants are
/// exercised with the same base scheduler minus the limit. This still covers
/// every scheduler class (cplant x3 knob combinations, conservative static +
/// dynamic) — clone() fidelity is what the equality pins.
std::vector<PolicyConfig> nine_policies_nomax() {
  std::vector<PolicyConfig> policies = all_paper_policies();
  for (PolicyConfig& policy : policies) {
    policy.name = policy.display_name();  // keep the paper name for messages
    policy.max_runtime = kNoTime;
  }
  return policies;
}

/// Every 3rd job underestimates its runtime (wcl = runtime / 2), so
/// overrun-handling — the growing assumed-end horizon, conservative's
/// forced full replans, WCL kills when enforced — is live in every run.
Workload with_underestimates(const Workload& workload) {
  WorkloadBuilder edit(workload);
  for (std::size_t i = 0; i < edit.jobs.size(); i += 3) {
    Job& job = edit.jobs[i];
    job.wcl = std::max<Time>(1, job.runtime / 2);
  }
  Workload out = edit.build();
  out.validate();
  return out;
}

TEST(PolicyFstFork, ByteIdenticalToNaiveForAllNinePolicies) {
  const PolicyFstOptions serial{.parallel = false};
  for (const std::uint64_t seed : {3ull, 17ull}) {
    const Workload w = workload::generate_small_workload(seed, 70, 64, days(2));
    for (const PolicyConfig& policy : nine_policies_nomax()) {
      EngineConfig config;
      config.policy = policy;
      const std::vector<Time> naive = policy_no_later_arrivals_fst_naive(w, config, serial);
      const std::vector<Time> forked = policy_no_later_arrivals_fst(w, config, serial);
      EXPECT_EQ(naive, forked) << policy.display_name() << " seed " << seed;
    }
  }
}

TEST(PolicyFstFork, ByteIdenticalAcrossWclEnforcementModes) {
  const PolicyFstOptions serial{.parallel = false};
  const Workload w =
      with_underestimates(workload::generate_small_workload(11, 80, 64, days(2)));
  for (const PolicyKind kind :
       {PolicyKind::Cplant, PolicyKind::Easy, PolicyKind::Conservative}) {
    for (const WclEnforcement mode :
         {WclEnforcement::Never, WclEnforcement::KillIfNeeded, WclEnforcement::Always}) {
      EngineConfig config;
      config.policy.kind = kind;
      config.wcl_enforcement = mode;
      const std::vector<Time> naive = policy_no_later_arrivals_fst_naive(w, config, serial);
      const std::vector<Time> forked = policy_no_later_arrivals_fst(w, config, serial);
      EXPECT_EQ(naive, forked) << "kind " << static_cast<int>(kind) << " mode "
                               << static_cast<int>(mode);
    }
  }
}

// Forks are independent, so draining them on the pool must be untraceably
// different from draining them inline (one integer write per fork, each to
// its own slot). Large enough to roll over several fork batches.
TEST(PolicyFstFork, ParallelDrainMatchesSerialDrain) {
  const Workload w =
      with_underestimates(workload::generate_small_workload(29, 300, 128, days(4)));
  for (const PolicyKind kind : {PolicyKind::Cplant, PolicyKind::ConservativeDynamic}) {
    EngineConfig config;
    config.policy.kind = kind;
    config.wcl_enforcement = WclEnforcement::KillIfNeeded;
    EXPECT_EQ(policy_no_later_arrivals_fst(w, config, {.parallel = false}),
              policy_no_later_arrivals_fst(w, config, {.parallel = true}))
        << "kind " << static_cast<int>(kind);
  }
}

// The max_runtime precondition applies to the oracle exactly like the forked
// path (same message, both options paths).
TEST(PolicyFstFork, NaivePreconditionThrowsUnchanged) {
  const Workload w = workload::generate_small_workload(5, 20, 16, days(1));
  EngineConfig config;
  config.policy.max_runtime = hours(72);
  EXPECT_THROW(policy_no_later_arrivals_fst_naive(w, config), std::invalid_argument);
  EXPECT_THROW(policy_no_later_arrivals_fst_naive(w, config, {.parallel = false}),
               std::invalid_argument);
  try {
    policy_no_later_arrivals_fst_naive(w, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("max_runtime"), std::string::npos);
  }
}

/// Minimal greedy scheduler that does NOT override clone(): forking an
/// engine that runs it must fail loudly, not silently share state.
class NoCloneGreedy final : public Scheduler {
 public:
  std::string name() const override { return "no-clone-greedy"; }
  void on_submit(JobId id) override { waiting_.push_back(id); }
  void on_complete(JobId) override {}
  void collect_starts(std::vector<JobId>& starts) override {
    NodeCount free = ctx().free_nodes();
    std::vector<JobId> keep;
    for (const JobId id : waiting_) {
      if (ctx().job(id).nodes <= free) {
        starts.push_back(id);
        free -= ctx().job(id).nodes;
      } else {
        keep.push_back(id);
      }
    }
    waiting_ = std::move(keep);
  }

 private:
  std::vector<JobId> waiting_;
};

TEST(PolicyFstFork, ForkRequiresCloneCapableScheduler) {
  const Workload w = workload::generate_small_workload(7, 10, 16, days(1));
  EngineConfig config;
  SimulationEngine engine(w, config, std::make_unique<NoCloneGreedy>());
  EXPECT_THROW(
      engine.run_with_arrival_hook([&](JobId id) { engine.fork_for_arrival(id); }),
      std::logic_error);
}

TEST(PolicyFstFork, ForkRejectsRuntimeLimitedEngines) {
  const Workload w = workload::generate_small_workload(7, 10, 16, days(1));
  EngineConfig config;
  config.policy.max_runtime = hours(1);
  SimulationEngine engine(w, config);
  EXPECT_THROW(
      engine.run_with_arrival_hook([&](JobId id) { engine.fork_for_arrival(id); }),
      std::logic_error);
}

// Forked engines trim their per-record bookkeeping to the fork's universe
// and still produce the exact start the naive truncated run produces — the
// state-equivalence argument checked at the engine level, one fork at a
// time, including a mid-run fork whose target starts much later.
TEST(PolicyFstFork, SingleForkMatchesTruncatedSimulation) {
  const Workload w = workload::generate_small_workload(13, 40, 32, days(1));
  EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;
  config.record_snapshots = false;

  for (const JobId target : {JobId{0}, JobId{17}, JobId{39}}) {
    const Workload truncated = w.truncate(static_cast<std::size_t>(target) + 1);
    const SimulationResult oracle = simulate(truncated, config);

    SimulationEngine master(w, config);
    Time forked_start = kNoTime;
    master.run_with_arrival_hook([&](JobId id) {
      if (id == target) forked_start = master.fork_for_arrival(id)->run_until_started(id);
    });
    EXPECT_EQ(forked_start, oracle.records.at(static_cast<std::size_t>(target)).start)
        << "target " << target;
  }
}

}  // namespace
}  // namespace psched::sim
