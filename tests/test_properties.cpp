// Property-based sweeps: global invariants checked across the full policy
// matrix x random workload seeds (parameterized gtest).

#include <gtest/gtest.h>

#include "metrics/fst.hpp"
#include "metrics/loc.hpp"
#include "metrics/standard.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace psched {
namespace {

struct PropertyCase {
  PolicyKind kind;
  PriorityKind priority;
  std::uint64_t seed;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << c.label << "_seed" << c.seed;
}

class PolicyProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static SimulationResult run_case(const PropertyCase& c) {
    const Workload w = workload::generate_small_workload(c.seed, 220, 48, days(5));
    sim::EngineConfig config;
    config.policy.kind = c.kind;
    config.policy.priority = c.priority;
    return sim::simulate(w, config);
  }
};

TEST_P(PolicyProperties, AllJobsCompleteExactlyOnce) {
  const SimulationResult r = run_case(GetParam());
  EXPECT_EQ(r.records.size(), 220u);
  test::expect_complete_and_causal(r);
}

TEST_P(PolicyProperties, MachineNeverOverallocated) {
  const SimulationResult r = run_case(GetParam());
  test::expect_no_overallocation(r);
}

TEST_P(PolicyProperties, MetricsWithinPhysicalBounds) {
  const SimulationResult r = run_case(GetParam());
  const metrics::StandardMetrics m = metrics::compute_standard(r);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
  EXPECT_GE(m.loss_of_capacity, 0.0);
  EXPECT_LE(m.loss_of_capacity, 1.0);
  EXPECT_GE(m.avg_wait, 0.0);
  EXPECT_GE(m.avg_turnaround, m.avg_wait);
  EXPECT_GE(m.avg_bounded_slowdown, 1.0);
}

TEST_P(PolicyProperties, LocIntegralMatchesIndependentSweep) {
  const SimulationResult r = run_case(GetParam());
  EXPECT_NEAR(metrics::recompute_loc_integral(r), r.loc_proc_seconds, 1e-6);
  EXPECT_NEAR(metrics::recompute_busy_integral(r), r.busy_proc_seconds, 1e-6);
}

TEST_P(PolicyProperties, FstNeverBeforeSubmit) {
  const SimulationResult r = run_case(GetParam());
  metrics::FstOptions options;
  options.knowledge = metrics::FstKnowledge::Perfect;
  const metrics::FstResult f = metrics::hybrid_fairshare_fst(r, options);
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    EXPECT_GE(f.fair_start[i], r.records[i].job.submit);
    EXPECT_GE(f.miss[i], 0);
  }
}

TEST_P(PolicyProperties, SnapshotWaitingContainsSelf) {
  const SimulationResult r = run_case(GetParam());
  for (const ArrivalSnapshot& snapshot : r.snapshots) {
    bool found = false;
    NodeCount running_total = 0;
    for (const SnapshotWaiting& w : snapshot.waiting)
      if (w.id == snapshot.id) found = true;
    for (const SnapshotRunning& run : snapshot.running) running_total += run.nodes;
    EXPECT_TRUE(found) << "snapshot " << snapshot.id;
    EXPECT_LE(running_total, r.system_size);
  }
}

constexpr PropertyCase kCases[] = {
    {PolicyKind::Fcfs, PriorityKind::Fcfs, 101, "fcfs"},
    {PolicyKind::Fcfs, PriorityKind::Fcfs, 202, "fcfs"},
    {PolicyKind::Easy, PriorityKind::Fcfs, 101, "easy"},
    {PolicyKind::Easy, PriorityKind::Fairshare, 202, "easy_fs"},
    {PolicyKind::Cplant, PriorityKind::Fairshare, 101, "cplant"},
    {PolicyKind::Cplant, PriorityKind::Fairshare, 202, "cplant"},
    {PolicyKind::Cplant, PriorityKind::Fairshare, 303, "cplant"},
    {PolicyKind::Conservative, PriorityKind::Fcfs, 101, "cons_fcfs"},
    {PolicyKind::Conservative, PriorityKind::Fairshare, 202, "cons_fs"},
    {PolicyKind::Conservative, PriorityKind::Fairshare, 303, "cons_fs"},
    {PolicyKind::ConservativeDynamic, PriorityKind::Fairshare, 101, "consdyn"},
    {PolicyKind::ConservativeDynamic, PriorityKind::Fairshare, 202, "consdyn"},
    {PolicyKind::Depth, PriorityKind::Fairshare, 101, "depth"},
    {PolicyKind::Depth, PriorityKind::Fcfs, 202, "depth_fcfs"},
};

INSTANTIATE_TEST_SUITE_P(PolicyMatrix, PolicyProperties, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
                           return std::string(param_info.param.label) + "_seed" +
                                  std::to_string(param_info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Cross-policy dominance properties on a shared workload.

class SchedulingDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulingDominance, EasyNeverWorseThanFcfsOnMakespan) {
  const Workload w = workload::generate_small_workload(GetParam(), 200, 32, days(4));
  const SimulationResult fcfs = test::run_policy(w, PolicyKind::Fcfs);
  const SimulationResult easy = test::run_policy(w, PolicyKind::Easy);
  // Backfilling can only tighten the packing of the same job set under FCFS
  // priority with a single head reservation.
  EXPECT_LE(easy.makespan(), fcfs.makespan() + 1);
}

TEST_P(SchedulingDominance, ConservativeRespectsArrivalGuarantee) {
  // Static conservative: a job's final start is never later than the very
  // first reservation it could have been given (machine drained of all
  // earlier WCL usage) -- checked via the no-later-than-WCL-profile bound:
  // start <= submit + sum of all earlier jobs' WCL (a loose but sound bound).
  const Workload w = workload::generate_small_workload(GetParam() + 7, 150, 32, days(4));
  const SimulationResult r = test::run_policy(w, PolicyKind::Conservative);
  Time wcl_prefix = 0;
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    wcl_prefix += r.records[i].job.wcl;
    EXPECT_LE(r.records[i].start, r.records[i].job.submit + wcl_prefix);
  }
}

TEST_P(SchedulingDominance, WorkConservationOfNoGuarantee) {
  // Pure no-guarantee backfilling is work-conserving at queue granularity:
  // whenever a job waits, either the machine cannot hold it right then or
  // it just arrived at this instant. We verify via LOC: a narrow job (1
  // node) must never wait while a node is idle, so LOC contributed by
  // 1-node-only queues is zero. Approximate check: simulate a 1-node-only
  // workload and expect LOC == 0.
  std::vector<Job> jobs;
  util::Rng rng(GetParam());
  for (int i = 0; i < 120; ++i)
    jobs.push_back(test::make_job(rng.uniform_int(0, days(1)), rng.uniform_int(60, hours(3)), 1,
                                  static_cast<UserId>(rng.uniform_int(0, 5))));
  const Workload w = test::make_workload(8, std::move(jobs));
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;
  config.policy.starvation_delay = kNoTime;
  const SimulationResult r = sim::simulate(w, config);
  EXPECT_DOUBLE_EQ(r.loc_proc_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingDominance, ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Fairshare decay sweep: priorities always rank a heavier user below a
// lighter one immediately after a boundary, for any decay factor.

class DecaySweep : public ::testing::TestWithParam<double> {};

TEST_P(DecaySweep, HeavierUserRanksLower) {
  FairshareTracker t(GetParam(), days(1), 0, FairshareUpdate::AtDecayBoundary);
  t.on_job_start(0, 8);
  t.on_job_start(1, 2);
  t.advance(days(1));
  EXPECT_GT(t.usage(0), t.usage(1));
  t.on_job_stop(0, 8);
  t.on_job_stop(1, 2);
  // Relative order persists through pure decay.
  t.advance(days(5));
  EXPECT_GT(t.usage(0), t.usage(1));
}

INSTANTIATE_TEST_SUITE_P(Factors, DecaySweep, ::testing::Values(0.25, 0.5, 0.9, 0.99, 1.0));

}  // namespace
}  // namespace psched
