#include "util/time_format.hpp"

#include <gtest/gtest.h>

namespace psched::util {
namespace {

TEST(TimeUnits, Constants) {
  EXPECT_EQ(minutes(2), 120);
  EXPECT_EQ(hours(2), 7200);
  EXPECT_EQ(days(1), 86400);
  EXPECT_EQ(weeks(1), 604800);
}

TEST(FloorDiv, NegativeNumerators) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-4, 2), -2);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(DayWeekIndex, Boundaries) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(86399), 0);
  EXPECT_EQ(day_index(86400), 1);
  EXPECT_EQ(week_index(604799), 0);
  EXPECT_EQ(week_index(604800), 1);
  EXPECT_EQ(day_index(-1), -1);
}

TEST(FormatHms, Rendering) {
  EXPECT_EQ(format_hms(0), "00:00:00");
  EXPECT_EQ(format_hms(3661), "01:01:01");
  EXPECT_EQ(format_hms(90061), "1d 01:01:01");
  EXPECT_EQ(format_hms(-60), "-00:01:00");
}

}  // namespace
}  // namespace psched::util
