// retry_io policy: EINTR retries immediately, EAGAIN-class errors back off,
// permanent errors surface after exactly one attempt, and the attempt budget
// is a hard bound.

#include <cerrno>
#include <chrono>

#include <gtest/gtest.h>

#include "util/retry.hpp"

namespace {

using namespace psched;

// Tight backoff so the EAGAIN tests don't sleep for real.
util::RetryPolicy fast_policy() {
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = std::chrono::milliseconds(0);
  policy.max_backoff = std::chrono::milliseconds(0);
  return policy;
}

TEST(RetryIo, SuccessOnTheFirstAttemptCallsOpOnce) {
  int calls = 0;
  const int err = util::retry_io([&] {
    ++calls;
    return 0;
  });
  EXPECT_EQ(err, 0);
  EXPECT_EQ(calls, 1);
}

TEST(RetryIo, EintrIsReissuedUntilSuccess) {
  int calls = 0;
  const int err = util::retry_io([&] { return ++calls < 3 ? EINTR : 0; });
  EXPECT_EQ(err, 0);
  EXPECT_EQ(calls, 3);
}

TEST(RetryIo, EagainBacksOffAndSucceeds) {
  int calls = 0;
  const int err = util::retry_io([&] { return ++calls < 2 ? EAGAIN : 0; }, fast_policy());
  EXPECT_EQ(err, 0);
  EXPECT_EQ(calls, 2);
}

TEST(RetryIo, PermanentErrorsSurfaceAfterExactlyOneAttempt) {
  int calls = 0;
  const int err = util::retry_io([&] {
    ++calls;
    return ENOSPC;
  });
  EXPECT_EQ(err, ENOSPC);
  EXPECT_EQ(calls, 1);
}

TEST(RetryIo, PersistentTransientErrorExhaustsTheAttemptBudget) {
  int calls = 0;
  const int err = util::retry_io([&] {
    ++calls;
    return EINTR;
  }, fast_policy());
  EXPECT_EQ(err, EINTR);
  EXPECT_EQ(calls, 5);  // == policy.max_attempts
}

TEST(RetryIo, TransientErrorThenPermanentReturnsThePermanentErrno) {
  int calls = 0;
  const int err = util::retry_io([&] { return ++calls == 1 ? EINTR : EIO; }, fast_policy());
  EXPECT_EQ(err, EIO);
  EXPECT_EQ(calls, 2);
}

TEST(RetryIo, RetryableErrnoClassIsExactlyTheTransientSet) {
  EXPECT_TRUE(util::retryable_errno(EINTR));
  EXPECT_TRUE(util::retryable_errno(EAGAIN));
  EXPECT_TRUE(util::retryable_errno(EWOULDBLOCK));
  EXPECT_FALSE(util::retryable_errno(EIO));
  EXPECT_FALSE(util::retryable_errno(ENOSPC));
  EXPECT_FALSE(util::retryable_errno(EBADF));
  EXPECT_FALSE(util::retryable_errno(0));
}

}  // namespace
