// Fault registry semantics: spec grammar, firing modes (after/every/p),
// fired-count accounting, error handling for bad specs, and the compiled-in
// point catalog the chaos harness enumerates. Each TEST runs in its own
// process under ctest (gtest_discover_tests), so arming here cannot leak.

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault.hpp"

namespace {

using namespace psched;

struct ScopedFault {
  explicit ScopedFault(const std::string& specs) { util::fault::arm_list(specs); }
  ~ScopedFault() { util::fault::disarm_all(); }
};

TEST(FaultRegistry, UnarmedPointsAreSilent) {
  util::fault::disarm_all();
  EXPECT_EQ(PSCHED_FAULT("test.unarmed"), 0);
  EXPECT_EQ(util::fault::check("test.unarmed").action, util::fault::Action::kNone);
  EXPECT_EQ(util::fault::fired_count("test.unarmed"), 0u);
}

TEST(FaultRegistry, DefaultModeFiresExactlyOnceOnTheFirstHit) {
  const ScopedFault fault("test.once:errno=EIO");
  EXPECT_EQ(PSCHED_FAULT("test.once"), EIO);
  EXPECT_EQ(PSCHED_FAULT("test.once"), 0);
  EXPECT_EQ(PSCHED_FAULT("test.once"), 0);
  EXPECT_EQ(util::fault::fired_count("test.once"), 1u);
}

TEST(FaultRegistry, AfterNFiresOnlyOnTheNthHit) {
  const ScopedFault fault("test.after:errno=ENOSPC:after=3");
  EXPECT_EQ(PSCHED_FAULT("test.after"), 0);
  EXPECT_EQ(PSCHED_FAULT("test.after"), 0);
  EXPECT_EQ(PSCHED_FAULT("test.after"), ENOSPC);
  EXPECT_EQ(PSCHED_FAULT("test.after"), 0);  // one-shot: spent after firing
  EXPECT_EQ(util::fault::fired_count("test.after"), 1u);
}

TEST(FaultRegistry, EveryNFiresPeriodically) {
  const ScopedFault fault("test.every:errno=EIO:every=2");
  std::vector<int> shots;
  for (int i = 0; i < 6; ++i) shots.push_back(PSCHED_FAULT("test.every"));
  EXPECT_EQ(shots, (std::vector<int>{0, EIO, 0, EIO, 0, EIO}));
  EXPECT_EQ(util::fault::fired_count("test.every"), 3u);
}

TEST(FaultRegistry, ProbabilisticModeIsDeterministicGivenTheSeed) {
  const auto draw = [](const std::string& spec) {
    const ScopedFault fault(spec);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(PSCHED_FAULT("test.prob") != 0);
    return fires;
  };
  const std::vector<bool> first = draw("test.prob:errno=EIO:p=0.5:seed=42");
  const std::vector<bool> second = draw("test.prob:errno=EIO:p=0.5:seed=42");
  EXPECT_EQ(first, second);  // same seed, same hit order -> same decisions
  const std::size_t fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 50u);  // p=0.5 over 200 draws: loose sanity band
  EXPECT_LT(fired, 150u);
  EXPECT_NE(draw("test.prob:errno=EIO:p=0.5:seed=43"), first);
}

TEST(FaultRegistry, ErrnoAcceptsNamesAndNumbers) {
  {
    const ScopedFault fault("test.name:errno=ENOSPC");
    EXPECT_EQ(PSCHED_FAULT("test.name"), ENOSPC);
  }
  {
    const ScopedFault fault("test.number:errno=" + std::to_string(EACCES));
    EXPECT_EQ(PSCHED_FAULT("test.number"), EACCES);
  }
}

TEST(FaultRegistry, ThrowActionThrowsFromInjectButNotFromCheck) {
  const ScopedFault fault("test.thrower:throw:every=1");
  // check() never throws: it reports the decision for the caller to implement.
  EXPECT_EQ(util::fault::check("test.thrower").action, util::fault::Action::kThrow);
  try {
    PSCHED_FAULT("test.thrower");
    FAIL() << "inject() must throw for a throw action";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("injected fault at test.thrower"),
              std::string::npos);
  }
}

TEST(FaultRegistry, OtherPointsStayUnaffectedWhileOneIsArmed) {
  const ScopedFault fault("test.armed:errno=EIO:every=1");
  EXPECT_EQ(PSCHED_FAULT("test.bystander"), 0);
  EXPECT_EQ(PSCHED_FAULT("test.armed"), EIO);
  EXPECT_EQ(util::fault::fired_count("test.bystander"), 0u);
}

TEST(FaultRegistry, ArmListArmsEverySpec) {
  const ScopedFault fault("test.a:errno=EIO,test.b:errno=ENOSPC");
  EXPECT_EQ(PSCHED_FAULT("test.a"), EIO);
  EXPECT_EQ(PSCHED_FAULT("test.b"), ENOSPC);
}

TEST(FaultRegistry, BadSpecsAreRejectedLoudly) {
  util::fault::disarm_all();
  EXPECT_THROW(util::fault::arm("nocolon"), std::invalid_argument);
  EXPECT_THROW(util::fault::arm("p:frobnicate"), std::invalid_argument);
  EXPECT_THROW(util::fault::arm("p:errno=NOTANERRNO"), std::invalid_argument);
  EXPECT_THROW(util::fault::arm("p:errno=EIO:bogusmode=3"), std::invalid_argument);
  // A rejected arm leaves nothing armed behind.
  EXPECT_EQ(PSCHED_FAULT("p"), 0);
}

TEST(FaultRegistry, DisarmAllZeroesCountersAndRestoresTheFastPath) {
  {
    const ScopedFault fault("test.reset:errno=EIO:every=1");
    EXPECT_EQ(PSCHED_FAULT("test.reset"), EIO);
    EXPECT_EQ(util::fault::fired_count("test.reset"), 1u);
  }
  EXPECT_EQ(util::fault::fired_count("test.reset"), 0u);
  EXPECT_EQ(PSCHED_FAULT("test.reset"), 0);
}

TEST(FaultRegistry, ReportCoversCatalogAndCountsHits) {
  const ScopedFault fault("test.reported:errno=EIO:after=2");
  PSCHED_FAULT("test.reported");
  PSCHED_FAULT("test.reported");
  PSCHED_FAULT("test.reported");
  bool found = false;
  for (const util::fault::PointReport& point : util::fault::report()) {
    if (point.name != "test.reported") continue;
    found = true;
    EXPECT_EQ(point.hits, 3u);
    EXPECT_EQ(point.fired, 1u);
  }
  EXPECT_TRUE(found);
}

TEST(FaultCatalog, EnumeratesTheInstrumentedTree) {
  const std::vector<std::string>& points = util::fault::catalog();
  EXPECT_GE(points.size(), 12u);
  for (const char* expected :
       {"atomic_write.open", "atomic_write.write", "atomic_write.fsync", "atomic_write.close",
        "atomic_write.rename", "atomic_write.parent_fsync", "journal.open",
        "journal.append.write", "journal.append.fsync", "journal.replay.read", "swf.open",
        "swf.read.line", "threadpool.submit", "campaign.cell"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), std::string(expected)), points.end())
        << "catalog is missing " << expected;
  }
}

}  // namespace
