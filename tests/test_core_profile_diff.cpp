// Differential/property tests: the optimized hot-path Profile and
// ListScheduler must be observably identical to the preserved seed
// implementations (core/reference_profile.hpp) on randomized operation
// sequences. These are the guardrails that let the hot path be rewritten
// aggressively.

#include <gtest/gtest.h>

#include <vector>

#include "core/list_scheduler.hpp"
#include "core/profile.hpp"
#include "core/reference_profile.hpp"
#include "util/rng.hpp"

namespace psched {
namespace {

struct Interval {
  Time from;
  Time to;
  NodeCount nodes;
};

/// Drive both profiles through one random op; returns the interval if an
/// add succeeded (so the caller can later remove it).
template <typename P>
bool try_add(P& p, const Interval& iv) {
  try {
    p.add_usage(iv.from, iv.to, iv.nodes);
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

TEST(ProfileDiff, RandomAddRemoveMatchesReference) {
  util::Rng rng(12345);
  for (int round = 0; round < 20; ++round) {
    const NodeCount capacity = static_cast<NodeCount>(rng.uniform_int(4, 2048));
    Profile opt(capacity, 0);
    reference::ReferenceProfile ref(capacity, 0);
    std::vector<Interval> live;

    for (int op = 0; op < 400; ++op) {
      const double dice = rng.uniform01();
      bool compare_structure = true;
      if (dice < 0.55 || live.empty()) {
        Interval iv;
        iv.from = rng.uniform_int(0, 400'000);
        iv.to = iv.from + rng.uniform_int(1, 100'000);
        iv.nodes = static_cast<NodeCount>(rng.uniform_int(1, capacity));
        const bool ok_opt = try_add(opt, iv);
        const bool ok_ref = try_add(ref, iv);
        ASSERT_EQ(ok_opt, ok_ref) << "add acceptance diverged at op " << op;
        if (ok_opt) live.push_back(iv);
        // A rejected add leaves stray (inert) breakpoints in the reference
        // until its next mutation sweeps them; free counts stay identical.
        compare_structure = ok_opt;
      } else {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        const Interval iv = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        opt.remove_usage(iv.from, iv.to, iv.nodes);
        ref.remove_usage(iv.from, iv.to, iv.nodes);
      }
      // Structural equality: identical breakpoints, identical free counts.
      if (compare_structure) {
        ASSERT_EQ(opt.debug_string(), ref.debug_string()) << "diverged at op " << op;
      }
      ASSERT_NO_THROW(opt.check_invariants());

      // Point and window queries at random times.
      for (int q = 0; q < 4; ++q) {
        const Time t = rng.uniform_int(0, 600'000);
        ASSERT_EQ(opt.free_at(t), ref.free_at(t));
        const Time dur = rng.uniform_int(1, 150'000);
        const NodeCount w = static_cast<NodeCount>(rng.uniform_int(1, capacity));
        ASSERT_EQ(opt.fits_at(t, dur, w), ref.fits_at(t, dur, w));
        ASSERT_EQ(opt.earliest_fit(t, dur, w), ref.earliest_fit(t, dur, w))
            << "earliest_fit diverged at op " << op << " t=" << t << " dur=" << dur
            << " w=" << w;
      }
    }
  }
}

TEST(ProfileDiff, MonotoneScanMatchesReference) {
  // The cursor hint is tuned for monotone scans; sweep queries forward in
  // time like a scheduler does and check every answer.
  util::Rng rng(777);
  const NodeCount capacity = 512;
  Profile opt(capacity, 0);
  reference::ReferenceProfile ref(capacity, 0);
  for (int i = 0; i < 300; ++i) {
    const Time from = rng.uniform_int(0, 500'000);
    const Time to = from + rng.uniform_int(600, 90'000);
    const NodeCount nodes = static_cast<NodeCount>(rng.uniform_int(1, 64));
    if (ref.fits_at(from, to - from, nodes)) {
      opt.add_usage(from, to, nodes);
      ref.add_usage(from, to, nodes);
    }
  }
  for (Time t = 0; t < 600'000; t += 731) {
    ASSERT_EQ(opt.free_at(t), ref.free_at(t)) << t;
    ASSERT_EQ(opt.earliest_fit(t, 3600, 128), ref.earliest_fit(t, 3600, 128)) << t;
  }
  // And a backward jump after a long forward scan.
  ASSERT_EQ(opt.free_at(100), ref.free_at(100));
  ASSERT_EQ(opt.earliest_fit(0, 7200, 500), ref.earliest_fit(0, 7200, 500));
}

TEST(ProfileDiff, BatchedMutationsMatchUnbatchedReference) {
  util::Rng rng(4242);
  const NodeCount capacity = 256;
  for (int round = 0; round < 10; ++round) {
    Profile opt(capacity, 0);
    reference::ReferenceProfile ref(capacity, 0);
    opt.begin_batch();
    for (int i = 0; i < 200; ++i) {
      const Time from = rng.uniform_int(0, 200'000);
      const Time to = from + rng.uniform_int(60, 50'000);
      const NodeCount nodes = static_cast<NodeCount>(rng.uniform_int(1, 32));
      if (ref.fits_at(from, to - from, nodes)) {
        opt.add_usage(from, to, nodes);
        ref.add_usage(from, to, nodes);
      }
      // Queries must stay exact inside the batch.
      const Time t = rng.uniform_int(0, 250'000);
      ASSERT_EQ(opt.free_at(t), ref.free_at(t));
      ASSERT_EQ(opt.earliest_fit(t, 1800, 16), ref.earliest_fit(t, 1800, 16));
    }
    opt.end_batch();
    // After commit the structures are identical (one normalization pass).
    ASSERT_EQ(opt.debug_string(), ref.debug_string());
  }
}

TEST(ProfileDiff, FailedAddLeavesNoTrace) {
  Profile opt(10, 0);
  reference::ReferenceProfile ref(10, 0);
  opt.add_usage(100, 200, 8);
  ref.add_usage(100, 200, 8);
  EXPECT_THROW(opt.add_usage(50, 150, 5), std::logic_error);
  EXPECT_THROW(ref.add_usage(50, 150, 5), std::logic_error);
  // The optimized profile cleans its validation breakpoints up eagerly; the
  // reference sweeps them on its next mutation. Free counts agree always.
  for (Time t = 0; t < 300; ++t) ASSERT_EQ(opt.free_at(t), ref.free_at(t));
  opt.add_usage(0, 50, 1);
  ref.add_usage(0, 50, 1);
  ASSERT_EQ(opt.debug_string(), ref.debug_string());
}

TEST(ProfileDiff, AdvanceOriginPreservesFuture) {
  util::Rng rng(99);
  Profile opt(128, 0);
  reference::ReferenceProfile ref(128, 0);
  for (int i = 0; i < 100; ++i) {
    const Time from = rng.uniform_int(0, 100'000);
    const Time to = from + rng.uniform_int(60, 30'000);
    const NodeCount nodes = static_cast<NodeCount>(rng.uniform_int(1, 16));
    if (ref.fits_at(from, to - from, nodes)) {
      opt.add_usage(from, to, nodes);
      ref.add_usage(from, to, nodes);
    }
  }
  const Time cut = 50'000;
  opt.advance_origin(cut);
  EXPECT_EQ(opt.origin(), cut);
  ASSERT_NO_THROW(opt.check_invariants());
  for (Time t = cut; t < 150'000; t += 97) ASSERT_EQ(opt.free_at(t), ref.free_at(t)) << t;
  EXPECT_THROW(opt.free_at(cut - 1), std::logic_error);
  // Moving backwards (or to the same origin) is a no-op.
  const std::string before = opt.debug_string();
  opt.advance_origin(cut - 1000);
  EXPECT_EQ(opt.debug_string(), before);
}

TEST(ListSchedulerDiff, RandomOpsMatchReference) {
  util::Rng rng(31337);
  for (int round = 0; round < 30; ++round) {
    const NodeCount nodes = static_cast<NodeCount>(rng.uniform_int(2, 2048));
    ListScheduler opt(nodes, 0);
    reference::ReferenceListScheduler ref(nodes, 0);
    for (int op = 0; op < 200; ++op) {
      const double dice = rng.uniform01();
      const NodeCount width = static_cast<NodeCount>(rng.uniform_int(1, nodes));
      if (dice < 0.3) {
        const Time until = rng.uniform_int(0, 500'000);
        opt.occupy(width, until);
        ref.occupy(width, until);
      } else if (dice < 0.8) {
        const Time dur = rng.uniform_int(0, 90'000);
        const Time earliest = rng.uniform_int(0, 200'000);
        ASSERT_EQ(opt.schedule(width, dur, earliest), ref.schedule(width, dur, earliest))
            << "schedule diverged at round " << round << " op " << op;
      } else {
        const Time earliest = rng.uniform_int(0, 200'000);
        ASSERT_EQ(opt.peek_start(width, earliest), ref.peek_start(width, earliest));
      }
      ASSERT_EQ(opt.earliest_available(), ref.earliest_available());
      ASSERT_EQ(opt.node_count(), ref.node_count());
    }
  }
}

TEST(ListSchedulerDiff, ResetMatchesFreshInstance) {
  ListScheduler reused(64, 0);
  reused.schedule(32, 1000, 0);
  reused.occupy(16, 500);
  reused.reset(42);
  ListScheduler fresh(64, 42);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const NodeCount width = static_cast<NodeCount>(rng.uniform_int(1, 64));
    const Time dur = rng.uniform_int(0, 10'000);
    ASSERT_EQ(reused.schedule(width, dur, 42), fresh.schedule(width, dur, 42));
  }
}

}  // namespace
}  // namespace psched
