// Campaign runner integration: the committed example specs reproduce the
// figure-binary path bit-for-bit, SWF replay works end to end at smoke scale,
// serial and parallel campaigns are byte-identical, and multi-seed
// replication aggregates into deterministic bootstrap intervals.

#include "scenario/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "metrics/report.hpp"
#include "metrics/selection.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"
#include "workload/swf.hpp"

namespace psched::scenario {
namespace {

const std::string kSourceDir = PSCHED_SOURCE_DIR;

ScenarioSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_spec(in, "test.spec");
}

std::string csv_of(const CampaignResult& result) {
  std::ostringstream out;
  write_cells_csv(result, out);
  return out.str();
}

std::string json_of(const CampaignResult& result) {
  std::ostringstream out;
  write_summary_json(result, out);
  return out.str();
}

TEST(Campaign, CommittedFig14SpecMatchesTheFigureBinaryPath) {
  // The committed spec IS the figure configuration (same seed, same policy
  // list); only the trace scale is turned down so the test stays quick — the
  // workload construction formula (span scaling included) is what's pinned.
  ScenarioSpec spec = parse_spec_file(kSourceDir + "/examples/campaigns/fig14_all_policies.spec");
  EXPECT_EQ(spec.workload.seed, 20021201u);
  const std::vector<PolicyConfig> paper = all_paper_policies();
  ASSERT_EQ(spec.policy_names.size(), paper.size());
  for (std::size_t i = 0; i < paper.size(); ++i)
    EXPECT_EQ(spec.policy_names[i], paper[i].display_name());

  spec.workload.scale = 0.05;
  const CampaignResult result = run_campaign(spec);

  // The reference: exactly what bench/common/experiment_env.cpp does for the
  // exp_* binaries — generate the Ross trace and sweep through a cached
  // ExperimentRunner with default engine settings.
  workload::GeneratorConfig generator;
  generator.seed = spec.workload.seed;
  generator.count_scale = spec.workload.scale;
  generator.span = std::max<Time>(
      weeks(4),
      static_cast<Time>(static_cast<double>(workload::kRossTraceSpan) * spec.workload.scale));
  sim::ExperimentRunner runner(workload::generate_ross_workload(generator));
  std::vector<metrics::PolicyReport> reference;
  for (const sim::ExperimentResult* run : runner.run_all(paper))
    reference.push_back(run->report);

  ASSERT_EQ(result.cells.size(), paper.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ(result.reports[i].policy, reference[i].policy);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      // Bit-for-bit, not approximately: same workload, same policy, same
      // seed must be the same simulation.
      EXPECT_DOUBLE_EQ(result.cells[i].metrics[m],
                       metrics::metric_value(reference[i], spec.metrics[m]))
          << result.reports[i].policy << " / " << spec.metrics[m];
    }
  }
  // The rendered table — what exp_fig14_percent_unfair_all prints — byte-diffs clean.
  EXPECT_EQ(metrics::fairness_summary_table(result.reports).str(),
            metrics::fairness_summary_table(reference).str());
}

TEST(Campaign, CommittedSwfReplaySpecRunsTheSampleArchive) {
  const ScenarioSpec spec =
      parse_spec_file(kSourceDir + "/examples/campaigns/swf_replay.spec");
  const CampaignResult result = run_campaign(spec);

  // Ingestion accounting: the committed sample mixes completed records with
  // spliced failed/cancelled/partial ones, and the campaign surfaces what
  // the status filter dropped.
  ASSERT_TRUE(result.swf_info.has_value());
  EXPECT_EQ(result.swf_info->total_records, 194u);
  EXPECT_EQ(result.swf_info->filtered_records, 14u);
  EXPECT_EQ(result.swf_info->skipped_records, 0u);
  EXPECT_EQ(result.swf_info->sizing, workload::SwfSizing::HeaderNodes);
  ASSERT_EQ(result.traces.size(), 1u);
  EXPECT_EQ(result.traces[0].jobs, 180u);
  EXPECT_EQ(result.traces[0].system_size, 1524);

  // Two policies replayed; metrics are real numbers from a real simulation.
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.reports[0].policy, "cplant24.nomax.all");
  EXPECT_EQ(result.reports[1].policy, "cons.nomax");
  const std::size_t utilization = [&] {
    for (std::size_t m = 0; m < spec.metrics.size(); ++m)
      if (spec.metrics[m] == "utilization") return m;
    return spec.metrics.size();
  }();
  ASSERT_LT(utilization, spec.metrics.size());
  for (const CellResult& cell : result.cells) {
    EXPECT_GT(cell.metrics[utilization], 0.0);
    for (const double value : cell.metrics) EXPECT_TRUE(std::isfinite(value));
  }

  // Replaying the same archive directly gives the same numbers.
  const workload::SwfReadResult direct =
      workload::read_swf_file(kSourceDir + "/tests/data/sample_cplant.swf");
  sim::ExperimentRunner runner(direct.workload);
  const sim::ExperimentResult& baseline = runner.run(*policy_from_name("cplant24.nomax.all"));
  EXPECT_DOUBLE_EQ(result.cells[0].metrics[utilization], baseline.report.standard.utilization);
}

TEST(Campaign, SerialAndParallelRunsAreByteIdentical) {
  const ScenarioSpec spec = parse(R"(
[campaign]
name = serial_vs_parallel
metrics = percent_unfair, avg_wait, avg_turnaround, utilization

[workload]
scale = 0.02
rescale_load = 30

[policies]
names = cplant24.nomax.all, easy, cons.nomax

[seeds]
list = 11, 12
)");
  CampaignOptions serial;
  serial.jobs = 1;
  CampaignOptions parallel;
  parallel.jobs = 4;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);
  EXPECT_EQ(csv_of(a), csv_of(b));
  EXPECT_EQ(json_of(a), json_of(b));
}

TEST(Campaign, MultiSeedAggregationIsDeterministicAndSane) {
  const ScenarioSpec spec = parse(R"(
[campaign]
name = multiseed
metrics = avg_wait, utilization
bootstrap_resamples = 500

[workload]
scale = 0.02
rescale_load = 30

[policies]
names = cplant24.nomax.all

[seeds]
list = 1, 2, 3, 4, 5
)");
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.cells.size(), 5u);
  ASSERT_EQ(result.aggregates.size(), 1u);
  const AggregateResult& aggregate = result.aggregates[0];
  EXPECT_EQ(aggregate.policy, "cplant24.nomax.all");
  EXPECT_EQ(aggregate.replicates, 5u);
  ASSERT_EQ(aggregate.metrics.size(), 2u);
  for (std::size_t m = 0; m < aggregate.metrics.size(); ++m) {
    const util::BootstrapCi& ci = aggregate.metrics[m];
    // The aggregate mean is the plain mean of the five replicate values.
    double sum = 0.0;
    for (const CellResult& cell : result.cells) sum += cell.metrics[m];
    EXPECT_DOUBLE_EQ(ci.mean, sum / 5.0);
    EXPECT_LE(ci.lo, ci.mean);
    EXPECT_GE(ci.hi, ci.mean);
  }
  // Replicates genuinely vary (different seeds, loaded trace) so the band
  // has width — a degenerate all-equal aggregate would hide a seed bug.
  EXPECT_LT(aggregate.metrics[0].lo, aggregate.metrics[0].hi);

  // Bootstrap streams derive from the spec seed: the whole run repeats
  // byte-for-byte, and a different bootstrap seed moves only the band.
  const CampaignResult again = run_campaign(spec);
  EXPECT_EQ(json_of(result), json_of(again));
  ScenarioSpec reseeded = spec;
  reseeded.bootstrap_seed = 2;
  const CampaignResult moved = run_campaign(reseeded);
  EXPECT_DOUBLE_EQ(moved.aggregates[0].metrics[0].mean, aggregate.metrics[0].mean);
  EXPECT_TRUE(moved.aggregates[0].metrics[0].lo != aggregate.metrics[0].lo ||
              moved.aggregates[0].metrics[0].hi != aggregate.metrics[0].hi);
}

TEST(Campaign, ToleranceRecomputesTheFairnessMetrics) {
  const char* text = R"(
[campaign]
name = tolerance
metrics = percent_unfair
tolerance_hours = {}

[workload]
scale = 0.02
rescale_load = 30

[policies]
names = easy

[seeds]
list = 1
)";
  auto with_tolerance = [&](const std::string& hours_text) {
    std::string spec_text = text;
    spec_text.replace(spec_text.find("{}"), 2, hours_text);
    return run_campaign(parse(spec_text));
  };
  // 0.000278 h casts to a 1 s tolerance — the exact threshold of the
  // "any miss" strict count, so percent_unfair evaluated at it must coincide
  // with the default-tolerance report's percent_unfair_any.
  const CampaignResult strict = with_tolerance("0.000278");
  const CampaignResult loose = with_tolerance("24");
  // A tighter tolerance can only count more jobs as unfair; on this loaded
  // trace it genuinely does, proving the tolerance reached the FST metric.
  EXPECT_GT(strict.cells[0].metrics[0], loose.cells[0].metrics[0]);
  EXPECT_DOUBLE_EQ(strict.cells[0].metrics[0], loose.reports[0].fairness.percent_unfair_any);
}

TEST(Campaign, BuildWorkloadAppliesTransformsInOrder) {
  WorkloadSpec spec;
  spec.scale = 0.02;
  spec.head = 50;
  spec.rescale_load = 2.0;
  const Workload transformed = build_workload(spec, 7);
  ASSERT_EQ(transformed.jobs.size(), 50u);

  WorkloadSpec plain;
  plain.scale = 0.02;
  const Workload original = build_workload(plain, 7);
  ASSERT_GE(original.jobs.size(), 50u);
  // head keeps the first 50 jobs; rescale_load 2.0 halves every inter-arrival
  // gap (so the 50-job head spans half the time, runtimes untouched).
  EXPECT_EQ(transformed.jobs[49].runtime, original.jobs[49].runtime);
  EXPECT_LT(transformed.jobs[49].submit, original.jobs[49].submit);
}

TEST(Campaign, GridDecayAxisSplitsEngineGroups) {
  const ScenarioSpec spec = parse(R"(
[campaign]
name = decay_axis
metrics = avg_wait

[workload]
scale = 0.02
rescale_load = 30

[policies]
names = cplant24.nomax.all

[grid]
decay = 0.5, 0.9
)");
  const CampaignPlan plan = expand_campaign(spec);
  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.cells[0].decay, 0.5);
  EXPECT_DOUBLE_EQ(plan.cells[1].decay, 0.9);
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.aggregates.size(), 2u);
  // Same policy label, distinct engine knob: both aggregates survive.
  EXPECT_EQ(result.aggregates[0].policy, result.aggregates[1].policy);
  EXPECT_NE(result.aggregates[0].decay, result.aggregates[1].decay);
}

TEST(Campaign, SummaryJsonPinsSwfSizingProvenance) {
  const ScenarioSpec spec =
      parse_spec_file(kSourceDir + "/examples/campaigns/swf_replay.spec");
  const CampaignResult result = run_campaign(spec);
  ASSERT_TRUE(result.swf_info.has_value());
  const std::string json = json_of(result);
  // The exact provenance line: where the 1524-node figure came from, plus the
  // ingest counters, immediately after the source.
  EXPECT_NE(json.find("\"swf_sizing\": {\"description\": \"" +
                      result.swf_info->describe_sizing() +
                      "\", \"total_records\": 194, \"skipped_records\": 0, "
                      "\"filtered_records\": 14}"),
            std::string::npos)
      << json;
  EXPECT_NE(result.swf_info->describe_sizing().find("1524 nodes (SWF header MaxNodes"),
            std::string::npos);
  // Ross-sourced campaigns have no SWF provenance to report.
  const ScenarioSpec ross = parse(R"(
[campaign]
name = no_swf
metrics = avg_wait

[workload]
scale = 0.02
rescale_load = 30

[policies]
names = easy
)");
  EXPECT_EQ(json_of(run_campaign(ross)).find("swf_sizing"), std::string::npos);
}

TEST(Campaign, EagerAndStreamingReadersProduceByteIdenticalStores) {
  // The acceptance bar for the streaming reader: at any --jobs, with or
  // without a head cap, the results store must not change by a byte when the
  // ingestion path does.
  ScenarioSpec spec = parse_spec_file(kSourceDir + "/examples/campaigns/swf_replay.spec");
  for (const std::size_t head : {std::size_t{0}, std::size_t{50}}) {
    spec.workload.head = head;
    CampaignOptions eager;
    eager.swf_reader = SwfReaderKind::Eager;
    eager.jobs = 1;
    CampaignOptions streaming;
    streaming.swf_reader = SwfReaderKind::Streaming;
    streaming.jobs = 4;
    const CampaignResult a = run_campaign(spec, eager);
    const CampaignResult b = run_campaign(spec, streaming);
    EXPECT_EQ(csv_of(a), csv_of(b)) << "head " << head;
    EXPECT_EQ(json_of(a), json_of(b)) << "head " << head;
  }
}

TEST(Campaign, PolicyMetricsComputeTheForkedFst) {
  // Selecting a policy_* metric turns on the forked-engine FST for the
  // sweep; the cell numbers must be bit-identical to running the same
  // workload through an ExperimentRunner with policy_knowledge set.
  const ScenarioSpec spec = parse(R"(
[campaign]
name = policy_fst
metrics = policy_percent_unfair, policy_avg_miss_all, policy_max_miss, avg_wait

[workload]
scale = 0.02
rescale_load = 30

[policies]
names = cplant24.nomax.all, cons.nomax
)");
  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.count(CellStatus::Ok), 2u);

  const Workload w = build_workload(spec.workload, result.plan.seeds.at(0));
  metrics::FstOptions fst;
  fst.tolerance = spec.tolerance;
  fst.policy_knowledge = true;
  sim::ExperimentRunner runner(w, {}, fst);
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const sim::ExperimentResult& reference = runner.run(result.plan.cells[i].policy);
    ASSERT_TRUE(reference.report.has_policy_fairness);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m)
      EXPECT_DOUBLE_EQ(result.cells[i].metrics[m],
                       metrics::metric_value(reference.report, spec.metrics[m]))
          << result.plan.cells[i].policy.display_name() << " / " << spec.metrics[m];
    // The forked FST is a different quantity from the hybrid FST — equal
    // vectors would mean the wiring read the wrong field.
    EXPECT_NE(reference.report.policy_fairness.fair_start,
              reference.report.fairness.fair_start);
  }
}

TEST(Campaign, PolicyMetricOnPlainReportThrows) {
  // A policy_* metric against a report computed without policy_knowledge is
  // a wiring bug and must fail loudly, never aggregate zeros.
  const Workload w = workload::generate_small_workload(3, 40, 32, days(1));
  sim::ExperimentRunner runner(w);
  const sim::ExperimentResult& run = runner.run(*policy_from_name("easy"));
  EXPECT_FALSE(run.report.has_policy_fairness);
  EXPECT_THROW(metrics::metric_value(run.report, "policy_percent_unfair"),
               std::invalid_argument);
}

}  // namespace
}  // namespace psched::scenario
