#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace psched::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitResultOrderIndependent) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  pool.parallel_for(500, [&total](std::size_t i) { total.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(total.load(), 500L * 499L / 2);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, MinChunkReducesSplit) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); }, /*min_chunk=*/100);
  EXPECT_EQ(counter.load(), 10);  // single chunk executed inline
}

TEST(ThreadPool, SubmitAfterShutdownReportsViaFuture) {
  ThreadPool pool(2);
  pool.shutdown();
  // submit itself must not throw; the rejection arrives through the future.
  std::future<void> future = pool.submit([] {});
  ASSERT_TRUE(future.valid());
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    }));
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  for (auto& f : futures) f.get();  // queued tasks ran to completion
  EXPECT_EQ(counter.load(), 16);
}

// The drain guarantee extends to queued tasks that fan out with parallel_for
// during shutdown: their leaf chunks are exempt from the rejection.
TEST(ThreadPool, QueuedTaskUsingParallelForSurvivesShutdownDrain) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 4; ++t)
    futures.push_back(pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      pool.parallel_for(32, [&](std::size_t) { counter.fetch_add(1); });
    }));
  pool.shutdown();
  for (auto& f : futures) f.get();  // no "submit after shutdown" error
  EXPECT_EQ(counter.load(), 4 * 32);
}

TEST(ThreadPool, ParallelForAfterShutdownRunsOnCallingThread) {
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<int> counter{0};
  pool.parallel_for(16, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 16);
}

// The waiter must block (not spin) when the queue is empty and still wake
// promptly when the straggler finishes; deeply nested parallel_for from pool
// threads keeps draining through the same wait path.
TEST(ThreadPool, WaiterWakesOnSlowStragglerAndNestedWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&](std::size_t outer) {
    if (outer == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pool.parallel_for(4, [&](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    });
  });
  EXPECT_EQ(counter.load(), 16);
}

TEST(GlobalPool, IsUsable) {
  std::atomic<int> counter{0};
  parallel_for(17, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 17);
}

}  // namespace
}  // namespace psched::util
