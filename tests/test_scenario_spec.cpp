// Scenario spec parsing: the error contract (unknown keys/sections rejected
// with line numbers, never silently ignored), defaulting, and grid expansion
// with canonical-key dedup.

#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scenario/campaign.hpp"

namespace psched::scenario {
namespace {

ScenarioSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_spec(in, "test.spec");
}

/// Expect a SpecError whose message contains every given fragment.
template <typename... Fragments>
void expect_error(const std::string& text, const Fragments&... fragments) {
  try {
    parse(text);
    FAIL() << "expected SpecError, spec parsed fine";
  } catch (const SpecError& error) {
    const std::string what = error.what();
    for (const std::string& fragment : {std::string(fragments)...})
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message '" << what << "' lacks '" << fragment << "'";
  }
}

const char* kMinimal = R"(
[campaign]
name = minimal
metrics = percent_unfair

[policies]
names = cplant24.nomax.all
)";

TEST(ScenarioSpec, MinimalSpecGetsDefaults) {
  const ScenarioSpec spec = parse(kMinimal);
  EXPECT_EQ(spec.name, "minimal");
  EXPECT_EQ(spec.workload.source, WorkloadSpec::Source::Ross);
  EXPECT_EQ(spec.workload.seed, 20021201u);
  EXPECT_DOUBLE_EQ(spec.workload.scale, 1.0);
  EXPECT_EQ(spec.tolerance, hours(24));
  EXPECT_DOUBLE_EQ(spec.decay, 0.9);
  EXPECT_EQ(spec.wcl_enforcement, sim::WclEnforcement::Never);
  EXPECT_EQ(spec.effective_seeds(), std::vector<std::uint64_t>{20021201u});
  EXPECT_EQ(spec.grid.combinations(), 1u);
}

TEST(ScenarioSpec, UnknownKeyRejectedWithLineNumber) {
  // The bad key sits on line 4 of this literal (leading newline = line 1).
  expect_error(R"(
[campaign]
name = x
rescale_load = 1.2
metrics = percent_unfair

[policies]
names = fcfs
)",
               "test.spec:4", "unknown key 'rescale_load'", "[campaign]");
}

TEST(ScenarioSpec, UnknownSectionAndMalformedLines) {
  expect_error("[nonsense]\nkey = 1\n", "test.spec:1", "unknown section");
  expect_error("[campaign\nname = x\n", "test.spec:1", "malformed section header");
  expect_error("name = orphan\n", "test.spec:1", "before any [section]");
  expect_error("[campaign]\njust some words\n", "test.spec:2", "expected 'key = value'");
  expect_error("[campaign]\nname =\n", "test.spec:2", "empty value");
}

TEST(ScenarioSpec, DuplicateKeyNamesBothLines) {
  expect_error(R"(
[campaign]
name = x
name = y
metrics = percent_unfair

[policies]
names = fcfs
)",
               "test.spec:4", "duplicate key 'name'", "line 3");
}

TEST(ScenarioSpec, ValueValidationCarriesLineNumbers) {
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair, no_such_metric\n"
               "[policies]\nnames = fcfs\n",
               "test.spec:3", "unknown metric 'no_such_metric'");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[policies]\nnames = fcfs, not_a_policy\n",
               "test.spec:5", "unknown policy 'not_a_policy'");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[workload]\nscale = -2\n[policies]\nnames = fcfs\n",
               "test.spec:5", "scale must be > 0");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[workload]\nscale = fast\n[policies]\nnames = fcfs\n",
               "test.spec:5", "not a number");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[grid]\nreservation_depth = 0\n[policies]\nnames = fcfs\n",
               "test.spec:5", "reservation_depth must be >= 1");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[engine]\nwcl_enforcement = sometimes\n[policies]\nnames = fcfs\n",
               "test.spec:5", "wcl_enforcement");
}

TEST(ScenarioSpec, MissingRequiredKeys) {
  expect_error("[campaign]\nmetrics = percent_unfair\n[policies]\nnames = fcfs\n",
               "missing required [campaign] name");
  expect_error("[campaign]\nname = x\n[policies]\nnames = fcfs\n",
               "missing required [campaign] metrics");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n", "missing required [policies]");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[workload]\nsource = swf\n[policies]\nnames = fcfs\n",
               "swf source requires [workload] file");
}

TEST(ScenarioSpec, SourceSpecificKeysRejectOnTheWrongSource) {
  // A 'scale' on an SWF replay would silently no-op (the full archive runs
  // where the user expected a down-scaled smoke) — exactly the failure class
  // the strict parser exists to prevent. Same for the reverse direction.
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[workload]\nsource = swf\nfile = t.swf\nscale = 0.01\n"
               "[policies]\nnames = fcfs\n",
               "test.spec:7", "'scale' is only valid for source = ross");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[workload]\nsource = swf\nfile = t.swf\nseed = 7\n"
               "[policies]\nnames = fcfs\n",
               "test.spec:7", "'seed' is only valid for source = ross");
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[workload]\naccept_all_statuses = true\n"
               "[policies]\nnames = fcfs\n",
               "test.spec:5", "'accept_all_statuses' is only valid for source = swf");
}

TEST(ScenarioSpec, DepthPolicyNamesParseStrictly) {
  EXPECT_TRUE(policy_from_name("depth8").has_value());
  EXPECT_EQ(policy_from_name("depth8")->reservation_depth, 8);
  // Trailing garbage and out-of-range values are unknown names, not depth 8.
  EXPECT_FALSE(policy_from_name("depth8junk").has_value());
  EXPECT_FALSE(policy_from_name("depth").has_value());
  EXPECT_FALSE(policy_from_name("depth0").has_value());
  EXPECT_FALSE(policy_from_name("depth99999999999999").has_value());
  expect_error("[campaign]\nname = x\nmetrics = percent_unfair\n"
               "[policies]\nnames = depth4junk\n",
               "test.spec:5", "unknown policy 'depth4junk'");
}

TEST(ScenarioSpec, SwfRefusesMultipleSeeds) {
  expect_error(R"(
[campaign]
name = x
metrics = percent_unfair

[workload]
source = swf
file = trace.swf

[policies]
names = fcfs

[seeds]
list = 1, 2
)",
               "test.spec:14", "SWF trace is fixed data");
}

TEST(ScenarioSpec, GridAndSeedsParse) {
  const ScenarioSpec spec = parse(R"(
[campaign]
name = gridful
metrics = percent_unfair, avg_wait

[workload]
scale = 0.05

[policies]
names = cplant24.nomax.all, cons.nomax

[grid]
starvation_delay_hours = 24, 72
max_runtime_hours = none, 72
bar_heavy_users = false, true

[seeds]
list = 7, 8, 9
)");
  EXPECT_EQ(spec.grid.combinations(), 8u);
  ASSERT_EQ(spec.grid.starvation_delay.size(), 2u);
  EXPECT_EQ(spec.grid.starvation_delay[1], hours(72));
  ASSERT_EQ(spec.grid.max_runtime.size(), 2u);
  EXPECT_EQ(spec.grid.max_runtime[0], kNoTime);
  EXPECT_EQ(spec.grid.max_runtime[1], hours(72));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{7, 8, 9}));
}

TEST(ScenarioSpec, ExpansionCountsAndOrder) {
  const ScenarioSpec spec = parse(R"(
[campaign]
name = expansion
metrics = percent_unfair

[policies]
names = cplant24.nomax.all, easy

[grid]
max_runtime_hours = none, 72

[seeds]
list = 1, 2
)");
  const CampaignPlan plan = expand_campaign(spec);
  EXPECT_EQ(plan.expanded_cells, 8u);  // 2 seeds x 2 policies x 2 max
  ASSERT_EQ(plan.cells.size(), 8u);    // nothing collapses here
  // Seed-major, policy order preserved, axis values fastest.
  EXPECT_EQ(plan.cells[0].seed, 1u);
  EXPECT_EQ(plan.cells[0].policy.display_name(), "cplant24.nomax.all");
  EXPECT_EQ(plan.cells[1].policy.display_name(), "cplant24.72max.all");
  EXPECT_EQ(plan.cells[2].policy.display_name(), "easy");
  EXPECT_EQ(plan.cells[3].policy.max_runtime, hours(72));
  EXPECT_EQ(plan.cells[4].seed, 2u);
  for (std::size_t i = 0; i < plan.cells.size(); ++i) EXPECT_EQ(plan.cells[i].index, i);
}

TEST(ScenarioSpec, DedupCollapsesIrrelevantKnobAxes) {
  // A starvation-delay axis is meaningful for the CPlant cell but a no-op for
  // conservative: the duplicate conservative cells must collapse through
  // PolicyConfig::canonical_key() after knob normalization.
  const ScenarioSpec spec = parse(R"(
[campaign]
name = dedup
metrics = percent_unfair

[policies]
names = cplant24.nomax.all, cons.nomax

[grid]
starvation_delay_hours = 24, 72
)");
  const CampaignPlan plan = expand_campaign(spec);
  EXPECT_EQ(plan.expanded_cells, 4u);
  ASSERT_EQ(plan.cells.size(), 3u);
  EXPECT_EQ(plan.cells[0].policy.display_name(), "cplant24.nomax.all");
  EXPECT_EQ(plan.cells[1].policy.display_name(), "cplant72.nomax.all");
  EXPECT_EQ(plan.cells[2].policy.display_name(), "cons.nomax");
  // Every surviving key is unique.
  for (std::size_t i = 0; i < plan.cells.size(); ++i)
    for (std::size_t j = i + 1; j < plan.cells.size(); ++j)
      EXPECT_NE(plan.cells[i].key, plan.cells[j].key);
}

TEST(ScenarioSpec, OverridesDropStalePresetNames) {
  // paper_policy configs carry a preset display name; a knob override must
  // re-derive it instead of simulating under a stale label.
  const ScenarioSpec spec = parse(R"(
[campaign]
name = rename
metrics = percent_unfair

[policies]
names = cplant24.nomax.all

[grid]
starvation_delay_hours = 72
max_runtime_hours = 72
)");
  const CampaignPlan plan = expand_campaign(spec);
  ASSERT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].policy.display_name(), "cplant72.72max.all");
}

TEST(ScenarioSpec, CommentsAndBlankLinesIgnored) {
  const ScenarioSpec spec = parse(R"(
# full-line comment
; alternative comment style

[campaign]
name = commented
metrics = percent_unfair

[policies]
names = fcfs
)");
  EXPECT_EQ(spec.name, "commented");
}

}  // namespace
}  // namespace psched::scenario
