// atomic_write_file durability edges: replace-in-place semantics, the stale
// tmp-file sweep, injected failures at every syscall step (loud, with path and
// errno), transparent retry of transient errors, and the distinct
// "durability-of-rename unconfirmed" outcome where the NEW file stays visible.

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "util/atomic_file.hpp"
#include "util/fault.hpp"

namespace {

namespace fs = std::filesystem;
using namespace psched;

struct ScopedFault {
  explicit ScopedFault(const std::string& specs) { util::fault::arm_list(specs); }
  ~ScopedFault() { util::fault::disarm_all(); }
};

struct TempDir {
  fs::path dir;
  // pid-suffixed: ctest runs each TEST as its own process, often in parallel.
  TempDir() : dir(fs::path(testing::TempDir()) / ("atomic_file_test." + std::to_string(::getpid()))) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() { fs::remove_all(dir); }
  std::string path(const std::string& name) const { return (dir / name).string(); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

std::size_t tmp_siblings(const fs::path& dir) {
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) ++count;
  return count;
}

TEST(AtomicWriteFile, WritesAndReplacesWithoutLeavingTmpFiles) {
  const TempDir tmp;
  const std::string target = tmp.path("out.txt");
  util::atomic_write_file(target, "first\n");
  EXPECT_EQ(slurp(target), "first\n");
  util::atomic_write_file(target, "second\n");
  EXPECT_EQ(slurp(target), "second\n");
  EXPECT_EQ(tmp_siblings(tmp.dir), 0u);
}

TEST(AtomicWriteFile, SweepsStaleTmpFilesFromOtherPidsOnly) {
  const TempDir tmp;
  const std::string target = tmp.path("out.txt");
  // A crashed foreign process left its tmp behind; a same-pid name may belong
  // to a concurrent writer in this process and must be left alone.
  const std::string foreign = target + ".tmp.999999999.3";
  const std::string own = target + ".tmp." + std::to_string(::getpid()) + ".999999";
  std::ofstream(foreign) << "stale";
  std::ofstream(own) << "mine";
  util::atomic_write_file(target, "content\n");
  EXPECT_FALSE(fs::exists(foreign)) << "foreign stale tmp not swept";
  EXPECT_TRUE(fs::exists(own)) << "same-pid tmp must not be touched";
  EXPECT_EQ(slurp(target), "content\n");
}

TEST(AtomicWriteFile, FailedWriteIsLoudAndLeavesTheOldFileIntact) {
  const TempDir tmp;
  const std::string target = tmp.path("out.txt");
  util::atomic_write_file(target, "old\n");
  const ScopedFault fault("atomic_write.write:errno=ENOSPC");
  try {
    util::atomic_write_file(target, "new\n");
    FAIL() << "write failure must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("atomic_write_file: write"), std::string::npos) << what;
    EXPECT_NE(what.find(target), std::string::npos) << "error must carry the path";
    EXPECT_NE(what.find("No space left"), std::string::npos) << "error must carry the errno";
  }
  EXPECT_EQ(slurp(target), "old\n") << "failed replace must not touch the target";
  EXPECT_EQ(tmp_siblings(tmp.dir), 0u) << "failed write must unlink its tmp";
  EXPECT_EQ(util::fault::fired_count("atomic_write.write"), 1u);
}

TEST(AtomicWriteFile, EveryFailureStepIsLoudAndPreservesTheTarget) {
  for (const char* spec :
       {"atomic_write.open:errno=EACCES", "atomic_write.fsync:errno=EIO",
        "atomic_write.close:errno=EIO", "atomic_write.rename:errno=EIO"}) {
    const TempDir tmp;
    const std::string target = tmp.path("out.txt");
    util::atomic_write_file(target, "old\n");
    const ScopedFault fault(spec);
    EXPECT_THROW(util::atomic_write_file(target, "new\n"), std::runtime_error) << spec;
    EXPECT_EQ(slurp(target), "old\n") << spec;
    EXPECT_EQ(tmp_siblings(tmp.dir), 0u) << spec;
  }
}

TEST(AtomicWriteFile, TransientFaultsAreRetriedToSuccess) {
  const TempDir tmp;
  const std::string target = tmp.path("out.txt");
  const ScopedFault fault(
      "atomic_write.open:errno=EINTR,atomic_write.write:errno=EINTR,"
      "atomic_write.fsync:errno=EINTR,atomic_write.rename:errno=EINTR,"
      "atomic_write.parent_fsync:errno=EINTR");
  util::atomic_write_file(target, "content\n");
  EXPECT_EQ(slurp(target), "content\n");
  for (const char* point : {"atomic_write.open", "atomic_write.write", "atomic_write.fsync",
                            "atomic_write.rename", "atomic_write.parent_fsync"})
    EXPECT_EQ(util::fault::fired_count(point), 1u) << point;
}

TEST(AtomicWriteFile, ParentFsyncFailureIsDurabilityUnconfirmedNotAFailedWrite) {
  const TempDir tmp;
  const std::string target = tmp.path("out.txt");
  util::atomic_write_file(target, "old\n");
  const ScopedFault fault("atomic_write.parent_fsync:errno=EIO");
  try {
    util::atomic_write_file(target, "new\n");
    FAIL() << "unconfirmed rename durability must throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("rename durability unconfirmed"), std::string::npos) << what;
    EXPECT_NE(what.find(target), std::string::npos) << what;
  }
  // The rename happened: unlike every earlier step, the NEW contents are
  // visible — the caller learns durability is unconfirmed, nothing was lost.
  EXPECT_EQ(slurp(target), "new\n");
  EXPECT_EQ(tmp_siblings(tmp.dir), 0u);
}

}  // namespace
