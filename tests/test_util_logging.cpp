#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace psched::util {
namespace {

/// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::Warn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (const LogLevel level :
       {LogLevel::Debug, LogLevel::Info, LogLevel::Warn, LogLevel::Error, LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, BelowThresholdIsCheap) {
  set_log_level(LogLevel::Off);
  // Message arguments must not be evaluated when the level filters them out.
  bool evaluated = false;
  auto expensive = [&evaluated] {
    evaluated = true;
    return std::string("payload");
  };
  if (log_level() <= LogLevel::Debug) log_debug("never ", expensive());
  EXPECT_FALSE(evaluated);
}

TEST_F(LoggingTest, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("jobs=", 42, " util=", 0.5), "jobs=42 util=0.5");
  EXPECT_EQ(detail::concat("solo"), "solo");
}

TEST_F(LoggingTest, EmitDoesNotThrow) {
  set_log_level(LogLevel::Error);
  EXPECT_NO_THROW(log_error("error path exercised"));
  EXPECT_NO_THROW(log_warn("filtered out"));
}

}  // namespace
}  // namespace psched::util
