#include "core/job.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace psched {
namespace {

using test::make_job;

TEST(Job, ValidateJobCatchesEachField) {
  Job good = make_job(0, 100, 4);
  good.id = 0;
  EXPECT_TRUE(validate_job(good, 16).empty());

  Job bad = good;
  bad.nodes = 0;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.nodes = 32;
  EXPECT_FALSE(validate_job(bad, 16).empty());  // wider than machine
  bad = good;
  bad.runtime = 0;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.wcl = -5;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.submit = -1;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.user = -2;
  EXPECT_FALSE(validate_job(bad, 16).empty());
}

TEST(Job, ProcSeconds) {
  const Job job = make_job(0, 3600, 8);
  EXPECT_DOUBLE_EQ(job.proc_seconds(), 8.0 * 3600.0);
}

TEST(Workload, NormalizeSortsAndRenumbers) {
  Workload w;
  w.system_size = 8;
  w.jobs = {make_job(100, 10, 1), make_job(50, 10, 1), make_job(75, 10, 1)};
  w.normalize();
  EXPECT_EQ(w.jobs[0].submit, 50);
  EXPECT_EQ(w.jobs[1].submit, 75);
  EXPECT_EQ(w.jobs[2].submit, 100);
  for (std::size_t i = 0; i < w.jobs.size(); ++i) EXPECT_EQ(w.jobs[i].id, static_cast<JobId>(i));
  EXPECT_NO_THROW(w.validate());
}

TEST(Workload, NormalizeIsStableForTies) {
  Workload w;
  w.system_size = 8;
  Job a = make_job(10, 10, 1);
  a.user = 1;
  Job b = make_job(10, 20, 2);
  b.user = 2;
  w.jobs = {a, b};
  w.normalize();
  EXPECT_EQ(w.jobs[0].user, 1);  // original order preserved on equal submit
  EXPECT_EQ(w.jobs[1].user, 2);
}

TEST(Workload, ValidateRejectsUnsorted) {
  Workload w;
  w.system_size = 8;
  w.jobs = {make_job(100, 10, 1), make_job(50, 10, 1)};
  w.jobs[0].id = 0;
  w.jobs[1].id = 1;
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(Workload, ValidateRejectsIdMismatch) {
  Workload w;
  w.system_size = 8;
  w.jobs = {make_job(0, 10, 1)};
  w.jobs[0].id = 5;
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(Workload, ValidateRejectsBadSystemSize) {
  Workload w;
  w.system_size = 0;
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(Workload, Aggregates) {
  Workload w;
  w.system_size = 8;
  w.jobs = {make_job(5, 100, 2), make_job(10, 200, 4)};
  w.normalize();
  EXPECT_DOUBLE_EQ(w.total_proc_seconds(), 2.0 * 100 + 4.0 * 200);
  EXPECT_EQ(w.earliest_submit(), 5);
  EXPECT_EQ(w.latest_submit(), 10);

  const Workload empty{{}, 8};
  EXPECT_EQ(empty.earliest_submit(), kNoTime);
  EXPECT_EQ(empty.latest_submit(), kNoTime);
  EXPECT_DOUBLE_EQ(empty.total_proc_seconds(), 0.0);
}

}  // namespace
}  // namespace psched
