#include "core/job.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace psched {
namespace {

using test::make_job;

TEST(Job, ValidateJobCatchesEachField) {
  Job good = make_job(0, 100, 4);
  good.id = 0;
  EXPECT_TRUE(validate_job(good, 16).empty());

  Job bad = good;
  bad.nodes = 0;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.nodes = 32;
  EXPECT_FALSE(validate_job(bad, 16).empty());  // wider than machine
  bad = good;
  bad.runtime = 0;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.wcl = -5;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.submit = -1;
  EXPECT_FALSE(validate_job(bad, 16).empty());
  bad = good;
  bad.user = -2;
  EXPECT_FALSE(validate_job(bad, 16).empty());
}

TEST(Job, ProcSeconds) {
  const Job job = make_job(0, 3600, 8);
  EXPECT_DOUBLE_EQ(job.proc_seconds(), 8.0 * 3600.0);
}

TEST(Workload, NormalizeSortsAndRenumbers) {
  WorkloadBuilder b({make_job(100, 10, 1), make_job(50, 10, 1), make_job(75, 10, 1)}, 8);
  b.normalize();
  const Workload w = b.build();
  EXPECT_EQ(w.jobs[0].submit, 50);
  EXPECT_EQ(w.jobs[1].submit, 75);
  EXPECT_EQ(w.jobs[2].submit, 100);
  for (std::size_t i = 0; i < w.jobs.size(); ++i) EXPECT_EQ(w.jobs[i].id, static_cast<JobId>(i));
  EXPECT_NO_THROW(w.validate());
}

TEST(Workload, NormalizeIsStableForTies) {
  Job a = make_job(10, 10, 1);
  a.user = 1;
  Job b = make_job(10, 20, 2);
  b.user = 2;
  WorkloadBuilder builder({a, b}, 8);
  builder.normalize();
  const Workload w = builder.build();
  EXPECT_EQ(w.jobs[0].user, 1);  // original order preserved on equal submit
  EXPECT_EQ(w.jobs[1].user, 2);
}

TEST(Workload, ValidateRejectsUnsorted) {
  std::vector<Job> jobs = {make_job(100, 10, 1), make_job(50, 10, 1)};
  jobs[0].id = 0;
  jobs[1].id = 1;
  const Workload w(std::move(jobs), 8);  // frozen as-is: no normalize
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(Workload, ValidateRejectsIdMismatch) {
  std::vector<Job> jobs = {make_job(0, 10, 1)};
  jobs[0].id = 5;
  const Workload w(std::move(jobs), 8);
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(Workload, ValidateRejectsBadSystemSize) {
  const Workload w({}, 0);
  EXPECT_THROW(w.validate(), std::invalid_argument);
}

TEST(Workload, Aggregates) {
  WorkloadBuilder b({make_job(5, 100, 2), make_job(10, 200, 4)}, 8);
  b.normalize();
  const Workload w = b.build();
  EXPECT_DOUBLE_EQ(w.total_proc_seconds(), 2.0 * 100 + 4.0 * 200);
  EXPECT_EQ(w.earliest_submit(), 5);
  EXPECT_EQ(w.latest_submit(), 10);

  const Workload empty({}, 8);
  EXPECT_EQ(empty.earliest_submit(), kNoTime);
  EXPECT_EQ(empty.latest_submit(), kNoTime);
  EXPECT_DOUBLE_EQ(empty.total_proc_seconds(), 0.0);
}

TEST(Workload, CopyAndTruncateShareStorage) {
  const Workload w = test::make_workload(
      8, {make_job(0, 10, 1), make_job(5, 10, 2), make_job(9, 10, 4)});
  const Workload copy = w;
  EXPECT_EQ(copy.jobs.begin(), w.jobs.begin());  // same underlying array
  EXPECT_EQ(copy.jobs.size(), 3u);

  const Workload two = w.truncate(2);
  EXPECT_EQ(two.jobs.size(), 2u);
  EXPECT_EQ(two.jobs.begin(), w.jobs.begin());  // a truncation is a count
  EXPECT_EQ(two.jobs.back().id, 1);
  EXPECT_NO_THROW(two.validate());

  EXPECT_EQ(w.truncate(0).jobs.size(), 0u);
  EXPECT_EQ(w.truncate(3).jobs.size(), 3u);
  EXPECT_THROW(w.truncate(4), std::out_of_range);
}

TEST(Workload, TruncationOutlivesOriginal) {
  Workload two;
  {
    const Workload w = test::make_workload(
        8, {make_job(0, 10, 1), make_job(5, 10, 2), make_job(9, 10, 4)});
    two = w.truncate(2);
  }  // the original view is gone; shared storage must keep the jobs alive
  ASSERT_EQ(two.jobs.size(), 2u);
  EXPECT_EQ(two.jobs[1].submit, 5);
  EXPECT_NO_THROW(two.validate());
}

TEST(Workload, BuilderRoundTripsAView) {
  const Workload w = test::make_workload(4, {make_job(0, 10, 1), make_job(1, 10, 2)});
  WorkloadBuilder edit(w);
  ASSERT_EQ(edit.jobs.size(), 2u);
  edit.jobs[0].runtime = 99;
  const Workload edited = edit.build();
  EXPECT_EQ(edited.jobs[0].runtime, 99);
  EXPECT_EQ(w.jobs[0].runtime, 10);  // the original view is untouched
}

TEST(JobSpanTest, AtThrowsOutOfRange) {
  const Workload w = test::make_workload(4, {make_job(0, 10, 1)});
  EXPECT_EQ(w.jobs.at(0).id, 0);
  EXPECT_THROW(w.jobs.at(1), std::out_of_range);
  EXPECT_THROW(w.jobs.at(static_cast<std::size_t>(-1)), std::out_of_range);
}

}  // namespace
}  // namespace psched
