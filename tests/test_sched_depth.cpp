#include "core/depth_scheduler.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched {
namespace {

using test::make_job;
using test::make_workload;

SimulationResult run_depth(const Workload& w, int depth,
                           PriorityKind priority = PriorityKind::Fcfs) {
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Depth;
  config.policy.reservation_depth = depth;
  config.policy.priority = priority;
  return sim::simulate(w, config);
}

TEST(DepthScheduler, RejectsBadDepth) {
  EXPECT_THROW(DepthScheduler(DepthConfig{PriorityKind::Fcfs, 0}), std::invalid_argument);
}

TEST(DepthScheduler, DepthOneMatchesEasyScenario) {
  // The EASY Figure-2 scenario behaves identically at depth 1.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),
                                          make_job(1, 50, 4),
                                          make_job(2, 50, 2),
                                      });
  const SimulationResult depth = run_depth(w, 1);
  const SimulationResult easy = test::run_policy(w, PolicyKind::Easy);
  for (std::size_t i = 0; i < w.jobs.size(); ++i)
    EXPECT_EQ(depth.records[i].start, easy.records[i].start) << "job " << i;
}

TEST(DepthScheduler, DeeperReservationsProtectMoreJobs) {
  // Two blocked jobs. The long backfiller J3 threads around J1's reservation
  // (6+2 = 8 fits) but would collide with J2's (7+2 > 8). At depth 1 only
  // the first blocked job is ever reserved, so J3 backfills at t=3 and
  // pushes J2 out past t=400; at depth 2, J2's reservation blocks J3.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 4),  // running until 100
                                          make_job(1, 50, 6),   // blocked: reserved [100,150)
                                          make_job(2, 60, 7),   // blocked: depth-2 res [150,210)
                                          make_job(3, 400, 2),  // long narrow backfiller
                                      });
  const SimulationResult d1 = run_depth(w, 1);
  const SimulationResult d2 = run_depth(w, 2);
  // Depth 1: J3 starts immediately and starves J2 until J3 completes at 403.
  EXPECT_EQ(d1.records[3].start, 3);
  EXPECT_GE(d1.records[2].start, 400);
  // Depth 2: J2 is protected; J3 waits behind both reservations.
  EXPECT_EQ(d2.records[2].start, 150);
  EXPECT_EQ(d2.records[3].start, 210);
}

TEST(DepthScheduler, LargeDepthApproachesDynamicConservative) {
  const Workload w = psched::workload::generate_small_workload(91, 200, 48, days(5));
  const SimulationResult deep = run_depth(w, 1'000'000, PriorityKind::Fairshare);
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::ConservativeDynamic;
  const SimulationResult consdyn = sim::simulate(w, config);
  // Not necessarily identical schedules (consdyn launches at replanned
  // reservations; depth starts greedily), but both must be valid and close
  // in aggregate.
  test::expect_no_overallocation(deep);
  test::expect_complete_and_causal(deep);
  double deep_wait = 0.0, consdyn_wait = 0.0;
  for (std::size_t i = 0; i < deep.records.size(); ++i) {
    deep_wait += static_cast<double>(deep.records[i].wait());
    consdyn_wait += static_cast<double>(consdyn.records[i].wait());
  }
  EXPECT_LT(deep_wait, consdyn_wait * 2.0 + 1.0);
}

TEST(DepthScheduler, NameIncludesDepth) {
  EXPECT_EQ(DepthScheduler(DepthConfig{PriorityKind::Fairshare, 4}).name(), "depth4");
  EXPECT_EQ(DepthScheduler(DepthConfig{PriorityKind::Fcfs, 16}).name(), "depth16.fcfs");
  PolicyConfig c;
  c.kind = PolicyKind::Depth;
  c.reservation_depth = 8;
  EXPECT_EQ(c.display_name(), "depth8.nomax");
}

TEST(DepthScheduler, InvariantsAcrossDepths) {
  const Workload w = psched::workload::generate_small_workload(97, 250, 64, days(6));
  for (const int depth : {1, 2, 8, 64}) {
    const SimulationResult r = run_depth(w, depth, PriorityKind::Fairshare);
    test::expect_no_overallocation(r);
    test::expect_complete_and_causal(r);
  }
}

}  // namespace
}  // namespace psched
