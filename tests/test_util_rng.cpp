#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace psched::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c2.next_u64());  // same salt, same state -> same stream
  Rng c3 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntDegenerate) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, LogUniformRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.log_uniform(10.0, 1.0e6);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1.0e6 + 1e-9);
  }
  EXPECT_DOUBLE_EQ(rng.log_uniform(5.0, 5.0), 5.0);
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.log_uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, LogUniformIsScaleFree) {
  // Roughly equal mass per decade across three decades.
  Rng rng(7);
  int decade[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i) {
    const double v = rng.log_uniform(1.0, 1000.0);
    ++decade[std::min(2, static_cast<int>(std::log10(v)))];
  }
  for (const int count : decade) {
    EXPECT_GT(count, 2500);
    EXPECT_LT(count, 3500);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(5.0);
  EXPECT_NEAR(total / n, 5.0, 0.15);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(9);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(10);
  EXPECT_THROW(rng.categorical(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical(std::vector<double>{1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ZipfWeightsShape) {
  const std::vector<double> w = zipf_weights(4, 1.0);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_GT(w[2], w[3]);
}

TEST(Rng, SplitmixAvalanche) {
  // Single-bit input changes flip roughly half the output bits.
  const std::uint64_t a = splitmix64(0x1234);
  const std::uint64_t b = splitmix64(0x1235);
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

}  // namespace
}  // namespace psched::util
