#include "workload/transform.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::workload {
namespace {

using test::make_job;
using test::make_workload;

Workload sample() {
  return make_workload(32, {
                               make_job(0, 100, 4, 0),
                               make_job(1000, 200, 8, 1),
                               make_job(2000, 300, 16, 0),
                               make_job(3000, 400, 2, 2),
                           });
}

TEST(Transform, SliceByTimeShiftsToZero) {
  const Workload sliced = slice_by_time(sample(), 1000, 3000);
  ASSERT_EQ(sliced.jobs.size(), 2u);
  EXPECT_EQ(sliced.jobs[0].submit, 0);
  EXPECT_EQ(sliced.jobs[1].submit, 1000);
  EXPECT_EQ(sliced.jobs[0].nodes, 8);
  EXPECT_THROW(slice_by_time(sample(), 10, 10), std::invalid_argument);
}

TEST(Transform, FilterJobsByPredicate) {
  const Workload wide = filter_jobs(sample(), [](const Job& j) { return j.nodes >= 8; });
  ASSERT_EQ(wide.jobs.size(), 2u);
  for (const Job& job : wide.jobs) EXPECT_GE(job.nodes, 8);
  // ids renumbered.
  EXPECT_EQ(wide.jobs[0].id, 0);
  EXPECT_EQ(wide.jobs[1].id, 1);
}

TEST(Transform, RescaleLoadCompresses) {
  const Workload fast = rescale_load(sample(), 2.0);
  EXPECT_EQ(fast.jobs[0].submit, 0);
  EXPECT_EQ(fast.jobs[1].submit, 500);
  EXPECT_EQ(fast.jobs[3].submit, 1500);
  // Runtimes untouched.
  EXPECT_EQ(fast.jobs[1].runtime, 200);
  EXPECT_THROW(rescale_load(sample(), 0.0), std::invalid_argument);
}

TEST(Transform, RescaleLoadStretches) {
  const Workload slow = rescale_load(sample(), 0.5);
  EXPECT_EQ(slow.jobs[1].submit, 2000);
  EXPECT_EQ(slow.jobs[3].submit, 6000);
}

TEST(Transform, WithEstimateFactor) {
  const Workload perfect = with_estimate_factor(sample(), 1.0);
  for (const Job& job : perfect.jobs) EXPECT_EQ(job.wcl, job.runtime);
  const Workload doubled = with_estimate_factor(sample(), 2.0);
  for (const Job& job : doubled.jobs) EXPECT_EQ(job.wcl, job.runtime * 2);
  EXPECT_THROW(with_estimate_factor(sample(), 0.5), std::invalid_argument);
}

TEST(Transform, ThinDropsApproximately) {
  const Workload big = generate_small_workload(1, 2000, 64, days(5));
  const Workload thinned = thin(big, 0.5, 42);
  EXPECT_GT(thinned.jobs.size(), 800u);
  EXPECT_LT(thinned.jobs.size(), 1200u);
  // Deterministic in the seed.
  EXPECT_EQ(thin(big, 0.5, 42).jobs.size(), thinned.jobs.size());
  EXPECT_THROW(thin(big, 1.0, 1), std::invalid_argument);
}

TEST(Transform, HeadTakesPrefix) {
  const Workload first2 = head(sample(), 2);
  ASSERT_EQ(first2.jobs.size(), 2u);
  EXPECT_EQ(first2.jobs[1].submit, 1000);
  EXPECT_EQ(head(sample(), 100).jobs.size(), 4u);
  EXPECT_TRUE(head(sample(), 0).jobs.empty());
}

TEST(Transform, TransformsCompose) {
  const Workload big = generate_small_workload(2, 500, 64, days(10));
  const Workload composed =
      rescale_load(slice_by_time(big, days(2), days(8)), 1.5);
  EXPECT_NO_THROW(composed.validate());
  EXPECT_LT(composed.jobs.size(), big.jobs.size());
}

}  // namespace
}  // namespace psched::workload
