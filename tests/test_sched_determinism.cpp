// Determinism tests: the incremental conservative replanner must produce a
// byte-identical schedule to the original per-event-rebuild algorithm.
//
// ReferenceConservativeScheduler below is a verbatim copy of the seed
// implementation (fresh profile + full reseat + improvement pass at every
// scheduling event), running on the preserved ReferenceProfile. Both
// schedulers are driven over the same generated workloads — including
// under-estimating jobs (over-runners), fairshare priority reshuffles,
// runtime-limit segmentation and WCL kills — and every record's start and
// finish must match exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "core/conservative_scheduler.hpp"
#include "core/reference_profile.hpp"
#include "core/scheduler.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched {
namespace {

/// The seed conservative scheduler, byte-for-byte (modulo running on
/// ReferenceProfile): rebuilds the availability profile and re-seats every
/// reservation at every scheduling event.
class ReferenceConservativeScheduler final : public Scheduler {
 public:
  explicit ReferenceConservativeScheduler(ConservativeConfig config) : config_(config) {}

  std::string name() const override { return "cons.reference"; }

  void on_submit(JobId id) override {
    waiting_.push_back(id);
    reservations_.emplace(id, kNoTime);
  }

  void on_complete(JobId) override {}

  void collect_starts(std::vector<JobId>& starts) override {
    wakeup_.reset();
    const Time now = ctx().now();
    reference::ReferenceProfile profile(ctx().total_nodes(), now);
    for (const RunningView& r : ctx().running()) {
      Time end = r.est_end;
      if (end <= now) end = now + std::max<Time>(kOverrunGrace, now - r.est_end);
      profile.add_usage(now, end, r.nodes);
    }
    replan(profile, now);

    NodeCount free = ctx().free_nodes();
    std::optional<Time> wake;
    for (const JobId id : sorted_by_priority(waiting_, config_.priority)) {
      const Time start = reservations_.at(id);
      if (start <= now) {
        const Job& job = ctx().job(id);
        if (job.nodes > free)
          throw std::logic_error("reference cons: reservation due but nodes not free");
        starts.push_back(id);
        free -= job.nodes;
        reservations_.erase(id);
        waiting_.erase(std::find(waiting_.begin(), waiting_.end(), id));
      } else if (!wake || start < *wake) {
        wake = start;
      }
    }
    wakeup_ = wake;
  }

  std::optional<Time> next_wakeup() const override { return wakeup_; }

 private:
  void replan(reference::ReferenceProfile& profile, Time now) {
    if (config_.dynamic_reservations) {
      for (const JobId id : sorted_by_priority(waiting_, config_.priority)) {
        const Job& job = ctx().job(id);
        const Time start = profile.earliest_fit(now, job.wcl, job.nodes);
        profile.add_usage(start, start + job.wcl, job.nodes);
        reservations_[id] = start;
      }
      return;
    }

    std::vector<JobId> seat_order = waiting_;
    std::sort(seat_order.begin(), seat_order.end(), [&](JobId a, JobId b) {
      const Time ra = reservations_.at(a);
      const Time rb = reservations_.at(b);
      const Time ka = ra == kNoTime ? std::numeric_limits<Time>::max() : ra;
      const Time kb = rb == kNoTime ? std::numeric_limits<Time>::max() : rb;
      if (ka != kb) return ka < kb;
      return a < b;
    });
    for (const JobId id : seat_order) {
      const Job& job = ctx().job(id);
      const Time stored = reservations_.at(id);
      const Time from = stored == kNoTime ? now : std::max(stored, now);
      const Time start = profile.earliest_fit(from, job.wcl, job.nodes);
      profile.add_usage(start, start + job.wcl, job.nodes);
      reservations_[id] = start;
    }

    for (const JobId id : sorted_by_priority(waiting_, config_.priority)) {
      const Job& job = ctx().job(id);
      const Time current = reservations_.at(id);
      profile.remove_usage(current, current + job.wcl, job.nodes);
      const Time improved = profile.earliest_fit(now, job.wcl, job.nodes);
      const Time chosen = improved < current ? improved : current;
      profile.add_usage(chosen, chosen + job.wcl, job.nodes);
      reservations_[id] = chosen;
    }
  }

  ConservativeConfig config_;
  std::vector<JobId> waiting_;
  std::unordered_map<JobId, Time> reservations_;
  std::optional<Time> wakeup_;
};

void expect_identical_schedules(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i].start, b.records[i].start) << "record " << i;
    ASSERT_EQ(a.records[i].finish, b.records[i].finish) << "record " << i;
    ASSERT_EQ(a.records[i].killed_at_wcl, b.records[i].killed_at_wcl) << "record " << i;
  }
  EXPECT_EQ(a.first_start, b.first_start);
  EXPECT_EQ(a.last_finish, b.last_finish);
  EXPECT_DOUBLE_EQ(a.busy_proc_seconds, b.busy_proc_seconds);
  EXPECT_DOUBLE_EQ(a.loc_proc_seconds, b.loc_proc_seconds);
}

void run_and_compare(const Workload& workload, bool dynamic, PriorityKind priority,
                     sim::EngineConfig base = {}) {
  base.policy.kind = dynamic ? PolicyKind::ConservativeDynamic : PolicyKind::Conservative;
  base.policy.priority = priority;
  const SimulationResult optimized = sim::simulate(workload, base);
  const SimulationResult reference = sim::simulate_with(
      workload, base,
      std::make_unique<ReferenceConservativeScheduler>(
          ConservativeConfig{priority, dynamic}));
  expect_identical_schedules(optimized, reference);
}

TEST(SchedulerDeterminism, StaticConservativeMatchesSeedAlgorithm) {
  for (const std::uint64_t seed : {11u, 12u}) {
    const Workload w = workload::generate_small_workload(seed, 400, 128, days(10));
    run_and_compare(w, /*dynamic=*/false, PriorityKind::Fairshare);
    run_and_compare(w, /*dynamic=*/false, PriorityKind::Fcfs);
  }
}

TEST(SchedulerDeterminism, DynamicConservativeMatchesSeedAlgorithm) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const Workload w = workload::generate_small_workload(seed, 400, 128, days(10));
    run_and_compare(w, /*dynamic=*/true, PriorityKind::Fairshare);
    run_and_compare(w, /*dynamic=*/true, PriorityKind::Fcfs);
  }
}

TEST(SchedulerDeterminism, HeavyLoadSmallMachine) {
  // A saturated machine maximizes queue depth, reservation churn and
  // compression cascades.
  const Workload w = workload::generate_small_workload(31, 500, 32, days(5));
  run_and_compare(w, /*dynamic=*/false, PriorityKind::Fairshare);
  run_and_compare(w, /*dynamic=*/true, PriorityKind::Fairshare);
}

TEST(SchedulerDeterminism, WithRuntimeLimitSegmentation) {
  sim::EngineConfig config;
  config.policy.max_runtime = hours(12);
  const Workload w = workload::generate_small_workload(41, 300, 64, days(7));
  run_and_compare(w, /*dynamic=*/false, PriorityKind::Fairshare, config);
  run_and_compare(w, /*dynamic=*/true, PriorityKind::Fairshare, config);
}

TEST(SchedulerDeterminism, WithWclKills) {
  sim::EngineConfig config;
  config.wcl_enforcement = sim::WclEnforcement::KillIfNeeded;
  const Workload w = workload::generate_small_workload(51, 300, 64, days(7));
  run_and_compare(w, /*dynamic=*/false, PriorityKind::Fairshare, config);
  run_and_compare(w, /*dynamic=*/true, PriorityKind::Fairshare, config);
}

TEST(SchedulerDeterminism, ChainedSegments) {
  sim::EngineConfig config;
  config.policy.max_runtime = hours(8);
  config.segment_arrival = sim::SegmentArrival::Chained;
  const Workload w = workload::generate_small_workload(61, 250, 64, days(7));
  run_and_compare(w, /*dynamic=*/false, PriorityKind::Fairshare, config);
}

}  // namespace
}  // namespace psched
