// psched-lint fixture tests: each contract rule fires on its seeded violation
// fixture, stays silent on the compliant twin, honors allow() suppressions
// with reasons, and rejects malformed suppressions. The full-tree run is
// pinned separately by the psched_lint.tree ctest (tool exit status).

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "psched_lint/lint.hpp"

namespace {

using psched::lint::Finding;
using psched::lint::Rule;

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(PSCHED_SOURCE_DIR) / "tests" / "lint_fixtures" / name;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return psched::lint::lint_paths({fixture(name)});
}

std::size_t count_rule(const std::vector<Finding>& findings, Rule rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [rule](const Finding& f) { return f.rule == rule; }));
}

std::vector<int> lines_of(const std::vector<Finding>& findings, Rule rule) {
  std::vector<int> lines;
  for (const Finding& f : findings)
    if (f.rule == rule) lines.push_back(f.line);
  return lines;
}

TEST(LintRawRng, FiresOnViolations) {
  const auto findings = lint_fixture("raw_rng_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kRawRng), 4u);
  EXPECT_EQ(lines_of(findings, Rule::kRawRng), (std::vector<int>{6, 10, 15, 16}));
}

TEST(LintRawRng, SilentOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("raw_rng_clean.cpp").empty());
}

TEST(LintRawRng, SanctionedFileIsExempt) {
  // The fixture mirrors the sanctioned suffix src/util/rng.cpp: full of raw
  // randomness, yet exempt because it IS the sanctioned implementation.
  EXPECT_TRUE(lint_fixture("src/util/rng.cpp").empty());
}

TEST(LintWallClock, FiresOnViolations) {
  const auto findings = lint_fixture("wall_clock_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kWallClock), 3u);
  EXPECT_EQ(lines_of(findings, Rule::kWallClock), (std::vector<int>{6, 11, 15}));
}

TEST(LintWallClock, SilentOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("wall_clock_clean.cpp").empty());
}

TEST(LintParallelAccum, FiresOnViolations) {
  const auto findings = lint_fixture("parallel_accum_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kParallelFpAccum), 2u);
  EXPECT_EQ(lines_of(findings, Rule::kParallelFpAccum), (std::vector<int>{16, 22}));
}

TEST(LintParallelAccum, SilentOnCompliantTwin) {
  // Per-index writes in parallel lambdas, serial reductions, and accumulating
  // lambdas never handed to the pool are all allowed.
  EXPECT_TRUE(lint_fixture("parallel_accum_clean.cpp").empty());
}

TEST(LintSchedulerClone, FiresOnMissingOverride) {
  const auto findings = lint_fixture("scheduler_clone_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kSchedulerClone), 1u);
  EXPECT_EQ(lines_of(findings, Rule::kSchedulerClone), (std::vector<int>{12}));
  EXPECT_NE(findings.front().message.find("GreedyNoClone"), std::string::npos);
}

TEST(LintSchedulerClone, SilentOnCompliantTwin) {
  // Overriding policies, SchedulerContext implementations, and base-less
  // classes are all fine.
  EXPECT_TRUE(lint_fixture("scheduler_clone_clean.cpp").empty());
}

TEST(LintRawFileWrite, FiresOnViolations) {
  const auto findings = lint_fixture("raw_file_write_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kRawFileWrite), 3u);
  EXPECT_EQ(lines_of(findings, Rule::kRawFileWrite), (std::vector<int>{9, 14, 19}));
}

TEST(LintRawFileWrite, SilentOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("raw_file_write_clean.cpp").empty());
}

TEST(LintUnorderedIter, FiresOnViolations) {
  const auto findings = lint_fixture("unordered_iter_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kUnorderedIter), 2u);
  EXPECT_EQ(lines_of(findings, Rule::kUnorderedIter), (std::vector<int>{8, 14}));
}

TEST(LintUnorderedIter, SilentOnCompliantTwin) {
  EXPECT_TRUE(lint_fixture("unordered_iter_clean.cpp").empty());
}

TEST(LintUnorderedIter, SeesDeclarationsInSiblingHeader) {
  // The member is declared in member_iter.hpp; the range-for lives in the
  // .cpp. lint_paths pairs them automatically.
  const auto findings = lint_fixture("member_iter.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kUnorderedIter), 1u);
  EXPECT_EQ(lines_of(findings, Rule::kUnorderedIter), (std::vector<int>{9}));
}

TEST(LintRawFaultEnv, FiresOnViolations) {
  const auto findings = lint_fixture("raw_fault_env_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kRawFaultEnv), 2u);
  // Line 12: the literal sits one line below its getenv( — still caught.
  EXPECT_EQ(lines_of(findings, Rule::kRawFaultEnv), (std::vector<int>{7, 12}));
}

TEST(LintRawFaultEnv, SilentOnCompliantTwin) {
  // Reading other PSCHED_* knobs, *setting* PSCHED_FAULTS, and mentioning it
  // in prose literals are all allowed.
  EXPECT_TRUE(lint_fixture("raw_fault_env_clean.cpp").empty());
}

TEST(LintRawFaultEnv, SanctionedRegistryIsExempt) {
  // Mirrors the sanctioned suffix src/util/fault.cpp — the registry is the
  // one reader of the arming environment.
  EXPECT_TRUE(lint_fixture("src/util/fault.cpp").empty());
}

TEST(LintRawTraceEnv, FiresOnViolations) {
  const auto findings = lint_fixture("raw_trace_env_violation.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kRawTraceEnv), 2u);
  // Line 13: the literal sits one line below its getenv( — still caught.
  EXPECT_EQ(lines_of(findings, Rule::kRawTraceEnv), (std::vector<int>{8, 13}));
}

TEST(LintRawTraceEnv, SilentOnCompliantTwin) {
  // Reading other PSCHED_* knobs, *setting* PSCHED_TRACE, and mentioning it
  // in prose literals are all allowed.
  EXPECT_TRUE(lint_fixture("raw_trace_env_clean.cpp").empty());
}

TEST(LintRawTraceEnv, SanctionedRegistryIsExempt) {
  // Mirrors the sanctioned suffix src/obs/obs.cpp — the obs registry is the
  // one reader of the trace-arming environment.
  EXPECT_TRUE(lint_fixture("src/obs/obs.cpp").empty());
}

TEST(LintWallClock, SanctionedTraceClockIsExempt) {
  // Mirrors the sanctioned suffix src/obs/clock.cpp — the one trace timestamp
  // source; its steady_clock read never feeds simulation results.
  EXPECT_TRUE(lint_fixture("src/obs/clock.cpp").empty());
}

TEST(LintSuppressions, WellFormedSuppressionsSilenceFindings) {
  // Same-line and own-line placements, each with a reason: file lints clean.
  EXPECT_TRUE(lint_fixture("suppressed_ok.cpp").empty());
}

TEST(LintSuppressions, MissingReasonIsRejectedAndDoesNotSuppress) {
  const auto findings = lint_fixture("suppression_missing_reason.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kBadSuppression), 2u);
  // ...and the underlying wall-clock findings survive.
  EXPECT_EQ(count_rule(findings, Rule::kWallClock), 2u);
}

TEST(LintSuppressions, UnknownRuleIsRejectedAndDoesNotSuppress) {
  const auto findings = lint_fixture("suppression_unknown_rule.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kBadSuppression), 1u);
  EXPECT_NE(findings.front().message.find("wallclock"), std::string::npos);
  EXPECT_EQ(count_rule(findings, Rule::kWallClock), 1u);
}

TEST(LintSuppressions, SuppressionForOtherRuleDoesNotApply) {
  psched::lint::FileInput input;
  input.path = "inline.cpp";
  input.content =
      "long stamp() {\n"
      "  return time(0);  // psched-lint: allow(raw-rng): wrong rule on purpose\n"
      "}\n";
  const auto findings = psched::lint::lint_file(input);
  EXPECT_EQ(count_rule(findings, Rule::kWallClock), 1u);
}

TEST(LintReport, FormatIsFileLineRuleMessage) {
  const auto findings = lint_fixture("scheduler_clone_violation.cpp");
  ASSERT_EQ(findings.size(), 1u);
  const std::string report = psched::lint::format_finding(findings.front());
  EXPECT_NE(report.find("scheduler_clone_violation.cpp:12: [scheduler-clone]"),
            std::string::npos);
}

TEST(LintTree, RealTreeIsClean) {
  // The contract the whole PR rests on: the production tree has zero
  // findings. (Also enforced as the psched_lint.tree ctest via the CLI.)
  const auto findings = psched::lint::lint_tree(PSCHED_SOURCE_DIR);
  for (const Finding& f : findings) ADD_FAILURE() << psched::lint::format_finding(f);
}

TEST(LintRuleNames, RoundTrip) {
  for (const char* name : {"raw-rng", "wall-clock", "parallel-fp-accum", "scheduler-clone",
                           "raw-file-write", "unordered-iter", "raw-fault-env",
                           "raw-trace-env"}) {
    Rule rule;
    ASSERT_TRUE(psched::lint::rule_from_name(name, rule)) << name;
    EXPECT_STREQ(psched::lint::rule_name(rule), name);
  }
  Rule rule;
  EXPECT_FALSE(psched::lint::rule_from_name("bad-suppression", rule));
  EXPECT_FALSE(psched::lint::rule_from_name("nope", rule));
}

}  // namespace
