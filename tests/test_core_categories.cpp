#include "core/categories.hpp"

#include <gtest/gtest.h>

namespace psched {
namespace {

TEST(WidthCategory, BinBoundaries) {
  EXPECT_EQ(width_category(1), 0);
  EXPECT_EQ(width_category(2), 1);
  EXPECT_EQ(width_category(3), 2);
  EXPECT_EQ(width_category(4), 2);
  EXPECT_EQ(width_category(5), 3);
  EXPECT_EQ(width_category(8), 3);
  EXPECT_EQ(width_category(16), 4);
  EXPECT_EQ(width_category(17), 5);
  EXPECT_EQ(width_category(32), 5);
  EXPECT_EQ(width_category(64), 6);
  EXPECT_EQ(width_category(128), 7);
  EXPECT_EQ(width_category(256), 8);
  EXPECT_EQ(width_category(512), 9);
  EXPECT_EQ(width_category(513), 10);
  EXPECT_EQ(width_category(4096), 10);
  EXPECT_THROW(width_category(0), std::invalid_argument);
}

TEST(LengthCategory, BinBoundaries) {
  EXPECT_EQ(length_category(0), 0);
  EXPECT_EQ(length_category(minutes(15) - 1), 0);
  EXPECT_EQ(length_category(minutes(15)), 1);
  EXPECT_EQ(length_category(hours(1) - 1), 1);
  EXPECT_EQ(length_category(hours(1)), 2);
  EXPECT_EQ(length_category(hours(4)), 3);
  EXPECT_EQ(length_category(hours(8)), 4);
  EXPECT_EQ(length_category(hours(16)), 5);
  EXPECT_EQ(length_category(hours(24)), 6);
  EXPECT_EQ(length_category(days(2) - 1), 6);
  EXPECT_EQ(length_category(days(2)), 7);
  EXPECT_EQ(length_category(days(100)), 7);
  EXPECT_THROW(length_category(-1), std::invalid_argument);
}

TEST(Categories, LabelsMatchPaperTables) {
  EXPECT_EQ(width_category_label(0), "1");
  EXPECT_EQ(width_category_label(2), "3-4");
  EXPECT_EQ(width_category_label(10), "513+");
  EXPECT_EQ(length_category_label(0), "0-15 mins");
  EXPECT_EQ(length_category_label(7), "2+ days");
  EXPECT_THROW(width_category_label(11), std::out_of_range);
  EXPECT_THROW(length_category_label(-1), std::out_of_range);
}

TEST(Categories, BoundsRoundTrip) {
  // Every category's bounds map back to that category.
  for (int c = 0; c < kWidthCategories; ++c) {
    const WidthBounds b = width_category_bounds(c, 2048);
    EXPECT_EQ(width_category(b.lo), c);
    EXPECT_EQ(width_category(b.hi), c);
  }
  for (int c = 0; c < kLengthCategories; ++c) {
    const LengthBounds b = length_category_bounds(c);
    EXPECT_EQ(length_category(b.lo), c);
    EXPECT_EQ(length_category(b.hi - 1), c);
  }
}

TEST(Categories, WidthBoundsUseSystemSize) {
  const WidthBounds open = width_category_bounds(kWidthCategories - 1, 1524);
  EXPECT_EQ(open.lo, 513);
  EXPECT_EQ(open.hi, 1524);
}

TEST(Categories, LabelArraysComplete) {
  EXPECT_EQ(width_labels().size(), static_cast<std::size_t>(kWidthCategories));
  EXPECT_EQ(length_labels().size(), static_cast<std::size_t>(kLengthCategories));
}

}  // namespace
}  // namespace psched
