#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::sim {
namespace {

using test::make_job;
using test::make_workload;

TEST(Engine, EmptyWorkloadCompletes) {
  const Workload w{{}, 8};
  const SimulationResult r = simulate(w, EngineConfig{});
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.makespan(), 0);
}

TEST(Engine, RunCallableOnce) {
  const Workload w = make_workload(4, {make_job(0, 10, 1)});
  SimulationEngine engine(w, EngineConfig{});
  engine.run();
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(Engine, RecordsSnapshotsPerArrival) {
  const Workload w = make_workload(4, {make_job(0, 10, 1), make_job(5, 10, 2)});
  const SimulationResult r = simulate(w, EngineConfig{});
  ASSERT_EQ(r.snapshots.size(), 2u);
  EXPECT_EQ(r.snapshots[0].id, 0);
  EXPECT_EQ(r.snapshots[0].at, 0);
  // Snapshot includes the arriving job itself.
  ASSERT_EQ(r.snapshots[0].waiting.size(), 1u);
  EXPECT_EQ(r.snapshots[0].waiting[0].id, 0);
  // Second arrival sees the first job running.
  ASSERT_EQ(r.snapshots[1].running.size(), 1u);
  EXPECT_EQ(r.snapshots[1].running[0].nodes, 1);
  EXPECT_EQ(r.snapshots[1].running[0].remaining, 5);
}

TEST(Engine, SnapshotsDisabled) {
  const Workload w = make_workload(4, {make_job(0, 10, 1)});
  EngineConfig config;
  config.record_snapshots = false;
  const SimulationResult r = simulate(w, config);
  EXPECT_TRUE(r.snapshots.empty());
}

TEST(Engine, FairshareAccountsRunningJobs) {
  // One user monopolizes day 1; the other user's same-day submission is
  // prioritized after the decay boundary publishes usage.
  EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;
  config.policy.starvation_delay = kNoTime;
  const Workload w = make_workload(
      2, {
             make_job(0, days(1) + 100, 2, /*user=*/0),
             make_job(100, hours(1), 2, /*user=*/0),
             make_job(200, hours(1), 2, /*user=*/1),
         });
  const SimulationResult r = simulate(w, config);
  // At the completion (t = 1d+100s) user 0 has a day of published usage.
  EXPECT_LT(r.records[2].start, r.records[1].start);
}

TEST(Engine, MaxRuntimeSplitsAtOriginalSubmitByDefault) {
  EngineConfig config;
  config.policy.max_runtime = hours(72);
  const Workload w = make_workload(8, {make_job(0, hours(100), 2), make_job(5, hours(10), 2)});
  const SimulationResult r = simulate(w, config);
  ASSERT_EQ(r.records.size(), 3u);  // 2 segments + 1 unsplit
  ASSERT_EQ(r.original_job_count, 2u);
  ASSERT_EQ(r.segments_of_original[0].size(), 2u);
  ASSERT_EQ(r.segments_of_original[1].size(), 1u);
  const JobRecord& seg0 = r.records[static_cast<std::size_t>(r.segments_of_original[0][0])];
  const JobRecord& seg1 = r.records[static_cast<std::size_t>(r.segments_of_original[0][1])];
  EXPECT_EQ(seg0.job.submit, 0);
  EXPECT_EQ(seg1.job.submit, 0);  // preprocessing: both at original submit
  EXPECT_EQ(seg0.job.runtime + seg1.job.runtime, hours(100));
  test::expect_no_overallocation(r);
}

TEST(Engine, MaxRuntimeChainedMode) {
  EngineConfig config;
  config.policy.max_runtime = hours(72);
  config.segment_arrival = SegmentArrival::Chained;
  const Workload w = make_workload(8, {make_job(0, hours(100), 8)});
  const SimulationResult r = simulate(w, config);
  ASSERT_EQ(r.records.size(), 2u);
  const JobRecord& seg0 = r.records[0];
  const JobRecord& seg1 = r.records[1];
  // Chained: segment 1 submitted exactly when segment 0 completes.
  EXPECT_EQ(seg1.job.submit, seg0.finish);
  EXPECT_GE(seg1.start, seg0.finish);
  EXPECT_EQ(seg0.finish - seg0.start, hours(72));
  EXPECT_EQ(seg1.finish - seg1.start, hours(28));
}

TEST(Engine, ChainedSegmentsNeverOverlap) {
  EngineConfig config;
  config.policy.kind = PolicyKind::Conservative;
  config.policy.max_runtime = hours(48);
  config.segment_arrival = SegmentArrival::Chained;
  const Workload w = psched::workload::generate_small_workload(73, 150, 32, days(4));
  const SimulationResult r = simulate(w, config);
  for (std::size_t original = 0; original < r.segments_of_original.size(); ++original) {
    const auto& segments = r.segments_of_original[original];
    for (std::size_t s = 1; s < segments.size(); ++s) {
      const JobRecord& prev = r.records[static_cast<std::size_t>(segments[s - 1])];
      const JobRecord& next = r.records[static_cast<std::size_t>(segments[s])];
      EXPECT_GE(next.start, prev.finish);
    }
  }
}

TEST(Engine, WclAlwaysTruncatesRuntime) {
  EngineConfig config;
  config.wcl_enforcement = WclEnforcement::Always;
  const Workload w = make_workload(4, {make_job(0, 1000, 2, 0, /*wcl=*/300)});
  const SimulationResult r = simulate(w, config);
  EXPECT_TRUE(r.records[0].killed_at_wcl);
  EXPECT_EQ(r.records[0].finish, 300);
}

TEST(Engine, WclNeverLetsJobsRunLong) {
  const Workload w = make_workload(4, {make_job(0, 1000, 2, 0, /*wcl=*/300)});
  const SimulationResult r = simulate(w, EngineConfig{});
  EXPECT_FALSE(r.records[0].killed_at_wcl);
  EXPECT_EQ(r.records[0].finish, 1000);
}

TEST(Engine, WclKillIfNeededSparesIdleMachine) {
  // Nobody wants the nodes: the over-running job survives to its runtime.
  EngineConfig config;
  config.wcl_enforcement = WclEnforcement::KillIfNeeded;
  const Workload w = make_workload(4, {make_job(0, 1000, 2, 0, /*wcl=*/300)});
  const SimulationResult r = simulate(w, config);
  EXPECT_FALSE(r.records[0].killed_at_wcl);
  EXPECT_EQ(r.records[0].finish, 1000);
}

TEST(Engine, WclKillIfNeededKillsWhenJobWaits) {
  EngineConfig config;
  config.wcl_enforcement = WclEnforcement::KillIfNeeded;
  const Workload w = make_workload(4, {
                                          make_job(0, 1000, 4, 0, /*wcl=*/300),
                                          make_job(10, 50, 4, 1),  // wants the whole machine
                                      });
  const SimulationResult r = simulate(w, config);
  EXPECT_TRUE(r.records[0].killed_at_wcl);
  EXPECT_EQ(r.records[0].finish, 300);
  EXPECT_EQ(r.records[1].start, 300);
}

TEST(Engine, OverrunningJobsBlockConservativeReservations) {
  // Covered at the scheduler level too; here we assert engine-level sanity
  // with several overrunners at once.
  EngineConfig config;
  config.policy.kind = PolicyKind::Conservative;
  WorkloadBuilder edit(psched::workload::generate_small_workload(79, 120, 24, days(3)));
  // Force a batch of under-estimates.
  for (std::size_t i = 0; i < edit.jobs.size(); i += 7)
    edit.jobs[i].wcl = edit.jobs[i].runtime / 2 + 1;
  const Workload w = edit.build();
  const SimulationResult r = simulate(w, config);
  test::expect_no_overallocation(r);
  test::expect_complete_and_causal(r);
}

TEST(Engine, LocIntegralNonNegativeAndBounded) {
  const Workload w = psched::workload::generate_small_workload(83, 200, 32, days(5));
  const SimulationResult r = simulate(w, EngineConfig{});
  EXPECT_GE(r.loc_proc_seconds, 0.0);
  const double cell = static_cast<double>(r.makespan()) * 32.0;
  EXPECT_LE(r.loc_proc_seconds, cell);
  EXPECT_LE(r.busy_proc_seconds, cell + 1e-6);
}

TEST(Engine, CustomSchedulerInjection) {
  // A trivial greedy scheduler driven through simulate_with.
  class Greedy final : public Scheduler {
   public:
    std::string name() const override { return "greedy"; }
    void on_submit(JobId id) override { waiting_.push_back(id); }
    void on_complete(JobId) override {}
    void collect_starts(std::vector<JobId>& starts) override {
      NodeCount free = ctx().free_nodes();
      std::vector<JobId> keep;
      for (const JobId id : waiting_) {
        if (ctx().job(id).nodes <= free) {
          starts.push_back(id);
          free -= ctx().job(id).nodes;
        } else {
          keep.push_back(id);
        }
      }
      waiting_ = std::move(keep);
    }

   private:
    std::vector<JobId> waiting_;
  };

  const Workload w = psched::workload::generate_small_workload(89, 100, 16, days(2));
  EngineConfig config;
  config.policy.name = "greedy";
  const SimulationResult r = simulate_with(w, config, std::make_unique<Greedy>());
  EXPECT_EQ(r.policy_name, "greedy");
  test::expect_no_overallocation(r);
  test::expect_complete_and_causal(r);
}

}  // namespace
}  // namespace psched::sim
