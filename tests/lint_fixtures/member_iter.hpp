// Fixture header: the unordered member is declared here; the iteration lives
// in member_iter.cpp. The linter must see through the .cpp/.hpp pairing.
#pragma once
#include <string>
#include <unordered_map>

class UsageTable {
 public:
  void add(const std::string& user, double usage);
  double total() const;

 private:
  std::unordered_map<std::string, double> usage_;
};
