// Fixture: a policy without the clone() override silently loses fork support
// (the engine's fork_for_arrival would get the nullptr default).
#include <memory>
#include <string>

struct Scheduler {
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<Scheduler> clone() const { return nullptr; }
};

class GreedyNoClone final : public Scheduler {  // line 12: missing clone()
 public:
  std::string name() const override { return "greedy"; }
};
