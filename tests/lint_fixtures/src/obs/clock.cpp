// Mirrors the sanctioned suffix src/obs/clock.cpp: the one trace timestamp
// source; span timing never feeds simulation results.
#include <chrono>

unsigned long long trace_now_us() {
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
