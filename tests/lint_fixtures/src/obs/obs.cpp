// Mirrors the sanctioned suffix src/obs/obs.cpp: the obs registry itself is
// the one place allowed to read the trace-arming environment.
#include <cstdlib>

const char* trace_request() { return std::getenv("PSCHED_TRACE"); }
