// Fixture: mirrors the sanctioned path suffix src/util/rng.cpp — the one
// file allowed to touch <random> directly. Everything here must be exempt.
#include <random>

unsigned sanctioned_entropy() {
  std::random_device device;
  std::mt19937_64 engine;
  engine.seed(device());
  return static_cast<unsigned>(engine());
}
