// Mirrors the sanctioned suffix src/util/fault.cpp: the fault registry itself
// is the one place allowed to read the arming environment.
#include <cstdlib>

const char* armed_specs() { return std::getenv("PSCHED_FAULTS"); }
