// Fixture: compliant twin — keyed lookups are fine, and iteration happens
// over a sorted key vector, never over the table itself.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

void dump(const std::unordered_map<int, double>& usage, std::vector<int> keys) {
  std::sort(keys.begin(), keys.end());
  for (const int key : keys) {  // deterministic: sorted keys drive the order
    const auto it = usage.find(key);
    if (it != usage.end()) std::printf("%d %f\n", key, it->second);
  }
}

bool contains(const std::unordered_map<int, double>& usage, int key) {
  return usage.count(key) != 0;  // point lookup, no iteration
}
