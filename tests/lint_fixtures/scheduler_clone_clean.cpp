// Fixture: compliant twin — the override is present; classes deriving from
// other bases (including SchedulerContext) are out of the rule's scope.
#include <memory>
#include <string>

struct Scheduler {
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<Scheduler> clone() const { return nullptr; }
};

struct SchedulerContext {
  virtual ~SchedulerContext() = default;
};

class GreedyWithClone final : public Scheduler {
 public:
  std::string name() const override { return "greedy"; }
  std::unique_ptr<Scheduler> clone() const override {
    return std::make_unique<GreedyWithClone>(*this);
  }
};

class FakeContext final : public SchedulerContext {};  // context, not a policy

class Unrelated {  // no base clause at all
 public:
  int clone_count = 0;
};
