// Compliant twin: other PSCHED_* knobs are fair game (only the fault-arming
// variables are registry-owned), setting the variables is fine (that is how
// harnesses arm child processes), and a literal that merely mentions
// PSCHED_FAULTS without an environment read is prose, not a violation.
#include <cstdlib>

const char* pool_size() { return std::getenv("PSCHED_THREADS"); }

void arm_child() { setenv("PSCHED_FAULTS", "journal.open:errno=EACCES", 1); }

const char* hint() { return "set PSCHED_FAULTS=point:errno=EIO to arm a fault"; }
