// Fixture: compliant twin — durations and simulation time are fine; only
// clock *reads* are contract violations.
#include <chrono>

long two_seconds() { return std::chrono::milliseconds(2000).count(); }

struct FakeEngine {
  long now_ = 0;
  long now() const { return now_; }  // simulation time: the only time
};

long simulated(const FakeEngine& engine) { return engine.now(); }

// Members named like the C functions are not clock reads.
struct Item {
  long time_ = 0;
  long time() const { return time_; }
};
long member_access(const Item& item) { return item.time(); }
