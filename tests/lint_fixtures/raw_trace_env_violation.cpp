// Fixture: reads the trace-arming environment directly instead of asking the
// obs registry. PSCHED_TRACE is read exactly once at static init by
// src/obs/obs.cpp; a later getenv sees a stale/diverging arming view and
// breaks the traced-vs-untraced byte-identity contract.
#include <cstdlib>

bool tracing_requested() {
  return std::getenv("PSCHED_TRACE") != nullptr;
}

const char* trace_destination() {
  return getenv(
      "PSCHED_TRACE");
}
