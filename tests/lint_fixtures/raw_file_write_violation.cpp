// Fixture: raw write paths a crash can tear — all three spellings.
#include <cstdio>
#include <fstream>
#include <string>

int fd_open(const char* path);

void write_results(const std::string& path) {
  std::ofstream out(path);  // line 9: plain ofstream
  out << "cells\n";
}

void write_c(const char* path) {
  FILE* f = fopen(path, "w");  // line 14: fopen
  if (f != nullptr) fclose(f);
}

int write_fd(const char* path) {
  return ::open(path, 1);  // line 19: raw ::open
}
