// Fixture: reads the fault-arming environment directly instead of asking the
// registry. PSCHED_FAULTS is parsed exactly once at static init by
// src/util/fault.cpp; a later getenv sees a stale/diverging view.
#include <cstdlib>

bool chaos_is_armed() {
  return std::getenv("PSCHED_FAULTS") != nullptr;
}

const char* report_path() {
  return getenv(
      "PSCHED_FAULTS_REPORT");
}
