// Compliant twin: other PSCHED_* knobs are fair game (only the trace-arming
// variable is registry-owned), setting it is fine (that is how harnesses arm
// child processes), and a literal that merely mentions PSCHED_TRACE without
// an environment read is prose, not a violation.
#include <cstdlib>

const char* pool_size() { return std::getenv("PSCHED_THREADS"); }

void arm_child() { setenv("PSCHED_TRACE", "trace.json", 1); }

const char* hint() { return "set PSCHED_TRACE=trace.json to export a trace"; }
