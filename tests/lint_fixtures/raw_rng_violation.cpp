// Fixture: every banned randomness source. Never compiled — scanned by
// tests/test_lint.cpp.
#include <random>

int entropy() {
  return rand() % 6;  // line 6: C rand()
}

unsigned hardware_seed() {
  std::random_device device;  // line 10: nondeterministic device
  return device();
}

double unseeded_draw() {
  std::mt19937 gen;  // line 15: unseeded engine
  std::mt19937_64 wide;  // line 16: unseeded engine
  return static_cast<double>(gen() + wide());
}
