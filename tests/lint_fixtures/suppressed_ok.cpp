// Fixture: every violation here carries a well-formed suppression with a
// reason — the file must lint clean. Exercises both placements.
#include <cstdio>
#include <unordered_map>

double count_all(const std::unordered_map<int, double>& table) {
  double n = 0.0;
  // Own-line form: applies to the next line carrying code.
  // psched-lint: allow(unordered-iter): order-insensitive count, result does not depend on order
  for (const auto& entry : table) n += entry.first >= 0 ? 1.0 : 0.0;
  return n;
}

long stamp() {
  return static_cast<long>(time(nullptr));  // psched-lint: allow(wall-clock): log banner only, never feeds results
}
