// Fixture: compliant twin — parallel lambdas write per-index slots only; the
// reduction runs serially afterwards (and serial compound assignment is fine).
#include <cstddef>
#include <vector>

namespace util {
void parallel_for(std::size_t n, const void* fn);
}

double sweep(const double* values, std::size_t n) {
  std::vector<double> slots(n, 0.0);
  const auto compute_one = [&](std::size_t i) {
    slots[i] = values[i] * 2.0;  // per-index write: deterministic at any --jobs
  };
  util::parallel_for(n, &compute_one);

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += slots[i];  // serial reduction
  return total;
}

// A lambda that accumulates but is never handed to the pool is serial code.
double serial_lambda(const std::vector<double>& values) {
  double total = 0.0;
  const auto accumulate = [&](double v) { total += v; };
  for (double v : values) accumulate(v);
  return total;
}
