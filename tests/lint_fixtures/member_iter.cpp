// Fixture: iterates a container whose unordered-ness is only visible in the
// sibling header — the cross-file case conservative_scheduler.cpp lives in.
#include "member_iter.hpp"

void UsageTable::add(const std::string& user, double usage) { usage_[user] += usage; }

double UsageTable::total() const {
  double sum = 0.0;
  for (const auto& entry : usage_) sum += entry.second;  // line 9: FP order varies
  return sum;
}
