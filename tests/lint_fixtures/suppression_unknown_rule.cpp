// Fixture: allow() naming a rule that does not exist — typos must fail
// loudly instead of silently suppressing nothing.
#include <ctime>

long stamp() {
  return static_cast<long>(time(nullptr));  // psched-lint: allow(wallclock): typo in the rule name
}
