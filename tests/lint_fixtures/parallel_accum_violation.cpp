// Fixture: the serial-reduction contract. A named lambda with compound
// accumulation handed to parallel_for, and an inline submit lambda doing the
// same — both are either data races or nondeterministic FP reduction orders.
#include <cstddef>

namespace util {
void parallel_for(std::size_t n, const void* fn);
struct Pool {
  void submit(const void* fn);
};
}  // namespace util

double sweep(const double* values, std::size_t n, util::Pool& pool) {
  double total = 0.0;
  const auto accumulate = [&](std::size_t i) {
    total += values[i];  // line 16: racy FP accumulation
  };
  util::parallel_for(n, &accumulate);

  double other = 0.0;
  pool.submit([&] {
    other *= 2.0;  // line 22: compound assignment in a submit lambda
  });
  return total + other;
}
