// Fixture: a suppression without a reason is rejected — it must surface as a
// bad-suppression finding AND leave the underlying violation unsuppressed.
#include <ctime>

long stamp() {
  return static_cast<long>(time(nullptr));  // psched-lint: allow(wall-clock)
}

long stamp2() {
  // psched-lint: allow(wall-clock):
  return static_cast<long>(time(nullptr));
}
