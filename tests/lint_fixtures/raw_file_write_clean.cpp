// Fixture: compliant twin — reads are unrestricted, writes go through the
// durability layer.
#include <fstream>
#include <sstream>
#include <string>

namespace util {
void atomic_write_file(const std::string& path, const std::string& contents);
}

std::string read_back(const std::string& path) {
  std::ifstream in(path);  // reading is fine
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_results(const std::string& path, const std::string& body) {
  util::atomic_write_file(path, body);  // tmp + fsync + rename
}

struct Store {
  bool open_for_business = false;  // 'open' as an identifier is not ::open()
  void open(const std::string&) {}
};
