// Fixture: iterating unordered containers straight into output order.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

void dump(const std::unordered_map<int, double>& usage) {
  for (const auto& entry : usage) {  // line 8: nondeterministic order
    std::printf("%d %f\n", entry.first, entry.second);
  }
}

double first_weight(const std::unordered_set<std::string>& seen) {
  auto it = seen.begin();  // line 14: first element depends on hashing
  return it->size();
}
