// Fixture: wall-clock reads that would make results depend on host time.
#include <chrono>
#include <ctime>

long now_ns() {
  const auto stamp = std::chrono::system_clock::now();  // line 6: system_clock
  return stamp.time_since_epoch().count();
}

long unix_seconds() {
  return static_cast<long>(time(nullptr));  // line 11: C time()
}

long monotonic() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // line 15
}
