// Fixture: the compliant twin of raw_rng_violation.cpp. Seeded engines and
// util::Rng are the sanctioned forms.
#include <random>

#include "util/rng.hpp"

double draw(psched::util::Rng& rng) { return rng.uniform01(); }

double seeded_draw(unsigned long seed) {
  std::mt19937_64 gen(seed);  // explicitly seeded: reproducible, allowed
  std::mt19937 curly{seed};   // brace-seeded: allowed
  return static_cast<double>(gen() + curly());
}

psched::util::Rng forked(const psched::util::Rng& parent) { return parent.fork(7); }
