#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::metrics {
namespace {

std::vector<PolicyReport> two_reports() {
  const Workload w = psched::workload::generate_small_workload(113, 120, 32, days(3));
  std::vector<PolicyReport> reports;
  for (const PolicyKind kind : {PolicyKind::Cplant, PolicyKind::Conservative}) {
    sim::EngineConfig config;
    config.policy.kind = kind;
    reports.push_back(evaluate(sim::simulate(w, config)));
  }
  return reports;
}

TEST(Report, EvaluateBundlesBothMetricFamilies) {
  const std::vector<PolicyReport> reports = two_reports();
  for (const PolicyReport& r : reports) {
    EXPECT_FALSE(r.policy.empty());
    EXPECT_EQ(r.standard.job_count, 120u);
    EXPECT_EQ(r.fairness.fair_start.size(), 120u);
  }
  EXPECT_NE(reports[0].policy, reports[1].policy);
}

TEST(Report, FairnessTableHasOneRowPerPolicy) {
  const auto reports = two_reports();
  const util::TextTable table = fairness_summary_table(reports);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cell(0, 0), reports[0].policy);
  EXPECT_EQ(table.cell(1, 0), reports[1].policy);
  // Percent columns render as percentages.
  EXPECT_NE(table.cell(0, 1).find('%'), std::string::npos);
}

TEST(Report, PerformanceTableColumns) {
  const auto reports = two_reports();
  const util::TextTable table = performance_summary_table(reports);
  EXPECT_EQ(table.columns(), 7u);
  EXPECT_EQ(table.rows(), 2u);
  const std::string rendered = table.str();
  EXPECT_NE(rendered.find("avg_turnaround_s"), std::string::npos);
  EXPECT_NE(rendered.find("loss_of_capacity"), std::string::npos);
}

TEST(Report, WidthTablesHaveElevenRows) {
  const auto reports = two_reports();
  EXPECT_EQ(miss_by_width_table(reports).rows(), static_cast<std::size_t>(kWidthCategories));
  EXPECT_EQ(turnaround_by_width_table(reports).rows(),
            static_cast<std::size_t>(kWidthCategories));
  // First column enumerates the width labels in Table-1 order.
  const util::TextTable table = miss_by_width_table(reports);
  EXPECT_EQ(table.cell(0, 0), "1");
  EXPECT_EQ(table.cell(10, 0), "513+");
}

TEST(Report, CsvRenderingIsParseable) {
  const auto reports = two_reports();
  const std::string csv = fairness_summary_table(reports).csv();
  // header + 2 rows = 3 lines, comma-separated.
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(csv.find("policy,percent_unfair"), std::string::npos);
}

}  // namespace
}  // namespace psched::metrics
