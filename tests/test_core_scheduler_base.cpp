// Tests of the Scheduler base-class helpers (priority ordering, running-job
// profile construction) through a minimal fixture context.

#include <gtest/gtest.h>

#include <map>

#include "core/scheduler.hpp"
#include "test_helpers.hpp"

namespace psched {
namespace {

using test::make_job;

/// Minimal SchedulerContext with directly settable state.
class FakeContext final : public SchedulerContext {
 public:
  Time now() const override { return now_; }
  NodeCount total_nodes() const override { return total_; }
  NodeCount free_nodes() const override { return free_; }
  const Job& job(JobId id) const override { return jobs_.at(static_cast<std::size_t>(id)); }
  const std::vector<RunningView>& running() const override { return running_; }
  double user_usage(UserId user) const override {
    const auto it = usage_.find(user);
    return it == usage_.end() ? 0.0 : it->second;
  }
  double mean_positive_usage() const override {
    double total = 0.0;
    std::size_t n = 0;
    for (const auto& [user, value] : usage_)
      if (value > 0.0) {
        total += value;
        ++n;
      }
    return n ? total / static_cast<double>(n) : 0.0;
  }

  Time now_ = 0;
  NodeCount total_ = 16;
  NodeCount free_ = 16;
  std::vector<Job> jobs_;
  std::vector<RunningView> running_;
  std::map<UserId, double> usage_;
};

/// Expose the protected helpers for testing.
class ProbeScheduler final : public Scheduler {
 public:
  std::string name() const override { return "probe"; }
  void on_submit(JobId) override {}
  void on_complete(JobId) override {}
  void collect_starts(std::vector<JobId>&) override {}

  using Scheduler::add_running_to_profile;
  using Scheduler::priority_less;
  using Scheduler::sorted_by_priority;
};

class SchedulerBaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_.jobs_.push_back(make_job(10, 100, 2, /*user=*/0));  // id 0
    ctx_.jobs_.push_back(make_job(20, 100, 2, /*user=*/1));  // id 1
    ctx_.jobs_.push_back(make_job(20, 100, 2, /*user=*/2));  // id 2 (tie with 1)
    for (std::size_t i = 0; i < ctx_.jobs_.size(); ++i)
      ctx_.jobs_[i].id = static_cast<JobId>(i);
    probe_.attach(ctx_);
  }

  FakeContext ctx_;
  ProbeScheduler probe_;
};

TEST_F(SchedulerBaseTest, UnattachedSchedulerThrows) {
  ProbeScheduler detached;
  Profile profile(4, 0);
  EXPECT_THROW(detached.add_running_to_profile(profile), std::logic_error);
  // A single-element sort never invokes the comparator; two elements do.
  std::vector<JobId> ids{0, 1};
  EXPECT_THROW(detached.sorted_by_priority(ids, PriorityKind::Fcfs), std::logic_error);
}

TEST_F(SchedulerBaseTest, FcfsPriorityOrdersBySubmitThenId) {
  const auto order = probe_.sorted_by_priority({2, 1, 0}, PriorityKind::Fcfs);
  EXPECT_EQ(order, (std::vector<JobId>{0, 1, 2}));
}

TEST_F(SchedulerBaseTest, FairsharePriorityOrdersByUsage) {
  ctx_.usage_[0] = 5000.0;  // user 0 heavy
  ctx_.usage_[1] = 10.0;
  ctx_.usage_[2] = 100.0;
  const auto order = probe_.sorted_by_priority({0, 1, 2}, PriorityKind::Fairshare);
  EXPECT_EQ(order, (std::vector<JobId>{1, 2, 0}));
}

TEST_F(SchedulerBaseTest, FairshareTiesFallBackToSubmit) {
  // All users unknown (usage 0): fairshare degenerates to FCFS.
  const auto order = probe_.sorted_by_priority({2, 0, 1}, PriorityKind::Fairshare);
  EXPECT_EQ(order, (std::vector<JobId>{0, 1, 2}));
}

TEST_F(SchedulerBaseTest, PriorityLessIsStrictWeakOrdering) {
  ctx_.usage_[0] = 1.0;
  ctx_.usage_[1] = 1.0;
  const Job& a = ctx_.job(0);
  const Job& b = ctx_.job(1);
  EXPECT_FALSE(probe_.priority_less(a, a, PriorityKind::Fairshare));
  EXPECT_NE(probe_.priority_less(a, b, PriorityKind::Fairshare),
            probe_.priority_less(b, a, PriorityKind::Fairshare));
}

TEST_F(SchedulerBaseTest, RunningProfileUsesEstimatedEnds) {
  ctx_.now_ = 100;
  ctx_.running_.push_back({0, 4, 50, 150});   // ends (per WCL) at 150
  ctx_.running_.push_back({1, 8, 10, 90});    // over-running: est_end < now
  Profile profile(ctx_.total_nodes(), ctx_.now_);
  probe_.add_running_to_profile(profile);
  // At "now" both jobs occupy nodes (the over-runner is clamped forward).
  EXPECT_EQ(profile.free_at(100), 16 - 4 - 8);
  // After 150 only the over-runner's grace extension can remain.
  EXPECT_GE(profile.free_at(10'000), 12);
}

TEST_F(SchedulerBaseTest, OverrunGraceGrowsWithElapsedOverrun) {
  // The longer a job has over-run, the further out the profile assumes it
  // will run (exponential-backoff style), keeping timer storms bounded.
  ctx_.now_ = 10'000;
  ctx_.running_.push_back({0, 4, 0, 1'000});  // over-run by 9000 s
  Profile profile(ctx_.total_nodes(), ctx_.now_);
  probe_.add_running_to_profile(profile);
  EXPECT_LT(profile.free_at(10'000 + 8'000), 16);  // still assumed busy
  EXPECT_EQ(profile.free_at(10'000 + 10'000), 16); // released by then
}

}  // namespace
}  // namespace psched
