#include "core/runtime_limit.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace psched {
namespace {

using test::make_job;

TEST(RuntimeLimiter, DisabledPassesThrough) {
  const RuntimeLimiter limiter(kNoTime);
  EXPECT_FALSE(limiter.enabled());
  Job original = make_job(100, hours(200), 16);
  original.id = 7;
  EXPECT_EQ(limiter.segment_count(original), 1);
  const Job seg = limiter.make_segment(original, 0, 42, 100);
  EXPECT_EQ(seg.id, 42);
  EXPECT_EQ(seg.parent, 7);
  EXPECT_EQ(seg.runtime, hours(200));
  EXPECT_EQ(seg.segment_count, 1);
}

TEST(RuntimeLimiter, RejectsNonPositiveLimit) {
  EXPECT_THROW(RuntimeLimiter(0), std::invalid_argument);
  EXPECT_THROW(RuntimeLimiter(-7), std::invalid_argument);
}

TEST(RuntimeLimiter, SegmentCountCeiling) {
  const RuntimeLimiter limiter(hours(72));
  EXPECT_EQ(limiter.segment_count(make_job(0, hours(72), 1)), 1);
  EXPECT_EQ(limiter.segment_count(make_job(0, hours(72) + 1, 1)), 2);
  EXPECT_EQ(limiter.segment_count(make_job(0, hours(144), 1)), 2);
  EXPECT_EQ(limiter.segment_count(make_job(0, hours(145), 1)), 3);
  EXPECT_EQ(limiter.segment_count(make_job(0, minutes(5), 1)), 1);
}

TEST(RuntimeLimiter, SegmentRuntimesSumToOriginal) {
  const RuntimeLimiter limiter(hours(72));
  Job original = make_job(0, hours(200), 8, 3, hours(250));
  original.id = 11;
  const std::int32_t count = limiter.segment_count(original);
  ASSERT_EQ(count, 3);
  Time total = 0;
  for (std::int32_t s = 0; s < count; ++s) {
    const Job seg = limiter.make_segment(original, s, s, 0);
    total += seg.runtime;
    EXPECT_LE(seg.runtime, hours(72));
    EXPECT_LE(seg.wcl, hours(72));
    EXPECT_GT(seg.wcl, 0);
    EXPECT_EQ(seg.parent, 11);
    EXPECT_EQ(seg.segment, s);
    EXPECT_EQ(seg.segment_count, 3);
    EXPECT_EQ(seg.nodes, 8);
    EXPECT_EQ(seg.user, 3);
  }
  EXPECT_EQ(total, hours(200));
}

TEST(RuntimeLimiter, WclChunking) {
  const RuntimeLimiter limiter(hours(72));
  const Job original = make_job(0, hours(80), 4, 0, hours(100));
  const Job seg0 = limiter.make_segment(original, 0, 0, 0);
  const Job seg1 = limiter.make_segment(original, 1, 1, 0);
  EXPECT_EQ(seg0.wcl, hours(72));
  EXPECT_EQ(seg1.wcl, hours(28));  // remaining estimate
  EXPECT_EQ(seg0.runtime, hours(72));
  EXPECT_EQ(seg1.runtime, hours(8));
}

TEST(RuntimeLimiter, UnderestimatedWclGetsFloor) {
  const RuntimeLimiter limiter(hours(72));
  // User estimated 10 h but the job runs 100 h: trailing segments still get
  // a sane minimum WCL.
  const Job original = make_job(0, hours(100), 2, 0, hours(10));
  const Job seg1 = limiter.make_segment(original, 1, 1, 0);
  EXPECT_GE(seg1.wcl, RuntimeLimiter::kMinSegmentWcl);
}

TEST(RuntimeLimiter, BadSegmentIndexThrows) {
  const RuntimeLimiter limiter(hours(72));
  const Job original = make_job(0, hours(100), 2);
  EXPECT_THROW(limiter.make_segment(original, -1, 0, 0), std::out_of_range);
  EXPECT_THROW(limiter.make_segment(original, 2, 0, 0), std::out_of_range);
}

TEST(RuntimeLimiter, NextSegmentChains) {
  const RuntimeLimiter limiter(hours(72));
  Job original = make_job(50, hours(150), 4);
  original.id = 5;
  const Job seg0 = limiter.make_segment(original, 0, 0, 50);
  const auto seg1 = limiter.next_segment(original, seg0, 1000, 1);
  ASSERT_TRUE(seg1.has_value());
  EXPECT_EQ(seg1->submit, 1000);
  EXPECT_EQ(seg1->segment, 1);
  const auto seg2 = limiter.next_segment(original, *seg1, 2000, 2);
  ASSERT_TRUE(seg2.has_value());
  EXPECT_FALSE(limiter.next_segment(original, *seg2, 3000, 3).has_value());
}

TEST(SplitWorkload, PreprocessingMode) {
  const Workload original = test::make_workload(
      64, {make_job(0, hours(100), 4), make_job(10, hours(10), 8), make_job(20, hours(300), 2)});
  const Workload split = split_workload(original, hours(72));
  // 100h -> 2 segments, 10h -> 1, 300h -> 5.
  EXPECT_EQ(split.jobs.size(), 8u);
  for (const Job& seg : split.jobs) {
    EXPECT_LE(seg.runtime, hours(72));
    // All segments submitted at their original's submit time.
    EXPECT_EQ(seg.submit, original.jobs[static_cast<std::size_t>(seg.parent)].submit);
  }
  double original_work = original.total_proc_seconds();
  EXPECT_DOUBLE_EQ(split.total_proc_seconds(), original_work);
}

TEST(SplitWorkload, NoopWithoutLongJobs) {
  const Workload original =
      test::make_workload(64, {make_job(0, hours(10), 4), make_job(5, hours(72), 8)});
  const Workload split = split_workload(original, hours(72));
  EXPECT_EQ(split.jobs.size(), 2u);
  EXPECT_EQ(split.jobs[0].runtime, original.jobs[0].runtime);
}

}  // namespace
}  // namespace psched
