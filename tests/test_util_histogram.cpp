#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace psched::util {
namespace {

TEST(Histogram, BinsAndOverflow) {
  Histogram h({0.0, 1.0, 2.0, 4.0});
  h.add(0.5);
  h.add(1.0);   // boundary goes to the upper bin's [1,2)
  h.add(3.9);
  h.add(4.0);   // at last edge -> overflow
  h.add(-0.1);  // underflow
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h({0.0, 10.0});
  h.add(5.0, 2.5);
  h.add(6.0, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 3.0);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, LogEdgesSpanDecades) {
  const std::vector<double> edges = log_edges(1.0, 1000.0, 3);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_NEAR(edges[1], 10.0, 1e-9);
  EXPECT_NEAR(edges[2], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(edges[3], 1000.0);
  EXPECT_THROW(log_edges(0.0, 10.0, 2), std::invalid_argument);
}

TEST(Histogram, LinearEdges) {
  const std::vector<double> edges = linear_edges(0.0, 10.0, 5);
  ASSERT_EQ(edges.size(), 6u);
  EXPECT_DOUBLE_EQ(edges[2], 4.0);
}

TEST(Histogram2D, CountsCells) {
  Histogram2D h(linear_edges(0.0, 10.0, 2), linear_edges(0.0, 10.0, 2));
  h.add(1.0, 1.0);
  h.add(1.0, 1.0);
  h.add(7.0, 8.0);
  h.add(20.0, 1.0);  // out of range: dropped
  EXPECT_DOUBLE_EQ(h.count(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(0, 1), 0.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram2D, RenderShowsDensity) {
  Histogram2D h(linear_edges(0.0, 4.0, 4), linear_edges(0.0, 4.0, 2));
  for (int i = 0; i < 50; ++i) h.add(0.5, 0.5);
  h.add(3.5, 3.5);
  const std::string art = h.render("x", "y");
  EXPECT_NE(art.find('@'), std::string::npos);  // dense cell darkest
  EXPECT_NE(art.find("x (log bins"), std::string::npos);
}

}  // namespace
}  // namespace psched::util
