// Observability layer: disarmed instrumentation is inert, armed counters
// accumulate exactly (including under concurrency), the trace export is
// well-formed Chrome trace-event JSON carrying the span hierarchy, and — the
// load-bearing contract — arming changes NO result byte: cells.csv is
// identical and summary.json is identical after stripping the "breakdown"
// block, at --jobs 1 and 4. Deterministic-class counters are additionally
// byte-reproducible across parallelism levels.

#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "scenario/campaign.hpp"
#include "util/thread_pool.hpp"

namespace psched {
namespace {

using obs::Counter;
using scenario::CampaignOptions;
using scenario::CampaignResult;
using scenario::ScenarioSpec;

/// Every test starts and ends disarmed with zeroed state: obs is process-wide
/// and the rest of the suite runs in this process too.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset(); }
  void TearDown() override { obs::reset(); }
};

ScenarioSpec parse(const std::string& text) {
  std::istringstream in(text);
  return scenario::parse_spec(in, "test.spec");
}

std::string csv_of(const CampaignResult& result) {
  std::ostringstream out;
  scenario::write_cells_csv(result, out);
  return out.str();
}

std::string json_of(const CampaignResult& result) {
  std::ostringstream out;
  scenario::write_summary_json(result, out);
  return out.str();
}

/// The documented strip: drop the contiguous "breakdown" block (the lines an
/// armed run adds to summary.json), mirroring the CI leg's
///   sed '/^  "breakdown": \[$/,/^  \],$/d'
std::string strip_breakdown(const std::string& json) {
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  bool dropping = false;
  while (std::getline(in, line)) {
    if (!dropping && line == "  \"breakdown\": [") dropping = true;
    if (!dropping) out << line << '\n';
    if (dropping && line == "  ],") dropping = false;
  }
  return out.str();
}

// --- a tiny JSON validator (structure only, enough to catch truncation,
// --- bad escapes, and trailing commas in the trace writer) ----------------
struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;
  bool ok = true;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
                                 text[pos] == '\r'))
      ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void value() {
    skip_ws();
    if (pos >= text.size()) {
      ok = false;
      return;
    }
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      if (consume('}')) return;
      do {
        if (!string_value()) {
          ok = false;
          return;
        }
        if (!consume(':')) {
          ok = false;
          return;
        }
        value();
        if (!ok) return;
      } while (consume(','));
      if (!consume('}')) ok = false;
    } else if (c == '[') {
      ++pos;
      if (consume(']')) return;
      do {
        value();
        if (!ok) return;
      } while (consume(','));
      if (!consume(']')) ok = false;
    } else if (c == '"') {
      if (!string_value()) ok = false;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      ++pos;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
              text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-'))
        ++pos;
    } else if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
    } else if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
    } else if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
    } else {
      ok = false;
    }
  }
  bool string_value() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
      }
      ++pos;
    }
    if (pos >= text.size()) return false;
    ++pos;  // closing quote
    return true;
  }
};

bool valid_json(const std::string& text) {
  JsonCursor cursor{text};
  cursor.value();
  cursor.skip_ws();
  return cursor.ok && cursor.pos == text.size();
}

const char* kSmokeSpec = R"(
[campaign]
name = obs_smoke
metrics = percent_unfair, avg_wait, policy_percent_unfair

[workload]
scale = 0.02
rescale_load = 30

[policies]
names = cplant24.nomax.all, easy, cons.nomax

[seeds]
list = 11, 12
)";

TEST_F(ObsTest, DisarmedInstrumentationIsInert) {
  ASSERT_FALSE(obs::armed());
  obs::count(Counter::kEngineEventsDelivered, 42);
  obs::record_max(Counter::kPoolQueueDepthHighWater, 99);
  { obs::Span span("never-recorded"); }
  EXPECT_EQ(obs::counter_value(Counter::kEngineEventsDelivered), 0u);
  EXPECT_EQ(obs::counter_value(Counter::kPoolQueueDepthHighWater), 0u);
  std::ostringstream trace;
  obs::write_trace_json(trace);
  EXPECT_EQ(trace.str().find("never-recorded"), std::string::npos);
}

TEST_F(ObsTest, ArmedCountersAccumulateAndGaugesTakeTheMax) {
  obs::arm();
  obs::count(Counter::kEngineEventsDelivered, 2);
  obs::count(Counter::kEngineEventsDelivered, 3);
  obs::record_max(Counter::kFstPeakBatchBytes, 10);
  obs::record_max(Counter::kFstPeakBatchBytes, 7);  // lower: ignored
  EXPECT_EQ(obs::counter_value(Counter::kEngineEventsDelivered), 5u);
  EXPECT_EQ(obs::counter_value(Counter::kFstPeakBatchBytes), 10u);
}

TEST_F(ObsTest, ConcurrentIncrementsAreExact) {
  obs::arm();
  constexpr std::size_t kIters = 20000;
  util::parallel_for(kIters, [](std::size_t) { obs::count(Counter::kGapIndexProbes); });
  EXPECT_EQ(obs::counter_value(Counter::kGapIndexProbes), kIters);
}

TEST_F(ObsTest, CounterDumpSplitsTheTwoClasses) {
  obs::arm();
  obs::count(Counter::kJournalAppends, 3);          // deterministic class
  obs::count(Counter::kRetryReissues, 2);           // scheduling class
  std::ostringstream out;
  obs::write_counters_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(valid_json(json)) << json;
  const std::size_t det = json.find("\"deterministic\"");
  const std::size_t sched = json.find("\"scheduling\"");
  ASSERT_NE(det, std::string::npos);
  ASSERT_NE(sched, std::string::npos);
  EXPECT_LT(det, json.find("\"journal.appends\": 3"));
  EXPECT_LT(sched, json.find("\"retry.reissues\": 2"));
  EXPECT_LT(json.find("\"journal.appends\""), sched);  // in the right object
}

TEST_F(ObsTest, TraceJsonIsWellFormedAndCarriesTheSpanHierarchy) {
  obs::arm();
  const ScenarioSpec spec = parse(kSmokeSpec);
  CampaignOptions options;
  options.jobs = 2;
  run_campaign(spec, options);

  std::ostringstream out;
  obs::write_trace_json(out);
  const std::string trace = out.str();
  EXPECT_TRUE(valid_json(trace)) << trace.substr(0, 400);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  for (const char* span : {"campaign", "workload-build", "group", "sweep", "cell"})
    EXPECT_NE(trace.find("\"name\": \"" + std::string(span) + "\""), std::string::npos) << span;
  // The campaign span carries the spec name; a cell span carries its policy.
  EXPECT_NE(trace.find("obs_smoke"), std::string::npos);
  EXPECT_NE(trace.find("cplant24.nomax.all"), std::string::npos);
  // The embedded counter dump is live too.
  EXPECT_NE(trace.find("\"counters\""), std::string::npos);
  EXPECT_NE(trace.find("\"engine.events_delivered\""), std::string::npos);
}

TEST_F(ObsTest, SpanArgumentsAreJsonEscaped) {
  obs::arm();
  {
    obs::Span span("escape-check");
    span.set_arg("quote \" backslash \\ newline \n done");
  }
  std::ostringstream out;
  obs::write_trace_json(out);
  const std::string trace = out.str();
  EXPECT_TRUE(valid_json(trace)) << trace;
  EXPECT_NE(trace.find("quote \\\" backslash \\\\ newline \\n done"), std::string::npos);
}

TEST_F(ObsTest, TracedAndUntracedStoresAreByteIdentical) {
  const ScenarioSpec spec = parse(kSmokeSpec);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    CampaignOptions options;
    options.jobs = jobs;

    obs::reset();  // disarmed run
    const CampaignResult untraced = run_campaign(spec, options);
    EXPECT_FALSE(untraced.breakdown_enabled);

    obs::reset();
    obs::arm();  // traced run
    const CampaignResult traced = run_campaign(spec, options);
    EXPECT_TRUE(traced.breakdown_enabled);

    EXPECT_EQ(csv_of(untraced), csv_of(traced)) << "jobs " << jobs;
    const std::string untraced_json = json_of(untraced);
    const std::string traced_json = json_of(traced);
    EXPECT_NE(untraced_json, traced_json) << "armed run should add a breakdown";
    EXPECT_EQ(untraced_json, strip_breakdown(traced_json)) << "jobs " << jobs;
    EXPECT_EQ(strip_breakdown(untraced_json), untraced_json)
        << "strip must be a no-op on an untraced summary";
  }
}

TEST_F(ObsTest, DeterministicCountersAreReproducibleAcrossJobs) {
  const ScenarioSpec spec = parse(kSmokeSpec);
  std::map<std::string, std::uint64_t> serial, parallel;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    obs::reset();
    obs::arm();
    CampaignOptions options;
    options.jobs = jobs;
    run_campaign(spec, options);
    auto& slot = jobs == 1 ? serial : parallel;
    for (const obs::CounterValue& counter : obs::counters_snapshot())
      if (counter.deterministic) slot[counter.name] = counter.value;
  }
  EXPECT_EQ(serial, parallel);
  // The run actually exercised the subsystems the catalog claims to cover.
  EXPECT_GT(serial.at("engine.events_delivered"), 0u);
  EXPECT_GT(serial.at("scheduler.replan_full"), 0u);
  EXPECT_GT(serial.at("fst.forks"), 0u);           // policy_* metric in the spec
  EXPECT_GT(serial.at("experiment.cache_misses"), 0u);
}

TEST_F(ObsTest, BreakdownRowsCarryPerCellObservability) {
  obs::arm();
  const ScenarioSpec spec = parse(kSmokeSpec);
  CampaignOptions options;
  options.jobs = 2;
  const CampaignResult result = run_campaign(spec, options);
  ASSERT_TRUE(result.breakdown_enabled);
  ASSERT_EQ(result.cells.size(), 6u);  // 3 policies x 2 seeds
  for (const scenario::CellResult& cell : result.cells) {
    SCOPED_TRACE(cell.cell.index);
    EXPECT_TRUE(cell.breakdown.collected);
    EXPECT_GT(cell.breakdown.events_delivered, 0u);
    EXPECT_GT(cell.breakdown.scheduler_invocations, 0u);
    EXPECT_GT(cell.breakdown.sim_makespan_seconds, 0.0);
    EXPECT_GT(cell.breakdown.fst_forks, 0u);  // policy_* metric => FST ran
    EXPECT_GE(cell.breakdown.wall_seconds, 0.0);
  }
  const std::string json = json_of(result);
  EXPECT_NE(json.find("\"breakdown\": ["), std::string::npos);
  EXPECT_NE(json.find("\"provenance\": \"computed\""), std::string::npos);
  EXPECT_NE(json.find("\"fst_peak_batch_bytes\""), std::string::npos);
}

TEST_F(ObsTest, ResetZeroesCountersAndSpans) {
  obs::arm();
  obs::count(Counter::kStoreAtomicWrites, 5);
  { obs::Span span("to-be-cleared"); }
  obs::reset();
  EXPECT_FALSE(obs::armed());
  EXPECT_EQ(obs::counter_value(Counter::kStoreAtomicWrites), 0u);
  std::ostringstream trace;
  obs::write_trace_json(trace);
  EXPECT_EQ(trace.str().find("to-be-cleared"), std::string::npos);
}

}  // namespace
}  // namespace psched
