#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "workload/ross_reference.hpp"

namespace psched::workload {
namespace {

using test::make_job;
using test::make_workload;

TEST(TraceStats, CategoryCountsPlaceJobsCorrectly) {
  const Workload w = make_workload(64, {
                                           make_job(0, minutes(5), 1),    // (1, 0-15m)
                                           make_job(1, minutes(5), 1),    // (1, 0-15m)
                                           make_job(2, hours(2), 4),      // (3-4, 1-4h)
                                           make_job(3, days(3), 33),      // (33-64, 2+d)
                                       });
  const CategoryCounts counts = category_job_counts(w);
  EXPECT_EQ(counts[0][0], 2);
  EXPECT_EQ(counts[2][2], 1);
  EXPECT_EQ(counts[6][7], 1);
  long long total = 0;
  for (const auto& row : counts)
    for (const long long c : row) total += c;
  EXPECT_EQ(total, 4);
}

TEST(TraceStats, CategoryProcHours) {
  const Workload w = make_workload(64, {make_job(0, hours(2), 4)});
  const CategoryHours hours_table = category_proc_hours(w);
  EXPECT_DOUBLE_EQ(hours_table[2][2], 8.0);  // 4 nodes * 2 h
}

TEST(TraceStats, WeeklyOfferedLoad) {
  // One job in week 0 using half the machine for half a week.
  const Workload w = make_workload(
      4, {make_job(0, util::kSecondsPerWeek / 2, 2),
          make_job(util::kSecondsPerWeek + 10, util::kSecondsPerWeek / 4, 4)});
  const std::vector<double> load = weekly_offered_load(w);
  ASSERT_EQ(load.size(), 2u);
  EXPECT_NEAR(load[0], 0.25, 1e-9);  // 2/4 nodes * 1/2 week
  EXPECT_NEAR(load[1], 0.25, 1e-9);  // 4/4 nodes * 1/4 week
}

TEST(TraceStats, WeeklyOfferedLoadEmpty) {
  const Workload w{{}, 4};
  EXPECT_TRUE(weekly_offered_load(w).empty());
}

TEST(TraceStats, OverestimationFactors) {
  const Workload w = make_workload(8, {make_job(0, 100, 1, 0, 500)});
  const std::vector<double> f = overestimation_factors(w);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f[0], 5.0);
}

TEST(TraceStats, UnderestimateFraction) {
  Job over = make_job(0, 100, 1, 0, 500);
  Job under = make_job(1, 100, 1, 0, 50);
  const Workload w = make_workload(8, {over, under});
  EXPECT_DOUBLE_EQ(underestimate_fraction(w), 0.5);
  EXPECT_DOUBLE_EQ(underestimate_fraction(Workload{{}, 8}), 0.0);
}

TEST(TraceStats, PowerOfTwoFraction) {
  const Workload w = make_workload(64, {
                                           make_job(0, 10, 1),
                                           make_job(1, 10, 2),
                                           make_job(2, 10, 3),
                                           make_job(3, 10, 16),
                                       });
  EXPECT_DOUBLE_EQ(power_of_two_fraction(w), 0.75);
}

TEST(TraceStats, BinnedMedianBasics) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(5.0);     // all in the first decade
    y.push_back(i);
  }
  const BinnedSeries series = binned_median(x, y, 1.0, 100.0, 2);
  ASSERT_EQ(series.count.size(), 2u);
  EXPECT_EQ(series.count[0], 100u);
  EXPECT_EQ(series.count[1], 0u);
  EXPECT_NEAR(series.median[0], 49.5, 0.01);
  EXPECT_LT(series.p25[0], series.p75[0]);
}

TEST(TraceStats, BinnedMedianRejectsBadInput) {
  const std::vector<double> x{1.0}, y{1.0, 2.0};
  EXPECT_THROW(binned_median(x, y, 1.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(binned_median(y, y, 0.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(binned_median(y, y, 1.0, 10.0, 0), std::invalid_argument);
}

TEST(RossReference, TableTotalsAreConsistent) {
  EXPECT_EQ(ross_table1_total_jobs(), 13236);
  EXPECT_NEAR(ross_table2_total_proc_hours(), 3.97e6, 0.05e6);
  // Cells with zero jobs have zero proc-hours — except (513+, 4-8h), which
  // the paper itself reports inconsistently (Table 1: 0 jobs; Table 2:
  // 3,183 proc-hours). We transcribe the paper verbatim and document the
  // discrepancy here.
  const CountTable& counts = ross_table1_job_counts();
  const HoursTable& hours_table = ross_table2_proc_hours();
  for (std::size_t w = 0; w < kWidthCategories; ++w) {
    for (std::size_t l = 0; l < kLengthCategories; ++l) {
      if (counts[w][l] != 0) continue;
      if (w == 10 && l == 3) {
        EXPECT_DOUBLE_EQ(hours_table[w][l], 3183.0);  // the paper's anomaly
      } else {
        EXPECT_DOUBLE_EQ(hours_table[w][l], 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace psched::workload
