#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "sim/policy_fst.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::sim {
namespace {

TEST(ExperimentRunner, CachesByPolicyName) {
  const Workload w = psched::workload::generate_small_workload(3, 100, 32, days(2));
  ExperimentRunner runner(w);
  const ExperimentResult& first = runner.run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  const ExperimentResult& second = runner.run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  EXPECT_EQ(&first, &second);  // same cached object
}

TEST(ExperimentRunner, RunAllCoversEveryPolicy) {
  const Workload w = psched::workload::generate_small_workload(5, 80, 32, days(2));
  ExperimentRunner runner(w);
  const auto results = runner.run_all(all_paper_policies());
  ASSERT_EQ(results.size(), 9u);
  for (const ExperimentResult* r : results) {
    EXPECT_FALSE(r->report.policy.empty());
    EXPECT_EQ(r->simulation.original_job_count, w.jobs.size());
    EXPECT_GT(r->report.standard.avg_turnaround, 0.0);
  }
  // All nine simulated distinctly.
  for (std::size_t i = 0; i < results.size(); ++i)
    for (std::size_t j = i + 1; j < results.size(); ++j) EXPECT_NE(results[i], results[j]);
}

TEST(ExperimentRunner, ReportsAreInternallyConsistent) {
  const Workload w = psched::workload::generate_small_workload(7, 120, 32, days(3));
  ExperimentRunner runner(w);
  const ExperimentResult& r = runner.run(paper_policy(PaperPolicy::ConsNomax));
  EXPECT_EQ(r.report.fairness.fair_start.size(), r.simulation.records.size());
  EXPECT_EQ(r.report.standard.job_count, r.simulation.records.size());
}

TEST(PolicyFst, MatchesDirectSimulationForLastJob) {
  const Workload w = psched::workload::generate_small_workload(9, 60, 16, days(1));
  EngineConfig config;
  config.policy.kind = PolicyKind::Easy;
  const std::vector<Time> fst = policy_no_later_arrivals_fst(w, config);
  ASSERT_EQ(fst.size(), w.jobs.size());
  // The last job's truncated universe is the full workload.
  const SimulationResult full = simulate(w, config);
  EXPECT_EQ(fst.back(), full.records.back().start);
  // No later arrivals can only help: FST <= actual start never violated by
  // more than scheduling-policy noise for FCFS-priority EASY.
  for (std::size_t i = 0; i < fst.size(); ++i) EXPECT_GE(fst[i], w.jobs[i].submit);
}

TEST(PolicyFst, RejectsMaxRuntimePolicies) {
  const Workload w = psched::workload::generate_small_workload(11, 20, 16, days(1));
  EngineConfig config;
  config.policy.max_runtime = hours(72);
  EXPECT_THROW(policy_no_later_arrivals_fst(w, config), std::invalid_argument);
}

TEST(PolicyFst, SerialAndParallelAgree) {
  const Workload w = psched::workload::generate_small_workload(13, 50, 16, days(1));
  EngineConfig config;
  PolicyFstOptions serial{.parallel = false};
  PolicyFstOptions parallel{.parallel = true};
  EXPECT_EQ(policy_no_later_arrivals_fst(w, config, serial),
            policy_no_later_arrivals_fst(w, config, parallel));
}

}  // namespace
}  // namespace psched::sim
