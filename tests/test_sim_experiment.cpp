#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "sim/policy_fst.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace psched::sim {
namespace {

/// Exact (bitwise for doubles) equality of two reports. Parallel sweeps must
/// be indistinguishable from serial ones at the byte level: the only
/// thread-count-dependent code path writes integer fair-start times to
/// per-index slots, and every floating-point reduction runs serially.
void expect_identical_report(const metrics::PolicyReport& a, const metrics::PolicyReport& b) {
  EXPECT_EQ(a.policy, b.policy);

  EXPECT_EQ(a.standard.job_count, b.standard.job_count);
  EXPECT_EQ(a.standard.avg_wait, b.standard.avg_wait);
  EXPECT_EQ(a.standard.avg_turnaround, b.standard.avg_turnaround);
  EXPECT_EQ(a.standard.avg_bounded_slowdown, b.standard.avg_bounded_slowdown);
  EXPECT_EQ(a.standard.max_wait, b.standard.max_wait);
  EXPECT_EQ(a.standard.makespan, b.standard.makespan);
  EXPECT_EQ(a.standard.utilization, b.standard.utilization);
  EXPECT_EQ(a.standard.loss_of_capacity, b.standard.loss_of_capacity);
  EXPECT_EQ(a.standard.avg_turnaround_by_width, b.standard.avg_turnaround_by_width);
  EXPECT_EQ(a.standard.avg_wait_by_width, b.standard.avg_wait_by_width);
  EXPECT_EQ(a.standard.jobs_by_width, b.standard.jobs_by_width);

  EXPECT_EQ(a.fairness.fair_start, b.fairness.fair_start);
  EXPECT_EQ(a.fairness.miss, b.fairness.miss);
  EXPECT_EQ(a.fairness.percent_unfair, b.fairness.percent_unfair);
  EXPECT_EQ(a.fairness.percent_unfair_any, b.fairness.percent_unfair_any);
  EXPECT_EQ(a.fairness.percent_unfair_load, b.fairness.percent_unfair_load);
  EXPECT_EQ(a.fairness.avg_miss_all, b.fairness.avg_miss_all);
  EXPECT_EQ(a.fairness.avg_miss_unfair, b.fairness.avg_miss_unfair);
  EXPECT_EQ(a.fairness.max_miss, b.fairness.max_miss);
  EXPECT_EQ(a.fairness.avg_miss_by_width, b.fairness.avg_miss_by_width);
  EXPECT_EQ(a.fairness.jobs_by_width, b.fairness.jobs_by_width);
  EXPECT_EQ(a.fairness.unfair_by_width, b.fairness.unfair_by_width);
}

void expect_identical_records(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].start, b.records[i].start) << "record " << i;
    EXPECT_EQ(a.records[i].finish, b.records[i].finish) << "record " << i;
    EXPECT_EQ(a.records[i].killed_at_wcl, b.records[i].killed_at_wcl) << "record " << i;
  }
}

TEST(ExperimentRunner, CachesByPolicyName) {
  const Workload w = psched::workload::generate_small_workload(3, 100, 32, days(2));
  ExperimentRunner runner(w);
  const ExperimentResult& first = runner.run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  const ExperimentResult& second = runner.run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  EXPECT_EQ(&first, &second);  // same cached object
}

TEST(ExperimentRunner, RunAllCoversEveryPolicy) {
  const Workload w = psched::workload::generate_small_workload(5, 80, 32, days(2));
  ExperimentRunner runner(w);
  const auto results = runner.run_all(all_paper_policies());
  ASSERT_EQ(results.size(), 9u);
  for (const ExperimentResult* r : results) {
    EXPECT_FALSE(r->report.policy.empty());
    EXPECT_EQ(r->simulation.original_job_count, w.jobs.size());
    EXPECT_GT(r->report.standard.avg_turnaround, 0.0);
  }
  // All nine simulated distinctly.
  for (std::size_t i = 0; i < results.size(); ++i)
    for (std::size_t j = i + 1; j < results.size(); ++j) EXPECT_NE(results[i], results[j]);
}

TEST(ExperimentRunner, ReportsAreInternallyConsistent) {
  const Workload w = psched::workload::generate_small_workload(7, 120, 32, days(3));
  ExperimentRunner runner(w);
  const ExperimentResult& r = runner.run(paper_policy(PaperPolicy::ConsNomax));
  EXPECT_EQ(r.report.fairness.fair_start.size(), r.simulation.records.size());
  EXPECT_EQ(r.report.standard.job_count, r.simulation.records.size());
}

// Regression: display_name omits heavy_user_factor, so these two configs
// used to alias one cache slot and silently share a result.
TEST(ExperimentRunner, CacheDistinguishesConfigsWithEqualDisplayNames) {
  PolicyConfig strict = paper_policy(PaperPolicy::Cplant24NomaxFair);
  PolicyConfig lax = strict;
  lax.heavy_user_factor = 1.0;  // bars far more users, same display name
  ASSERT_EQ(strict.display_name(), lax.display_name());
  ASSERT_NE(strict.canonical_key(), lax.canonical_key());

  const Workload w = psched::workload::generate_small_workload(17, 120, 32, days(2));
  ExperimentRunner runner(w);
  const ExperimentResult& strict_result = runner.run(strict);
  const ExperimentResult& lax_result = runner.run(lax);
  EXPECT_NE(&strict_result, &lax_result);
  EXPECT_EQ(strict_result.policy.heavy_user_factor, 4.0);
  EXPECT_EQ(lax_result.policy.heavy_user_factor, 1.0);
}

// An explicit `name` also participates in identity: same fields + different
// name means a different report (policy_name differs), and a name that
// mimics another config's derived display name must not steal its slot.
TEST(ExperimentRunner, CacheDistinguishesExplicitNames) {
  PolicyConfig derived;  // cplant24.nomax.all
  PolicyConfig disguised;
  disguised.starvation_delay = hours(72);
  disguised.name = derived.display_name();
  ASSERT_EQ(derived.display_name(), disguised.display_name());

  const Workload w = psched::workload::generate_small_workload(19, 100, 32, days(2));
  ExperimentRunner runner(w);
  EXPECT_NE(&runner.run(derived), &runner.run(disguised));
}

TEST(ExperimentRunner, RunAllIsDeterministicAcrossJobCounts) {
  const Workload w = psched::workload::generate_small_workload(23, 150, 64, days(3));
  const std::vector<PolicyConfig> policies = all_paper_policies();

  ExperimentRunner serial(w);
  const auto base = serial.run_all(policies, /*jobs=*/1);

  for (const std::size_t jobs : {std::size_t{2}, util::global_pool().size() + 2}) {
    ExperimentRunner parallel_runner(w);
    const auto parallel = parallel_runner.run_all(policies, jobs);
    ASSERT_EQ(parallel.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      expect_identical_report(base[i]->report, parallel[i]->report);
      expect_identical_records(base[i]->simulation, parallel[i]->simulation);
    }
  }
}

// Hammer one runner with duplicate policies from many threads: every
// duplicate must resolve to the same cached object (single-flight), and the
// cache must hold exactly one entry per distinct config.
TEST(ExperimentRunner, ConcurrentDuplicateStress) {
  const Workload w = psched::workload::generate_small_workload(29, 60, 32, days(1));
  ExperimentRunner runner(w);

  std::vector<PolicyConfig> policies;
  for (int repeat = 0; repeat < 12; ++repeat)
    for (const PaperPolicy p : {PaperPolicy::Cplant24NomaxAll, PaperPolicy::ConsNomax,
                                PaperPolicy::Cplant24NomaxFair})
      policies.push_back(paper_policy(p));

  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<const ExperimentResult*>> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { per_thread[t] = runner.run_all(policies, 4); });
  for (auto& thread : threads) thread.join();

  std::set<const ExperimentResult*> distinct;
  for (const auto& results : per_thread) {
    ASSERT_EQ(results.size(), policies.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_NE(results[i], nullptr);
      EXPECT_EQ(results[i], per_thread[0][i]) << "duplicate simulated twice at " << i;
      distinct.insert(results[i]);
    }
  }
  EXPECT_EQ(distinct.size(), 3u);  // one result per distinct config
}

// A config whose scheduler construction throws must report the same error to
// every caller (cached single-flight error), not retry per caller.
TEST(ExperimentRunner, BrokenConfigErrorIsCachedAndRethrown) {
  const Workload w = psched::workload::generate_small_workload(31, 20, 16, days(1));
  ExperimentRunner runner(w);
  PolicyConfig broken;
  broken.kind = PolicyKind::Depth;
  broken.reservation_depth = 0;  // DepthScheduler rejects < 1
  EXPECT_THROW(runner.run(broken), std::invalid_argument);
  EXPECT_THROW(runner.run(broken), std::invalid_argument);
  EXPECT_THROW(runner.run_all({broken}, 2), std::invalid_argument);
}

// Failed flights are evictable: a cancellation must not poison the config
// for the rest of the process — the next fresh call retries and succeeds.
// This is what --resume and --keep-going re-runs rely on.
TEST(ExperimentRunner, TransientFailureIsEvictedAndARetrySucceeds) {
  const Workload w = psched::workload::generate_small_workload(37, 40, 16, days(1));
  ExperimentRunner runner(w);
  const PolicyConfig policy = paper_policy(PaperPolicy::ConsNomax);
  util::StopSource stop;
  stop.request_stop();
  EXPECT_THROW(runner.run(policy, stop.token()), SimulationCancelled);
  const ExperimentResult& retried = runner.run(policy);  // no token: retries
  EXPECT_GT(retried.report.standard.avg_turnaround, 0.0);
  EXPECT_EQ(&retried, &runner.run(policy));  // Done is terminal again
}

TEST(ExperimentRunner, RunAllSurfacesATrippedTokenAsCancellation) {
  const Workload w = psched::workload::generate_small_workload(41, 40, 16, days(1));
  ExperimentRunner runner(w);
  util::StopSource stop;
  stop.request_stop();
  EXPECT_THROW(runner.run_all(all_paper_policies(), 2, stop.token()), SimulationCancelled);
  // And the runner is still usable afterwards (no poisoned entries).
  EXPECT_EQ(runner.run_all(all_paper_policies(), 2).size(), 9u);
}

// run_isolated: a failing cell yields an error outcome, the siblings still
// produce results identical to an undisturbed sweep.
TEST(ExperimentRunner, RunIsolatedContainsFailuresToTheirCell) {
  const Workload w = psched::workload::generate_small_workload(43, 40, 16, days(1));
  PolicyConfig broken;
  broken.kind = PolicyKind::Depth;
  broken.reservation_depth = 0;
  const std::vector<PolicyConfig> policies = {paper_policy(PaperPolicy::Cplant24NomaxAll), broken,
                                              paper_policy(PaperPolicy::ConsNomax)};

  ExperimentRunner runner(w);
  IsolatedRunOptions options;
  options.jobs = 2;
  const std::vector<CellOutcome> outcomes = runner.run_isolated(policies, options);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_NE(outcomes[0].result, nullptr);
  EXPECT_EQ(outcomes[1].result, nullptr);
  ASSERT_TRUE(outcomes[1].error != nullptr);
  EXPECT_THROW(std::rethrow_exception(outcomes[1].error), std::invalid_argument);
  ASSERT_NE(outcomes[2].result, nullptr);

  ExperimentRunner undisturbed(w);
  expect_identical_report(outcomes[2].result->report,
                          undisturbed.run(paper_policy(PaperPolicy::ConsNomax)).report);
}

TEST(ExperimentRunner, RunIsolatedHaltsAfterAFailureWhenNotKeepingGoing) {
  const Workload w = psched::workload::generate_small_workload(47, 40, 16, days(1));
  PolicyConfig broken;
  broken.kind = PolicyKind::Depth;
  broken.reservation_depth = 0;
  ExperimentRunner runner(w);
  IsolatedRunOptions options;
  options.jobs = 1;  // serial, so the halt decision is deterministic
  options.keep_going = false;
  const std::vector<CellOutcome> outcomes =
      runner.run_isolated({broken, paper_policy(PaperPolicy::ConsNomax)}, options);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].attempted());
  EXPECT_FALSE(outcomes[1].attempted());  // never pulled
}

TEST(ExperimentRunner, RunIsolatedReportsEveryAttemptThroughOnFinish) {
  const Workload w = psched::workload::generate_small_workload(53, 40, 16, days(1));
  ExperimentRunner runner(w);
  IsolatedRunOptions options;
  options.jobs = 2;
  std::vector<std::size_t> finished;  // on_finish is serialized by contract
  options.on_finish = [&](std::size_t i, const CellOutcome& outcome) {
    EXPECT_TRUE(outcome.attempted());
    finished.push_back(i);
  };
  runner.run_isolated(all_paper_policies(), options);
  EXPECT_EQ(finished.size(), 9u);
}

TEST(ExperimentRunner, RunIsolatedPerCellTokensCancelOnlyTheirCell) {
  const Workload w = psched::workload::generate_small_workload(59, 40, 16, days(1));
  ExperimentRunner runner(w);
  IsolatedRunOptions options;
  options.jobs = 1;
  options.cell_stop = [](std::size_t i) {
    util::StopSource source;
    if (i == 0) source.request_stop();  // doom exactly the first cell
    return source.token();
  };
  const std::vector<CellOutcome> outcomes = runner.run_isolated(
      {paper_policy(PaperPolicy::Cplant24NomaxAll), paper_policy(PaperPolicy::ConsNomax)},
      options);
  EXPECT_EQ(outcomes[0].result, nullptr);
  ASSERT_TRUE(outcomes[0].error != nullptr);
  EXPECT_THROW(std::rethrow_exception(outcomes[0].error), SimulationCancelled);
  EXPECT_NE(outcomes[1].result, nullptr);  // sibling unaffected
}

TEST(PolicyFst, MatchesDirectSimulationForLastJob) {
  const Workload w = psched::workload::generate_small_workload(9, 60, 16, days(1));
  EngineConfig config;
  config.policy.kind = PolicyKind::Easy;
  const std::vector<Time> fst = policy_no_later_arrivals_fst(w, config);
  ASSERT_EQ(fst.size(), w.jobs.size());
  // The last job's truncated universe is the full workload.
  const SimulationResult full = simulate(w, config);
  EXPECT_EQ(fst.back(), full.records.back().start);
  // No later arrivals can only help: FST <= actual start never violated by
  // more than scheduling-policy noise for FCFS-priority EASY.
  for (std::size_t i = 0; i < fst.size(); ++i) EXPECT_GE(fst[i], w.jobs[i].submit);
}

// The documented precondition (header: max_runtime == kNoTime) must be
// enforced on every path — segment chaining has no well-defined per-original
// start, so silently proceeding would return garbage fair-start times.
TEST(PolicyFst, RejectsMaxRuntimePolicies) {
  const Workload w = psched::workload::generate_small_workload(11, 20, 16, days(1));
  EngineConfig config;
  config.policy.max_runtime = hours(72);
  EXPECT_THROW(policy_no_later_arrivals_fst(w, config), std::invalid_argument);
  PolicyFstOptions serial{.parallel = false};
  EXPECT_THROW(policy_no_later_arrivals_fst(w, config, serial), std::invalid_argument);
  config.segment_arrival = SegmentArrival::Chained;
  EXPECT_THROW(policy_no_later_arrivals_fst(w, config), std::invalid_argument);
  try {
    policy_no_later_arrivals_fst(w, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("max_runtime"), std::string::npos);
  }
}

TEST(PolicyFst, SerialAndParallelAgree) {
  const Workload w = psched::workload::generate_small_workload(13, 50, 16, days(1));
  EngineConfig config;
  PolicyFstOptions serial{.parallel = false};
  PolicyFstOptions parallel{.parallel = true};
  EXPECT_EQ(policy_no_later_arrivals_fst(w, config, serial),
            policy_no_later_arrivals_fst(w, config, parallel));
}

}  // namespace
}  // namespace psched::sim
