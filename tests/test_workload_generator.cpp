#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include "workload/trace_stats.hpp"

namespace psched::workload {
namespace {

// The full-scale trace is used by several tests; generate it once.
const Workload& full_trace() {
  static const Workload trace = generate_ross_workload({});
  return trace;
}

TEST(Generator, MatchesTable1CellByCell) {
  const CategoryCounts counts = category_job_counts(full_trace());
  const CountTable& expected = ross_table1_job_counts();
  for (std::size_t w = 0; w < kWidthCategories; ++w)
    for (std::size_t l = 0; l < kLengthCategories; ++l)
      EXPECT_EQ(counts[w][l], expected[w][l]) << "cell (" << w << "," << l << ")";
}

TEST(Generator, TotalJobsMatchTable1) {
  EXPECT_EQ(static_cast<long long>(full_trace().jobs.size()), ross_table1_total_jobs());
}

TEST(Generator, ProcHoursCalibratedToTable2) {
  const CategoryHours hours = category_proc_hours(full_trace());
  const HoursTable& expected = ross_table2_proc_hours();
  const CountTable& counts = ross_table1_job_counts();
  double total = 0.0, expected_total = 0.0;
  for (std::size_t w = 0; w < kWidthCategories; ++w) {
    for (std::size_t l = 0; l < kLengthCategories; ++l) {
      total += hours[w][l];
      expected_total += expected[w][l];
      // The paper's own tables disagree for (513+, 4-8h): Table 1 reports 0
      // jobs but Table 2 reports 3,183 proc-hours. Counts are authoritative
      // for the generator, so proc-hour calibration skips count-0 cells.
      if (expected[w][l] >= 1000.0 && counts[w][l] > 0) {
        // Large cells calibrate within 25% (clamping to bin bounds limits
        // convergence for extreme node/runtime mixes).
        EXPECT_NEAR(hours[w][l] / expected[w][l], 1.0, 0.25)
            << "cell (" << w << "," << l << ")";
      }
    }
  }
  EXPECT_NEAR(total / expected_total, 1.0, 0.10);
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig config;
  config.count_scale = 0.05;
  const Workload a = generate_ross_workload(config);
  const Workload b = generate_ross_workload(config);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].submit, b.jobs[i].submit);
    EXPECT_EQ(a.jobs[i].runtime, b.jobs[i].runtime);
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes);
    EXPECT_EQ(a.jobs[i].user, b.jobs[i].user);
    EXPECT_EQ(a.jobs[i].wcl, b.jobs[i].wcl);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig a_cfg, b_cfg;
  a_cfg.count_scale = b_cfg.count_scale = 0.05;
  b_cfg.seed = 999;
  const Workload a = generate_ross_workload(a_cfg);
  const Workload b = generate_ross_workload(b_cfg);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());  // counts are table-driven
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    if (a.jobs[i].submit != b.jobs[i].submit) ++differing;
  EXPECT_GT(differing, a.jobs.size() / 2);
}

TEST(Generator, SubmitTimesInsideSpan) {
  for (const Job& job : full_trace().jobs) {
    EXPECT_GE(job.submit, 0);
    EXPECT_LT(job.submit, kRossTraceSpan);
  }
}

TEST(Generator, UsersWithinConfiguredPopulation) {
  GeneratorConfig config;
  for (const Job& job : full_trace().jobs) {
    EXPECT_GE(job.user, 0);
    EXPECT_LT(job.user, config.user_count);
    EXPECT_EQ(job.group, job.user % config.group_count);
  }
}

TEST(Generator, UserActivityIsSkewed) {
  std::vector<std::size_t> jobs_per_user(64, 0);
  for (const Job& job : full_trace().jobs) ++jobs_per_user[static_cast<std::size_t>(job.user)];
  std::sort(jobs_per_user.rbegin(), jobs_per_user.rend());
  // The top 8 users submit a large share (Zipf activity).
  std::size_t top8 = 0;
  for (std::size_t i = 0; i < 8; ++i) top8 += jobs_per_user[i];
  EXPECT_GT(static_cast<double>(top8) / static_cast<double>(full_trace().jobs.size()), 0.35);
}

TEST(Generator, PowerOfTwoNodesDominant) {
  EXPECT_GT(power_of_two_fraction(full_trace()), 0.40);
}

TEST(Generator, OverestimationShrinksWithRuntime) {
  std::vector<double> runtimes, factors;
  for (const Job& job : full_trace().jobs) {
    runtimes.push_back(static_cast<double>(job.runtime));
    factors.push_back(static_cast<double>(job.wcl) / static_cast<double>(job.runtime));
  }
  const BinnedSeries series = binned_median(runtimes, factors, 60.0, 1.0e6, 4);
  // Median over-estimation factor decreases from the shortest to the longest
  // runtime bin (paper Figure 6).
  ASSERT_GT(series.count.front(), 50u);
  ASSERT_GT(series.count.back(), 50u);
  EXPECT_GT(series.median.front(), series.median.back());
}

TEST(Generator, SmallUnderestimateFraction) {
  const double frac = underestimate_fraction(full_trace());
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.06);
}

TEST(Generator, WeeklyLoadIsBursty) {
  const std::vector<double> offered = weekly_offered_load(full_trace());
  ASSERT_GE(offered.size(), 30u);
  double peak = 0.0, low = 1e9;
  for (std::size_t w = 0; w + 1 < offered.size(); ++w) {  // last week is partial
    peak = std::max(peak, offered[w]);
    low = std::min(low, offered[w]);
  }
  EXPECT_GT(peak, 1.0);  // overload weeks exist (Figure 3)
  EXPECT_LT(low, 0.5);   // calm weeks exist
}

TEST(Generator, CountScaleShrinksTrace) {
  GeneratorConfig config;
  config.count_scale = 0.1;
  const Workload small = generate_ross_workload(config);
  EXPECT_LT(small.jobs.size(), full_trace().jobs.size() / 5);
  EXPECT_GT(small.jobs.size(), full_trace().jobs.size() / 20);
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig config;
  config.system_size = 0;
  EXPECT_THROW(generate_ross_workload(config), std::invalid_argument);
  config = {};
  config.span = 0;
  EXPECT_THROW(generate_ross_workload(config), std::invalid_argument);
  config = {};
  config.user_count = 0;
  EXPECT_THROW(generate_ross_workload(config), std::invalid_argument);
}

TEST(GeneratorSmall, ProducesValidWorkloads) {
  const Workload w = generate_small_workload(1, 200, 32, days(2), 6);
  EXPECT_EQ(w.jobs.size(), 200u);
  EXPECT_NO_THROW(w.validate());
  for (const Job& job : w.jobs) {
    EXPECT_LE(job.nodes, 32);
    EXPECT_GE(job.wcl, job.runtime);  // small generator never under-estimates
    EXPECT_LT(job.user, 6);
  }
  EXPECT_THROW(generate_small_workload(1, 10, 0, 100), std::invalid_argument);
}

}  // namespace
}  // namespace psched::workload
