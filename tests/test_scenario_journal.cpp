// Crash-safe campaign store: journal write/replay round-trips, torn-tail
// tolerance, corruption rejection with line numbers, duplicate last-wins —
// and the campaign-level resume contract: a resumed run simulates only the
// missing cells yet produces a byte-identical results store, failed cells
// re-run, an edited spec is rejected, timeouts and stops become status rows.
// Fault-driven robustness: byte-level truncation/flip sweeps over the
// journal, and injected journal failures downgrading a run to
// `journal: degraded` instead of aborting it.

#include "scenario/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/campaign.hpp"
#include "util/fault.hpp"
#include "util/stop_token.hpp"

namespace psched::scenario {
namespace {

const std::string kSourceDir = PSCHED_SOURCE_DIR;

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// RAII arming of a fault-registry spec; disarms everything on scope exit so
/// tests stay isolated (PSCHED_FAULTS is only read at process start — inside
/// one process, arm() is the way in).
struct ScopedFault {
  explicit ScopedFault(const std::string& specs) { util::fault::arm_list(specs); }
  ~ScopedFault() { util::fault::disarm_all(); }
};

TEST(RoundTripDouble, ShortestRepresentationParsesBackExactly) {
  for (const double value : {0.9, 0.1, 1.0 / 3.0, 29645.405555555557, 0.04670449078331398,
                             1e-300, 123456789.123456789, -0.0, 2.5}) {
    const std::string text = format_round_trip_double(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
  EXPECT_EQ(format_round_trip_double(0.9), "0.9");  // not 0.90000000000000002
}

TEST(Fingerprints, WorkloadContentChangesTheFingerprint) {
  Job job;
  job.runtime = 100;
  job.wcl = 120;
  job.submit = 5;
  WorkloadBuilder builder({job}, 64);
  builder.normalize();
  const Workload a = builder.build();
  const Workload copy = a;
  const std::uint64_t fp_a = workload_fingerprint(a);
  EXPECT_EQ(fp_a, workload_fingerprint(copy));  // copies agree (shared table)

  WorkloadBuilder edit_runtime(a);
  edit_runtime.jobs[0].runtime = 101;
  EXPECT_NE(fp_a, workload_fingerprint(edit_runtime.build()));

  WorkloadBuilder edit_size(a);
  edit_size.system_size = 65;
  EXPECT_NE(fp_a, workload_fingerprint(edit_size.build()));
}

TEST(Fingerprints, EverySemanticSpecFieldParticipates) {
  ScenarioSpec spec;
  spec.name = "fp";
  spec.metrics = {"avg_wait"};
  spec.policy_names = {"cons.nomax"};
  const std::uint64_t base = spec_fingerprint(spec);
  ScenarioSpec edited = spec;
  edited.tolerance = spec.tolerance + 1;
  EXPECT_NE(base, spec_fingerprint(edited));
  edited = spec;
  edited.metrics.push_back("utilization");
  EXPECT_NE(base, spec_fingerprint(edited));
  edited = spec;
  edited.seeds = {1, 2};
  EXPECT_NE(base, spec_fingerprint(edited));
  edited = spec;
  edited.grid.decay = {0.5};
  EXPECT_NE(base, spec_fingerprint(edited));
  EXPECT_EQ(base, spec_fingerprint(spec));  // and it is stable
}

JournalHeader test_header() {
  JournalHeader header;
  header.campaign = "journal_unit";
  header.spec_fingerprint = 0xdeadbeefcafef00dull;
  header.cells = 3;
  return header;
}

TEST(CampaignJournal, WriteThenReplayRoundTrips) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal journal(path, test_header());
    JournalCellRecord ok;
    ok.key = "cell-a";
    ok.index = 0;
    ok.status = CellStatus::Ok;
    ok.metrics = {0.1, 29645.405555555557, 1.0 / 3.0};
    journal.record(ok);
    JournalCellRecord failed;
    failed.key = "cell-b";
    failed.index = 1;
    failed.status = CellStatus::Failed;
    failed.error = "boom \"quoted\"\nsecond line\ttabbed";
    journal.record(failed);
  }
  const JournalReplay replay = replay_journal(path);
  EXPECT_EQ(replay.header.campaign, "journal_unit");
  EXPECT_EQ(replay.header.spec_fingerprint, 0xdeadbeefcafef00dull);
  EXPECT_EQ(replay.header.cells, 3u);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.records, 2u);
  ASSERT_EQ(replay.cells.size(), 2u);
  const JournalCellRecord& ok = replay.cells.at("cell-a");
  EXPECT_EQ(ok.status, CellStatus::Ok);
  ASSERT_EQ(ok.metrics.size(), 3u);
  EXPECT_EQ(ok.metrics[0], 0.1);  // bit-exact through the round-trip format
  EXPECT_EQ(ok.metrics[1], 29645.405555555557);
  EXPECT_EQ(ok.metrics[2], 1.0 / 3.0);
  const JournalCellRecord& failed = replay.cells.at("cell-b");
  EXPECT_EQ(failed.status, CellStatus::Failed);
  EXPECT_EQ(failed.error, "boom \"quoted\"\nsecond line\ttabbed");
  std::remove(path.c_str());
}

TEST(CampaignJournal, TornFinalLineIsToleratedAndDropped) {
  const std::string path = temp_path("journal_torn.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal journal(path, test_header());
    JournalCellRecord ok;
    ok.key = "cell-a";
    ok.status = CellStatus::Ok;
    ok.metrics = {1.0};
    journal.record(ok);
  }
  // Crash mid-append: the final record is cut off without a newline.
  std::ofstream(path, std::ios::binary | std::ios::app)
      << "{\"kind\":\"cell\",\"key\":\"cell-b\",\"index\":1,\"status\":\"ok\",\"met";
  const JournalReplay replay = replay_journal(path);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.records, 1u);  // the torn record is simply not there
  EXPECT_EQ(replay.cells.count("cell-b"), 0u);
  EXPECT_EQ(replay.cells.count("cell-a"), 1u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, MidFileCorruptionIsRejectedWithItsLineNumber) {
  const std::string path = temp_path("journal_corrupt.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal journal(path, test_header());
    JournalCellRecord ok;
    ok.key = "cell-a";
    ok.status = CellStatus::Ok;
    ok.metrics = {1.0};
    journal.record(ok);
    ok.key = "cell-b";
    journal.record(ok);
  }
  // Flip bytes in the middle record (line 2 of 3) — a torn line anywhere but
  // the tail is not a crash signature, it is corruption.
  std::string contents = slurp(path);
  const std::size_t first_newline = contents.find('\n');
  contents.replace(first_newline + 1, 10, "XXXXXXXXXX");
  spit(path, contents);
  try {
    replay_journal(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(path + ":2"), std::string::npos) << error.what();
  }
  std::remove(path.c_str());
}

// Exhaustive byte-level recovery contract: a journal truncated at ANY byte
// offset inside its final record replays as exactly one of two outcomes —
// torn-tail tolerated (crash-mid-append signature; earlier records survive)
// or, when only the trailing newline is missing, a complete record. Never a
// crash, never a third behavior.
TEST(CampaignJournal, TruncationSweepOverEveryByteOfTheFinalRecord) {
  const std::string path = temp_path("journal_trunc_sweep.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal journal(path, test_header());
    JournalCellRecord ok;
    ok.key = "cell-a";
    ok.status = CellStatus::Ok;
    ok.metrics = {0.1, 29645.405555555557};
    journal.record(ok);
    JournalCellRecord failed;
    failed.key = "cell-b";
    failed.index = 1;
    failed.status = CellStatus::Failed;
    failed.error = "boom";
    journal.record(failed);
  }
  const std::string full = slurp(path);
  const std::size_t final_start = full.rfind("{\"kind\":\"cell\",\"key\":\"cell-b\"");
  ASSERT_NE(final_start, std::string::npos);
  ASSERT_EQ(full.back(), '\n');
  for (std::size_t cut = final_start; cut < full.size(); ++cut) {
    spit(path, full.substr(0, cut));
    JournalReplay replay;
    try {
      replay = replay_journal(path);
    } catch (const std::exception& error) {
      FAIL() << "cut=" << cut << " rejected a final-record truncation: " << error.what();
    }
    EXPECT_EQ(replay.cells.count("cell-a"), 1u) << "cut=" << cut;  // committed records survive
    // Only the missing-trailing-newline cut leaves the final record whole.
    const bool record_complete = cut == full.size() - 1;
    EXPECT_EQ(replay.cells.count("cell-b"), record_complete ? 1u : 0u) << "cut=" << cut;
    EXPECT_EQ(replay.torn_tail, cut != final_start && !record_complete) << "cut=" << cut;
  }
  std::remove(path.c_str());
}

// Same sweep with a one-bit flip at every byte of a NON-final record: each
// outcome must be exactly rejected-with-line-number or still-well-formed
// (a flip that lands on a metric digit yields a valid record with different
// bytes — replay cannot tell, and must not crash). Flipping the record's own
// newline merges it into the final line, which is then torn-tail territory.
TEST(CampaignJournal, FlippedByteSweepOverAMidFileRecord) {
  const std::string path = temp_path("journal_flip_sweep.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal journal(path, test_header());
    JournalCellRecord ok;
    ok.key = "cell-a";
    ok.status = CellStatus::Ok;
    ok.metrics = {0.1, 2.5};
    journal.record(ok);
    JournalCellRecord ok_b;
    ok_b.key = "cell-b";
    ok_b.index = 1;
    ok_b.status = CellStatus::Ok;
    ok_b.metrics = {1.0, 3.5};
    journal.record(ok_b);
  }
  const std::string full = slurp(path);
  const std::size_t line_start = full.find("\n") + 1;          // cell-a, line 2 of 3
  const std::size_t line_end = full.find('\n', line_start) + 1;  // incl. its newline
  ASSERT_LT(line_end, full.size());
  for (std::size_t i = line_start; i < line_end; ++i) {
    std::string mutated = full;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    spit(path, mutated);
    try {
      const JournalReplay replay = replay_journal(path);
      if (replay.torn_tail) {
        // Only the newline flip can reach here: lines 2+3 merged into a
        // final line whose parse failure is (by position) a torn tail.
        EXPECT_EQ(i, line_end - 1) << "flip at " << i;
      } else {
        // The flip kept the record well-formed; every line was consumed.
        EXPECT_EQ(replay.records, 2u) << "flip at " << i;
      }
    } catch (const std::runtime_error& error) {
      // Rejected: the message must pinpoint the corrupt line.
      EXPECT_NE(std::string(error.what()).find(path + ":2"), std::string::npos)
          << "flip at " << i << ": " << error.what();
    }
  }
  std::remove(path.c_str());
}

TEST(CampaignJournal, DuplicateKeysLastRecordWins) {
  const std::string path = temp_path("journal_dupes.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal journal(path, test_header());
    JournalCellRecord record;
    record.key = "cell-a";
    record.status = CellStatus::Failed;
    record.error = "first attempt";
    journal.record(record);
    record.status = CellStatus::Ok;
    record.error.clear();
    record.metrics = {42.0};
    journal.record(record);  // the re-run after --resume
  }
  const JournalReplay replay = replay_journal(path);
  EXPECT_EQ(replay.records, 2u);  // both counted...
  ASSERT_EQ(replay.cells.size(), 1u);  // ...one key
  EXPECT_EQ(replay.cells.at("cell-a").status, CellStatus::Ok);
  ASSERT_EQ(replay.cells.at("cell-a").metrics.size(), 1u);
  EXPECT_EQ(replay.cells.at("cell-a").metrics[0], 42.0);
  std::remove(path.c_str());
}

TEST(CampaignJournal, MissingHeaderIsRejected) {
  const std::string path = temp_path("journal_headerless.jsonl");
  spit(path, "{\"kind\":\"cell\",\"key\":\"x\",\"index\":0,\"status\":\"ok\",\"metrics\":[1]}\n");
  EXPECT_THROW(replay_journal(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(replay_journal(path), std::runtime_error);  // missing file too
}

// ---------------------------------------------------------------------------
// Campaign-level resume contract, on the committed ~200-job SWF sample.

ScenarioSpec smoke_spec() {
  std::istringstream in(
      "[campaign]\n"
      "name = journal_campaign\n"
      "metrics = avg_wait, avg_turnaround, utilization\n"
      "[workload]\n"
      "source = swf\n"
      "file = " + kSourceDir + "/tests/data/sample_cplant.swf\n"
      "[policies]\n"
      "names = cplant24.nomax.all, cons.nomax\n");
  return parse_spec(in, "journal_test.spec");
}

std::string csv_of(const CampaignResult& result) {
  std::ostringstream out;
  write_cells_csv(result, out);
  return out.str();
}

std::string json_of(const CampaignResult& result) {
  std::ostringstream out;
  write_summary_json(result, out);
  return out.str();
}

TEST(CampaignResume, FreshRunJournalsEveryCellAndResumeSimulatesNothing) {
  const std::string journal = temp_path("campaign_fresh.jsonl");
  std::remove(journal.c_str());
  const ScenarioSpec spec = smoke_spec();
  CampaignOptions options;
  options.jobs = 1;
  options.journal_path = journal;
  const CampaignResult fresh = run_campaign(spec, options);
  EXPECT_EQ(fresh.simulated_cells, 2u);
  EXPECT_EQ(fresh.restored_cells, 0u);
  EXPECT_EQ(fresh.count(CellStatus::Ok), 2u);
  EXPECT_TRUE(fresh.reports_complete);
  EXPECT_EQ(replay_journal(journal).records, 2u);

  options.resume = true;
  const CampaignResult resumed = run_campaign(spec, options);
  EXPECT_EQ(resumed.simulated_cells, 0u);  // nothing left to do
  EXPECT_EQ(resumed.restored_cells, 2u);
  EXPECT_EQ(resumed.replayed_records, 2u);
  EXPECT_FALSE(resumed.reports_complete);  // restored cells carry no report
  EXPECT_EQ(csv_of(resumed), csv_of(fresh));
  EXPECT_EQ(json_of(resumed), json_of(fresh));
  std::remove(journal.c_str());
}

TEST(CampaignResume, FailedCellRerunsAndTheStoreMatchesACleanRunByteForByte) {
  const ScenarioSpec spec = smoke_spec();
  CampaignOptions clean_options;
  clean_options.jobs = 1;
  const CampaignResult clean = run_campaign(spec, clean_options);

  const std::string journal = temp_path("campaign_rerun.jsonl");
  std::remove(journal.c_str());
  CampaignOptions options;
  options.jobs = 1;
  options.journal_path = journal;
  {
    // jobs=1 pulls cells in plan order, so after=1 is plan cell 0.
    const ScopedFault fault("campaign.cell:throw:after=1");
    const CampaignResult faulted = run_campaign(spec, options);
    EXPECT_EQ(faulted.cells[0].status, CellStatus::Failed);
    EXPECT_NE(faulted.cells[0].error.find("injected fault"), std::string::npos);
    // Fault isolation: the sibling cell's row is byte-identical to the
    // clean run's (compare the CSV line for cell 1).
    const std::string clean_csv = csv_of(clean);
    const std::string fault_csv = csv_of(faulted);
    const std::string clean_row = clean_csv.substr(clean_csv.find("\n1,"));
    EXPECT_EQ(fault_csv.substr(fault_csv.find("\n1,")), clean_row);
  }
  // Resume without the fault: only the failed cell re-runs (last record
  // wins in the journal), and the store now matches a clean run exactly.
  options.resume = true;
  const CampaignResult resumed = run_campaign(spec, options);
  EXPECT_EQ(resumed.replayed_records, 2u);
  EXPECT_EQ(resumed.restored_cells, 1u);
  EXPECT_EQ(resumed.simulated_cells, 1u);
  EXPECT_EQ(csv_of(resumed), csv_of(clean));
  EXPECT_EQ(json_of(resumed), json_of(clean));
  const JournalReplay replay = replay_journal(journal);
  EXPECT_EQ(replay.records, 3u);  // failed + ok + re-run appended
  EXPECT_EQ(replay.cells.size(), 2u);
  for (const auto& [key, record] : replay.cells) EXPECT_EQ(record.status, CellStatus::Ok) << key;
  std::remove(journal.c_str());
}

TEST(CampaignResume, EditedSpecIsRejectedByFingerprint) {
  const std::string journal = temp_path("campaign_edited.jsonl");
  std::remove(journal.c_str());
  const ScenarioSpec spec = smoke_spec();
  CampaignOptions options;
  options.jobs = 1;
  options.journal_path = journal;
  run_campaign(spec, options);

  ScenarioSpec edited = spec;
  edited.tolerance += hours(1);  // changes every cell's numbers
  options.resume = true;
  try {
    run_campaign(edited, options);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"), std::string::npos) << error.what();
  }
  std::remove(journal.c_str());
}

TEST(CampaignResume, ResumeRequiresAJournal) {
  CampaignOptions options;
  options.resume = true;
  EXPECT_THROW(run_campaign(smoke_spec(), options), std::runtime_error);  // no path
  options.journal_path = temp_path("campaign_never_written.jsonl");
  std::remove(options.journal_path.c_str());
  EXPECT_THROW(run_campaign(smoke_spec(), options), std::runtime_error);  // no file
}

TEST(CampaignRobustness, HangingCellTimesOutAndBecomesAStatusRow) {
  const ScopedFault fault("campaign.cell:hang:after=2");
  CampaignOptions options;
  options.jobs = 1;
  options.cell_timeout = 0.05;
  const CampaignResult result = run_campaign(smoke_spec(), options);
  EXPECT_EQ(result.cells[0].status, CellStatus::Ok);
  EXPECT_EQ(result.cells[1].status, CellStatus::Timeout);
  EXPECT_FALSE(result.interrupted);  // a slow cell is not an interrupted run
  EXPECT_NE(json_of(result).find("\"timeout\": 1"), std::string::npos);
  EXPECT_NE(csv_of(result).find(",timeout,"), std::string::npos);
}

TEST(CampaignRobustness, PreTrippedStopLeavesEverythingPendingAndInterrupted) {
  util::StopSource stop;
  stop.request_stop();
  CampaignOptions options;
  options.jobs = 1;
  options.stop = stop.token();
  const CampaignResult result = run_campaign(smoke_spec(), options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.simulated_cells, 0u);
  EXPECT_EQ(result.count(CellStatus::Pending), result.cells.size());
  EXPECT_NE(json_of(result).find("\"status\": \"interrupted\""), std::string::npos);
}

TEST(CampaignRobustness, HaltAfterFirstFailureWhenNotKeepingGoing) {
  const ScopedFault fault("campaign.cell:throw:after=1");
  CampaignOptions options;
  options.jobs = 1;
  options.keep_going = false;
  const CampaignResult result = run_campaign(smoke_spec(), options);
  EXPECT_EQ(result.cells[0].status, CellStatus::Failed);
  EXPECT_EQ(result.cells[1].status, CellStatus::Pending);
  EXPECT_FALSE(result.interrupted);  // completed (badly), not stopped
}

// ---------------------------------------------------------------------------
// Degraded-journal contract: journal trouble never aborts healthy simulation
// work; it surfaces as `journal: degraded` in summary.json instead.

TEST(CampaignRobustness, FailedJournalAppendDegradesInsteadOfAborting) {
  // Hit 1 is the header append; the first cell record gets ENOSPC.
  const ScopedFault fault("journal.append.write:errno=ENOSPC:after=2");
  const std::string journal = temp_path("campaign_degraded_append.jsonl");
  std::remove(journal.c_str());
  CampaignOptions options;
  options.jobs = 1;
  options.journal_path = journal;
  const CampaignResult result = run_campaign(smoke_spec(), options);
  EXPECT_EQ(util::fault::fired_count("journal.append.write"), 1u);  // site exercised
  EXPECT_TRUE(result.journal_degraded);
  EXPECT_NE(result.journal_error.find(journal), std::string::npos) << result.journal_error;
  EXPECT_EQ(result.count(CellStatus::Ok), 2u);  // every cell still simulated
  const std::string json = json_of(result);
  EXPECT_NE(json.find("\"journal\": \"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"journal_error\""), std::string::npos);
  std::remove(journal.c_str());
}

TEST(CampaignRobustness, UnopenableJournalDegradesAndTheRunCompletes) {
  const ScopedFault fault("journal.open:errno=EACCES");
  CampaignOptions options;
  options.jobs = 1;
  options.journal_path = temp_path("campaign_degraded_open.jsonl");
  const CampaignResult result = run_campaign(smoke_spec(), options);
  EXPECT_TRUE(result.journal_degraded);
  EXPECT_EQ(result.count(CellStatus::Ok), 2u);
  EXPECT_NE(json_of(result).find("\"journal\": \"degraded\""), std::string::npos);
}

TEST(CampaignRobustness, TransientJournalFailuresAreRetriedToSuccess) {
  // One-shot EINTR on the append write and on the fsync: retry_io absorbs
  // both; the journal stays healthy and complete.
  const ScopedFault fault("journal.append.write:errno=EINTR,journal.append.fsync:errno=EINTR");
  const std::string journal = temp_path("campaign_retried.jsonl");
  std::remove(journal.c_str());
  CampaignOptions options;
  options.jobs = 1;
  options.journal_path = journal;
  const CampaignResult result = run_campaign(smoke_spec(), options);
  EXPECT_GE(util::fault::fired_count("journal.append.write"), 1u);
  EXPECT_GE(util::fault::fired_count("journal.append.fsync"), 1u);
  EXPECT_FALSE(result.journal_degraded);
  EXPECT_EQ(result.count(CellStatus::Ok), 2u);
  EXPECT_EQ(replay_journal(journal).records, 2u);  // nothing was lost
  EXPECT_EQ(json_of(result).find("\"journal\""), std::string::npos);  // healthy = no line
  std::remove(journal.c_str());
}

TEST(CampaignRobustness, UnreadableJournalOnResumeStaysFailLoud) {
  const std::string journal = temp_path("campaign_resume_loud.jsonl");
  std::remove(journal.c_str());
  CampaignOptions options;
  options.jobs = 1;
  options.journal_path = journal;
  run_campaign(smoke_spec(), options);  // healthy journaled run

  const ScopedFault fault("journal.replay.read:errno=EIO");
  options.resume = true;
  try {
    run_campaign(smoke_spec(), options);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    // Fail-loud leg of the trichotomy: path and errno text, no degradation.
    EXPECT_NE(std::string(error.what()).find(journal), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find("Input/output error"), std::string::npos)
        << error.what();
  }
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace psched::scenario
