#include "metrics/breakdowns.hpp"

#include <gtest/gtest.h>

#include "metrics/standard.hpp"
#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::metrics {
namespace {

using test::make_job;
using test::make_workload;
using test::run_policy;

TEST(LengthBreakdown, CountsAndAverages) {
  const Workload w = make_workload(8, {
                                          make_job(0, minutes(5), 2),   // 0-15m
                                          make_job(0, minutes(10), 2),  // 0-15m
                                          make_job(0, hours(2), 2),     // 1-4h
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  const LengthBreakdown b = length_breakdown(r);
  EXPECT_EQ(b.jobs[0], 2u);
  EXPECT_EQ(b.jobs[2], 1u);
  EXPECT_EQ(b.jobs[7], 0u);
  EXPECT_GT(b.avg_turnaround[0], 0.0);
  EXPECT_DOUBLE_EQ(b.avg_turnaround[7], 0.0);
}

TEST(LengthBreakdown, WithFstMisses) {
  const Workload w = psched::workload::generate_small_workload(101, 200, 32, days(4));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant, PriorityKind::Fairshare);
  const FstResult fst = hybrid_fairshare_fst(r);
  const LengthBreakdown b = length_breakdown(r, &fst);
  double weighted = 0.0;
  std::size_t total = 0;
  for (std::size_t l = 0; l < kLengthCategories; ++l) {
    weighted += b.avg_miss[l] * static_cast<double>(b.jobs[l]);
    total += b.jobs[l];
  }
  EXPECT_EQ(total, r.records.size());
  EXPECT_NEAR(weighted / static_cast<double>(total), fst.avg_miss_all, 1e-6);
}

TEST(LengthBreakdown, MismatchedFstThrows) {
  const Workload w = make_workload(8, {make_job(0, 100, 2)});
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  FstResult wrong;
  wrong.miss = {0, 0, 0};
  EXPECT_THROW(length_breakdown(r, &wrong), std::invalid_argument);
}

TEST(UserBreakdown, SortsHeaviestFirst) {
  const Workload w = make_workload(8, {
                                          make_job(0, hours(10), 8, /*user=*/3),  // heavy
                                          make_job(0, minutes(10), 1, /*user=*/1),
                                          make_job(10, minutes(10), 1, /*user=*/1),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  const auto users = user_breakdown(r);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].user, 3);
  EXPECT_EQ(users[0].jobs, 1u);
  EXPECT_EQ(users[1].user, 1);
  EXPECT_EQ(users[1].jobs, 2u);
  EXPECT_GT(users[0].proc_seconds, users[1].proc_seconds);
}

TEST(UserBreakdown, UnfairFractionWithFst) {
  const Workload w = psched::workload::generate_small_workload(103, 200, 32, days(4));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant, PriorityKind::Fairshare);
  const FstResult fst = hybrid_fairshare_fst(r);
  const auto users = user_breakdown(r, &fst, /*tolerance=*/1);
  std::size_t jobs = 0;
  for (const UserSummary& u : users) {
    jobs += u.jobs;
    EXPECT_GE(u.unfair_fraction, 0.0);
    EXPECT_LE(u.unfair_fraction, 1.0);
  }
  EXPECT_EQ(jobs, r.records.size());
}

TEST(WaitDistribution, MatchesStandardMetrics) {
  const Workload w = psched::workload::generate_small_workload(107, 150, 32, days(3));
  const SimulationResult r = run_policy(w, PolicyKind::Easy);
  const util::Summary waits = wait_distribution(r);
  const StandardMetrics m = compute_standard(r);
  EXPECT_EQ(waits.count, r.records.size());
  EXPECT_NEAR(waits.mean, m.avg_wait, 1e-9);
  EXPECT_NEAR(waits.max, m.max_wait, 1e-9);
  EXPECT_GE(waits.p99, waits.median);
}

}  // namespace
}  // namespace psched::metrics
