#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace psched {
namespace {

TEST(PolicyConfig, DisplayNamesMatchPaper) {
  EXPECT_EQ(paper_policy(PaperPolicy::Cplant24NomaxAll).display_name(), "cplant24.nomax.all");
  EXPECT_EQ(paper_policy(PaperPolicy::Cplant72NomaxAll).display_name(), "cplant72.nomax.all");
  EXPECT_EQ(paper_policy(PaperPolicy::Cplant24NomaxFair).display_name(), "cplant24.nomax.fair");
  EXPECT_EQ(paper_policy(PaperPolicy::Cplant24MaxAll).display_name(), "cplant24.72max.all");
  EXPECT_EQ(paper_policy(PaperPolicy::Cplant72MaxFair).display_name(), "cplant72.72max.fair");
  EXPECT_EQ(paper_policy(PaperPolicy::ConsNomax).display_name(), "cons.nomax");
  EXPECT_EQ(paper_policy(PaperPolicy::ConsMax).display_name(), "cons.72max");
  EXPECT_EQ(paper_policy(PaperPolicy::ConsdynNomax).display_name(), "consdyn.nomax");
  EXPECT_EQ(paper_policy(PaperPolicy::ConsdynMax).display_name(), "consdyn.72max");
}

TEST(PolicyConfig, DerivedNamesForLibraryPolicies) {
  PolicyConfig c;
  c.kind = PolicyKind::Fcfs;
  EXPECT_EQ(c.display_name(), "fcfs.fairshare");
  c.priority = PriorityKind::Fcfs;
  EXPECT_EQ(c.display_name(), "fcfs");
  c.kind = PolicyKind::Easy;
  EXPECT_EQ(c.display_name(), "easy");
  c.kind = PolicyKind::Cplant;
  c.starvation_delay = kNoTime;
  EXPECT_EQ(c.display_name(), "noguarantee.nomax");
  c.kind = PolicyKind::Conservative;
  c.max_runtime = hours(48);
  EXPECT_EQ(c.display_name(), "cons.fcfs.48max");
}

TEST(PolicyConfig, ExplicitNameWins) {
  PolicyConfig c;
  c.name = "my-policy";
  EXPECT_EQ(c.display_name(), "my-policy");
}

TEST(PolicyFactory, BuildsEveryKind) {
  for (const PolicyKind kind :
       {PolicyKind::Fcfs, PolicyKind::Cplant, PolicyKind::Easy, PolicyKind::Conservative,
        PolicyKind::ConservativeDynamic}) {
    PolicyConfig c;
    c.kind = kind;
    const auto scheduler = make_scheduler(c);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_FALSE(scheduler->name().empty());
  }
}

TEST(PolicyMatrix, PaperGroups) {
  const auto minor = minor_change_policies();
  ASSERT_EQ(minor.size(), 5u);
  EXPECT_EQ(minor.front().display_name(), "cplant24.nomax.all");

  const auto all = all_paper_policies();
  ASSERT_EQ(all.size(), 9u);
  // The minor group is a prefix of the full group.
  for (std::size_t i = 0; i < minor.size(); ++i)
    EXPECT_EQ(all[i].display_name(), minor[i].display_name());
  // All names unique.
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_NE(all[i].display_name(), all[j].display_name());
}

TEST(PolicyMatrix, PaperPolicyParameters) {
  const PolicyConfig triple = paper_policy(PaperPolicy::Cplant72MaxFair);
  EXPECT_EQ(triple.starvation_delay, hours(72));
  EXPECT_TRUE(triple.bar_heavy_users);
  EXPECT_EQ(triple.max_runtime, hours(72));
  EXPECT_EQ(triple.kind, PolicyKind::Cplant);
  EXPECT_EQ(triple.priority, PriorityKind::Fairshare);

  const PolicyConfig consdyn = paper_policy(PaperPolicy::ConsdynNomax);
  EXPECT_EQ(consdyn.kind, PolicyKind::ConservativeDynamic);
  EXPECT_EQ(consdyn.max_runtime, kNoTime);
}

}  // namespace
}  // namespace psched
