#include "core/cplant_scheduler.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched {
namespace {

using test::make_job;
using test::make_workload;

SimulationResult run_cplant(const Workload& w, Time starvation_delay = hours(24),
                            bool bar_heavy = false, double heavy_factor = 4.0) {
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;
  config.policy.starvation_delay = starvation_delay;
  config.policy.bar_heavy_users = bar_heavy;
  config.policy.heavy_user_factor = heavy_factor;
  return sim::simulate(w, config);
}

TEST(CplantScheduler, NoGuaranteeBackfilling) {
  // Narrow lower-priority jobs start ahead of a wide job with no reservation.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6, 0),  // running until 100
                                          make_job(1, 500, 4, 1),  // wide: must wait (2 free)
                                          make_job(2, 50, 2, 2),   // narrow: starts at once
                                          make_job(3, 50, 2, 3),   // narrow: starts at 52
                                      });
  const SimulationResult r = run_cplant(w);
  EXPECT_EQ(r.records[2].start, 2);
  EXPECT_GE(r.records[1].start, 100);
  test::expect_no_overallocation(r);
}

TEST(CplantScheduler, StarvationQueuePromotionAfterDelay) {
  // A wide job starved by a stream of narrow jobs gets a reservation once it
  // has waited out the starvation delay, and then actually runs.
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, hours(30), 3, 0));  // 3 of 4 nodes busy 30 h
  jobs.push_back(make_job(10, hours(40), 4, 1));  // wide job: needs all nodes
  // A steady stream of 1-node jobs that would otherwise run forever.
  for (int i = 0; i < 200; ++i)
    jobs.push_back(make_job(20 + i * minutes(15), hours(1), 1, 2));
  const Workload w = make_workload(4, jobs);
  const SimulationResult r = run_cplant(w, hours(24));
  // Without the starvation queue the wide job would wait for a lucky drain;
  // with it, it starts within (delay + longest drain) of its submission.
  const JobRecord& wide = r.records[1];
  EXPECT_GT(wide.start, hours(24));
  EXPECT_LE(wide.start, hours(24) + hours(31));
  test::expect_no_overallocation(r);
}

TEST(CplantScheduler, LongerDelayStartsWideJobLater) {
  // A 30 h 3-node job plus a saturated 1-node stream: the 4-node job can
  // only run via a starvation-queue reservation, so the entry delay directly
  // moves its start (24 h delay -> drain at 30 h; 72 h delay -> ~72 h).
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, hours(30), 3, 0));
  jobs.push_back(make_job(10, hours(10), 4, 1));  // starved wide job
  for (int i = 0; i < 300; ++i)
    jobs.push_back(make_job(20 + i * minutes(30), hours(2), 1, 2));
  const Workload w = make_workload(4, jobs);
  const SimulationResult r24 = run_cplant(w, hours(24));
  const SimulationResult r72 = run_cplant(w, hours(72));
  EXPECT_GT(r72.records[1].start, r24.records[1].start);
  EXPECT_GE(r24.records[1].start, hours(24));
  EXPECT_GE(r72.records[1].start, hours(72));
}

TEST(CplantScheduler, HeavyUserBarKeepsJobOutOfStarvationQueue) {
  // User 0 is extremely heavy; with the bar enabled their wide job cannot
  // use the starvation queue and therefore starts later than without it.
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, days(4), 3, 0));          // user 0 burns usage
  jobs.push_back(make_job(days(2), hours(10), 4, 0));  // user 0's wide job
  for (int i = 0; i < 400; ++i)
    jobs.push_back(make_job(days(2) + i * minutes(20), hours(2), 1, 1 + i % 3));
  const Workload w = make_workload(4, jobs);
  const SimulationResult all = run_cplant(w, hours(24), /*bar_heavy=*/false);
  const SimulationResult fair = run_cplant(w, hours(24), /*bar_heavy=*/true, /*factor=*/1.0);
  EXPECT_GT(fair.records[1].start, all.records[1].start);
}

TEST(CplantScheduler, StarvationQueueIsFcfsNotFairshare) {
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;
  config.policy.starvation_delay = hours(1);
  // Machine saturated for three days by user 9.
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, days(3), 4, 9));
  // Two wide jobs starve: user 9 (heavy, arrives first), user 1 (light).
  jobs.push_back(make_job(100, hours(5), 4, 9));
  jobs.push_back(make_job(200, hours(5), 4, 1));
  const Workload w = make_workload(4, jobs);
  const SimulationResult r = sim::simulate(w, config);
  // Fairshare would put user 1 first; the starvation queue is FCFS, so the
  // heavy user's earlier-submitted job runs first.
  EXPECT_LT(r.records[1].start, r.records[2].start);
}

TEST(CplantScheduler, NameReflectsConfig) {
  CplantConfig c;
  EXPECT_EQ(CplantScheduler(c).name(), "cplant24.all");
  c.starvation_delay = hours(72);
  c.bar_heavy_users = true;
  EXPECT_EQ(CplantScheduler(c).name(), "cplant72.fair");
  c.starvation_delay = kNoTime;
  EXPECT_EQ(CplantScheduler(c).name(), "noguarantee");
}

TEST(CplantScheduler, DisabledStarvationNeverPromotes) {
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, hours(100), 3, 0));
  jobs.push_back(make_job(10, hours(1), 4, 1));  // wide
  for (int i = 0; i < 150; ++i)
    jobs.push_back(make_job(20 + i * minutes(30), hours(1), 1, 2));
  const Workload w = make_workload(4, jobs);
  const SimulationResult no_starve = run_cplant(w, /*starvation_delay=*/kNoTime);
  // The wide job can only start when the machine naturally drains, i.e.
  // after the 100 h job completes and no 1-node job is running.
  EXPECT_GE(no_starve.records[1].start, hours(100));
  test::expect_no_overallocation(no_starve);
  test::expect_complete_and_causal(no_starve);
}

TEST(CplantScheduler, InvariantsOnRandomTrace) {
  const Workload w = psched::workload::generate_small_workload(23, 400, 128, days(10));
  const SimulationResult r = run_cplant(w);
  test::expect_no_overallocation(r);
  test::expect_complete_and_causal(r);
}

}  // namespace
}  // namespace psched
