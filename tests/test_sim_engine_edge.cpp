// Engine edge cases: simultaneous events, full-machine jobs, zero-wait
// chains, and event-ordering guarantees.

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"

namespace psched::sim {
namespace {

using test::make_job;
using test::make_workload;

TEST(EngineEdge, CompletionBeforeArrivalAtSameInstant) {
  // A job completes exactly when another arrives: the freed nodes must be
  // usable by the arrival immediately (completions drain first).
  const Workload w = make_workload(4, {
                                          make_job(0, 100, 4),
                                          make_job(100, 10, 4),  // arrives at the completion
                                      });
  const SimulationResult r = simulate(w, EngineConfig{});
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[1].wait(), 0);
}

TEST(EngineEdge, ManySimultaneousArrivals) {
  std::vector<Job> jobs;
  for (int i = 0; i < 32; ++i) jobs.push_back(make_job(1000, 60, 1, i % 4));
  const Workload w = make_workload(8, jobs);
  const SimulationResult r = simulate(w, EngineConfig{});
  test::expect_no_overallocation(r);
  test::expect_complete_and_causal(r);
  // Exactly 8 can run at once: the batch drains in 4 waves.
  Time last_finish = 0;
  for (const JobRecord& rec : r.records) last_finish = std::max(last_finish, rec.finish);
  EXPECT_EQ(last_finish, 1000 + 4 * 60);
}

TEST(EngineEdge, FullMachineJobsSerialize) {
  const Workload w = make_workload(16, {
                                           make_job(0, 50, 16),
                                           make_job(0, 50, 16),
                                           make_job(0, 50, 16),
                                       });
  const SimulationResult r = simulate(w, EngineConfig{});
  std::vector<Time> starts{r.records[0].start, r.records[1].start, r.records[2].start};
  std::sort(starts.begin(), starts.end());
  EXPECT_EQ(starts, (std::vector<Time>{0, 50, 100}));
}

TEST(EngineEdge, OneSecondJobs) {
  std::vector<Job> jobs;
  for (int i = 0; i < 50; ++i) jobs.push_back(make_job(i, 1, 1, 0));
  const Workload w = make_workload(2, jobs);
  const SimulationResult r = simulate(w, EngineConfig{});
  test::expect_complete_and_causal(r);
}

TEST(EngineEdge, SnapshotGrowthWithChainedSegments) {
  // Chained segments create records mid-run; snapshot storage must keep up.
  EngineConfig config;
  config.policy.max_runtime = hours(10);
  config.segment_arrival = SegmentArrival::Chained;
  config.record_snapshots = true;
  const Workload w = make_workload(4, {make_job(0, hours(35), 4)});
  const SimulationResult r = simulate(w, config);
  ASSERT_EQ(r.records.size(), 4u);
  ASSERT_EQ(r.snapshots.size(), 4u);
  for (const ArrivalSnapshot& s : r.snapshots) EXPECT_NE(s.id, kInvalidJob);
}

TEST(EngineEdge, SingleJobMetricsAreTrivial) {
  const Workload w = make_workload(8, {make_job(123, 456, 3)});
  const SimulationResult r = simulate(w, EngineConfig{});
  EXPECT_EQ(r.records[0].start, 123);
  EXPECT_EQ(r.records[0].finish, 123 + 456);
  EXPECT_EQ(r.first_start, 123);
  EXPECT_EQ(r.last_finish, 123 + 456);
  EXPECT_EQ(r.makespan(), 456);
  EXPECT_DOUBLE_EQ(r.loc_proc_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.busy_proc_seconds, 3.0 * 456.0);
}

TEST(EngineEdge, LateFirstArrivalDoesNotAccrueLoc) {
  // Idle machine with an empty queue is not loss of capacity.
  const Workload w = make_workload(8, {make_job(days(10), 100, 8)});
  const SimulationResult r = simulate(w, EngineConfig{});
  EXPECT_DOUBLE_EQ(r.loc_proc_seconds, 0.0);
}

TEST(EngineEdge, WholeTraceAtSameInstantUnderConservative) {
  std::vector<Job> jobs;
  for (int i = 0; i < 24; ++i) jobs.push_back(make_job(0, 100, 1 + i % 8, i % 3));
  const Workload w = make_workload(8, jobs);
  EngineConfig config;
  config.policy.kind = PolicyKind::Conservative;
  const SimulationResult r = simulate(w, config);
  test::expect_no_overallocation(r);
  test::expect_complete_and_causal(r);
}

TEST(EngineEdge, EngineStateVisibleThroughContext) {
  const Workload w = make_workload(8, {make_job(0, 100, 3)});
  EngineConfig config;
  SimulationEngine engine(w, config);
  EXPECT_EQ(engine.total_nodes(), 8);
  EXPECT_EQ(engine.free_nodes(), 8);
  engine.run();
  EXPECT_EQ(engine.free_nodes(), 8);  // all released at the end
  EXPECT_TRUE(engine.running().empty());
}

TEST(EngineCancellation, PreTrippedTokenStopsBeforeTheFirstEvent) {
  const Workload w = make_workload(8, {make_job(0, 100, 3)});
  util::StopSource stop;
  stop.request_stop();
  EngineConfig config;
  config.stop = stop.token();
  try {
    simulate(w, config);
    FAIL() << "expected SimulationCancelled";
  } catch (const SimulationCancelled& cancelled) {
    EXPECT_EQ(cancelled.reason(), util::StopReason::Cancelled);
  }
}

TEST(EngineCancellation, ExpiredDeadlineSurfacesAsTimeout) {
  std::vector<Job> jobs;
  for (int i = 0; i < 16; ++i) jobs.push_back(make_job(i * 10, 60, 1, i % 4));
  const Workload w = make_workload(4, jobs);
  util::StopSource stop;
  stop.set_deadline_after(0.0);  // already past by the first poll
  EngineConfig config;
  config.stop = stop.token();
  try {
    simulate(w, config);
    FAIL() << "expected SimulationCancelled";
  } catch (const SimulationCancelled& cancelled) {
    EXPECT_EQ(cancelled.reason(), util::StopReason::Timeout);
  }
}

TEST(EngineCancellation, EmptyTokenCostsNothingAndNeverCancels) {
  const Workload w = make_workload(8, {make_job(0, 100, 3), make_job(5, 50, 2)});
  EngineConfig config;
  ASSERT_FALSE(config.stop.valid());  // the default: no cancellation wired
  const SimulationResult r = simulate(w, config);
  EXPECT_EQ(r.records.size(), 2u);
}

}  // namespace
}  // namespace psched::sim
