#include "core/list_scheduler.hpp"

#include <gtest/gtest.h>

namespace psched {
namespace {

TEST(ListScheduler, ImmediateStartOnFreeMachine) {
  ListScheduler ls(8, 100);
  EXPECT_EQ(ls.schedule(4, 50, 100), 100);
  EXPECT_EQ(ls.earliest_available(), 100);  // 4 nodes still free at origin
}

TEST(ListScheduler, RejectsBadArguments) {
  ListScheduler ls(4, 0);
  EXPECT_THROW(ls.schedule(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(ls.schedule(5, 10, 0), std::invalid_argument);
  EXPECT_THROW(ls.schedule(1, -1, 0), std::invalid_argument);
  EXPECT_THROW(ListScheduler(0, 0), std::invalid_argument);
}

TEST(ListScheduler, SerializesWhenMachineFull) {
  ListScheduler ls(4, 0);
  EXPECT_EQ(ls.schedule(4, 10, 0), 0);
  EXPECT_EQ(ls.schedule(4, 10, 0), 10);
  EXPECT_EQ(ls.schedule(2, 5, 0), 20);
}

TEST(ListScheduler, PacksDisjointNodeSets) {
  ListScheduler ls(4, 0);
  EXPECT_EQ(ls.schedule(2, 100, 0), 0);
  EXPECT_EQ(ls.schedule(2, 10, 0), 0);  // other two nodes
  EXPECT_EQ(ls.schedule(2, 10, 0), 10);
}

TEST(ListScheduler, NoHoleFilling) {
  // The defining restriction vs conservative backfilling: a job takes the N
  // earliest-*available* nodes even if an earlier "hole" exists on paper.
  ListScheduler ls(4, 0);
  ls.schedule(4, 10, 0);          // machine busy until 10
  ls.schedule(2, 100, 0);         // nodes A,B busy until 110
  const Time start = ls.schedule(2, 5, 0);  // nodes C,D at 10
  EXPECT_EQ(start, 10);
  // Now all four: C,D free at 15; A,B at 110. A 3-node job needs C,D + one
  // of A,B -> starts at 110 even though C,D idle from 15 (no-holes rule).
  EXPECT_EQ(ls.schedule(3, 5, 0), 110);
}

TEST(ListScheduler, EarliestBoundRespected) {
  ListScheduler ls(4, 0);
  EXPECT_EQ(ls.schedule(2, 10, 50), 50);
  EXPECT_EQ(ls.schedule(4, 10, 0), 60);  // two nodes busy until 60
}

TEST(ListScheduler, OccupySeedsRunningJobs) {
  ListScheduler ls(8, 0);
  ls.occupy(6, 100);
  EXPECT_EQ(ls.peek_start(2, 0), 0);    // two nodes still free
  EXPECT_EQ(ls.peek_start(3, 0), 100);  // needs one of the busy nodes
  EXPECT_THROW(ls.occupy(9, 10), std::invalid_argument);
}

TEST(ListScheduler, OccupyMultipleRunningJobs) {
  ListScheduler ls(8, 0);
  ls.occupy(4, 50);
  ls.occupy(4, 200);
  EXPECT_EQ(ls.peek_start(1, 0), 50);
  EXPECT_EQ(ls.peek_start(5, 0), 200);
}

TEST(ListScheduler, PeekDoesNotMutate) {
  ListScheduler ls(4, 0);
  ls.schedule(2, 100, 0);
  const Time p1 = ls.peek_start(4, 0);
  const Time p2 = ls.peek_start(4, 0);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(ls.schedule(4, 1, 0), p1);
}

TEST(ListScheduler, StartIsNthSmallestAvailability) {
  ListScheduler ls(3, 0);
  ls.occupy(1, 10);
  ls.occupy(1, 20);
  // availabilities: {0, 10, 20}
  EXPECT_EQ(ls.peek_start(1, 0), 0);
  EXPECT_EQ(ls.peek_start(2, 0), 10);
  EXPECT_EQ(ls.peek_start(3, 0), 20);
}

TEST(ListScheduler, FairshareOrderScenario) {
  // The paper's hybrid FST construction: running jobs + queue in priority
  // order. 8-node machine, 6 nodes busy until t=100.
  ListScheduler ls(8, 0);
  ls.occupy(6, 100);
  // Priority order: J1(4 nodes, 50s), J2(2 nodes, 10s), J3(8 nodes, 5s).
  // J1 claims the two idle nodes plus two of the busy ones (the list
  // scheduler always takes the N earliest-available nodes), so J2 cannot
  // sneak onto the idle nodes behind it — that would be hole-filling.
  const Time s1 = ls.schedule(4, 50, 0);   // starts at the drain
  const Time s2 = ls.schedule(2, 10, 0);   // next four nodes free at 100
  const Time s3 = ls.schedule(8, 5, 0);    // whole machine -> after J1 at 150
  EXPECT_EQ(s1, 100);
  EXPECT_EQ(s2, 100);
  EXPECT_EQ(s3, 150);
}

}  // namespace
}  // namespace psched
