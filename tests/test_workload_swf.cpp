#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::workload {
namespace {

TEST(Swf, ParsesMinimalRecord) {
  std::istringstream in(
      "; MaxNodes: 32\n"
      "1 100 -1 3600 8 -1 -1 8 7200 -1 1 3 2 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  const Job& job = result.workload.jobs[0];
  EXPECT_EQ(job.submit, 100);
  EXPECT_EQ(job.runtime, 3600);
  EXPECT_EQ(job.nodes, 8);
  EXPECT_EQ(job.wcl, 7200);
  EXPECT_EQ(job.user, 3);
  EXPECT_EQ(job.group, 2);
  EXPECT_EQ(result.workload.system_size, 32);
}

TEST(Swf, FallsBackToRequestedProcs) {
  std::istringstream in("1 0 -1 100 -1 -1 -1 16 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].nodes, 16);
}

TEST(Swf, FallsBackWclToRuntime) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 -1 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].wcl, 100);
}

TEST(Swf, SkipsInvalidRecordsByDefault) {
  // Status says completed, but the runtime is missing: malformed, so it hits
  // the skip_invalid path (status-0 records are filtered before this check —
  // see FilteredRecordsAreNotCountedAsInvalid).
  std::istringstream in(
      "1 0 -1 -1 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"   // completed but runtime -1
      "2 5 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.total_records, 2u);
  EXPECT_EQ(result.skipped_records, 1u);
  EXPECT_EQ(result.workload.jobs.size(), 1u);
}

TEST(Swf, StrictModeThrowsOnInvalid) {
  std::istringstream in("1 0 -1 -1 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  SwfReadOptions options;
  options.skip_invalid = false;
  EXPECT_THROW(read_swf(in, 0, options), std::invalid_argument);
}

TEST(Swf, FiltersNonCompletedStatusesByDefault) {
  // A trace mixing every archive status: completed (1), failed (0),
  // cancelled (5), partial (2), and unknown (-1). All records carry
  // plausible runtimes — exactly the shape that used to be silently
  // ingested as completed work.
  std::istringstream in(
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n"    // completed
      "2 10 -1 50 4 -1 -1 4 200 -1 0 0 0 -1 -1 -1 -1 -1\n"    // failed
      "3 20 -1 30 4 -1 -1 4 200 -1 5 0 0 -1 -1 -1 -1 -1\n"    // cancelled
      "4 30 -1 40 4 -1 -1 4 200 -1 2 0 0 -1 -1 -1 -1 -1\n"    // partial
      "5 40 -1 60 4 -1 -1 4 200 -1 -1 0 0 -1 -1 -1 -1 -1\n")  // unknown
      ;
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.total_records, 5u);
  EXPECT_EQ(result.filtered_records, 3u);  // failed, cancelled, partial
  EXPECT_EQ(result.skipped_records, 0u);
  ASSERT_EQ(result.workload.jobs.size(), 2u);  // completed + unknown
  EXPECT_EQ(result.workload.jobs[0].runtime, 100);
  EXPECT_EQ(result.workload.jobs[1].runtime, 60);
}

TEST(Swf, AcceptedStatusesAreConfigurable) {
  const std::string trace =
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 10 -1 50 4 -1 -1 4 200 -1 5 0 0 -1 -1 -1 -1 -1\n";
  SwfReadOptions options;
  options.accepted_statuses = {1, 5};
  std::istringstream accept_cancelled(trace);
  const SwfReadResult widened = read_swf(accept_cancelled, 0, options);
  EXPECT_EQ(widened.workload.jobs.size(), 2u);
  EXPECT_EQ(widened.filtered_records, 0u);

  options.accepted_statuses.clear();  // empty list disables the filter
  std::istringstream accept_all(trace);
  const SwfReadResult unfiltered = read_swf(accept_all, 0, options);
  EXPECT_EQ(unfiltered.workload.jobs.size(), 2u);
  EXPECT_EQ(unfiltered.filtered_records, 0u);
}

TEST(Swf, FilteredRecordsAreNotCountedAsInvalid) {
  // A cancelled record with a missing runtime is filtered (by status), not
  // skipped (as malformed) — and must not throw in strict mode either.
  std::istringstream in("1 0 -1 -1 4 -1 -1 4 200 -1 5 0 0 -1 -1 -1 -1 -1\n");
  SwfReadOptions options;
  options.skip_invalid = false;  // strict: invalid records would throw
  const SwfReadResult result = read_swf(in, 8, options);
  EXPECT_EQ(result.filtered_records, 1u);
  EXPECT_EQ(result.skipped_records, 0u);
  EXPECT_TRUE(result.workload.jobs.empty());
}

TEST(Swf, HeaderSizesMachineInProcessorUnits) {
  // SMP trace: 128 nodes x 4 cores. Job widths are processor counts
  // (AllocatedProcs), so the machine must be sized by MaxProcs, not
  // MaxNodes — otherwise a 512-proc machine is modeled as 128 units while
  // jobs still ask for up to 512.
  std::istringstream in(
      "; MaxNodes: 128\n"
      "; MaxProcs: 512\n"
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.system_size, 512);
  // The sizing decision is reported, not just applied (CLIs surface it).
  EXPECT_EQ(result.sizing, SwfSizing::HeaderProcs);
  EXPECT_EQ(result.header_max_nodes, 128);
  EXPECT_EQ(result.header_max_procs, 512);
  EXPECT_EQ(result.widest_job, 4);
  EXPECT_EQ(result.describe_sizing(),
            "512 nodes (SWF header MaxProcs; MaxNodes 128, MaxProcs 512, widest job 4)");
}

TEST(Swf, JobWiderThanMaxNodesIngestsOnSmpTrace) {
  // Regression: sizing by MaxNodes made any job allocating more processors
  // than the node count throw in Workload::validate(). The 256-proc job
  // below ran on the traced 128x4 machine and must ingest cleanly.
  std::istringstream in(
      "; MaxNodes: 128\n"
      "; MaxProcs: 512\n"
      "1 0 -1 100 256 -1 -1 256 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].nodes, 256);
  EXPECT_EQ(result.workload.system_size, 512);
}

TEST(Swf, WidestJobLiftsUndersizedHeader) {
  // A header understating the machine (here MaxNodes with no MaxProcs on
  // what was really an SMP trace) is clamped up to the widest ingested job
  // instead of rejecting it.
  std::istringstream in(
      "; MaxNodes: 16\n"
      "1 0 -1 100 24 -1 -1 24 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.system_size, 24);
  EXPECT_EQ(result.sizing, SwfSizing::WidestJob);
  EXPECT_EQ(result.widest_job, 24);
}

TEST(Swf, HeaderFallsBackToMaxProcsWithoutMaxNodes) {
  std::istringstream in(
      "; MaxProcs: 256\n"
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.system_size, 256);
}

TEST(Swf, SystemSizeFromWidestJobWithoutHeader) {
  std::istringstream in(
      "1 0 -1 100 24 -1 -1 24 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 5 -1 100 8 -1 -1 8 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.system_size, 24);
}

TEST(Swf, ExplicitSystemSizeWins) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in, /*system_size=*/512);
  EXPECT_EQ(result.workload.system_size, 512);
  EXPECT_EQ(result.sizing, SwfSizing::Explicit);
}

TEST(Swf, SortsUnorderedRecords) {
  std::istringstream in(
      "1 500 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 100 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.jobs[0].submit, 100);
  EXPECT_EQ(result.workload.jobs[1].submit, 500);
}

TEST(Swf, RoundTripPreservesJobs) {
  const Workload original = generate_small_workload(5, 120, 64, days(3));
  std::ostringstream out;
  write_swf(out, original, "round trip test");
  std::istringstream in(out.str());
  const SwfReadResult reread = read_swf(in);
  ASSERT_EQ(reread.workload.jobs.size(), original.jobs.size());
  EXPECT_EQ(reread.workload.system_size, original.system_size);
  EXPECT_EQ(reread.skipped_records, 0u);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const Job& a = original.jobs[i];
    const Job& b = reread.workload.jobs[i];
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.wcl, b.wcl);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.group, b.group);
  }
}

TEST(Swf, RoundTripSurvivesForeignNonCompletedRecords) {
  // A written trace spliced into a larger archive file with failed/cancelled
  // records round-trips to exactly the original workload: the status filter
  // drops the foreign records, the writer's own records all carry status 1.
  const Workload original = generate_small_workload(4, 60, 32, days(2));
  std::ostringstream out;
  write_swf(out, original, "status filter round trip");
  out << "9001 0 -1 500 4 -1 -1 4 600 -1 0 1 1 -1 -1 -1 -1 -1\n"   // failed
      << "9002 0 -1 500 4 -1 -1 4 600 -1 5 1 1 -1 -1 -1 -1 -1\n";  // cancelled
  std::istringstream in(out.str());
  const SwfReadResult reread = read_swf(in);
  EXPECT_EQ(reread.total_records, original.jobs.size() + 2);
  EXPECT_EQ(reread.filtered_records, 2u);
  ASSERT_EQ(reread.workload.jobs.size(), original.jobs.size());
  EXPECT_EQ(reread.workload.system_size, original.system_size);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const Job& a = original.jobs[i];
    const Job& b = reread.workload.jobs[i];
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.wcl, b.wcl);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.group, b.group);
  }
}

TEST(Swf, RoundTripThroughWclFallback) {
  // A record with no requested time takes wcl = runtime on first read; once
  // written back out, the materialized wcl must survive further round trips.
  std::istringstream archive(
      "; MaxNodes: 16\n"
      "1 50 -1 300 8 -1 -1 8 -1 -1 1 2 3 -1 -1 -1 -1 -1\n");
  const SwfReadResult first = read_swf(archive);
  ASSERT_EQ(first.workload.jobs.size(), 1u);
  EXPECT_EQ(first.workload.jobs[0].wcl, 300);  // fallback applied

  std::ostringstream out;
  write_swf(out, first.workload, "wcl fallback round trip");
  std::istringstream in(out.str());
  const SwfReadResult second = read_swf(in);
  ASSERT_EQ(second.workload.jobs.size(), 1u);
  const Job& a = first.workload.jobs[0];
  const Job& b = second.workload.jobs[0];
  EXPECT_EQ(a.submit, b.submit);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.wcl, b.wcl);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(second.workload.system_size, first.workload.system_size);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

TEST(Swf, EmptyStreamYieldsEmptyWorkload) {
  std::istringstream in("; just a comment\n\n");
  const SwfReadResult result = read_swf(in, 8);
  EXPECT_TRUE(result.workload.jobs.empty());
  EXPECT_EQ(result.workload.system_size, 8);
}

}  // namespace
}  // namespace psched::workload
