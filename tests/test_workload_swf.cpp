#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::workload {
namespace {

TEST(Swf, ParsesMinimalRecord) {
  std::istringstream in(
      "; MaxNodes: 32\n"
      "1 100 -1 3600 8 -1 -1 8 7200 -1 1 3 2 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  const Job& job = result.workload.jobs[0];
  EXPECT_EQ(job.submit, 100);
  EXPECT_EQ(job.runtime, 3600);
  EXPECT_EQ(job.nodes, 8);
  EXPECT_EQ(job.wcl, 7200);
  EXPECT_EQ(job.user, 3);
  EXPECT_EQ(job.group, 2);
  EXPECT_EQ(result.workload.system_size, 32);
}

TEST(Swf, FallsBackToRequestedProcs) {
  std::istringstream in("1 0 -1 100 -1 -1 -1 16 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].nodes, 16);
}

TEST(Swf, FallsBackWclToRuntime) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 -1 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].wcl, 100);
}

TEST(Swf, SkipsInvalidRecordsByDefault) {
  std::istringstream in(
      "1 0 -1 -1 4 -1 -1 4 100 -1 0 0 0 -1 -1 -1 -1 -1\n"   // failed job (runtime -1)
      "2 5 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.total_records, 2u);
  EXPECT_EQ(result.skipped_records, 1u);
  EXPECT_EQ(result.workload.jobs.size(), 1u);
}

TEST(Swf, StrictModeThrowsOnInvalid) {
  std::istringstream in("1 0 -1 -1 4 -1 -1 4 100 -1 0 0 0 -1 -1 -1 -1 -1\n");
  SwfReadOptions options;
  options.skip_invalid = false;
  EXPECT_THROW(read_swf(in, 0, options), std::invalid_argument);
}

TEST(Swf, SystemSizeFromWidestJobWithoutHeader) {
  std::istringstream in(
      "1 0 -1 100 24 -1 -1 24 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 5 -1 100 8 -1 -1 8 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.system_size, 24);
}

TEST(Swf, ExplicitSystemSizeWins) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in, /*system_size=*/512);
  EXPECT_EQ(result.workload.system_size, 512);
}

TEST(Swf, SortsUnorderedRecords) {
  std::istringstream in(
      "1 500 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 100 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.jobs[0].submit, 100);
  EXPECT_EQ(result.workload.jobs[1].submit, 500);
}

TEST(Swf, RoundTripPreservesJobs) {
  const Workload original = generate_small_workload(5, 120, 64, days(3));
  std::ostringstream out;
  write_swf(out, original, "round trip test");
  std::istringstream in(out.str());
  const SwfReadResult reread = read_swf(in);
  ASSERT_EQ(reread.workload.jobs.size(), original.jobs.size());
  EXPECT_EQ(reread.workload.system_size, original.system_size);
  EXPECT_EQ(reread.skipped_records, 0u);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const Job& a = original.jobs[i];
    const Job& b = reread.workload.jobs[i];
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.wcl, b.wcl);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.group, b.group);
  }
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

TEST(Swf, EmptyStreamYieldsEmptyWorkload) {
  std::istringstream in("; just a comment\n\n");
  const SwfReadResult result = read_swf(in, 8);
  EXPECT_TRUE(result.workload.jobs.empty());
  EXPECT_EQ(result.workload.system_size, 8);
}

}  // namespace
}  // namespace psched::workload
