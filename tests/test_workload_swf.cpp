#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "test_helpers.hpp"
#include "workload/generator.hpp"
#include "workload/transform.hpp"

namespace psched::workload {
namespace {

/// Field-by-field workload equality — the byte-identity the streaming reader
/// promises against the eager one.
void expect_same_jobs(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.system_size, b.system_size);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id) << "job " << i;
    EXPECT_EQ(a.jobs[i].submit, b.jobs[i].submit) << "job " << i;
    EXPECT_EQ(a.jobs[i].runtime, b.jobs[i].runtime) << "job " << i;
    EXPECT_EQ(a.jobs[i].wcl, b.jobs[i].wcl) << "job " << i;
    EXPECT_EQ(a.jobs[i].nodes, b.jobs[i].nodes) << "job " << i;
    EXPECT_EQ(a.jobs[i].user, b.jobs[i].user) << "job " << i;
    EXPECT_EQ(a.jobs[i].group, b.jobs[i].group) << "job " << i;
  }
}

/// Parse `text` through BOTH ingestion paths, assert the full SwfReadResult
/// (workload, counters, sizing provenance) agrees, return the eager result.
SwfReadResult read_both(const std::string& text, NodeCount system_size = 0,
                        const SwfReadOptions& options = {}) {
  std::istringstream eager_in(text);
  const SwfReadResult eager = read_swf(eager_in, system_size, options);
  std::istringstream streaming_in(text);
  const SwfReadResult streaming = read_swf_streaming(streaming_in, system_size, options);
  expect_same_jobs(eager.workload, streaming.workload);
  EXPECT_EQ(eager.total_records, streaming.total_records);
  EXPECT_EQ(eager.skipped_records, streaming.skipped_records);
  EXPECT_EQ(eager.filtered_records, streaming.filtered_records);
  EXPECT_EQ(eager.header_max_nodes, streaming.header_max_nodes);
  EXPECT_EQ(eager.header_max_procs, streaming.header_max_procs);
  EXPECT_EQ(eager.widest_job, streaming.widest_job);
  EXPECT_EQ(eager.sizing, streaming.sizing);
  EXPECT_EQ(eager.describe_sizing(), streaming.describe_sizing());
  return eager;
}

TEST(Swf, ParsesMinimalRecord) {
  std::istringstream in(
      "; MaxNodes: 32\n"
      "1 100 -1 3600 8 -1 -1 8 7200 -1 1 3 2 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  const Job& job = result.workload.jobs[0];
  EXPECT_EQ(job.submit, 100);
  EXPECT_EQ(job.runtime, 3600);
  EXPECT_EQ(job.nodes, 8);
  EXPECT_EQ(job.wcl, 7200);
  EXPECT_EQ(job.user, 3);
  EXPECT_EQ(job.group, 2);
  EXPECT_EQ(result.workload.system_size, 32);
}

TEST(Swf, FallsBackToRequestedProcs) {
  std::istringstream in("1 0 -1 100 -1 -1 -1 16 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].nodes, 16);
}

TEST(Swf, FallsBackWclToRuntime) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 -1 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].wcl, 100);
}

TEST(Swf, SkipsInvalidRecordsByDefault) {
  // Status says completed, but the runtime is missing: malformed, so it hits
  // the skip_invalid path (status-0 records are filtered before this check —
  // see FilteredRecordsAreNotCountedAsInvalid).
  std::istringstream in(
      "1 0 -1 -1 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"   // completed but runtime -1
      "2 5 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.total_records, 2u);
  EXPECT_EQ(result.skipped_records, 1u);
  EXPECT_EQ(result.workload.jobs.size(), 1u);
}

TEST(Swf, StrictModeThrowsOnInvalid) {
  std::istringstream in("1 0 -1 -1 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  SwfReadOptions options;
  options.skip_invalid = false;
  EXPECT_THROW(read_swf(in, 0, options), std::invalid_argument);
}

TEST(Swf, FiltersNonCompletedStatusesByDefault) {
  // A trace mixing every archive status: completed (1), failed (0),
  // cancelled (5), partial (2), and unknown (-1). All records carry
  // plausible runtimes — exactly the shape that used to be silently
  // ingested as completed work.
  std::istringstream in(
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n"    // completed
      "2 10 -1 50 4 -1 -1 4 200 -1 0 0 0 -1 -1 -1 -1 -1\n"    // failed
      "3 20 -1 30 4 -1 -1 4 200 -1 5 0 0 -1 -1 -1 -1 -1\n"    // cancelled
      "4 30 -1 40 4 -1 -1 4 200 -1 2 0 0 -1 -1 -1 -1 -1\n"    // partial
      "5 40 -1 60 4 -1 -1 4 200 -1 -1 0 0 -1 -1 -1 -1 -1\n")  // unknown
      ;
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.total_records, 5u);
  EXPECT_EQ(result.filtered_records, 3u);  // failed, cancelled, partial
  EXPECT_EQ(result.skipped_records, 0u);
  ASSERT_EQ(result.workload.jobs.size(), 2u);  // completed + unknown
  EXPECT_EQ(result.workload.jobs[0].runtime, 100);
  EXPECT_EQ(result.workload.jobs[1].runtime, 60);
}

TEST(Swf, AcceptedStatusesAreConfigurable) {
  const std::string trace =
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 10 -1 50 4 -1 -1 4 200 -1 5 0 0 -1 -1 -1 -1 -1\n";
  SwfReadOptions options;
  options.accepted_statuses = {1, 5};
  std::istringstream accept_cancelled(trace);
  const SwfReadResult widened = read_swf(accept_cancelled, 0, options);
  EXPECT_EQ(widened.workload.jobs.size(), 2u);
  EXPECT_EQ(widened.filtered_records, 0u);

  options.accepted_statuses.clear();  // empty list disables the filter
  std::istringstream accept_all(trace);
  const SwfReadResult unfiltered = read_swf(accept_all, 0, options);
  EXPECT_EQ(unfiltered.workload.jobs.size(), 2u);
  EXPECT_EQ(unfiltered.filtered_records, 0u);
}

TEST(Swf, FilteredRecordsAreNotCountedAsInvalid) {
  // A cancelled record with a missing runtime is filtered (by status), not
  // skipped (as malformed) — and must not throw in strict mode either.
  std::istringstream in("1 0 -1 -1 4 -1 -1 4 200 -1 5 0 0 -1 -1 -1 -1 -1\n");
  SwfReadOptions options;
  options.skip_invalid = false;  // strict: invalid records would throw
  const SwfReadResult result = read_swf(in, 8, options);
  EXPECT_EQ(result.filtered_records, 1u);
  EXPECT_EQ(result.skipped_records, 0u);
  EXPECT_TRUE(result.workload.jobs.empty());
}

TEST(Swf, HeaderSizesMachineInProcessorUnits) {
  // SMP trace: 128 nodes x 4 cores. Job widths are processor counts
  // (AllocatedProcs), so the machine must be sized by MaxProcs, not
  // MaxNodes — otherwise a 512-proc machine is modeled as 128 units while
  // jobs still ask for up to 512.
  std::istringstream in(
      "; MaxNodes: 128\n"
      "; MaxProcs: 512\n"
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.system_size, 512);
  // The sizing decision is reported, not just applied (CLIs surface it).
  EXPECT_EQ(result.sizing, SwfSizing::HeaderProcs);
  EXPECT_EQ(result.header_max_nodes, 128);
  EXPECT_EQ(result.header_max_procs, 512);
  EXPECT_EQ(result.widest_job, 4);
  EXPECT_EQ(result.describe_sizing(),
            "512 nodes (SWF header MaxProcs; MaxNodes 128, MaxProcs 512, widest job 4)");
}

TEST(Swf, JobWiderThanMaxNodesIngestsOnSmpTrace) {
  // Regression: sizing by MaxNodes made any job allocating more processors
  // than the node count throw in Workload::validate(). The 256-proc job
  // below ran on the traced 128x4 machine and must ingest cleanly.
  std::istringstream in(
      "; MaxNodes: 128\n"
      "; MaxProcs: 512\n"
      "1 0 -1 100 256 -1 -1 256 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.jobs[0].nodes, 256);
  EXPECT_EQ(result.workload.system_size, 512);
}

TEST(Swf, WidestJobLiftsUndersizedHeader) {
  // A header understating the machine (here MaxNodes with no MaxProcs on
  // what was really an SMP trace) is clamped up to the widest ingested job
  // instead of rejecting it.
  std::istringstream in(
      "; MaxNodes: 16\n"
      "1 0 -1 100 24 -1 -1 24 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  ASSERT_EQ(result.workload.jobs.size(), 1u);
  EXPECT_EQ(result.workload.system_size, 24);
  EXPECT_EQ(result.sizing, SwfSizing::WidestJob);
  EXPECT_EQ(result.widest_job, 24);
}

TEST(Swf, HeaderFallsBackToMaxProcsWithoutMaxNodes) {
  std::istringstream in(
      "; MaxProcs: 256\n"
      "1 0 -1 100 4 -1 -1 4 200 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.system_size, 256);
}

TEST(Swf, SystemSizeFromWidestJobWithoutHeader) {
  std::istringstream in(
      "1 0 -1 100 24 -1 -1 24 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 5 -1 100 8 -1 -1 8 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.system_size, 24);
}

TEST(Swf, ExplicitSystemSizeWins) {
  std::istringstream in("1 0 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in, /*system_size=*/512);
  EXPECT_EQ(result.workload.system_size, 512);
  EXPECT_EQ(result.sizing, SwfSizing::Explicit);
}

TEST(Swf, SortsUnorderedRecords) {
  std::istringstream in(
      "1 500 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 100 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1\n");
  const SwfReadResult result = read_swf(in);
  EXPECT_EQ(result.workload.jobs[0].submit, 100);
  EXPECT_EQ(result.workload.jobs[1].submit, 500);
}

TEST(Swf, RoundTripPreservesJobs) {
  const Workload original = generate_small_workload(5, 120, 64, days(3));
  std::ostringstream out;
  write_swf(out, original, "round trip test");
  std::istringstream in(out.str());
  const SwfReadResult reread = read_swf(in);
  ASSERT_EQ(reread.workload.jobs.size(), original.jobs.size());
  EXPECT_EQ(reread.workload.system_size, original.system_size);
  EXPECT_EQ(reread.skipped_records, 0u);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const Job& a = original.jobs[i];
    const Job& b = reread.workload.jobs[i];
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.wcl, b.wcl);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.group, b.group);
  }
}

TEST(Swf, RoundTripSurvivesForeignNonCompletedRecords) {
  // A written trace spliced into a larger archive file with failed/cancelled
  // records round-trips to exactly the original workload: the status filter
  // drops the foreign records, the writer's own records all carry status 1.
  const Workload original = generate_small_workload(4, 60, 32, days(2));
  std::ostringstream out;
  write_swf(out, original, "status filter round trip");
  out << "9001 0 -1 500 4 -1 -1 4 600 -1 0 1 1 -1 -1 -1 -1 -1\n"   // failed
      << "9002 0 -1 500 4 -1 -1 4 600 -1 5 1 1 -1 -1 -1 -1 -1\n";  // cancelled
  std::istringstream in(out.str());
  const SwfReadResult reread = read_swf(in);
  EXPECT_EQ(reread.total_records, original.jobs.size() + 2);
  EXPECT_EQ(reread.filtered_records, 2u);
  ASSERT_EQ(reread.workload.jobs.size(), original.jobs.size());
  EXPECT_EQ(reread.workload.system_size, original.system_size);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const Job& a = original.jobs[i];
    const Job& b = reread.workload.jobs[i];
    EXPECT_EQ(a.submit, b.submit);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.wcl, b.wcl);
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.group, b.group);
  }
}

TEST(Swf, RoundTripThroughWclFallback) {
  // A record with no requested time takes wcl = runtime on first read; once
  // written back out, the materialized wcl must survive further round trips.
  std::istringstream archive(
      "; MaxNodes: 16\n"
      "1 50 -1 300 8 -1 -1 8 -1 -1 1 2 3 -1 -1 -1 -1 -1\n");
  const SwfReadResult first = read_swf(archive);
  ASSERT_EQ(first.workload.jobs.size(), 1u);
  EXPECT_EQ(first.workload.jobs[0].wcl, 300);  // fallback applied

  std::ostringstream out;
  write_swf(out, first.workload, "wcl fallback round trip");
  std::istringstream in(out.str());
  const SwfReadResult second = read_swf(in);
  ASSERT_EQ(second.workload.jobs.size(), 1u);
  const Job& a = first.workload.jobs[0];
  const Job& b = second.workload.jobs[0];
  EXPECT_EQ(a.submit, b.submit);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.wcl, b.wcl);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(second.workload.system_size, first.workload.system_size);
}

TEST(Swf, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

TEST(Swf, EmptyStreamYieldsEmptyWorkload) {
  std::istringstream in("; just a comment\n\n");
  const SwfReadResult result = read_swf(in, 8);
  EXPECT_TRUE(result.workload.jobs.empty());
  EXPECT_EQ(result.workload.system_size, 8);
}

// ---------------------------------------------------------------------------
// Robustness battery: hostile archive shapes, exercised through BOTH readers
// (read_both pins full parity on every case).

TEST(SwfRobustness, CrlfTracesParseIdentically) {
  // A trace saved on Windows: every line — header, blank, records — ends in
  // \r\n. The \r must not leak into the last field or make blank lines count.
  const SwfReadResult result = read_both(
      "; MaxNodes: 32\r\n"
      "\r\n"
      "1 100 -1 3600 8 -1 -1 8 7200 -1 1 3 2 -1 -1 -1 -1 -1\r\n"
      "2 200 -1 60 4 -1 -1 4 60 -1 1 1 1 -1 -1 -1 -1 -1\r\n");
  EXPECT_EQ(result.total_records, 2u);
  EXPECT_EQ(result.skipped_records, 0u);
  ASSERT_EQ(result.workload.jobs.size(), 2u);
  EXPECT_EQ(result.workload.jobs[1].group, 1);  // last field intact, no '\r'
  EXPECT_EQ(result.workload.system_size, 32);
}

TEST(SwfRobustness, InterleavedCommentsAndBlanksAreNotRecords) {
  const SwfReadResult result = read_both(
      "; UnixStartTime: 0\n"
      "1 10 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "\n"
      "; mid-trace annotation\n"
      "2 20 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "\n"
      "; MaxProcs: 64\n"
      "3 30 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  EXPECT_EQ(result.total_records, 3u);
  EXPECT_EQ(result.skipped_records, 0u);
  ASSERT_EQ(result.workload.jobs.size(), 3u);
  // Headers are honored wherever they appear in the stream.
  EXPECT_EQ(result.workload.system_size, 64);
}

TEST(SwfRobustness, OutOfOrderSubmitsAreNormalized) {
  // Archive traces are not reliably submit-sorted. Both readers must deliver
  // a normalized workload: sorted by submit, ties in ingest order, ids
  // renumbered to match positions.
  const SwfReadResult result = read_both(
      "1 500 -1 10 1 -1 -1 1 10 -1 1 7 0 -1 -1 -1 -1 -1\n"
      "2 100 -1 20 1 -1 -1 1 20 -1 1 8 0 -1 -1 -1 -1 -1\n"
      "3 100 -1 30 1 -1 -1 1 30 -1 1 9 0 -1 -1 -1 -1 -1\n"
      "4 50 -1 40 1 -1 -1 1 40 -1 1 6 0 -1 -1 -1 -1 -1\n");
  ASSERT_EQ(result.workload.jobs.size(), 4u);
  const Time expected_submit[] = {50, 100, 100, 500};
  const UserId expected_user[] = {6, 8, 9, 7};  // stable tie at submit=100
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.workload.jobs[i].id, static_cast<JobId>(i)) << "job " << i;
    EXPECT_EQ(result.workload.jobs[i].submit, expected_submit[i]) << "job " << i;
    EXPECT_EQ(result.workload.jobs[i].user, expected_user[i]) << "job " << i;
  }
}

TEST(SwfRobustness, OversizedFieldRejectsWithLineNumber) {
  // A submit field wider than 64 bits is corruption, not data — both readers
  // must refuse with the offending line number, never silently clamp.
  const std::string text =
      "; MaxNodes: 8\n"
      "1 10 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 99999999999999999999 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n";
  for (const bool streaming : {false, true}) {
    std::istringstream in(text);
    try {
      if (streaming)
        read_swf_streaming(in);
      else
        read_swf(in);
      FAIL() << "expected std::runtime_error (streaming=" << streaming << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("swf:3: SWF field 2 out of range"),
                std::string::npos)
          << error.what();
    }
  }
}

TEST(SwfRobustness, StrictInvalidRecordCarriesLineNumber) {
  const std::string text =
      "; comment\n"
      "1 10 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "\n"
      "2 20 -1 -1 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n";  // runtime missing
  SwfReadOptions options;
  options.skip_invalid = false;
  for (const bool streaming : {false, true}) {
    std::istringstream in(text);
    try {
      if (streaming)
        read_swf_streaming(in, 0, options);
      else
        read_swf(in, 0, options);
      FAIL() << "expected std::invalid_argument (streaming=" << streaming << ")";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("swf:4: invalid record"), std::string::npos)
          << error.what();
    }
  }
}

TEST(SwfRobustness, FileReadersPrefixErrorsWithPath) {
  const std::string path = testing::TempDir() + "psched_swf_badfield.swf";
  {
    std::ofstream out(path);
    out << "1 99999999999999999999 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n";
  }
  for (const bool streaming : {false, true}) {
    try {
      if (streaming)
        read_swf_file_streaming(path);
      else
        read_swf_file(path);
      FAIL() << "expected std::runtime_error (streaming=" << streaming << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(path + ":1:"), std::string::npos)
          << error.what();
    }
  }
  std::remove(path.c_str());
}

TEST(SwfRobustness, StreamingMatchesEagerOnGeneratedTrace) {
  // A multi-chunk trace (several thousand records, unordered after the load
  // transform) through the full write -> read_both loop.
  const Workload original = generate_small_workload(21, 3000, 128, days(30));
  std::ostringstream out;
  write_swf(out, original, "streaming parity");
  const SwfReadResult reread = read_both(out.str());
  EXPECT_EQ(reread.total_records, original.jobs.size());
  expect_same_jobs(reread.workload, original);
}

TEST(SwfRobustness, StreamingHeadMatchesEagerHeadPrefix) {
  // The streaming head cap keeps the N earliest (submit, ingest-order)
  // records in O(head) memory; it must pick the exact prefix the eager
  // normalize + head() truncation picks, including across submit ties.
  std::ostringstream out;
  out << "; MaxNodes: 64\n";
  // 200 records with heavily duplicated submits, written in reverse order.
  for (int i = 199; i >= 0; --i)
    out << (i + 1) << ' ' << (i % 13) * 100 << " -1 " << (60 + i) << " 2 -1 -1 2 "
        << (120 + i) << " -1 1 " << i % 7 << " 0 -1 -1 -1 -1 -1\n";
  const std::string text = out.str();

  std::istringstream eager_in(text);
  const SwfReadResult eager = read_swf(eager_in);
  for (const std::size_t head : {std::size_t{1}, std::size_t{57}, std::size_t{200},
                                 std::size_t{500}}) {
    std::istringstream streaming_in(text);
    const SwfReadResult streamed = read_swf_streaming(streaming_in, 0, {}, head);
    expect_same_jobs(streamed.workload,
                     workload::head(eager.workload, std::min(head, eager.workload.jobs.size())));
    // Counters and sizing describe the whole trace in both paths — the head
    // cap bounds memory, it does not hide records from provenance.
    EXPECT_EQ(streamed.total_records, eager.total_records);
    EXPECT_EQ(streamed.widest_job, eager.widest_job);
    EXPECT_EQ(streamed.describe_sizing(), eager.describe_sizing());
  }
}

TEST(SwfStreamReaderTest, ChunkedPullsTrackLinesAndCompletion) {
  std::istringstream in(
      "; MaxNodes: 8\n"
      "1 10 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "2 20 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n"
      "3 30 -1 100 4 -1 -1 4 100 -1 1 0 0 -1 -1 -1 -1 -1\n");
  SwfStreamReader reader(in);
  std::vector<Job> jobs;
  EXPECT_EQ(reader.read_chunk(jobs, 2), 2u);  // caller-sized chunk
  EXPECT_FALSE(reader.done());
  EXPECT_EQ(jobs.size(), 2u);
  EXPECT_EQ(reader.read_chunk(jobs, 2), 1u);  // trailing partial chunk
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(reader.read_chunk(jobs, 2), 0u);  // drained: stays done, appends nothing
  EXPECT_EQ(jobs.size(), 3u);
  EXPECT_EQ(reader.line(), 4u);
  EXPECT_EQ(reader.total_records(), 3u);
}

}  // namespace
}  // namespace psched::workload
