#include "core/conservative_scheduler.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched {
namespace {

using test::make_job;
using test::make_workload;
using test::run_policy;

TEST(ConservativeScheduler, EveryJobGetsReservationOnArrival) {
  // Same Figure-2 scenario as EASY: conservative also backfills, but here the
  // backfiller's reservation exists from arrival.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),
                                          make_job(1, 50, 4),
                                          make_job(2, 50, 2),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Conservative);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 2);
}

TEST(ConservativeScheduler, BackfillMayDelayNobody) {
  // Unlike EASY (which only protects the head), conservative protects every
  // queued job's reservation. J1 and J2 cannot share the machine, so J2 is
  // reserved behind J1; the narrow J3 threads through both reservations'
  // leftover nodes and starts immediately (benign backfilling).
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),   // running
                                          make_job(1, 50, 4),    // reserved [100, 150)
                                          make_job(2, 60, 6),    // 4+6 > 8 -> reserved [150, 210)
                                          make_job(3, 300, 2),   // 2 nodes spare everywhere
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Conservative);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 150);
  EXPECT_EQ(r.records[3].start, 3);
}

TEST(ConservativeScheduler, BackfillBlockedByNarrowerMargin) {
  // Same shape but J3 needs 3 nodes: [150, 210) only has 8-6 = 2 spare, so
  // J3 must wait until J2's reservation ends.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),
                                          make_job(1, 50, 4),
                                          make_job(2, 60, 6),
                                          make_job(3, 300, 3),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Conservative);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 150);
  // J2 completes at 210; J3's earliest feasible window begins there.
  EXPECT_EQ(r.records[3].start, 210);
}

TEST(ConservativeScheduler, ArrivalCannotDisplaceExistingReservation) {
  const Workload w = make_workload(4, {
                                          make_job(0, 100, 4),  // running until 100
                                          make_job(1, 100, 4),  // reserved [100, 200)
                                          make_job(2, 10, 4),   // must go after, not before
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Conservative);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 200);
}

TEST(ConservativeScheduler, CompressionOnEarlyCompletion) {
  // The running job's WCL is 200 but it really finishes at 50; the queued
  // job's reservation (made at WCL-based t=200) compresses to 50.
  const Workload w = make_workload(4, {
                                          make_job(0, 50, 4, 0, /*wcl=*/200),
                                          make_job(1, 10, 4, 1),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Conservative);
  EXPECT_EQ(r.records[1].start, 50);
}

TEST(ConservativeScheduler, CompressionFollowsPriorityOrder) {
  // Two queued jobs could each use freed space, but only one fits. Under
  // fairshare priority the lighter user's job gets the first improvement
  // attempt even though it arrived later.
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Conservative;
  config.policy.priority = PriorityKind::Fairshare;
  const Workload w = make_workload(
      4, {
             make_job(0, days(2), 4, /*user=*/0, /*wcl=*/days(3)),  // heavy user runs 2 days
             make_job(days(1), hours(2), 4, /*user=*/0),            // heavy user queued first
             make_job(days(1) + 10, hours(2), 4, /*user=*/1),       // light user queued later
         });
  const SimulationResult r = sim::simulate(w, config);
  // At the 2-day completion (earlier than the 3-day WCL), the improvement
  // pass runs in fairshare order: user 1 (no published usage) beats user 0.
  EXPECT_LT(r.records[2].start, r.records[1].start);
}

TEST(ConservativeScheduler, StaticKeepsFcfsFeelForEqualPriorities) {
  // With FCFS priority, conservative degenerates to arrival-ordered
  // reservations.
  const Workload w = make_workload(2, {
                                          make_job(0, 100, 2),
                                          make_job(1, 100, 2),
                                          make_job(2, 100, 2),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Conservative);
  EXPECT_EQ(r.records[0].start, 0);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 200);
}

TEST(ConservativeDynamic, ReplanFollowsPriorityEveryEvent) {
  // Dynamic reservations: the light user's later arrival takes the earlier
  // slot because the whole plan is rebuilt in fairshare order.
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::ConservativeDynamic;
  const Workload w = make_workload(
      4, {
             make_job(0, days(2), 4, /*user=*/0),            // heavy user
             make_job(days(1), hours(2), 4, /*user=*/0),     // heavy user's next job
             make_job(days(1) + 50, hours(2), 4, /*user=*/1)  // light user, later
         });
  const SimulationResult r = sim::simulate(w, config);
  EXPECT_LT(r.records[2].start, r.records[1].start);
}

TEST(ConservativeDynamic, StaticReservationHoldsWhereDynamicSlides) {
  // Scenario where a stream of light-user jobs overtakes a heavy user's wide
  // job under dynamic reservations, but static conservative honours the
  // wide job's arrival-time reservation.
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, days(2), 4, /*user=*/0));      // usage for user 0
  jobs.push_back(make_job(days(1), hours(3), 4, 0));        // wide job, heavy user
  for (int i = 0; i < 30; ++i)
    jobs.push_back(make_job(days(1) + 100 + i * 60, hours(3), 4, 1 + i % 3));
  const Workload w = make_workload(4, jobs);

  sim::EngineConfig stat;
  stat.policy.kind = PolicyKind::Conservative;
  sim::EngineConfig dyn;
  dyn.policy.kind = PolicyKind::ConservativeDynamic;
  const SimulationResult rs = sim::simulate(w, stat);
  const SimulationResult rd = sim::simulate(w, dyn);
  EXPECT_LE(rs.records[1].start, rd.records[1].start);
  test::expect_no_overallocation(rs);
  test::expect_no_overallocation(rd);
}

TEST(ConservativeScheduler, OverrunningJobDefersReservations) {
  // Running job's WCL is 50 but it actually runs 100: the queued wide job's
  // reservation (at 50, WCL-based) cannot start then; it starts at 100.
  const Workload w = make_workload(4, {
                                          make_job(0, 100, 4, 0, /*wcl=*/50),
                                          make_job(1, 10, 4, 1),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Conservative);
  EXPECT_EQ(r.records[1].start, 100);
  test::expect_no_overallocation(r);
}

TEST(ConservativeScheduler, InvariantsOnRandomTraces) {
  for (const bool dynamic : {false, true}) {
    const Workload w = psched::workload::generate_small_workload(31, 350, 96, days(9));
    const SimulationResult r = run_policy(
        w, dynamic ? PolicyKind::ConservativeDynamic : PolicyKind::Conservative);
    test::expect_no_overallocation(r);
    test::expect_complete_and_causal(r);
  }
}

}  // namespace
}  // namespace psched
