// Deep-queue coverage for the gap-indexed Profile: the time-bucketed
// min/feasible-run index must be invisible in results (only in cost) at
// every depth. These tests force the index on/off around the crossover
// threshold and diff against both the preserved seed implementation and the
// linear-scan path, profile-level and end-to-end through the
// conservative/CPlant schedulers.

#include <gtest/gtest.h>

#include <vector>

#include "core/profile.hpp"
#include "core/reference_profile.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace psched {
namespace {

TEST(ProfileDeep, ForcedIndexMatchesReferenceOnRandomOps) {
  // The randomized diff of test_core_profile_diff.cpp, but with the index
  // forced on from the first breakpoint, so shallow profiles exercise the
  // tree descents and the lazy suffix rebuilds too.
  Profile::ThresholdGuard guard(Profile::kForceIndex);
  util::Rng rng(20260729);
  for (int round = 0; round < 10; ++round) {
    const NodeCount capacity = static_cast<NodeCount>(rng.uniform_int(4, 1024));
    Profile opt(capacity, 0);
    reference::ReferenceProfile ref(capacity, 0);
    struct Interval {
      Time from, to;
      NodeCount nodes;
    };
    std::vector<Interval> live;
    for (int op = 0; op < 300; ++op) {
      if (rng.uniform01() < 0.6 || live.empty()) {
        Interval iv;
        iv.from = rng.uniform_int(0, 300'000);
        iv.to = iv.from + rng.uniform_int(1, 80'000);
        iv.nodes = static_cast<NodeCount>(rng.uniform_int(1, capacity));
        bool ok_opt = true, ok_ref = true;
        try {
          opt.add_usage(iv.from, iv.to, iv.nodes);
        } catch (const std::logic_error&) {
          ok_opt = false;
        }
        try {
          ref.add_usage(iv.from, iv.to, iv.nodes);
        } catch (const std::logic_error&) {
          ok_ref = false;
        }
        ASSERT_EQ(ok_opt, ok_ref) << "acceptance diverged at op " << op;
        if (ok_opt) live.push_back(iv);
      } else {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        const Interval iv = live[pick];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        opt.remove_usage(iv.from, iv.to, iv.nodes);
        ref.remove_usage(iv.from, iv.to, iv.nodes);
      }
      ASSERT_NO_THROW(opt.check_invariants());
      for (int q = 0; q < 4; ++q) {
        const Time t = rng.uniform_int(0, 400'000);
        const Time dur = rng.uniform_int(1, 120'000);
        const NodeCount w = static_cast<NodeCount>(rng.uniform_int(1, capacity));
        ASSERT_EQ(opt.free_at(t), ref.free_at(t));
        ASSERT_EQ(opt.fits_at(t, dur, w), ref.fits_at(t, dur, w));
        ASSERT_EQ(opt.earliest_fit(t, dur, w), ref.earliest_fit(t, dur, w))
            << "op " << op << " t=" << t << " dur=" << dur << " w=" << w;
      }
    }
  }
}

TEST(ProfileDeep, ForcedIndexSurvivesBatchesAndAdvanceOrigin) {
  Profile::ThresholdGuard guard(Profile::kForceIndex);
  util::Rng rng(55);
  Profile opt(256, 0);
  reference::ReferenceProfile ref(256, 0);
  opt.begin_batch();
  for (int i = 0; i < 400; ++i) {
    const Time from = rng.uniform_int(0, 250'000);
    const Time to = from + rng.uniform_int(60, 40'000);
    const NodeCount nodes = static_cast<NodeCount>(rng.uniform_int(1, 24));
    if (ref.fits_at(from, to - from, nodes)) {
      opt.add_usage(from, to, nodes);
      ref.add_usage(from, to, nodes);
    }
    // Queries stay exact (and indexed) inside the batch.
    const Time t = rng.uniform_int(0, 300'000);
    ASSERT_EQ(opt.earliest_fit(t, 3600, 64), ref.earliest_fit(t, 3600, 64));
  }
  opt.end_batch();
  ASSERT_EQ(opt.debug_string(), ref.debug_string());

  // advance_origin drops a prefix: the index must resync from scratch.
  const Time cut = 120'000;
  opt.advance_origin(cut);
  ASSERT_NO_THROW(opt.check_invariants());
  for (Time t = cut; t < 320'000; t += 503) {
    ASSERT_EQ(opt.free_at(t), ref.free_at(t)) << t;
    ASSERT_EQ(opt.earliest_fit(t, 7200, 128), ref.earliest_fit(t, 7200, 128)) << t;
  }
}

TEST(ProfileDeep, FarFutureReservationRekeysInsteadOfResizing) {
  // Regression: index_sync used to extend the bucket tables to the new
  // horizon at the old bucket width BEFORE the re-key check could run, so
  // one far-future reservation on a dense profile demanded a multi-gigabyte
  // allocation (~17 GB for the horizon below). The re-key decision must
  // fire on the would-be bucket count; if it regresses, this test OOMs.
  Profile::ThresholdGuard guard(Profile::kForceIndex);
  util::Rng rng(7);
  Profile opt(1024, 0);
  reference::ReferenceProfile ref(1024, 0);
  for (int i = 0; i < 2000; ++i) {
    const Time from = rng.uniform_int(0, 1'200'000);
    const Time to = from + rng.uniform_int(60, 40'000);
    const NodeCount nodes = static_cast<NodeCount>(rng.uniform_int(1, 64));
    if (ref.fits_at(from, to - from, nodes)) {
      opt.add_usage(from, to, nodes);
      ref.add_usage(from, to, nodes);
    }
  }
  opt.earliest_fit(0, 3600, 512);  // key the index to the dense ~1.2M-s span
  const Time far = Time{1} << 40;  // ~35k-year horizon in seconds
  opt.add_usage(far, far + 100, 1024);
  ref.add_usage(far, far + 100, 1024);
  for (Time t = 0; t < 1'400'000; t += 37'003) {
    ASSERT_EQ(opt.earliest_fit(t, 3600, 512), ref.earliest_fit(t, 3600, 512)) << t;
  }
  ASSERT_EQ(opt.earliest_fit(far - 50, 200, 1024), ref.earliest_fit(far - 50, 200, 1024));
  ASSERT_EQ(opt.free_at(far + 50), ref.free_at(far + 50));

  // Removing the far reservation collapses the span back to ~1.2M s while
  // the table still covers the 2^40 horizon; the shrink-side re-key must
  // restore a dense keying (and queries must stay exact through it).
  opt.remove_usage(far, far + 100, 1024);
  ref.remove_usage(far, far + 100, 1024);
  for (Time t = 0; t < 1'400'000; t += 37'003) {
    ASSERT_EQ(opt.earliest_fit(t, 3600, 512), ref.earliest_fit(t, 3600, 512)) << t;
    ASSERT_EQ(opt.fits_at(t, 7200, 256), ref.fits_at(t, 7200, 256)) << t;
  }
}

TEST(ProfileDeep, DeepPackIndexedMatchesLinearScan) {
  // The replan inner loop at 5k+ reservations: alternate earliest_fit and
  // add_usage until the plan holds thousands of seated jobs. The indexed
  // profile must pick byte-identical slots to the linear-scan path and end
  // with an identical breakpoint array.
  util::Rng widths_rng(9001);
  std::vector<NodeCount> widths;
  std::vector<Time> lengths;
  for (int i = 0; i < 5000; ++i) {
    widths.push_back(static_cast<NodeCount>(widths_rng.uniform_int(1, 96)));
    lengths.push_back(widths_rng.uniform_int(300, 36'000));
  }

  auto pack = [&](std::size_t threshold) {
    Profile::ThresholdGuard guard(threshold);
    Profile profile(512, 0);
    std::vector<Time> starts;
    starts.reserve(widths.size());
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const Time at = profile.earliest_fit(0, lengths[i], widths[i]);
      profile.add_usage(at, at + lengths[i], widths[i]);
      starts.push_back(at);
    }
    profile.check_invariants();
    return std::make_pair(std::move(starts), profile.debug_string());
  };

  const auto [starts_indexed, shape_indexed] = pack(Profile::kForceIndex);
  const auto [starts_linear, shape_linear] = pack(Profile::kDisableIndex);
  ASSERT_EQ(starts_indexed.size(), starts_linear.size());
  for (std::size_t i = 0; i < starts_indexed.size(); ++i)
    ASSERT_EQ(starts_indexed[i], starts_linear[i]) << "slot diverged for job " << i;
  EXPECT_EQ(shape_indexed, shape_linear);
}

/// A burst workload that drives the waiting queue deep: everyone arrives
/// within the first hour on a small machine, so the conservative plan holds
/// hundreds of simultaneous reservations and every completion triggers a
/// heavy compression pass.
Workload burst_workload(std::size_t jobs) {
  util::Rng rng(7777);
  WorkloadBuilder b;
  b.system_size = 64;
  for (std::size_t i = 0; i < jobs; ++i) {
    Job job;
    job.id = static_cast<JobId>(i);
    job.user = static_cast<UserId>(rng.uniform_int(0, 7));
    job.submit = rng.uniform_int(0, 3600);
    job.nodes = static_cast<NodeCount>(rng.uniform_int(1, 16));
    job.runtime = rng.uniform_int(120, 4000);
    job.wcl = job.runtime + rng.uniform_int(0, 2000);
    b.jobs.push_back(job);
  }
  b.normalize();
  Workload w = b.build();
  w.validate();
  return w;
}

TEST(ProfileDeep, CopyMidDirtyIsIndependentAndMatchesLinear) {
  // Pins the copy semantics the forkable engine depends on (the conservative
  // clone() copies its persistent plan profile wholesale): a Profile copied
  // MID-DIRTY — warmed bucket aggregates from earlier queries plus a pending
  // gap-index dirty range from un-probed mutations — must behave, on both
  // sides of the copy, exactly like a fresh linear-scan profile replaying
  // the same operation history. Divergent mutations after the copy must not
  // leak between the copies in either direction.
  Profile::ThresholdGuard guard(Profile::kForceIndex);
  util::Rng rng(20260730);

  struct Op {
    Time from, to;
    NodeCount nodes;
  };
  const auto random_op = [&rng] {
    Op op;
    op.from = rng.uniform_int(0, 900'000);
    op.to = op.from + rng.uniform_int(60, 50'000);
    op.nodes = static_cast<NodeCount>(rng.uniform_int(1, 48));
    return op;
  };
  const auto apply = [](Profile& profile, const std::vector<Op>& ops) {
    for (const Op& op : ops)
      if (profile.fits_at(op.from, op.to - op.from, op.nodes))
        profile.add_usage(op.from, op.to, op.nodes);
  };
  // Deterministic query probe: earliest_fit sweep at several widths, plus the
  // final breakpoint shape. Byte-comparable across profiles.
  const auto probe = [](const Profile& profile) {
    std::string out;
    for (Time t = 0; t < 1'000'000; t += 43'067)
      for (const NodeCount w : {NodeCount{3}, NodeCount{60}, NodeCount{250}})
        out += std::to_string(profile.earliest_fit(t, 7200, w)) + ",";
    return out + profile.debug_string();
  };

  // Base history: deep pack (warms the index via fits_at probes), then a
  // mutation burst with NO query in between, leaving a pending dirty range.
  std::vector<Op> base;
  for (int i = 0; i < 3000; ++i) base.push_back(random_op());
  std::vector<Op> dirty_tail;
  for (int i = 0; i < 40; ++i) dirty_tail.push_back(random_op());

  Profile original(256, 0);
  apply(original, base);
  original.earliest_fit(0, 3600, 200);  // warm bucket aggregates
  apply(original, dirty_tail);          // ...then dirty them, un-probed

  Profile copy = original;  // copy taken mid-dirty

  // Divergent histories after the copy.
  std::vector<Op> tail_a, tail_b;
  for (int i = 0; i < 200; ++i) tail_a.push_back(random_op());
  for (int i = 0; i < 200; ++i) tail_b.push_back(random_op());
  apply(original, tail_a);
  apply(copy, tail_b);
  const std::string probe_original = probe(original);
  const std::string probe_copy = probe(copy);
  original.check_invariants();
  copy.check_invariants();

  // Linear-path replays of the two full histories.
  const auto replay_linear = [&](const std::vector<Op>& tail) {
    Profile::ThresholdGuard off(Profile::kDisableIndex);
    Profile linear(256, 0);
    apply(linear, base);
    linear.earliest_fit(0, 3600, 200);
    apply(linear, dirty_tail);
    apply(linear, tail);
    return probe(linear);
  };
  EXPECT_EQ(probe_original, replay_linear(tail_a));
  EXPECT_EQ(probe_copy, replay_linear(tail_b));
}

TEST(ProfileDeep, HeavyReplanSimulationIsIndexInvariant) {
  // End-to-end: conservative (static + dynamic) and CPlant runs over a deep
  // burst queue must produce identical schedules with the index forced on
  // and forced off — the index wires into the persistent replan profile and
  // the starvation head reservation without changing one decision.
  const Workload trace = burst_workload(500);
  for (const PolicyKind kind :
       {PolicyKind::Conservative, PolicyKind::ConservativeDynamic, PolicyKind::Cplant}) {
    auto run = [&](std::size_t threshold) {
      Profile::ThresholdGuard guard(threshold);
      sim::EngineConfig config;
      config.policy.kind = kind;
      config.record_snapshots = false;
      return sim::simulate(trace, config);
    };
    const SimulationResult indexed = run(Profile::kForceIndex);
    const SimulationResult linear = run(Profile::kDisableIndex);
    ASSERT_EQ(indexed.records.size(), linear.records.size());
    for (std::size_t i = 0; i < indexed.records.size(); ++i) {
      ASSERT_EQ(indexed.records[i].start, linear.records[i].start)
          << "policy " << static_cast<int>(kind) << " record " << i;
      ASSERT_EQ(indexed.records[i].finish, linear.records[i].finish)
          << "policy " << static_cast<int>(kind) << " record " << i;
    }
    EXPECT_EQ(indexed.busy_proc_seconds, linear.busy_proc_seconds);
    EXPECT_EQ(indexed.loc_proc_seconds, linear.loc_proc_seconds);
  }
}

}  // namespace
}  // namespace psched
