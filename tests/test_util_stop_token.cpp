// Cooperative cancellation primitives and the durable-write helper: token
// semantics (empty/requested/deadline/parent chaining, reason precedence)
// and atomic_write_file's replace-in-place behavior.

#include "util/stop_token.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "util/atomic_file.hpp"

namespace psched::util {
namespace {

TEST(StopToken, EmptyTokenNeverStops) {
  const StopToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::None);
}

TEST(StopToken, RequestStopTripsEveryView) {
  StopSource source;
  const StopToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.stop_requested());
  source.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::Cancelled);
  // Tokens handed out after the stop see it too.
  EXPECT_TRUE(source.token().stop_requested());
}

TEST(StopToken, DeadlineTripsAsTimeout) {
  StopSource source;
  const StopToken token = source.token();
  source.set_deadline_after(0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::Timeout);
}

TEST(StopToken, FutureDeadlineDoesNotStop) {
  StopSource source;
  source.set_deadline_after(3600.0);
  EXPECT_FALSE(source.token().stop_requested());
  EXPECT_EQ(source.token().reason(), StopReason::None);
}

TEST(StopToken, ExplicitStopOutranksAnExpiredDeadline) {
  StopSource source;
  source.set_deadline_after(0.0);
  source.request_stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Both causes hold; the explicit request is the one reported (a user
  // interrupt must not be relabelled a timeout).
  EXPECT_EQ(source.token().reason(), StopReason::Cancelled);
}

TEST(StopToken, ChildStopsWhenParentStops) {
  StopSource parent;
  StopSource child(parent.token());
  const StopToken token = child.token();
  EXPECT_FALSE(token.stop_requested());
  parent.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), StopReason::Cancelled);
}

TEST(StopToken, ChildStopDoesNotPropagateUpward) {
  StopSource parent;
  StopSource child(parent.token());
  child.request_stop();
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_FALSE(parent.token().stop_requested());
}

TEST(StopToken, ChildDeadlineDoesNotTouchParent) {
  StopSource parent;
  StopSource child(parent.token());
  child.set_deadline_after(0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(child.token().stop_requested());
  EXPECT_EQ(child.token().reason(), StopReason::Timeout);
  EXPECT_FALSE(parent.token().stop_requested());
}

TEST(StopToken, GrandparentChainPropagates) {
  StopSource root;
  StopSource mid(root.token());
  StopSource leaf(mid.token());
  root.request_stop();
  EXPECT_TRUE(leaf.token().stop_requested());
  EXPECT_EQ(leaf.token().reason(), StopReason::Cancelled);
}

TEST(StopToken, TokenOutlivesItsSource) {
  StopToken token;
  {
    StopSource source;
    token = source.token();
    source.request_stop();
  }
  EXPECT_TRUE(token.stop_requested());  // shared state keeps the flag alive
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

TEST(AtomicWriteFile, WritesAndReplaces) {
  const std::string path = testing::TempDir() + "atomic_write_test.txt";
  atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  // Replacing is atomic: the new content lands whole, the temp file is gone.
  atomic_write_file(path, "second, longer content\n");
  EXPECT_EQ(slurp(path), "second, longer content\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFile, MissingDirectoryThrowsWithPath) {
  const std::string path = testing::TempDir() + "no_such_dir_psched/x.txt";
  try {
    atomic_write_file(path, "data");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos) << error.what();
  }
}

}  // namespace
}  // namespace psched::util
