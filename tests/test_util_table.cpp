#include "util/table.hpp"

#include <gtest/gtest.h>

namespace psched::util {
namespace {

TEST(TextTable, BasicRender) {
  TextTable t({"name", "value"});
  t.begin_row().add("alpha").add(1.5, 1);
  t.begin_row().add("b").add_int(42);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, PercentFormatting) {
  TextTable t({"p"});
  t.begin_row().add_percent(0.0312, 1);
  EXPECT_EQ(t.cell(0, 0), "3.1%");
}

TEST(TextTable, RowWidthEnforced) {
  TextTable t({"a", "b"});
  t.begin_row().add("x").add("y");
  EXPECT_THROW(t.add("z"), std::logic_error);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, AddBeforeBeginRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"k", "v"});
  t.begin_row().add("a,b").add("say \"hi\"");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(FormatNumber, TrimsZeros) {
  EXPECT_EQ(format_number(1.50, 2), "1.5");
  EXPECT_EQ(format_number(2.00, 2), "2");
  EXPECT_EQ(format_number(-0.0001, 2), "0");
  EXPECT_EQ(format_number(3.14159, 3), "3.142");
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration_short(30.0), "30s");
  EXPECT_EQ(format_duration_short(90.0), "1.5m");
  EXPECT_EQ(format_duration_short(7200.0), "2h");
  EXPECT_EQ(format_duration_short(259200.0), "3d");
}

}  // namespace
}  // namespace psched::util
