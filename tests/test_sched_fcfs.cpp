#include "core/fcfs_scheduler.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace psched {
namespace {

using test::make_job;
using test::make_workload;
using test::run_policy;

TEST(FcfsScheduler, RunsInArrivalOrder) {
  const Workload w = make_workload(4, {
                                          make_job(0, 100, 4),   // J0 fills the machine
                                          make_job(1, 10, 1),    // J1 behind it
                                          make_job(2, 10, 1),    // J2 behind that
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  EXPECT_EQ(r.records[0].start, 0);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 100);  // fits beside J1 once the head moved
}

TEST(FcfsScheduler, HeadBlocksEveryoneBehindIt) {
  // The Figure 1 scenario: jobB could fit but must wait for the head.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),  // running
                                          make_job(1, 50, 4),   // head, needs 4 (only 2 free)
                                          make_job(2, 10, 2),   // would fit NOW, but no backfill
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_GE(r.records[2].start, 100);  // strict FCFS: no leapfrogging
}

TEST(FcfsScheduler, ContiguousStartsWhenAllFit) {
  const Workload w = make_workload(8, {
                                          make_job(0, 10, 2),
                                          make_job(0, 10, 2),
                                          make_job(0, 10, 2),
                                          make_job(0, 10, 2),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  for (const JobRecord& rec : r.records) EXPECT_EQ(rec.start, 0);
}

TEST(FcfsScheduler, WakesOnCompletionOnly) {
  const Workload w = make_workload(2, {
                                          make_job(0, 100, 2),
                                          make_job(50, 10, 2),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  EXPECT_EQ(r.records[1].start, 100);
  test::expect_no_overallocation(r);
  test::expect_complete_and_causal(r);
}

TEST(FcfsScheduler, FairsharePriorityVariantReorders) {
  // User 0 hogs the machine first; once fairshare publishes the usage, user
  // 1's later job outranks user 0's queued job.
  const Workload w = make_workload(
      4, {
             make_job(0, days(2), 4, /*user=*/0),        // runs two days
             make_job(days(1), 100, 4, /*user=*/0),      // user 0 again
             make_job(days(1) + 10, 100, 4, /*user=*/1)  // user 1, arrives later
         });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs, PriorityKind::Fairshare);
  // At t=2d (completion), user 0 has published usage, user 1 has none:
  // user 1 goes first despite arriving later.
  EXPECT_LT(r.records[2].start, r.records[1].start);
}

}  // namespace
}  // namespace psched
