#include "core/easy_scheduler.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched {
namespace {

using test::make_job;
using test::make_workload;
using test::run_policy;

TEST(EasyScheduler, BackfillsAroundHeadReservation) {
  // Figure 2 scenario: jobB leaps forward because it finishes before the
  // head's reservation would start.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),  // running until 100
                                          make_job(1, 50, 4),   // head: reserved at 100
                                          make_job(2, 50, 2),   // fits now and ends at ~52 < 100
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Easy);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 2);  // backfilled immediately on arrival
}

TEST(EasyScheduler, BackfillMayNotDelayHead) {
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6),   // running until 100
                                          make_job(1, 60, 6),    // head: reserved [100, 160)
                                          make_job(2, 200, 3),   // 6+3 > 8 over [100, 160)
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Easy);
  EXPECT_EQ(r.records[1].start, 100);
  // J2 (3 nodes, 200 s) cannot start at t=2: its window [2, 202) overlaps
  // the head's reservation and 6 + 3 exceeds the machine.
  EXPECT_GE(r.records[2].start, 100);
}

TEST(EasyScheduler, HeadStartsAtReservationTime) {
  const Workload w = make_workload(4, {
                                          make_job(0, 100, 4),
                                          make_job(5, 10, 4),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Easy);
  EXPECT_EQ(r.records[1].start, 100);  // woken by the reservation timer
}

TEST(EasyScheduler, WclOverestimateDelaysBackfillDecision) {
  // The head reservation is computed from the running job's WCL (200), not
  // its actual runtime (100): a 150 s backfill candidate fits before the
  // WCL-based reservation start.
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 6, 0, /*wcl=*/200),
                                          make_job(1, 50, 4, 1),   // head reserved at wcl end 200
                                          make_job(2, 150, 2, 2),  // 2+150 < 200: backfills
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Easy);
  EXPECT_EQ(r.records[2].start, 2);
  // Head actually starts at 100 (early completion), not 200.
  EXPECT_EQ(r.records[1].start, 100);
}

TEST(EasyScheduler, InvariantsOnRandomTrace) {
  const Workload w = psched::workload::generate_small_workload(11, 300, 64, days(7));
  const SimulationResult r = run_policy(w, PolicyKind::Easy);
  test::expect_no_overallocation(r);
  test::expect_complete_and_causal(r);
}

}  // namespace
}  // namespace psched
