#include "metrics/resource_equality.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::metrics {
namespace {

using test::make_job;
using test::make_workload;
using test::run_policy;

TEST(ResourceEquality, SoloJobGetsWholeShareWhileRunning) {
  SimulationResult r;
  r.system_size = 4;
  JobRecord a;
  a.job = make_job(0, 100, 4);
  a.job.id = 0;
  a.start = 0;
  a.finish = 100;
  r.records = {a};
  const ResourceEquality eq = resource_equality(r);
  // Deserved: 4 nodes for 100 s (only live job); received the same.
  EXPECT_DOUBLE_EQ(eq.deserved[0], 400.0);
  EXPECT_DOUBLE_EQ(eq.received[0], 400.0);
  EXPECT_DOUBLE_EQ(eq.deficit[0], 0.0);
  EXPECT_DOUBLE_EQ(eq.normalized_deficit, 0.0);
  EXPECT_DOUBLE_EQ(eq.jain_index, 1.0);
}

TEST(ResourceEquality, QueuedJobAccruesDeficit) {
  SimulationResult r;
  r.system_size = 4;
  JobRecord a;  // runs [0, 100) on the whole machine
  a.job = make_job(0, 100, 4);
  a.job.id = 0;
  a.start = 0;
  a.finish = 100;
  JobRecord b;  // waits [0, 100), runs [100, 200)
  b.job = make_job(0, 100, 4);
  b.job.id = 1;
  b.start = 100;
  b.finish = 200;
  r.records = {a, b};
  const ResourceEquality eq = resource_equality(r);
  // While both live (0..100): each deserves 2 nodes. a receives 4, b gets 0.
  EXPECT_DOUBLE_EQ(eq.deserved[1], 2.0 * 100 + 4.0 * 100);
  EXPECT_DOUBLE_EQ(eq.received[1], 400.0);
  EXPECT_DOUBLE_EQ(eq.deficit[1], 200.0);
  EXPECT_DOUBLE_EQ(eq.deficit[0], 0.0);  // a got more than its share
  EXPECT_GT(eq.normalized_deficit, 0.0);
  EXPECT_LT(eq.jain_index, 1.0);
}

TEST(ResourceEquality, EmptyResult) {
  const ResourceEquality eq = resource_equality(SimulationResult{});
  EXPECT_TRUE(eq.received.empty());
  EXPECT_DOUBLE_EQ(eq.normalized_deficit, 0.0);
}

TEST(ResourceEquality, ComparableAcrossSchedulers) {
  // The metric needs no reference schedule: it can rank policies directly.
  const Workload w = psched::workload::generate_small_workload(67, 300, 48, days(6));
  const SimulationResult strict_fcfs = run_policy(w, PolicyKind::Fcfs);
  const SimulationResult easy = run_policy(w, PolicyKind::Easy);
  const ResourceEquality eq_fcfs = resource_equality(strict_fcfs);
  const ResourceEquality eq_easy = resource_equality(easy);
  // Backfilling wastes less, so the total deficit share shrinks.
  EXPECT_LT(eq_easy.normalized_deficit, eq_fcfs.normalized_deficit);
  for (std::size_t i = 0; i < eq_easy.deficit.size(); ++i) EXPECT_GE(eq_easy.deficit[i], 0.0);
}

TEST(ResourceEquality, JainIndexWithinBounds) {
  const Workload w = psched::workload::generate_small_workload(71, 200, 32, days(5));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant, PriorityKind::Fairshare);
  const ResourceEquality eq = resource_equality(r);
  EXPECT_GT(eq.jain_index, 0.0);
  EXPECT_LE(eq.jain_index, 1.0);
}

}  // namespace
}  // namespace psched::metrics
