#include "core/profile.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace psched {
namespace {

TEST(Profile, StartsFullyFree) {
  Profile p(64, 100);
  EXPECT_EQ(p.free_at(100), 64);
  EXPECT_EQ(p.free_at(1'000'000), 64);
  EXPECT_EQ(p.breakpoints(), 1u);
  EXPECT_NO_THROW(p.check_invariants());
}

TEST(Profile, RejectsBadCapacity) {
  EXPECT_THROW(Profile(0, 0), std::invalid_argument);
  EXPECT_THROW(Profile(-3, 0), std::invalid_argument);
}

TEST(Profile, AddUsageCreatesStep) {
  Profile p(10, 0);
  p.add_usage(5, 15, 4);
  EXPECT_EQ(p.free_at(0), 10);
  EXPECT_EQ(p.free_at(4), 10);
  EXPECT_EQ(p.free_at(5), 6);
  EXPECT_EQ(p.free_at(14), 6);
  EXPECT_EQ(p.free_at(15), 10);
  EXPECT_NO_THROW(p.check_invariants());
}

TEST(Profile, OverlappingUsageStacks) {
  Profile p(10, 0);
  p.add_usage(0, 10, 3);
  p.add_usage(5, 15, 3);
  EXPECT_EQ(p.free_at(0), 7);
  EXPECT_EQ(p.free_at(5), 4);
  EXPECT_EQ(p.free_at(10), 7);
  EXPECT_EQ(p.free_at(15), 10);
}

TEST(Profile, OverReservationThrows) {
  Profile p(10, 0);
  p.add_usage(0, 10, 8);
  EXPECT_THROW(p.add_usage(5, 6, 3), std::logic_error);
  // Failed adds may leave extra breakpoints but never negative capacity.
  EXPECT_GE(p.free_at(5), 0);
}

TEST(Profile, RemoveUsageRestores) {
  Profile p(10, 0);
  p.add_usage(2, 8, 5);
  p.remove_usage(2, 8, 5);
  EXPECT_EQ(p.free_at(2), 10);
  EXPECT_EQ(p.breakpoints(), 1u);  // coalesced back to a single step
  EXPECT_THROW(p.remove_usage(0, 1, 1), std::logic_error);  // above capacity
}

TEST(Profile, ZeroSpansAreNoOps) {
  Profile p(10, 0);
  p.add_usage(5, 5, 3);   // empty interval
  p.add_usage(5, 10, 0);  // zero nodes
  EXPECT_EQ(p.breakpoints(), 1u);
  EXPECT_THROW(p.add_usage(0, 5, -1), std::invalid_argument);
}

TEST(Profile, UsageBeforeOriginThrows) {
  Profile p(10, 100);
  EXPECT_THROW(p.add_usage(50, 150, 1), std::logic_error);
  EXPECT_THROW(p.free_at(50), std::logic_error);
}

TEST(Profile, FitsAtChecksWholeWindow) {
  Profile p(10, 0);
  p.add_usage(10, 20, 8);
  EXPECT_TRUE(p.fits_at(0, 10, 5));    // ends exactly when usage starts
  EXPECT_FALSE(p.fits_at(0, 11, 5));   // spills into the busy region
  EXPECT_TRUE(p.fits_at(0, 11, 2));    // narrow enough to coexist
  EXPECT_TRUE(p.fits_at(20, 1000, 10));
  EXPECT_FALSE(p.fits_at(-5, 1, 1));   // before origin
  EXPECT_FALSE(p.fits_at(0, 1, 11));   // wider than machine
}

TEST(Profile, EarliestFitImmediate) {
  Profile p(10, 0);
  EXPECT_EQ(p.earliest_fit(0, 100, 10), 0);
  EXPECT_EQ(p.earliest_fit(42, 100, 1), 42);
}

TEST(Profile, EarliestFitAfterBusyPeriod) {
  Profile p(10, 0);
  p.add_usage(0, 50, 8);
  EXPECT_EQ(p.earliest_fit(0, 10, 2), 0);    // fits beside
  EXPECT_EQ(p.earliest_fit(0, 10, 3), 50);   // must wait for the release
  EXPECT_EQ(p.earliest_fit(60, 10, 3), 60);  // searching later is fine
}

TEST(Profile, EarliestFitFindsHole) {
  Profile p(10, 0);
  p.add_usage(0, 10, 9);
  p.add_usage(20, 30, 9);
  // A 10-second, 5-node job fits exactly in the [10, 20) hole.
  EXPECT_EQ(p.earliest_fit(0, 10, 5), 10);
  // An 11-second job cannot use the hole and must go after the second block.
  EXPECT_EQ(p.earliest_fit(0, 11, 5), 30);
}

TEST(Profile, EarliestFitSkipsMultipleBlocks) {
  Profile p(4, 0);
  p.add_usage(0, 10, 4);
  p.add_usage(12, 20, 3);
  p.add_usage(25, 40, 4);
  // 2-node 6-second job: hole [10,12) too short, [20,25) too short, so 40.
  EXPECT_EQ(p.earliest_fit(0, 6, 2), 40);
  // 2-second job fits at 10.
  EXPECT_EQ(p.earliest_fit(0, 2, 2), 10);
  // 1-node job fits beside the 3-node block at 10..20? free=1 at [12,20).
  EXPECT_EQ(p.earliest_fit(0, 10, 1), 10);
}

TEST(Profile, EarliestFitRejectsTooWide) {
  Profile p(8, 0);
  EXPECT_THROW(p.earliest_fit(0, 10, 9), std::invalid_argument);
}

TEST(Profile, ReserveThenStartAtReservation) {
  // The conservative pattern: reserve, later re-find the same slot.
  Profile p(10, 0);
  p.add_usage(0, 100, 6);         // running job
  const Time slot = p.earliest_fit(0, 50, 6);
  EXPECT_EQ(slot, 100);
  p.add_usage(slot, slot + 50, 6);
  // A narrow job can still backfill before the reservation.
  EXPECT_EQ(p.earliest_fit(0, 100, 4), 0);
  // Another 6-node job has to go after the reserved block.
  EXPECT_EQ(p.earliest_fit(0, 10, 6), 150);
}

TEST(Profile, ResetClearsEverything) {
  Profile p(10, 0);
  p.add_usage(0, 10, 5);
  p.reset(500);
  EXPECT_EQ(p.origin(), 500);
  EXPECT_EQ(p.free_at(500), 10);
  EXPECT_EQ(p.breakpoints(), 1u);
}

TEST(Profile, CoalesceKeepsBreakpointCountSmall) {
  Profile p(100, 0);
  for (int i = 0; i < 50; ++i) p.add_usage(i * 10, i * 10 + 10, 1);
  // All adjacent intervals have equal free counts -> coalesced into few steps.
  EXPECT_LE(p.breakpoints(), 3u);
}

TEST(Profile, RandomizedInvariantFuzz) {
  util::Rng rng(99);
  Profile p(32, 0);
  std::vector<std::tuple<Time, Time, NodeCount>> added;
  for (int i = 0; i < 500; ++i) {
    if (!added.empty() && rng.flip(0.4)) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(added.size()) - 1));
      const auto [from, to, n] = added[pick];
      p.remove_usage(from, to, n);
      added.erase(added.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const Time from = rng.uniform_int(0, 1000);
      const Time to = from + rng.uniform_int(1, 100);
      const auto n = static_cast<NodeCount>(rng.uniform_int(1, 8));
      if (p.fits_at(from, to - from, n)) {
        p.add_usage(from, to, n);
        added.push_back({from, to, n});
      }
    }
    ASSERT_NO_THROW(p.check_invariants());
  }
  for (const auto& [from, to, n] : added) p.remove_usage(from, to, n);
  EXPECT_EQ(p.breakpoints(), 1u);
  EXPECT_EQ(p.free_at(0), 32);
}

TEST(Profile, EarliestFitAgreesWithFitsAt) {
  util::Rng rng(7);
  Profile p(16, 0);
  for (int i = 0; i < 40; ++i) {
    const Time from = rng.uniform_int(0, 500);
    const Time to = from + rng.uniform_int(1, 80);
    const auto n = static_cast<NodeCount>(rng.uniform_int(1, 4));
    if (p.fits_at(from, to - from, n)) p.add_usage(from, to, n);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const Time earliest = rng.uniform_int(0, 600);
    const Time duration = rng.uniform_int(1, 120);
    const auto nodes = static_cast<NodeCount>(rng.uniform_int(1, 16));
    const Time found = p.earliest_fit(earliest, duration, nodes);
    ASSERT_GE(found, earliest);
    ASSERT_TRUE(p.fits_at(found, duration, nodes))
        << "slot at " << found << " does not actually fit";
    // Minimality: no earlier breakpoint-aligned start fits.
    for (Time t = earliest; t < found; t += std::max<Time>(1, (found - earliest) / 13))
      ASSERT_FALSE(p.fits_at(t, duration, nodes)) << "earlier start " << t << " fits";
  }
}

}  // namespace
}  // namespace psched
