#include "metrics/fst.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "test_helpers.hpp"
#include "workload/generator.hpp"

namespace psched::metrics {
namespace {

using test::make_job;
using test::make_workload;
using test::run_policy;

FstOptions strict() {
  FstOptions options;
  options.tolerance = 1;
  options.knowledge = FstKnowledge::Perfect;
  return options;
}

TEST(HybridFst, UncontendedJobsAreFair) {
  const Workload w = make_workload(8, {
                                          make_job(0, 100, 4),
                                          make_job(200, 100, 4),
                                      });
  const SimulationResult r = run_policy(w, PolicyKind::Fcfs);
  const FstResult f = hybrid_fairshare_fst(r, strict());
  EXPECT_DOUBLE_EQ(f.percent_unfair, 0.0);
  EXPECT_DOUBLE_EQ(f.avg_miss_all, 0.0);
  EXPECT_EQ(f.fair_start[0], 0);
  EXPECT_EQ(f.fair_start[1], 200);
}

TEST(HybridFst, DetectsOvertakenWideJob) {
  // Under no-guarantee backfilling, narrow later jobs overtake a wide job.
  // The FST (list schedule) would have started the wide job at the drain.
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;
  config.policy.starvation_delay = kNoTime;  // pure no-guarantee
  std::vector<Job> jobs;
  jobs.push_back(make_job(0, 1000, 3, 0));   // running, 3 of 4 nodes
  jobs.push_back(make_job(10, 100, 4, 1));   // wide: FST = 1000 (after drain)
  // One-node jobs that keep the machine from draining at t=1000.
  jobs.push_back(make_job(20, 2000, 1, 2));  // starts immediately on the free node
  const Workload w = make_workload(4, jobs);
  const SimulationResult r = sim::simulate(w, config);
  const FstResult f = hybrid_fairshare_fst(r, strict());
  // Wide job: list schedule at its arrival (job 2 not yet arrived) starts it
  // at t=1000; in reality job 2 holds the fourth node until 2020.
  EXPECT_EQ(f.fair_start[1], 1000);
  EXPECT_EQ(r.records[1].start, 2020);
  EXPECT_EQ(f.miss[1], 1020);
  EXPECT_GT(f.percent_unfair, 0.0);
}

TEST(HybridFst, FstUsesFairsharePriorityOrder) {
  // Two jobs arrive while the machine is busy; the light user's job has the
  // earlier FST even though it arrived later.
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;
  config.policy.starvation_delay = kNoTime;  // isolate the queue-order effect
  const Workload w = make_workload(
      4, {
             make_job(0, days(2), 4, /*user=*/0),        // heavy user runs 2 days
             make_job(days(1), 100, 4, /*user=*/0),      // heavy user's job
             make_job(days(1) + 10, 100, 4, /*user=*/1)  // light user's job
         });
  const SimulationResult r = sim::simulate(w, config);
  const FstResult f = hybrid_fairshare_fst(r, strict());
  // Job 2's snapshot contains job 1; fairshare puts user 1 first, so job 2's
  // FST is the drain (2 days), job 1's FST (from its own snapshot) is also
  // the drain -- but job 2 actually starts first. Job 1 must then miss.
  EXPECT_EQ(f.fair_start[2], days(2));
  EXPECT_EQ(r.records[2].start, days(2));
  EXPECT_EQ(f.miss[2], 0);
  EXPECT_GT(f.miss[1], 0);
}

TEST(HybridFst, RequiresSnapshots) {
  const Workload w = make_workload(4, {make_job(0, 10, 1)});
  sim::EngineConfig config;
  config.record_snapshots = false;
  const SimulationResult r = sim::simulate(w, config);
  EXPECT_THROW(hybrid_fairshare_fst(r), std::invalid_argument);
}

TEST(HybridFst, SerialAndParallelAgree) {
  const Workload w = psched::workload::generate_small_workload(41, 300, 64, days(7));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant, PriorityKind::Fairshare);
  FstOptions serial = strict();
  serial.parallel = false;
  FstOptions parallel = strict();
  parallel.parallel = true;
  const FstResult a = hybrid_fairshare_fst(r, serial);
  const FstResult b = hybrid_fairshare_fst(r, parallel);
  ASSERT_EQ(a.fair_start.size(), b.fair_start.size());
  for (std::size_t i = 0; i < a.fair_start.size(); ++i)
    EXPECT_EQ(a.fair_start[i], b.fair_start[i]) << "record " << i;
}

TEST(HybridFst, EstimateKnowledgeIsMoreLenient) {
  const Workload w = psched::workload::generate_small_workload(43, 300, 64, days(7));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant, PriorityKind::Fairshare);
  FstOptions perfect = strict();
  FstOptions estimates = strict();
  estimates.knowledge = FstKnowledge::Estimates;
  const FstResult p = hybrid_fairshare_fst(r, perfect);
  const FstResult e = hybrid_fairshare_fst(r, estimates);
  // WCL-based hypothetical schedules are pessimistic, so estimate-based FSTs
  // are never earlier in aggregate.
  EXPECT_LE(e.avg_miss_all, p.avg_miss_all * 1.5 + 1.0);
}

TEST(HybridFst, ToleranceMonotonicity) {
  const Workload w = psched::workload::generate_small_workload(47, 300, 32, days(7));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant, PriorityKind::Fairshare);
  double prev = 1.0;
  for (const Time tolerance : {Time(1), hours(1), hours(24)}) {
    FstOptions options = strict();
    options.tolerance = tolerance;
    const FstResult f = hybrid_fairshare_fst(r, options);
    EXPECT_LE(f.percent_unfair, prev + 1e-12);
    prev = f.percent_unfair;
    EXPECT_LE(f.percent_unfair, f.percent_unfair_any + 1e-12);
  }
}

TEST(HybridFst, WidthBreakdownSumsMatch) {
  const Workload w = psched::workload::generate_small_workload(53, 250, 64, days(6));
  const SimulationResult r = run_policy(w, PolicyKind::Easy, PriorityKind::Fairshare);
  const FstResult f = hybrid_fairshare_fst(r, strict());
  std::size_t jobs = 0;
  for (const std::size_t c : f.jobs_by_width) jobs += c;
  EXPECT_EQ(jobs, r.records.size());
  double weighted = 0.0;
  for (std::size_t wdt = 0; wdt < kWidthCategories; ++wdt)
    weighted += f.avg_miss_by_width[wdt] * static_cast<double>(f.jobs_by_width[wdt]);
  EXPECT_NEAR(weighted / static_cast<double>(r.records.size()), f.avg_miss_all, 1e-6);
}

TEST(ConsPFst, PerfectEstimateScheduleIsExactlyFairForFcfsConservative) {
  // A conservative FCFS run with perfect estimates reproduces the CONS_P
  // schedule, so nobody misses.
  WorkloadBuilder edit(psched::workload::generate_small_workload(59, 150, 32, days(4)));
  for (Job& job : edit.jobs) job.wcl = job.runtime;  // perfect estimates
  const Workload w = edit.build();
  const SimulationResult r = run_policy(w, PolicyKind::Conservative, PriorityKind::Fcfs);
  const FstResult f = cons_p_fst(r, strict());
  for (std::size_t i = 0; i < r.records.size(); ++i)
    EXPECT_EQ(f.miss[i], 0) << "record " << i;
}

TEST(ConsPFst, MeasuresDeviationFromConservativeIdeal) {
  const Workload w = psched::workload::generate_small_workload(61, 200, 32, days(5));
  const SimulationResult r = run_policy(w, PolicyKind::Cplant, PriorityKind::Fairshare);
  const FstResult f = cons_p_fst(r, strict());
  // The metric is defined for every record and non-negative.
  for (const Time m : f.miss) EXPECT_GE(m, 0);
  EXPECT_EQ(f.fair_start.size(), r.records.size());
}

}  // namespace
}  // namespace psched::metrics
