#include "core/fairshare.hpp"

#include <gtest/gtest.h>

namespace psched {
namespace {

constexpr Time kDay = days(1);

TEST(Fairshare, RejectsBadParameters) {
  EXPECT_THROW(FairshareTracker(0.0, kDay), std::invalid_argument);
  EXPECT_THROW(FairshareTracker(1.5, kDay), std::invalid_argument);
  EXPECT_THROW(FairshareTracker(0.5, 0), std::invalid_argument);
}

TEST(Fairshare, AccruesProcessorSeconds) {
  FairshareTracker t(1.0, kDay, 0, FairshareUpdate::Continuous);
  t.on_job_start(0, 4);
  t.advance(100);
  EXPECT_DOUBLE_EQ(t.usage(0), 400.0);
  t.on_job_stop(0, 4);
  t.advance(200);
  EXPECT_DOUBLE_EQ(t.usage(0), 400.0);  // nothing running, no accrual
}

TEST(Fairshare, MultipleUsersAccrueIndependently) {
  FairshareTracker t(1.0, kDay, 0, FairshareUpdate::Continuous);
  t.on_job_start(0, 2);
  t.on_job_start(1, 6);
  t.advance(50);
  EXPECT_DOUBLE_EQ(t.usage(0), 100.0);
  EXPECT_DOUBLE_EQ(t.usage(1), 300.0);
  EXPECT_EQ(t.running_processors(), 8);
  EXPECT_EQ(t.user_count(), 2u);
}

TEST(Fairshare, DecayAtBoundary) {
  FairshareTracker t(0.5, kDay, 0, FairshareUpdate::Continuous);
  t.on_job_start(0, 1);
  t.advance(kDay);  // accrues kDay proc-seconds, then halves
  EXPECT_DOUBLE_EQ(t.usage(0), static_cast<double>(kDay) * 0.5);
  t.on_job_stop(0, 1);
  t.advance(3 * kDay);  // two more boundaries, no accrual
  EXPECT_DOUBLE_EQ(t.usage(0), static_cast<double>(kDay) * 0.125);
}

TEST(Fairshare, DecayBoundariesAlignedToGrid) {
  // Start mid-day: the first boundary is the next grid point, not start+24h.
  FairshareTracker t(0.5, kDay, kDay / 2, FairshareUpdate::Continuous);
  t.on_job_start(0, 1);
  t.advance(kDay);  // half a day accrued, then decay
  EXPECT_DOUBLE_EQ(t.usage(0), static_cast<double>(kDay / 2) * 0.5);
}

TEST(Fairshare, SplitAdvanceEqualsOneAdvance) {
  FairshareTracker a(0.7, kDay, 0, FairshareUpdate::Continuous);
  FairshareTracker b(0.7, kDay, 0, FairshareUpdate::Continuous);
  a.on_job_start(3, 5);
  b.on_job_start(3, 5);
  a.advance(5 * kDay + 12345);
  for (Time step = 0; step <= 5 * kDay + 12345; step += 7777) b.advance(step);
  b.advance(5 * kDay + 12345);
  EXPECT_NEAR(a.usage(3), b.usage(3), 1e-6);
}

TEST(Fairshare, PublishedValueOnlyRefreshesAtBoundary) {
  FairshareTracker t(0.5, kDay, 0, FairshareUpdate::AtDecayBoundary);
  t.on_job_start(0, 2);
  t.advance(1000);
  EXPECT_DOUBLE_EQ(t.usage(0), 0.0);          // priority not refreshed yet
  EXPECT_DOUBLE_EQ(t.live_usage(0), 2000.0);  // but accrual is live
  t.advance(kDay);
  EXPECT_DOUBLE_EQ(t.usage(0), static_cast<double>(2 * kDay) * 0.5);
}

TEST(Fairshare, TimeBackwardsThrows) {
  FairshareTracker t(0.5, kDay);
  t.advance(100);
  EXPECT_THROW(t.advance(50), std::logic_error);
}

TEST(Fairshare, StopMoreThanRunningThrows) {
  FairshareTracker t(0.5, kDay);
  t.on_job_start(0, 2);
  EXPECT_THROW(t.on_job_stop(0, 3), std::logic_error);
  EXPECT_THROW(t.on_job_stop(1, 1), std::logic_error);
}

TEST(Fairshare, MeanPositiveUsage) {
  FairshareTracker t(1.0, kDay, 0, FairshareUpdate::Continuous);
  EXPECT_DOUBLE_EQ(t.mean_positive_usage(), 0.0);
  t.on_job_start(0, 10);
  t.on_job_start(2, 30);
  t.advance(10);
  // users 0 and 2 have usage 100 and 300; user 1 has none.
  EXPECT_DOUBLE_EQ(t.mean_positive_usage(), 200.0);
}

TEST(Fairshare, UnknownUsersAreZero) {
  FairshareTracker t(0.5, kDay);
  EXPECT_DOUBLE_EQ(t.usage(7), 0.0);
  EXPECT_DOUBLE_EQ(t.usage(-1), 0.0);
}

TEST(Fairshare, NoDecayFactorOne) {
  FairshareTracker t(1.0, kDay, 0, FairshareUpdate::Continuous);
  t.on_job_start(0, 1);
  t.advance(10 * kDay);
  EXPECT_DOUBLE_EQ(t.usage(0), static_cast<double>(10 * kDay));
}

}  // namespace
}  // namespace psched
