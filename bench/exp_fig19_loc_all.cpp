// Figure 19: loss of capacity — all nine policies.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 19", "loss of capacity (all policies)",
      "the 72 h runtime limit lowers LOC across schedulers; cons.72max has among the "
      "lowest LOC; conservative schemes without limits do not beat the baseline");

  const auto reports = bench::run_policies(all_paper_policies());
  std::cout << '\n' << metrics::performance_summary_table(reports);

  std::cout << "\nloss of capacity per policy (Figure 19 bars):\n";
  for (const auto& r : reports)
    std::cout << "  " << r.policy << ": "
              << util::format_number(r.standard.loss_of_capacity * 100.0, 2) << "%\n";
  return 0;
}
