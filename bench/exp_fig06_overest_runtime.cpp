// Figure 6: over-estimation factor (WCL / runtime) vs runtime — the factor
// shrinks for longer jobs.

#include <iostream>

#include "common/experiment_env.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);
  using namespace psched::workload;

  bench::print_header("Figure 6", "over-estimation factor vs runtime",
                      "the over-estimation factor reduces for longer jobs");

  std::vector<double> runtimes, factors;
  for (const Job& job : bench::ross_trace().jobs) {
    runtimes.push_back(static_cast<double>(job.runtime));
    factors.push_back(static_cast<double>(job.wcl) / static_cast<double>(job.runtime));
  }
  const BinnedSeries series = binned_median(runtimes, factors, 30.0, 2.0e6, 8);

  util::TextTable table({"runtime bin", "jobs", "p25 factor", "median factor", "p75 factor"});
  for (std::size_t b = 0; b < series.count.size(); ++b) {
    table.begin_row()
        .add(util::format_duration_short(series.bin_lo[b]) + " - " +
             util::format_duration_short(series.bin_hi[b]))
        .add_int(static_cast<long long>(series.count[b]))
        .add(series.p25[b], 2)
        .add(series.median[b], 2)
        .add(series.p75[b], 2);
  }
  std::cout << table << "\nmedian factor, shortest bin vs longest populated bin: "
            << util::format_number(series.median.front(), 1) << " vs "
            << util::format_number(series.median[series.count.size() - 2], 1)
            << " (paper: decreasing)\n";
  return 0;
}
