// Table 1: number of jobs in each length/width category (generated trace vs
// the paper's published counts).

#include <iostream>

#include "common/experiment_env.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);
  using namespace psched::workload;

  bench::print_header("Table 1", "job count per width x length category",
                      "generated counts equal the published table cell-by-cell at scale 1.0");

  const CategoryCounts counts = category_job_counts(bench::ross_trace());
  const CountTable& paper = ross_table1_job_counts();

  std::vector<std::string> header{"width \\ length"};
  for (const auto& label : length_labels()) header.push_back(label);
  util::TextTable ours(header);
  util::TextTable reference(header);
  long long total = 0, paper_total = 0, matching = 0, cells = 0;
  for (int w = 0; w < kWidthCategories; ++w) {
    ours.begin_row().add(width_category_label(w) + " nodes");
    reference.begin_row().add(width_category_label(w) + " nodes");
    for (int l = 0; l < kLengthCategories; ++l) {
      const auto wi = static_cast<std::size_t>(w);
      const auto li = static_cast<std::size_t>(l);
      ours.add_int(counts[wi][li]);
      reference.add_int(paper[wi][li]);
      total += counts[wi][li];
      paper_total += paper[wi][li];
      ++cells;
      if (counts[wi][li] == paper[wi][li]) ++matching;
    }
  }
  std::cout << "measured (synthetic trace):\n" << ours
            << "\npaper Table 1 (reference):\n" << reference
            << "\ntotals: measured " << total << " vs paper " << paper_total << "; " << matching
            << "/" << cells << " cells identical\n";
  return 0;
}
