// End-to-end scheduler throughput: simulated jobs per second for each policy
// kind on a common random workload.

#include <benchmark/benchmark.h>

#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace {

using namespace psched;

const Workload& bench_trace(std::size_t jobs) {
  static std::map<std::size_t, Workload> cache;
  auto it = cache.find(jobs);
  if (it == cache.end())
    it = cache.emplace(jobs, workload::generate_small_workload(5, jobs, 512, days(30))).first;
  return it->second;
}

void run_policy_bench(benchmark::State& state, PolicyKind kind) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const Workload& trace = bench_trace(jobs);
  for (auto _ : state) {
    sim::EngineConfig config;
    config.policy.kind = kind;
    config.policy.priority = PriorityKind::Fairshare;
    config.record_snapshots = false;
    benchmark::DoNotOptimize(sim::simulate(trace, config).records.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jobs));
}

void BM_SimFcfs(benchmark::State& state) { run_policy_bench(state, PolicyKind::Fcfs); }
void BM_SimEasy(benchmark::State& state) { run_policy_bench(state, PolicyKind::Easy); }
void BM_SimCplant(benchmark::State& state) { run_policy_bench(state, PolicyKind::Cplant); }
void BM_SimConservative(benchmark::State& state) {
  run_policy_bench(state, PolicyKind::Conservative);
}
void BM_SimConservativeDynamic(benchmark::State& state) {
  run_policy_bench(state, PolicyKind::ConservativeDynamic);
}

BENCHMARK(BM_SimFcfs)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimEasy)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimCplant)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimConservative)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimConservativeDynamic)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace
