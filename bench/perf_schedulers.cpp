// End-to-end scheduler throughput: simulated jobs per second for each policy
// kind on a common random workload, plus the deep-queue scenario family —
// burst arrivals that hold thousands of simultaneous reservations, the
// workload the gap-indexed Profile exists for.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>

#include "core/profile.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace psched;

const Workload& bench_trace(std::size_t jobs) {
  static std::map<std::size_t, Workload> cache;
  auto it = cache.find(jobs);
  if (it == cache.end())
    it = cache.emplace(jobs, workload::generate_small_workload(5, jobs, 512, days(30))).first;
  return it->second;
}

void run_policy_bench(benchmark::State& state, PolicyKind kind) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const Workload& trace = bench_trace(jobs);
  for (auto _ : state) {
    sim::EngineConfig config;
    config.policy.kind = kind;
    config.policy.priority = PriorityKind::Fairshare;
    config.record_snapshots = false;
    benchmark::DoNotOptimize(sim::simulate(trace, config).records.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jobs));
}

void BM_SimFcfs(benchmark::State& state) { run_policy_bench(state, PolicyKind::Fcfs); }
void BM_SimEasy(benchmark::State& state) { run_policy_bench(state, PolicyKind::Easy); }
void BM_SimCplant(benchmark::State& state) { run_policy_bench(state, PolicyKind::Cplant); }
void BM_SimConservative(benchmark::State& state) {
  run_policy_bench(state, PolicyKind::Conservative);
}
void BM_SimConservativeDynamic(benchmark::State& state) {
  run_policy_bench(state, PolicyKind::ConservativeDynamic);
}

BENCHMARK(BM_SimFcfs)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimEasy)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimCplant)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimConservative)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimConservativeDynamic)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

// --- deep-queue scenario family ----------------------------------------------
//
// Burst arrivals on a small machine: every job lands within the first hour,
// so a conservative plan holds (jobs) simultaneous reservations and every
// completion triggers a heavy compression/replan pass over the whole queue.
// The BM_Ref* twins here run the SAME optimized scheduler but with the
// Profile gap index disabled (ThresholdGuard with Profile::kDisableIndex),
// i.e. the linear-scan profile — so speedup_vs_reference records exactly
// what the index buys on deep replans, end to end.

const Workload& deep_burst_trace(std::size_t jobs) {
  static std::map<std::size_t, Workload> cache;
  auto it = cache.find(jobs);
  if (it == cache.end()) {
    util::Rng rng(7777);
    WorkloadBuilder b;
    b.system_size = 128;
    for (std::size_t i = 0; i < jobs; ++i) {
      Job job;
      job.id = static_cast<JobId>(i);
      job.user = static_cast<UserId>(rng.uniform_int(0, 15));
      job.submit = rng.uniform_int(0, 3600);
      // Widths uniform over [1, 96] of the 128-node machine: wide jobs are
      // deliberately over-represented vs real traces so every replan has to
      // re-seat work across large reservations (the profile-stressing case
      // the gap_index_threshold sweep was tuned on).
      job.nodes = static_cast<NodeCount>(rng.uniform_int(1, 96));
      job.runtime = rng.uniform_int(120, 4000);
      job.wcl = job.runtime + rng.uniform_int(0, 2000);
      b.jobs.push_back(job);
    }
    b.normalize();
    Workload w = b.build();
    w.validate();
    it = cache.emplace(jobs, std::move(w)).first;
  }
  return it->second;
}

void run_deep_queue_bench(benchmark::State& state, PolicyKind kind, std::size_t threshold) {
  Profile::ThresholdGuard guard(threshold);
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const Workload& trace = deep_burst_trace(jobs);
  for (auto _ : state) {
    sim::EngineConfig config;
    config.policy.kind = kind;
    config.policy.priority = PriorityKind::Fairshare;
    config.record_snapshots = false;
    benchmark::DoNotOptimize(sim::simulate(trace, config).records.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jobs));
}

void BM_SimConservativeDeepQueue(benchmark::State& state) {
  run_deep_queue_bench(state, PolicyKind::Conservative, Profile::gap_index_threshold());
}
void BM_RefSimConservativeDeepQueue(benchmark::State& state) {
  run_deep_queue_bench(state, PolicyKind::Conservative, Profile::kDisableIndex);
}
void BM_SimConservativeDynamicDeepQueue(benchmark::State& state) {
  run_deep_queue_bench(state, PolicyKind::ConservativeDynamic, Profile::gap_index_threshold());
}
void BM_RefSimConservativeDynamicDeepQueue(benchmark::State& state) {
  run_deep_queue_bench(state, PolicyKind::ConservativeDynamic, Profile::kDisableIndex);
}
void BM_SimCplantDeepQueue(benchmark::State& state) {
  run_deep_queue_bench(state, PolicyKind::Cplant, Profile::gap_index_threshold());
}
void BM_RefSimCplantDeepQueue(benchmark::State& state) {
  run_deep_queue_bench(state, PolicyKind::Cplant, Profile::kDisableIndex);
}

// Depths bracket the measured crossover (the default
// Profile::gap_index_threshold() of 2048 breakpoints ≈ a ~1000-job plan):
// at 2000 the index engages part-time (the pairs document ~parity), at
// 4000+ it pays increasingly. Static conservative at 10000 is omitted — a
// single linear-scan iteration runs for many minutes; the dynamic pair
// carries the 10k+ acceptance point end to end, and perf_profile's
// BM_ProfilePack*/16384 pair carries it at the profile level.
BENCHMARK(BM_SimConservativeDeepQueue)->Arg(2000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RefSimConservativeDeepQueue)->Arg(2000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimConservativeDynamicDeepQueue)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RefSimConservativeDynamicDeepQueue)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimCplantDeepQueue)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RefSimCplantDeepQueue)->Arg(2000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
