// Synthetic-trace generation throughput.

#include <benchmark/benchmark.h>

#include "workload/generator.hpp"

namespace {

using namespace psched;

void BM_GenerateRossTrace(benchmark::State& state) {
  workload::GeneratorConfig config;
  config.count_scale = static_cast<double>(state.range(0)) / 100.0;
  std::size_t jobs = 0;
  for (auto _ : state) {
    const Workload trace = workload::generate_ross_workload(config);
    jobs = trace.jobs.size();
    benchmark::DoNotOptimize(trace.jobs.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_GenerateRossTrace)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_GenerateSmallWorkload(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::generate_small_workload(++seed, jobs, 512, days(10)).jobs.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_GenerateSmallWorkload)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
