// Figure 7: over-estimation factor vs node count — essentially unrelated.

#include <iostream>

#include "common/experiment_env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);
  using namespace psched::workload;

  bench::print_header("Figure 7", "over-estimation factor vs nodes",
                      "the over-estimation factor appears unrelated to the node selection");

  std::vector<double> nodes, factors;
  for (const Job& job : bench::ross_trace().jobs) {
    nodes.push_back(static_cast<double>(job.nodes));
    factors.push_back(static_cast<double>(job.wcl) / static_cast<double>(job.runtime));
  }
  const BinnedSeries series = binned_median(nodes, factors, 1.0, 2048.0, 8);

  util::TextTable table({"nodes bin", "jobs", "p25 factor", "median factor", "p75 factor"});
  for (std::size_t b = 0; b < series.count.size(); ++b) {
    if (series.count[b] == 0) continue;
    table.begin_row()
        .add(util::format_number(series.bin_lo[b], 0) + " - " +
             util::format_number(series.bin_hi[b], 0))
        .add_int(static_cast<long long>(series.count[b]))
        .add(series.p25[b], 2)
        .add(series.median[b], 2)
        .add(series.p75[b], 2);
  }
  std::cout << table << "\nSpearman correlation factor~nodes: "
            << util::format_number(util::spearman(nodes, factors), 3)
            << " (paper: no visible relationship; expect |rho| near 0)\n";
  return 0;
}
