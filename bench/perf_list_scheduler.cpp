// Microbenchmarks of the per-node list scheduler (the FST engine substrate).

#include <benchmark/benchmark.h>

#include "core/list_scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace psched;

void BM_ListSchedulerSchedule(benchmark::State& state) {
  const auto nodes = static_cast<NodeCount>(state.range(0));
  util::Rng rng(7);
  std::vector<std::pair<NodeCount, Time>> jobs;
  for (int i = 0; i < 256; ++i)
    jobs.push_back({static_cast<NodeCount>(rng.uniform_int(1, nodes)),
                    rng.uniform_int(600, 86'400)});
  for (auto _ : state) {
    ListScheduler list(nodes, 0);
    Time last = 0;
    for (const auto& [width, runtime] : jobs) last = list.schedule(width, runtime, 0);
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ListSchedulerSchedule)->Arg(128)->Arg(1524)->Arg(4096);

void BM_ListSchedulerOccupy(benchmark::State& state) {
  for (auto _ : state) {
    ListScheduler list(1524, 0);
    for (int i = 0; i < 64; ++i) list.occupy(16, 1000 + i * 100);
    benchmark::DoNotOptimize(list.earliest_available());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ListSchedulerOccupy);

}  // namespace
