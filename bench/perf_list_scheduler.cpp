// Microbenchmarks of the per-node list scheduler (the FST engine substrate),
// run-length-compressed fast path vs the preserved seed implementation
// (one entry per node, std::sort per occupy).

#include <benchmark/benchmark.h>

#include "core/list_scheduler.hpp"
#include "core/reference_profile.hpp"
#include "util/rng.hpp"

namespace {

using namespace psched;

template <typename ListT>
void run_schedule(benchmark::State& state) {
  const auto nodes = static_cast<NodeCount>(state.range(0));
  util::Rng rng(7);
  std::vector<std::pair<NodeCount, Time>> jobs;
  for (int i = 0; i < 256; ++i)
    jobs.push_back({static_cast<NodeCount>(rng.uniform_int(1, nodes)),
                    rng.uniform_int(600, 86'400)});
  for (auto _ : state) {
    ListT list(nodes, 0);
    Time last = 0;
    for (const auto& [width, runtime] : jobs) last = list.schedule(width, runtime, 0);
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}

void BM_ListSchedulerSchedule(benchmark::State& state) { run_schedule<ListScheduler>(state); }
void BM_RefListSchedulerSchedule(benchmark::State& state) {
  run_schedule<reference::ReferenceListScheduler>(state);
}
BENCHMARK(BM_ListSchedulerSchedule)->Arg(128)->Arg(1524)->Arg(4096);
BENCHMARK(BM_RefListSchedulerSchedule)->Arg(128)->Arg(1524)->Arg(4096);

template <typename ListT>
void run_occupy(benchmark::State& state) {
  for (auto _ : state) {
    ListT list(1524, 0);
    for (int i = 0; i < 64; ++i) list.occupy(16, 1000 + i * 100);
    benchmark::DoNotOptimize(list.earliest_available());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_ListSchedulerOccupy(benchmark::State& state) { run_occupy<ListScheduler>(state); }
void BM_RefListSchedulerOccupy(benchmark::State& state) {
  run_occupy<reference::ReferenceListScheduler>(state);
}
BENCHMARK(BM_ListSchedulerOccupy);
BENCHMARK(BM_RefListSchedulerOccupy);

}  // namespace
