// Ablation: starvation-queue entry delay (the paper compares 24 h vs 72 h;
// here we sweep from 12 h to disabled).

#include <iostream>

#include "common/experiment_env.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: starvation-queue entry delay",
      "CPlant policy fairness/performance vs time before a job may starve-promote",
      "longer delays cut the number of unfair jobs (fewer reservation drains) but the "
      "starving jobs themselves wait longer; disabling the queue strands wide jobs");

  workload::GeneratorConfig generator;
  generator.count_scale = std::min(0.5, bench::bench_scale());
  generator.span = weeks(16);
  const Workload trace = workload::generate_ross_workload(generator);

  util::TextTable table({"delay", "percent_unfair", "avg_miss_s", "avg_miss_unfair_s",
                         "avg_turnaround_s", "loc"});
  for (const Time delay : {hours(12), hours(24), hours(48), hours(72), hours(168), kNoTime}) {
    sim::EngineConfig config;
    config.policy.kind = PolicyKind::Cplant;
    config.policy.starvation_delay = delay;
    const SimulationResult result = sim::simulate(trace, config);
    const metrics::PolicyReport report = metrics::evaluate(result);
    table.begin_row()
        .add(delay == kNoTime ? "disabled" : util::format_duration_short(static_cast<double>(delay)))
        .add_percent(report.fairness.percent_unfair)
        .add(report.fairness.avg_miss_all, 0)
        .add(report.fairness.avg_miss_unfair, 0)
        .add(report.standard.avg_turnaround, 0)
        .add_percent(report.standard.loss_of_capacity);
  }
  std::cout << table;
  return 0;
}
