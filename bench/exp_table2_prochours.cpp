// Table 2: processor-hours in each length/width category (calibrated within
// bin bounds, so cells match approximately rather than exactly).

#include <cmath>
#include <iostream>

#include "common/experiment_env.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);
  using namespace psched::workload;

  bench::print_header(
      "Table 2", "processor-hours per width x length category",
      "per-cell proc-hours track the published table (runtime rescaling within bins); "
      "the (513+, 4-8h) cell is inconsistent in the paper itself (0 jobs, 3183 hours)");

  const CategoryHours hours = category_proc_hours(bench::ross_trace());
  const HoursTable& paper = ross_table2_proc_hours();

  std::vector<std::string> header{"width \\ length"};
  for (const auto& label : length_labels()) header.push_back(label);
  util::TextTable ours(header);
  util::TextTable reference(header);
  double total = 0.0, paper_total = 0.0, abs_err = 0.0;
  for (int w = 0; w < kWidthCategories; ++w) {
    ours.begin_row().add(width_category_label(w) + " nodes");
    reference.begin_row().add(width_category_label(w) + " nodes");
    for (int l = 0; l < kLengthCategories; ++l) {
      const auto wi = static_cast<std::size_t>(w);
      const auto li = static_cast<std::size_t>(l);
      ours.add(hours[wi][li], 0);
      reference.add(paper[wi][li], 0);
      total += hours[wi][li];
      paper_total += paper[wi][li];
      abs_err += std::abs(hours[wi][li] - paper[wi][li]);
    }
  }
  std::cout << "measured (synthetic trace):\n" << ours
            << "\npaper Table 2 (reference):\n" << reference
            << "\ntotals: measured " << util::format_number(total, 0) << " vs paper "
            << util::format_number(paper_total, 0) << " proc-hours ("
            << util::format_number(total / paper_total * 100.0, 1)
            << "% of paper); mean absolute cell error "
            << util::format_number(abs_err / 88.0, 0) << " proc-hours\n";
  return 0;
}
