// Ablation: wall-clock-limit enforcement. CPlant killed over-running jobs
// only when the processors were needed (paper section 2.2); trace replay
// conventionally never kills. This quantifies the difference.

#include <iostream>

#include "common/experiment_env.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: WCL enforcement",
      "baseline policy under Never / KillIfNeeded / Always enforcement",
      "under-estimating jobs are <3% of the trace, so enforcement barely moves aggregate "
      "metrics; Always truncates the most work");

  workload::GeneratorConfig generator;
  generator.count_scale = std::min(0.5, bench::bench_scale());
  generator.span = weeks(16);
  const Workload trace = workload::generate_ross_workload(generator);

  util::TextTable table({"enforcement", "killed_jobs", "lost_proc_hours", "avg_turnaround_s",
                         "percent_unfair", "loc"});
  const std::pair<sim::WclEnforcement, const char*> modes[] = {
      {sim::WclEnforcement::Never, "never"},
      {sim::WclEnforcement::KillIfNeeded, "kill-if-needed"},
      {sim::WclEnforcement::Always, "always"},
  };
  for (const auto& [mode, label] : modes) {
    sim::EngineConfig config;
    config.policy.kind = PolicyKind::Cplant;
    config.wcl_enforcement = mode;
    const SimulationResult result = sim::simulate(trace, config);
    const metrics::PolicyReport report = metrics::evaluate(result);
    long long killed = 0;
    double lost = 0.0;
    for (const JobRecord& r : result.records) {
      if (!r.killed_at_wcl) continue;
      ++killed;
      lost += static_cast<double>(r.job.nodes) *
              static_cast<double>(r.job.runtime - r.executed_runtime()) / 3600.0;
    }
    table.begin_row()
        .add(label)
        .add_int(killed)
        .add(lost, 0)
        .add(report.standard.avg_turnaround, 0)
        .add_percent(report.fairness.percent_unfair)
        .add_percent(report.standard.loss_of_capacity);
  }
  std::cout << table;
  return 0;
}
