// Ablation: maximum-runtime segment semantics. The paper splits long jobs as
// trace preprocessing (all segments submitted at the original time); the
// physically faithful alternative chains each segment to its predecessor's
// completion (checkpoint/restart). DESIGN.md documents the choice.

#include <iostream>

#include "common/experiment_env.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: segment arrival semantics (72 h limit)",
      "paper-style preprocessing vs chained checkpoint/restart submission",
      "preprocessing lets sibling segments overlap (optimistic turnaround); chaining "
      "serializes them (later finishes, slightly different fairness mix)");

  workload::GeneratorConfig generator;
  generator.count_scale = std::min(0.5, bench::bench_scale());
  generator.span = weeks(16);
  const Workload trace = workload::generate_ross_workload(generator);

  util::TextTable table({"mode", "policy", "records", "percent_unfair", "avg_miss_s",
                         "avg_turnaround_s", "loc"});
  const std::pair<sim::SegmentArrival, const char*> modes[] = {
      {sim::SegmentArrival::AtOriginalSubmit, "preprocess (paper)"},
      {sim::SegmentArrival::Chained, "chained"},
  };
  for (const auto& [mode, label] : modes) {
    for (const PaperPolicy policy : {PaperPolicy::Cplant24MaxAll, PaperPolicy::ConsMax}) {
      sim::EngineConfig config;
      config.policy = paper_policy(policy);
      config.segment_arrival = mode;
      const SimulationResult result = sim::simulate(trace, config);
      const metrics::PolicyReport report = metrics::evaluate(result);
      table.begin_row()
          .add(label)
          .add(report.policy)
          .add_int(static_cast<long long>(result.records.size()))
          .add_percent(report.fairness.percent_unfair)
          .add(report.fairness.avg_miss_all, 0)
          .add(report.standard.avg_turnaround, 0)
          .add_percent(report.standard.loss_of_capacity);
    }
  }
  std::cout << table;
  return 0;
}
