// Figure 10: average fair-start miss time by job width — minor changes.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 10", "average miss time by width category (minor changes)",
      "miss time concentrates in the wide categories; increasing the starvation delay "
      "(cplant72) hurts the widest jobs most; 72 h limits reduce wide-job misses");

  const auto reports = bench::run_policies(minor_change_policies());
  std::cout << '\n' << metrics::miss_by_width_table(reports);
  return 0;
}
