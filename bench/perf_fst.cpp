// Hybrid-FST engine throughput: serial vs thread-pool scaling over the
// per-arrival snapshots of one simulation.

#include <benchmark/benchmark.h>

#include "metrics/fst.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace {

using namespace psched;

const SimulationResult& fst_input() {
  static const SimulationResult result = [] {
    const Workload trace = workload::generate_small_workload(9, 4000, 1024, days(40));
    sim::EngineConfig config;
    config.policy.kind = PolicyKind::Cplant;
    return sim::simulate(trace, config);
  }();
  return result;
}

void BM_HybridFstSerial(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  metrics::FstOptions options;
  options.parallel = false;
  for (auto _ : state) benchmark::DoNotOptimize(metrics::hybrid_fairshare_fst(input, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_HybridFstSerial)->Unit(benchmark::kMillisecond);

void BM_HybridFstParallel(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  metrics::FstOptions options;
  options.parallel = true;
  for (auto _ : state) benchmark::DoNotOptimize(metrics::hybrid_fairshare_fst(input, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_HybridFstParallel)->Unit(benchmark::kMillisecond);

void BM_ConsPFst(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  for (auto _ : state) benchmark::DoNotOptimize(metrics::cons_p_fst(input));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_ConsPFst)->Unit(benchmark::kMillisecond);

}  // namespace
