// FST engine throughput, two families:
//
//  * Hybrid FST (the paper's metric): serial vs thread-pool scaling over the
//    per-arrival snapshots of one simulation, plus the preserved seed loop
//    (per-snapshot allocation + sort-per-occupy list scheduler) so the
//    recorded BENCH_fst.json baseline carries the speedup as a measured pair.
//  * Policy-knowledge FST (Sabin et al., "no later arrivals" under the actual
//    policy): the forked-engine one-pass path (BM_PolicyFstForked) vs the
//    preserved naive per-job re-simulation (BM_RefPolicyFstNaive — O(n^2)
//    simulated events, so it runs single iterations at deep trace sizes).
//    The forked/naive gap grows with trace length; summarize_benches.py
//    pairs the two into BENCH_fst.json's speedup_vs_reference.
//
// Parallel cases record pool_threads/jobs so the committed numbers are
// self-describing: on a 1-CPU container parallel ≈ serial by construction.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/reference_profile.hpp"
#include "metrics/fst.hpp"
#include "sim/engine.hpp"
#include "sim/policy_fst.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace {

using namespace psched;

/// jobs = concurrent FST computations in flight (pool size when parallel);
/// pool_threads = the global pool the run could have used.
void record_pool_counters(benchmark::State& state, bool parallel) {
  state.counters["jobs"] =
      parallel ? static_cast<double>(util::global_pool().size()) : 1.0;
  state.counters["pool_threads"] = static_cast<double>(util::global_pool().size());
}

/// The seed per-snapshot FST computation, verbatim: a freshly allocated
/// per-node list scheduler and a freshly allocated order buffer per snapshot.
Time reference_snapshot_fst(const ArrivalSnapshot& snapshot, NodeCount system_size,
                            metrics::FstKnowledge knowledge) {
  const bool perfect = knowledge == metrics::FstKnowledge::Perfect;
  reference::ReferenceListScheduler list(system_size, snapshot.at);
  for (const SnapshotRunning& r : snapshot.running)
    list.occupy(r.nodes, snapshot.at + std::max<Time>(perfect ? r.remaining : r.est_remaining, 0));

  std::vector<const SnapshotWaiting*> order;
  order.reserve(snapshot.waiting.size());
  for (const SnapshotWaiting& w : snapshot.waiting) order.push_back(&w);
  std::sort(order.begin(), order.end(), [](const SnapshotWaiting* a, const SnapshotWaiting* b) {
    if (a->priority != b->priority) return a->priority < b->priority;
    if (a->submit != b->submit) return a->submit < b->submit;
    return a->id < b->id;
  });

  for (const SnapshotWaiting* w : order) {
    const Time start = list.schedule(w->nodes, perfect ? w->runtime : w->wcl, snapshot.at);
    if (w->id == snapshot.id) return start;
  }
  throw std::logic_error("reference_snapshot_fst: target job missing from its own snapshot");
}

const SimulationResult& fst_input() {
  static const SimulationResult result = [] {
    const Workload trace = workload::generate_small_workload(9, 4000, 1024, days(40));
    sim::EngineConfig config;
    config.policy.kind = PolicyKind::Cplant;
    return sim::simulate(trace, config);
  }();
  return result;
}

void BM_HybridFstSerial(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  metrics::FstOptions options;
  options.parallel = false;
  for (auto _ : state) benchmark::DoNotOptimize(metrics::hybrid_fairshare_fst(input, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
  record_pool_counters(state, /*parallel=*/false);
}
BENCHMARK(BM_HybridFstSerial)->Unit(benchmark::kMillisecond);

void BM_HybridFstParallel(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  metrics::FstOptions options;
  options.parallel = true;
  for (auto _ : state) benchmark::DoNotOptimize(metrics::hybrid_fairshare_fst(input, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
  record_pool_counters(state, /*parallel=*/true);
}
BENCHMARK(BM_HybridFstParallel)->Unit(benchmark::kMillisecond);

// --- policy-knowledge FST: forked engine vs naive re-simulation -------------

/// Deep traces for the policy FST pair, one per requested length; arrival
/// density matches fst_input (100 jobs/day on 1024 nodes) so load — and with
/// it the fork-drain tail length — stays comparable across sizes.
const Workload& policy_fst_trace(std::int64_t jobs) {
  static std::map<std::int64_t, Workload> traces;
  auto it = traces.find(jobs);
  if (it == traces.end()) {
    it = traces
             .emplace(jobs, workload::generate_small_workload(
                                9, static_cast<std::size_t>(jobs), 1024,
                                days(std::max<std::int64_t>(1, jobs / 100))))
             .first;
  }
  return it->second;
}

sim::EngineConfig policy_fst_config() {
  sim::EngineConfig config;
  config.policy.kind = PolicyKind::Cplant;  // the paper's production baseline
  return config;
}

void BM_PolicyFstForked(benchmark::State& state) {
  const Workload& trace = policy_fst_trace(state.range(0));
  const sim::EngineConfig config = policy_fst_config();
  sim::PolicyFstOptions options;
  options.parallel = true;
  sim::PolicyFstStats stats;
  options.stats = &stats;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::policy_no_later_arrivals_fst(trace, config, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.jobs.size()));
  record_pool_counters(state, /*parallel=*/true);
  // Memory-bounding knobs, published into BENCH_fst.json: the fork batch cap
  // the drain ran with and the peak summed fork footprint one batch admitted
  // (deterministic for a given workload/config/batch).
  state.counters["fork_batch"] = static_cast<double>(stats.fork_batch);
  state.counters["peak_batch_bytes"] = static_cast<double>(stats.peak_batch_bytes);
}
BENCHMARK(BM_PolicyFstForked)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

// --- fork construction overhead: shared-view vs record-copy seed path -------

// The O(i) -> O(1) fork claim, measured: one master pass forking at every
// arrival and dropping the fork undrained, so an iteration costs the master
// pass plus n fork constructions. Per-item time staying flat across
// 1k/5k/50k-job traces is the claim — per-fork cost independent of the
// arrival index — because a per-fork term growing with the index would bend
// the per-item time linearly upward with trace length (exactly what the
// record-copy reference below does).
//
// Unlike the policy-FST pair these traces must be SUBCRITICAL (20 jobs/day
// ~ load 0.5 here, vs policy_fst_trace's ~2.4): fork cost is O(live queue),
// so an oversaturated trace grows its queue with trace length and the trace
// itself — not the fork — would bend the curve.
const Workload& fork_overhead_trace(std::int64_t jobs) {
  static std::map<std::int64_t, Workload> traces;
  auto it = traces.find(jobs);
  if (it == traces.end()) {
    it = traces
             .emplace(jobs, workload::generate_small_workload(
                                9, static_cast<std::size_t>(jobs), 1024,
                                days(std::max<std::int64_t>(1, jobs / 20))))
             .first;
  }
  return it->second;
}

void BM_ForkOverheadShared(benchmark::State& state) {
  const Workload& trace = fork_overhead_trace(state.range(0));
  sim::EngineConfig config = policy_fst_config();
  config.record_snapshots = false;
  std::size_t peak_fork_bytes = 0;
  for (auto _ : state) {
    sim::SimulationEngine master(trace, config);
    master.run_with_arrival_hook([&](JobId id) {
      const std::unique_ptr<sim::SimulationEngine> fork = master.fork_for_arrival(id);
      peak_fork_bytes = std::max(peak_fork_bytes, fork->fork_footprint_bytes());
      benchmark::DoNotOptimize(fork.get());
    });
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.jobs.size()));
  // Largest single-fork footprint seen: O(queue depth), NOT O(trace) — it
  // must stay in the same ballpark across the three trace sizes.
  state.counters["peak_fork_bytes"] = static_cast<double>(peak_fork_bytes);
}
BENCHMARK(BM_ForkOverheadShared)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// The seed's removed per-fork term, replayed in isolation: forking at arrival
// i used to copy the master's (i + 1)-record prefix into the fork's record
// table. Same prefix copies over an equal-size table; O(n^2) bytes total, so
// single iterations and no 50k case (cf. BM_RefPolicyFstNaive's budget note).
// summarize_benches.py pairs this with BM_ForkOverheadShared.
void BM_RefForkOverheadRecordCopy(benchmark::State& state) {
  const Workload& trace = fork_overhead_trace(state.range(0));
  std::vector<JobRecord> master(trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) master[i].job = trace.jobs[i];
  for (auto _ : state) {
    for (std::size_t i = 0; i < master.size(); ++i) {
      const std::vector<JobRecord> fork_records(master.begin(),
                                                master.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      benchmark::DoNotOptimize(fork_records.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.jobs.size()));
}
BENCHMARK(BM_RefForkOverheadRecordCopy)
    ->Arg(1000)
    ->Arg(5000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The preserved seed path: one truncated re-simulation per job. Quadratic,
// so it runs exactly one iteration per size (the 5k case alone is minutes of
// wall clock on a slow host — see tools/run_benches.sh's budget note).
void BM_RefPolicyFstNaive(benchmark::State& state) {
  const Workload& trace = policy_fst_trace(state.range(0));
  const sim::EngineConfig config = policy_fst_config();
  sim::PolicyFstOptions options;
  options.parallel = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::policy_no_later_arrivals_fst_naive(trace, config, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.jobs.size()));
  record_pool_counters(state, /*parallel=*/true);
}
BENCHMARK(BM_RefPolicyFstNaive)->Arg(1000)->Arg(5000)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_RefHybridFstSerial(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  std::vector<Time> fair_start(input.records.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < input.snapshots.size(); ++i)
      fair_start[i] = reference_snapshot_fst(input.snapshots[i], input.system_size,
                                             metrics::FstKnowledge::Estimates);
    benchmark::DoNotOptimize(fair_start.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_RefHybridFstSerial)->Unit(benchmark::kMillisecond);

void BM_ConsPFst(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  for (auto _ : state) benchmark::DoNotOptimize(metrics::cons_p_fst(input));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_ConsPFst)->Unit(benchmark::kMillisecond);

}  // namespace
