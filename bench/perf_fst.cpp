// Hybrid-FST engine throughput: serial vs thread-pool scaling over the
// per-arrival snapshots of one simulation, plus the preserved seed FST loop
// (per-snapshot allocation + sort-per-occupy list scheduler) so the recorded
// BENCH_fst.json baseline carries the fast-path speedup as a measured pair.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/reference_profile.hpp"
#include "metrics/fst.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace {

using namespace psched;

/// The seed per-snapshot FST computation, verbatim: a freshly allocated
/// per-node list scheduler and a freshly allocated order buffer per snapshot.
Time reference_snapshot_fst(const ArrivalSnapshot& snapshot, NodeCount system_size,
                            metrics::FstKnowledge knowledge) {
  const bool perfect = knowledge == metrics::FstKnowledge::Perfect;
  reference::ReferenceListScheduler list(system_size, snapshot.at);
  for (const SnapshotRunning& r : snapshot.running)
    list.occupy(r.nodes, snapshot.at + std::max<Time>(perfect ? r.remaining : r.est_remaining, 0));

  std::vector<const SnapshotWaiting*> order;
  order.reserve(snapshot.waiting.size());
  for (const SnapshotWaiting& w : snapshot.waiting) order.push_back(&w);
  std::sort(order.begin(), order.end(), [](const SnapshotWaiting* a, const SnapshotWaiting* b) {
    if (a->priority != b->priority) return a->priority < b->priority;
    if (a->submit != b->submit) return a->submit < b->submit;
    return a->id < b->id;
  });

  for (const SnapshotWaiting* w : order) {
    const Time start = list.schedule(w->nodes, perfect ? w->runtime : w->wcl, snapshot.at);
    if (w->id == snapshot.id) return start;
  }
  throw std::logic_error("reference_snapshot_fst: target job missing from its own snapshot");
}

const SimulationResult& fst_input() {
  static const SimulationResult result = [] {
    const Workload trace = workload::generate_small_workload(9, 4000, 1024, days(40));
    sim::EngineConfig config;
    config.policy.kind = PolicyKind::Cplant;
    return sim::simulate(trace, config);
  }();
  return result;
}

void BM_HybridFstSerial(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  metrics::FstOptions options;
  options.parallel = false;
  for (auto _ : state) benchmark::DoNotOptimize(metrics::hybrid_fairshare_fst(input, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_HybridFstSerial)->Unit(benchmark::kMillisecond);

void BM_HybridFstParallel(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  metrics::FstOptions options;
  options.parallel = true;
  for (auto _ : state) benchmark::DoNotOptimize(metrics::hybrid_fairshare_fst(input, options));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_HybridFstParallel)->Unit(benchmark::kMillisecond);

void BM_RefHybridFstSerial(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  std::vector<Time> fair_start(input.records.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < input.snapshots.size(); ++i)
      fair_start[i] = reference_snapshot_fst(input.snapshots[i], input.system_size,
                                             metrics::FstKnowledge::Estimates);
    benchmark::DoNotOptimize(fair_start.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_RefHybridFstSerial)->Unit(benchmark::kMillisecond);

void BM_ConsPFst(benchmark::State& state) {
  const SimulationResult& input = fst_input();
  for (auto _ : state) benchmark::DoNotOptimize(metrics::cons_p_fst(input));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(input.records.size()));
}
BENCHMARK(BM_ConsPFst)->Unit(benchmark::kMillisecond);

}  // namespace
