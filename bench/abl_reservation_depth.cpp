// Ablation: reservation depth. The paper's introduction notes that many
// production schedulers sit between aggressive (depth 1) and conservative
// (unbounded) by giving the first n queued jobs reservations; this sweep
// places the CPlant baseline and the paper's conservative results on that
// spectrum.

#include <iostream>

#include "common/experiment_env.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: reservation depth",
      "fairshare-ordered backfilling with the first n blocked jobs reserved",
      "depth 1 behaves like EASY (wide jobs depend on the single reservation); growing "
      "depth trades turnaround for wide-job protection, approaching consdyn");

  workload::GeneratorConfig generator;
  generator.count_scale = std::min(0.5, bench::bench_scale());
  generator.span = weeks(16);
  const Workload trace = workload::generate_ross_workload(generator);

  util::TextTable table({"depth", "percent_unfair", "avg_miss_s", "avg_turnaround_s",
                         "wide_tat_s (129-256)", "loc"});
  for (const int depth : {1, 2, 4, 16, 256}) {
    sim::EngineConfig config;
    config.policy.kind = PolicyKind::Depth;
    config.policy.reservation_depth = depth;
    const SimulationResult result = sim::simulate(trace, config);
    const metrics::PolicyReport report = metrics::evaluate(result);
    table.begin_row()
        .add_int(depth)
        .add_percent(report.fairness.percent_unfair)
        .add(report.fairness.avg_miss_all, 0)
        .add(report.standard.avg_turnaround, 0)
        .add(report.standard.avg_turnaround_by_width[8], 0)
        .add_percent(report.standard.loss_of_capacity);
  }
  std::cout << table;
  return 0;
}
