// Figure 12: average turnaround time by job width — minor changes.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 12", "average turnaround time by width category (minor changes)",
      "wide jobs dominate turnaround; the 72 h maximum runtime improves wide-job progress");

  const auto reports = bench::run_policies(minor_change_policies());
  std::cout << '\n' << metrics::turnaround_by_width_table(reports);
  return 0;
}
