// Figure 4: runtime vs node-count scatter of the trace (ASCII density plot +
// distribution statistics; the paper plots raw points on log-log axes).

#include <cmath>
#include <iostream>

#include "common/experiment_env.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 4", "runtime vs nodes scatter",
      "points span 1..1e4 nodes x 1..1e8 s with strong horizontal banding at powers of two");

  util::Histogram2D density(util::log_edges(10.0, 2.0e6, 48), util::log_edges(1.0, 2048.0, 12));
  std::vector<double> log_runtime, log_nodes;
  for (const Job& job : bench::ross_trace().jobs) {
    density.add(static_cast<double>(job.runtime), static_cast<double>(job.nodes));
    log_runtime.push_back(std::log10(static_cast<double>(job.runtime)));
    log_nodes.push_back(std::log10(static_cast<double>(job.nodes)));
  }
  std::cout << density.render("runtime 10s .. 2e6s", "nodes 1 .. 2048 (log)") << '\n';

  const double pow2 = workload::power_of_two_fraction(bench::ross_trace());
  std::cout << "power-of-two node counts: " << util::format_number(pow2 * 100.0, 1)
            << "% (paper: strong banding at standard allocations)\n";
  std::cout << "log-log rank correlation runtime~nodes: "
            << util::format_number(util::spearman(log_runtime, log_nodes), 3)
            << " (paper: widths occur at every runtime; weak correlation)\n";
  return 0;
}
