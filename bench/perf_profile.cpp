// Microbenchmarks of the availability Profile (the hot data structure under
// every backfilling scheduler).

#include <benchmark/benchmark.h>

#include "core/profile.hpp"
#include "util/rng.hpp"

namespace {

using namespace psched;

/// Build a profile with `n` random usage intervals.
Profile make_profile(std::size_t n, util::Rng& rng) {
  Profile profile(1524, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Time from = rng.uniform_int(0, 500'000);
    const Time duration = rng.uniform_int(600, 86'400);
    const auto nodes = static_cast<NodeCount>(rng.uniform_int(1, 128));
    if (profile.fits_at(from, duration, nodes)) profile.add_usage(from, from + duration, nodes);
  }
  return profile;
}

void BM_ProfileAddUsage(benchmark::State& state) {
  util::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Profile profile(1524, 0);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      const Time from = static_cast<Time>(i) * 977 % 500'000;
      profile.add_usage(from, from + 3600, 4);
    }
    benchmark::DoNotOptimize(profile.breakpoints());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProfileAddUsage)->Arg(64)->Arg(256)->Arg(1024);

void BM_ProfileEarliestFit(benchmark::State& state) {
  util::Rng rng(2);
  Profile profile = make_profile(static_cast<std::size_t>(state.range(0)), rng);
  Time query = 0;
  for (auto _ : state) {
    query = (query + 7919) % 500'000;
    benchmark::DoNotOptimize(profile.earliest_fit(query, 7200, 256));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileEarliestFit)->Arg(64)->Arg(256)->Arg(1024);

void BM_ProfileFitsAt(benchmark::State& state) {
  util::Rng rng(3);
  Profile profile = make_profile(static_cast<std::size_t>(state.range(0)), rng);
  Time query = 0;
  for (auto _ : state) {
    query = (query + 104729) % 500'000;
    benchmark::DoNotOptimize(profile.fits_at(query, 3600, 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileFitsAt)->Arg(64)->Arg(1024);

void BM_ProfileReserveRelease(benchmark::State& state) {
  util::Rng rng(4);
  Profile profile = make_profile(256, rng);
  for (auto _ : state) {
    const Time slot = profile.earliest_fit(10'000, 7200, 128);
    profile.add_usage(slot, slot + 7200, 128);
    profile.remove_usage(slot, slot + 7200, 128);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileReserveRelease);

}  // namespace
