// Microbenchmarks of the availability Profile (the hot data structure under
// every backfilling scheduler).
//
// Every case is templated over both the optimized Profile and the preserved
// seed implementation (reference::ReferenceProfile), so the recorded
// BENCH_profile.json baseline carries the speedup as a measured pair
// (BM_Profile* vs BM_RefProfile*) rather than a claim.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <map>
#include <vector>

#include "core/profile.hpp"
#include "core/reference_profile.hpp"
#include "util/rng.hpp"

namespace {

using namespace psched;

/// Build a profile with `n` random usage intervals.
template <typename ProfileT>
ProfileT make_profile(std::size_t n, util::Rng& rng) {
  ProfileT profile(1524, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Time from = rng.uniform_int(0, 500'000);
    const Time duration = rng.uniform_int(600, 86'400);
    const auto nodes = static_cast<NodeCount>(rng.uniform_int(1, 128));
    if (profile.fits_at(from, duration, nodes)) profile.add_usage(from, from + duration, nodes);
  }
  return profile;
}

template <typename ProfileT>
void run_add_usage(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ProfileT profile(1524, 0);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      const Time from = static_cast<Time>(i) * 977 % 500'000;
      profile.add_usage(from, from + 3600, 4);
    }
    benchmark::DoNotOptimize(profile.breakpoints());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_ProfileAddUsage(benchmark::State& state) { run_add_usage<Profile>(state); }
void BM_RefProfileAddUsage(benchmark::State& state) {
  run_add_usage<reference::ReferenceProfile>(state);
}
BENCHMARK(BM_ProfileAddUsage)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_RefProfileAddUsage)->Arg(64)->Arg(256)->Arg(1024);

void BM_ProfileBatchAddUsage(benchmark::State& state) {
  // The transaction API: many staged reservations, one normalization pass —
  // the shape of a conservative replan.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Profile profile(1524, 0);
    state.ResumeTiming();
    profile.begin_batch();
    for (std::size_t i = 0; i < n; ++i) {
      const Time from = static_cast<Time>(i) * 977 % 500'000;
      profile.add_usage(from, from + 3600, 4);
    }
    profile.end_batch();
    benchmark::DoNotOptimize(profile.breakpoints());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProfileBatchAddUsage)->Arg(64)->Arg(256)->Arg(1024);

template <typename ProfileT>
void run_earliest_fit(benchmark::State& state, std::uint64_t seed) {
  util::Rng rng(seed);
  ProfileT profile = make_profile<ProfileT>(static_cast<std::size_t>(state.range(0)), rng);
  Time query = 0;
  for (auto _ : state) {
    query = (query + 7919) % 500'000;
    benchmark::DoNotOptimize(profile.earliest_fit(query, 7200, 256));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ProfileEarliestFit(benchmark::State& state) { run_earliest_fit<Profile>(state, 2); }
void BM_RefProfileEarliestFit(benchmark::State& state) {
  run_earliest_fit<reference::ReferenceProfile>(state, 2);
}
BENCHMARK(BM_ProfileEarliestFit)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_RefProfileEarliestFit)->Arg(64)->Arg(256)->Arg(1024);

template <typename ProfileT>
void run_earliest_fit_contended(benchmark::State& state) {
  // A near-machine-width job hunting for a long window in a busy profile:
  // every partially blocked window forces the seed implementation to restart
  // its scan (quadratic in breakpoints); the sliding-window pass does not.
  util::Rng rng(6);
  ProfileT profile = make_profile<ProfileT>(static_cast<std::size_t>(state.range(0)), rng);
  Time query = 0;
  for (auto _ : state) {
    query = (query + 7919) % 500'000;
    benchmark::DoNotOptimize(profile.earliest_fit(query, 86'400, 1500));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ProfileEarliestFitContended(benchmark::State& state) {
  run_earliest_fit_contended<Profile>(state);
}
void BM_RefProfileEarliestFitContended(benchmark::State& state) {
  run_earliest_fit_contended<reference::ReferenceProfile>(state);
}
BENCHMARK(BM_ProfileEarliestFitContended)->Arg(256)->Arg(1024);
BENCHMARK(BM_RefProfileEarliestFitContended)->Arg(256)->Arg(1024);

// --- deep-queue cases (the ROADMAP's 10k+ reservation scenario) --------------
//
// BM_ProfileEarliestFitDeep queries a prebuilt deep profile (the gap index
// pays per query); BM_ProfilePack* replays the conservative replan inner loop
// — alternate earliest_fit and add_usage until `n` reservations are seated —
// which is where deep queues spend their time. The Indexed/Linear pair is the
// crossover measurement behind Profile::gap_index_threshold(); the Ref pair
// records the speedup over the seed implementation.

template <typename ProfileT>
void run_earliest_fit_deep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // The seed implementation takes a while to build a deep profile; cache the
  // built timeline across google-benchmark's calibration re-invocations.
  static std::map<std::size_t, ProfileT> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    util::Rng rng(11);
    ProfileT profile(1524, 0);
    // Dense long-horizon packing so the timeline carries ~2n live breakpoints.
    for (std::size_t i = 0; i < n; ++i) {
      const Time from = rng.uniform_int(0, static_cast<Time>(n) * 600);
      const Time duration = rng.uniform_int(600, 86'400);
      const auto nodes = static_cast<NodeCount>(rng.uniform_int(1, 96));
      if (profile.fits_at(from, duration, nodes)) profile.add_usage(from, from + duration, nodes);
    }
    it = cache.emplace(n, std::move(profile)).first;
  }
  const ProfileT& profile = it->second;
  Time query = 0;
  const Time horizon = static_cast<Time>(n) * 600;
  for (auto _ : state) {
    query = (query + 7919) % horizon;
    benchmark::DoNotOptimize(profile.earliest_fit(query, 43'200, 1400));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ProfileEarliestFitDeep(benchmark::State& state) {
  run_earliest_fit_deep<Profile>(state);
}
void BM_RefProfileEarliestFitDeep(benchmark::State& state) {
  run_earliest_fit_deep<reference::ReferenceProfile>(state);
}
BENCHMARK(BM_ProfileEarliestFitDeep)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RefProfileEarliestFitDeep)->Arg(4096)->Arg(16384)->Unit(benchmark::kMicrosecond);

template <typename ProfileT>
void run_pack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng shapes_rng(9001);
  std::vector<NodeCount> widths;
  std::vector<Time> lengths;
  widths.reserve(n);
  lengths.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    widths.push_back(static_cast<NodeCount>(shapes_rng.uniform_int(1, 96)));
    lengths.push_back(shapes_rng.uniform_int(300, 36'000));
  }
  for (auto _ : state) {
    state.PauseTiming();
    ProfileT profile(512, 0);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      const Time at = profile.earliest_fit(0, lengths[i], widths[i]);
      profile.add_usage(at, at + lengths[i], widths[i]);
    }
    benchmark::DoNotOptimize(profile.breakpoints());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_ProfilePack(benchmark::State& state) { run_pack<Profile>(state); }
void BM_RefProfilePack(benchmark::State& state) {
  run_pack<reference::ReferenceProfile>(state);
}
void BM_ProfilePackIndexed(benchmark::State& state) {
  Profile::ThresholdGuard force(Profile::kForceIndex);
  run_pack<Profile>(state);
}
void BM_ProfilePackLinear(benchmark::State& state) {
  Profile::ThresholdGuard force(Profile::kDisableIndex);
  run_pack<Profile>(state);
}
// BM_ProfilePack uses the production threshold; the Indexed/Linear variants
// bracket it to expose the crossover. The seed pair stops at 4096 (its
// quadratic restart scan already needs seconds per pass there).
BENCHMARK(BM_ProfilePack)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RefProfilePack)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfilePackIndexed)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProfilePackLinear)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

template <typename ProfileT>
void run_fits_at(benchmark::State& state, std::uint64_t seed) {
  util::Rng rng(seed);
  ProfileT profile = make_profile<ProfileT>(static_cast<std::size_t>(state.range(0)), rng);
  Time query = 0;
  for (auto _ : state) {
    query = (query + 104729) % 500'000;
    benchmark::DoNotOptimize(profile.fits_at(query, 3600, 64));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ProfileFitsAt(benchmark::State& state) { run_fits_at<Profile>(state, 3); }
void BM_RefProfileFitsAt(benchmark::State& state) {
  run_fits_at<reference::ReferenceProfile>(state, 3);
}
BENCHMARK(BM_ProfileFitsAt)->Arg(64)->Arg(1024);
BENCHMARK(BM_RefProfileFitsAt)->Arg(64)->Arg(1024);

template <typename ProfileT>
void run_reserve_release(benchmark::State& state) {
  util::Rng rng(4);
  ProfileT profile = make_profile<ProfileT>(256, rng);
  for (auto _ : state) {
    const Time slot = profile.earliest_fit(10'000, 7200, 128);
    profile.add_usage(slot, slot + 7200, 128);
    profile.remove_usage(slot, slot + 7200, 128);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ProfileReserveRelease(benchmark::State& state) { run_reserve_release<Profile>(state); }
void BM_RefProfileReserveRelease(benchmark::State& state) {
  run_reserve_release<reference::ReferenceProfile>(state);
}
BENCHMARK(BM_ProfileReserveRelease);
BENCHMARK(BM_RefProfileReserveRelease);

}  // namespace
