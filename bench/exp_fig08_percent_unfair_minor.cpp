// Figure 8: percentage of jobs that missed their fair start time — the five
// "minor change" policies.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 8", "percent of jobs missing their hybrid fair start time (minor changes)",
      "every enhanced policy reduces the number of jobs missing the FST relative to "
      "cplant24.nomax.all; combining all three changes gives a large reduction");

  const auto reports = bench::run_policies(minor_change_policies());
  std::cout << '\n' << metrics::fairness_summary_table(reports);

  const double baseline = reports.front().fairness.percent_unfair;
  std::cout << "\nrelative to baseline (" << util::format_number(baseline * 100.0, 2) << "%):\n";
  for (const auto& r : reports) {
    std::cout << "  " << r.policy << ": "
              << util::format_number(r.fairness.percent_unfair / baseline * 100.0, 0)
              << "% of baseline unfair-job count\n";
  }
  return 0;
}
