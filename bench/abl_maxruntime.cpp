// Ablation: maximum-runtime limit value (the paper only evaluates 72 h).

#include <iostream>

#include "common/experiment_env.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: maximum-runtime limit",
      "CPlant policy metrics vs the runtime limit (coarse preemption granularity)",
      "tighter limits give finer preemption: lower miss time and LOC, at the cost of more "
      "segments (checkpoint/restart overhead is not modelled, as in the paper)");

  workload::GeneratorConfig generator;
  generator.count_scale = std::min(0.5, bench::bench_scale());
  generator.span = weeks(16);
  const Workload trace = workload::generate_ross_workload(generator);

  util::TextTable table({"max_runtime", "segments", "percent_unfair", "avg_miss_s",
                         "avg_turnaround_s", "loc"});
  for (const Time limit : {hours(24), hours(48), hours(72), hours(168), kNoTime}) {
    sim::EngineConfig config;
    config.policy.kind = PolicyKind::Cplant;
    config.policy.max_runtime = limit;
    const SimulationResult result = sim::simulate(trace, config);
    const metrics::PolicyReport report = metrics::evaluate(result);
    table.begin_row()
        .add(limit == kNoTime ? "none" : util::format_duration_short(static_cast<double>(limit)))
        .add_int(static_cast<long long>(result.records.size()))
        .add_percent(report.fairness.percent_unfair)
        .add(report.fairness.avg_miss_all, 0)
        .add(report.standard.avg_turnaround, 0)
        .add_percent(report.standard.loss_of_capacity);
  }
  std::cout << table;
  return 0;
}
