// Figure 14: percentage of jobs missing their fair start time — all nine
// policies.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 14", "percent of jobs missing their hybrid fair start time (all policies)",
      "all conservative policies outperform the original scheduler; conservative with "
      "dynamic reservations has the fewest unfair jobs");

  const auto reports = bench::run_policies(all_paper_policies());
  std::cout << '\n' << metrics::fairness_summary_table(reports);

  const auto& consdyn = reports[6];  // consdyn.nomax
  bool fewest = true;
  for (const auto& r : reports)
    if (r.fairness.percent_unfair < consdyn.fairness.percent_unfair) fewest = false;
  std::cout << "\nconsdyn.nomax has the fewest unfair jobs: " << (fewest ? "yes" : "NO")
            << " (paper: yes)\n";
  return 0;
}
