// Ablation: fairshare decay factor. The paper states CPlant's usage decayed
// every 24 hours but not by how much; this sweep shows how the decay factor
// shapes the fairness results (DESIGN.md records 0.9/day as our default).

#include <iostream>

#include "common/experiment_env.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: fairshare decay factor",
      "baseline and consdyn fairness vs decay factor (0.5 = forgive overnight, "
      "0.99 = months-long memory)",
      "slow decay keeps heavy users deprioritized longer: starvation of their wide jobs "
      "deepens (larger per-unfair-job miss), reproducing the paper's consdyn severity");

  // Reduced scale keeps the 4-factor x 2-policy sweep quick.
  workload::GeneratorConfig generator;
  generator.count_scale = std::min(0.5, bench::bench_scale());
  generator.span = weeks(16);
  const Workload trace = workload::generate_ross_workload(generator);

  util::TextTable table(
      {"decay/day", "policy", "percent_unfair", "avg_miss_s", "avg_miss_unfair_s"});
  for (const double decay : {0.5, 0.8, 0.9, 0.99}) {
    for (const PaperPolicy policy : {PaperPolicy::Cplant24NomaxAll, PaperPolicy::ConsdynNomax}) {
      sim::EngineConfig config;
      config.policy = paper_policy(policy);
      config.fairshare_decay = decay;
      const SimulationResult result = sim::simulate(trace, config);
      const metrics::PolicyReport report = metrics::evaluate(result);
      table.begin_row()
          .add(decay, 2)
          .add(report.policy)
          .add_percent(report.fairness.percent_unfair)
          .add(report.fairness.avg_miss_all, 0)
          .add(report.fairness.avg_miss_unfair, 0);
    }
  }
  std::cout << table;
  return 0;
}
