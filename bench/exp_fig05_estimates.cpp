// Figure 5: user wall-clock-limit estimates vs actual runtimes.

#include <iostream>

#include "common/experiment_env.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 5", "WCL estimate vs actual runtime",
      "all mass on or above the WCL = runtime diagonal (over-estimation), with a thin "
      "tail below it (jobs that ran past their limit)");

  util::Histogram2D density(util::log_edges(10.0, 2.0e6, 48), util::log_edges(10.0, 4.0e6, 14));
  std::vector<double> runtimes, wcls;
  for (const Job& job : bench::ross_trace().jobs) {
    density.add(static_cast<double>(job.runtime), static_cast<double>(job.wcl));
    runtimes.push_back(static_cast<double>(job.runtime));
    wcls.push_back(static_cast<double>(job.wcl));
  }
  std::cout << density.render("runtime 10s .. 2e6s", "WCL 10s .. 4e6s (log)") << '\n';

  const double under = workload::underestimate_fraction(bench::ross_trace());
  std::cout << "jobs with runtime > WCL: " << util::format_number(under * 100.0, 2)
            << "% (paper: a few jobs run past their limits when nodes are idle)\n";
  std::cout << "Spearman correlation WCL~runtime: "
            << util::format_number(util::spearman(runtimes, wcls), 3)
            << " (estimates track runtimes but with large over-estimation scatter)\n";
  return 0;
}
