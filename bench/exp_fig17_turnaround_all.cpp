// Figure 17: average turnaround time — all nine policies.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 17", "average turnaround time (all policies)",
      "plain conservative backfilling has poor turnaround; adding the 72 h limit makes "
      "cons.72max competitive with (or better than) every other scheme");

  const auto reports = bench::run_policies(all_paper_policies());
  std::cout << '\n' << metrics::performance_summary_table(reports);

  std::cout << "\navg turnaround per policy (Figure 17 bars):\n";
  for (const auto& r : reports)
    std::cout << "  " << r.policy << ": " << util::format_number(r.standard.avg_turnaround, 0)
              << " s  (" << util::format_duration_short(r.standard.avg_turnaround) << ")\n";
  return 0;
}
