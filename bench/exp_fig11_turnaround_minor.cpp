// Figure 11: average turnaround time (Eq. 1) — minor changes.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 11", "average turnaround time (minor changes)",
      "most enhanced policies improve the average turnaround; the 72 h maximum runtime "
      "(coarse preemption) gives the clearest improvement");

  const auto reports = bench::run_policies(minor_change_policies());
  std::cout << '\n' << metrics::performance_summary_table(reports);

  std::cout << "\navg turnaround per policy (Figure 11 bars):\n";
  for (const auto& r : reports)
    std::cout << "  " << r.policy << ": " << util::format_number(r.standard.avg_turnaround, 0)
              << " s  (" << util::format_duration_short(r.standard.avg_turnaround) << ")\n";
  return 0;
}
