// Figure 9: average fair-start miss time (Eq. 5) — the five "minor change"
// policies.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 9", "average fair-start miss time, Eq. 5 (minor changes)",
      "only the 72 h maximum-runtime policies clearly reduce the average miss time; "
      "delaying or barring starvation-queue entry makes the remaining misses much larger "
      "(see avg_miss_unfair_s)");

  const auto reports = bench::run_policies(minor_change_policies());
  std::cout << '\n' << metrics::fairness_summary_table(reports);

  std::cout << "\navg miss (s) per policy (Figure 9 bars):\n";
  for (const auto& r : reports)
    std::cout << "  " << r.policy << ": " << util::format_number(r.fairness.avg_miss_all, 0)
              << " s  (" << util::format_duration_short(r.fairness.avg_miss_all) << ")\n";
  return 0;
}
