// Figure 16: average miss time by width — baseline vs the conservative
// family.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 16", "average miss time by width category (conservative family)",
      "conservative backfilling reduces the unfairness of wide jobs relative to the "
      "baseline no-guarantee scheduler");

  const std::vector<PolicyConfig> policies = {
      paper_policy(PaperPolicy::Cplant24NomaxAll), paper_policy(PaperPolicy::ConsNomax),
      paper_policy(PaperPolicy::ConsdynNomax), paper_policy(PaperPolicy::ConsMax),
      paper_policy(PaperPolicy::ConsdynMax)};
  const auto reports = bench::run_policies(policies);
  std::cout << '\n' << metrics::miss_by_width_table(reports);

  // Wide-job comparison (65+ nodes).
  double base_wide = 0.0, cons_wide = 0.0;
  for (std::size_t w = 7; w < kWidthCategories; ++w) {
    base_wide += reports[0].fairness.avg_miss_by_width[w];
    cons_wide += reports[1].fairness.avg_miss_by_width[w];
  }
  std::cout << "\nsummed 65+-node avg miss: baseline "
            << util::format_number(base_wide, 0) << " s vs cons.nomax "
            << util::format_number(cons_wide, 0) << " s (paper: conservative lower)\n";
  return 0;
}
