// Wall-clock of a full paper-style policy sweep through ExperimentRunner:
// the serial baseline (BM_Ref*, jobs = 1) vs the parallel sweep on the
// global pool (--jobs default). Pair naming follows the BM_Ref convention so
// tools/summarize_benches.py records the measured speedup. A fresh runner is
// built every iteration so the cache never short-circuits the sweep; the
// single-flight dedup case measures the cache instead (duplicates of an
// already-warm sweep must cost ~nothing).
//
// Note: the parallel/serial ratio only reflects cores actually available —
// on a single-CPU host the two cases measure the same work timeshared. The
// committed BENCH_experiments.json records the pool size alongside.

#include <benchmark/benchmark.h>

#include "sim/experiment.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace {

using namespace psched;

const Workload& sweep_trace() {
  static const Workload trace = workload::generate_small_workload(7, 1500, 512, days(21));
  return trace;
}

void run_sweep(benchmark::State& state, std::size_t jobs) {
  const std::vector<PolicyConfig> policies = all_paper_policies();
  for (auto _ : state) {
    sim::ExperimentRunner runner(sweep_trace());
    benchmark::DoNotOptimize(runner.run_all(policies, jobs).size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(policies.size()));
  state.counters["jobs"] = static_cast<double>(jobs == 0 ? util::global_pool().size() : jobs);
  state.counters["pool_threads"] = static_cast<double>(util::global_pool().size());
}

void BM_RefExperimentSweep9(benchmark::State& state) { run_sweep(state, 1); }
void BM_ExperimentSweep9(benchmark::State& state) { run_sweep(state, 0); }

// 36 requests, 9 distinct: the warm path every figure binary leans on.
void BM_ExperimentSweepDeduplicated(benchmark::State& state) {
  std::vector<PolicyConfig> policies;
  for (int repeat = 0; repeat < 4; ++repeat)
    for (const PolicyConfig& policy : all_paper_policies()) policies.push_back(policy);
  sim::ExperimentRunner runner(sweep_trace());
  benchmark::DoNotOptimize(runner.run_all(all_paper_policies()).size());  // warm the cache
  for (auto _ : state) benchmark::DoNotOptimize(runner.run_all(policies).size());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(policies.size()));
}

BENCHMARK(BM_RefExperimentSweep9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExperimentSweep9)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExperimentSweepDeduplicated)->Unit(benchmark::kMicrosecond);

}  // namespace
