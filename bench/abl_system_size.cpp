// Ablation: machine size. The paper never states Ross's usable node count;
// DESIGN.md picks 1,524. This sweep shows how the policy ranking depends on
// that substitution.

#include <iostream>

#include "common/experiment_env.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: system size",
      "baseline vs cons.72max on machines from 1,100 to 2,048 nodes (same job stream)",
      "smaller machines are overloaded (misses explode); larger ones underloaded (every "
      "policy looks fair); the cons.72max advantage is stable across the range");

  util::TextTable table({"nodes", "policy", "percent_unfair", "avg_miss_s", "avg_turnaround_s",
                         "utilization", "loc"});
  for (const NodeCount size : {1100, 1280, 1524, 2048}) {
    workload::GeneratorConfig generator;
    generator.count_scale = std::min(0.5, bench::bench_scale());
    generator.span = weeks(16);
    generator.system_size = size;
    const Workload trace = workload::generate_ross_workload(generator);
    for (const PaperPolicy policy : {PaperPolicy::Cplant24NomaxAll, PaperPolicy::ConsMax}) {
      sim::EngineConfig config;
      config.policy = paper_policy(policy);
      const SimulationResult result = sim::simulate(trace, config);
      const metrics::PolicyReport report = metrics::evaluate(result);
      table.begin_row()
          .add_int(size)
          .add(report.policy)
          .add_percent(report.fairness.percent_unfair)
          .add(report.fairness.avg_miss_all, 0)
          .add(report.standard.avg_turnaround, 0)
          .add_percent(report.standard.utilization)
          .add_percent(report.standard.loss_of_capacity);
    }
  }
  std::cout << table;
  return 0;
}
