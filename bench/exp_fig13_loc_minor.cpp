// Figure 13: loss of capacity (Eq. 4) — minor changes.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 13", "loss of capacity (minor changes)",
      "policies that improve miss time and turnaround also improve (lower) the loss of "
      "capacity; the 72 h limit reduces LOC the most");

  const auto reports = bench::run_policies(minor_change_policies());
  std::cout << '\n' << metrics::performance_summary_table(reports);

  std::cout << "\nloss of capacity per policy (Figure 13 bars):\n";
  for (const auto& r : reports)
    std::cout << "  " << r.policy << ": "
              << util::format_number(r.standard.loss_of_capacity * 100.0, 2) << "%\n";
  return 0;
}
