// Figure 15: average fair-start miss time — all nine policies. The paper
// calls out consdyn.nomax (67,881 s): very few jobs miss, but those that do
// are treated very unfairly.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 15", "average fair-start miss time, Eq. 5 (all policies)",
      "conservative policies without runtime limits do not beat the baseline on average "
      "miss; consdyn's rare victims suffer extreme misses (the paper's 67,881 s bar); "
      "cons.72max is the only policy clearly better on both unfair count and miss time");

  const auto reports = bench::run_policies(all_paper_policies());
  std::cout << '\n' << metrics::fairness_summary_table(reports);

  std::cout << "\nper-policy Eq.5 average and per-unfair-job severity:\n";
  for (const auto& r : reports)
    std::cout << "  " << r.policy << ": avg " << util::format_number(r.fairness.avg_miss_all, 0)
              << " s; per unfair job " << util::format_duration_short(r.fairness.avg_miss_unfair)
              << "\n";
  return 0;
}
