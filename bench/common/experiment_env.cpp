#include "common/experiment_env.hpp"

#include <cstdlib>
#include <iostream>

namespace psched::bench {

namespace {
double read_env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const double parsed = std::strtod(value, nullptr);
  return parsed > 0.0 ? parsed : fallback;
}

std::uint64_t read_env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::strtoull(value, nullptr, 10);
}

std::size_t g_jobs = 0;  // 0 = global pool size
}  // namespace

void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << (argc > 0 ? argv[0] : "experiment")
                << " — paper figure/table experiment\n"
                   "  --jobs N   concurrent policy simulations (default: pool size; 1 = serial)\n"
                   "  env: PSCHED_BENCH_SCALE, PSCHED_BENCH_SEED, PSCHED_THREADS\n";
      std::exit(0);
    }
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::cerr << "experiment: missing value for --jobs\n";
        std::exit(2);
      }
      const long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::cerr << "experiment: --jobs must be >= 1\n";
        std::exit(2);
      }
      g_jobs = static_cast<std::size_t>(parsed);
      continue;
    }
    std::cerr << "experiment: unknown option '" << arg << "' (try --help)\n";
    std::exit(2);
  }
}

double bench_scale() {
  static const double scale = std::min(1.0, read_env_double("PSCHED_BENCH_SCALE", 1.0));
  return scale;
}

const Workload& ross_trace() {
  static const Workload trace = [] {
    workload::GeneratorConfig config;
    config.seed = read_env_u64("PSCHED_BENCH_SEED", 20021201ULL);
    config.count_scale = bench_scale();
    if (config.count_scale < 1.0) {
      // Keep weekly load comparable when scaling the job count down.
      config.span = std::max<Time>(weeks(4), static_cast<Time>(
          static_cast<double>(workload::kRossTraceSpan) * config.count_scale));
    }
    return workload::generate_ross_workload(config);
  }();
  return trace;
}

sim::ExperimentRunner& runner() {
  static sim::ExperimentRunner shared(ross_trace());
  return shared;
}

void print_header(const std::string& experiment_id, const std::string& what,
                  const std::string& paper_shape) {
  const Workload& trace = ross_trace();
  std::cout << "==================================================================\n"
            << experiment_id << ": " << what << '\n'
            << "# paper: " << paper_shape << '\n'
            << "# trace: " << trace.jobs.size() << " jobs, " << trace.system_size
            << " nodes, scale " << bench_scale() << ", synthetic CPlant/Ross\n"
            << "==================================================================\n";
}

std::vector<metrics::PolicyReport> run_policies(const std::vector<PolicyConfig>& policies) {
  // No concurrency level in the header: stdout must byte-diff clean across
  // --jobs values and hosts (the verification contract for the sweep).
  std::cout << "# sweeping " << policies.size() << " policies:";
  for (const PolicyConfig& policy : policies) std::cout << ' ' << policy.display_name();
  std::cout << '\n' << std::flush;

  const auto results = runner().run_all(policies, g_jobs);
  std::vector<metrics::PolicyReport> reports;
  reports.reserve(results.size());
  for (const sim::ExperimentResult* result : results) reports.push_back(result->report);
  return reports;
}

}  // namespace psched::bench
