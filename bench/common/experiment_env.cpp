#include "common/experiment_env.hpp"

#include <cstdlib>
#include <iostream>

namespace psched::bench {

namespace {
double read_env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const double parsed = std::strtod(value, nullptr);
  return parsed > 0.0 ? parsed : fallback;
}

std::uint64_t read_env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  return std::strtoull(value, nullptr, 10);
}
}  // namespace

double bench_scale() {
  static const double scale = std::min(1.0, read_env_double("PSCHED_BENCH_SCALE", 1.0));
  return scale;
}

const Workload& ross_trace() {
  static const Workload trace = [] {
    workload::GeneratorConfig config;
    config.seed = read_env_u64("PSCHED_BENCH_SEED", 20021201ULL);
    config.count_scale = bench_scale();
    if (config.count_scale < 1.0) {
      // Keep weekly load comparable when scaling the job count down.
      config.span = std::max<Time>(weeks(4), static_cast<Time>(
          static_cast<double>(workload::kRossTraceSpan) * config.count_scale));
    }
    return workload::generate_ross_workload(config);
  }();
  return trace;
}

sim::ExperimentRunner& runner() {
  static sim::ExperimentRunner shared(ross_trace());
  return shared;
}

void print_header(const std::string& experiment_id, const std::string& what,
                  const std::string& paper_shape) {
  const Workload& trace = ross_trace();
  std::cout << "==================================================================\n"
            << experiment_id << ": " << what << '\n'
            << "# paper: " << paper_shape << '\n'
            << "# trace: " << trace.jobs.size() << " jobs, " << trace.system_size
            << " nodes, scale " << bench_scale() << ", synthetic CPlant/Ross\n"
            << "==================================================================\n";
}

std::vector<metrics::PolicyReport> run_policies(const std::vector<PolicyConfig>& policies) {
  std::vector<metrics::PolicyReport> reports;
  reports.reserve(policies.size());
  for (const PolicyConfig& policy : policies) {
    std::cout << "# simulating " << policy.display_name() << "...\n" << std::flush;
    reports.push_back(runner().run(policy).report);
  }
  return reports;
}

}  // namespace psched::bench
