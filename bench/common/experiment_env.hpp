#pragma once
// Shared environment for the table/figure experiment binaries: the synthetic
// CPlant/Ross trace, a cached experiment runner, and uniform report headers.
//
// Command-line flags (parsed by init(), shared by every binary):
//   --jobs N   run up to N policy simulations concurrently (default: the
//              global pool size; 1 = serial). Results are byte-identical to
//              a serial sweep regardless of N.
//   --help     print the flags and environment knobs, then exit
//
// Environment knobs (all optional):
//   PSCHED_BENCH_SCALE  trace count scale in (0, 1]; default 1.0 (full trace)
//   PSCHED_BENCH_SEED   generator seed; default 20021201
//   PSCHED_THREADS      global thread-pool size; default hardware concurrency

#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"

namespace psched::bench {

/// Parse the shared experiment flags (--jobs N, --help). Call first thing in
/// main; exits on --help or on an unknown/malformed option.
void init(int argc, char** argv);

/// The trace every experiment binary runs on (constructed once per process).
const Workload& ross_trace();

/// Shared cached runner over ross_trace() with default engine settings.
sim::ExperimentRunner& runner();

/// The trace scale in effect (for report headers).
double bench_scale();

/// Standard banner: experiment id, what the paper shows, what to expect.
void print_header(const std::string& experiment_id, const std::string& what,
                  const std::string& paper_shape);

/// Run the given policies through the shared runner — up to jobs() of them
/// concurrently — and return their reports in order.
std::vector<metrics::PolicyReport> run_policies(const std::vector<PolicyConfig>& policies);

}  // namespace psched::bench
